package aggcache

import (
	"bytes"
	"fmt"
	"net"
	"testing"
)

// TestFacadeQuickstart exercises the README quickstart end to end through
// the public API only.
func TestFacadeQuickstart(t *testing.T) {
	tr, err := StandardWorkload(ProfileServer, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	ids := tr.OpenIDs()

	lru, err := New(Config{Capacity: 300, GroupSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := New(Config{Capacity: 300, GroupSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		lru.Access(id)
		agg.Access(id)
	}
	if agg.Stats().DemandFetches() >= lru.Stats().DemandFetches() {
		t.Errorf("grouping did not reduce fetches: %d vs %d",
			agg.Stats().DemandFetches(), lru.Stats().DemandFetches())
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Op: OpOpen}, "/bin/sh")
	tr.Append(Event{Op: OpWrite}, "/tmp/out")

	var text, bin bytes.Buffer
	if err := WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadTraceText(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadTraceBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Len() != 2 || fromBin.Len() != 2 {
		t.Errorf("round trips lost events: %d, %d", fromText.Len(), fromBin.Len())
	}
	if s := SummarizeTrace(tr); s.Opens != 1 || s.Writes != 1 {
		t.Errorf("SummarizeTrace = %+v", s)
	}
}

func TestFacadeMetadataAndEntropy(t *testing.T) {
	tr, err := NewTracker(SuccessorLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := []FileID{1, 2, 3, 1, 2, 3, 1, 2, 3}
	tr.ObserveAll(seq)
	if f, ok := tr.First(1); !ok || f != 2 {
		t.Errorf("First(1) = %d,%v", f, ok)
	}
	g := BuildGraph(tr)
	if len(g.Nodes()) == 0 {
		t.Error("empty graph")
	}
	ev, err := EvaluateSuccessorPolicy(seq, SuccessorOracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MissProbability() >= 1 {
		t.Errorf("oracle miss probability = %v", ev.MissProbability())
	}
	r, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits != 0 {
		t.Errorf("deterministic cycle entropy = %v, want 0", r.Bits)
	}
	rs, err := EntropySweep(seq, []int{1, 2})
	if err != nil || len(rs) != 2 {
		t.Fatalf("EntropySweep = %v, %v", rs, err)
	}
}

func TestFacadeGroupBuilder(t *testing.T) {
	tr, err := NewTracker(SuccessorLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll([]FileID{1, 2, 3, 1, 2, 3})
	b, err := NewGroupBuilder(tr, 3, StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	g := b.Build(1)
	if len(g) != 3 || g[0] != 1 {
		t.Errorf("Build = %v", g)
	}
	cover := BuildCover(tr, b, []FileID{1, 2, 3})
	if !cover.Covers(2) {
		t.Error("cover misses file 2")
	}
}

func TestFacadeSimulation(t *testing.T) {
	tr, err := StandardWorkload(ProfileWorkstation, 2, 6000)
	if err != nil {
		t.Fatal(err)
	}
	ids := tr.OpenIDs()
	cr, err := SimulateClient(ids, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Fetches == 0 {
		t.Error("no fetches")
	}
	sr, err := SimulateServer(ids, ServerSimConfig{
		FilterCapacity: 100, ServerCapacity: 300, Scheme: ServerAggregating})
	if err != nil {
		t.Fatal(err)
	}
	if sr.ClientMisses == 0 {
		t.Error("no client misses")
	}
	misses, err := FilterLRU(ids, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(misses) == 0 || len(misses) >= len(ids) {
		t.Errorf("FilterLRU = %d of %d", len(misses), len(ids))
	}
}

func TestFacadeBaselines(t *testing.T) {
	for _, p := range []BaselinePolicy{BaselineLRU, BaselineLFU, BaselineCLOCK, BaselineMQ, BaselineARC, BaselineTwoQ} {
		c, err := NewBaseline(p, 4)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		c.Access(1)
		if !c.Contains(1) {
			t.Errorf("%s: lost just-inserted file", p)
		}
	}
}

func TestFacadeNetwork(t *testing.T) {
	store := NewStore()
	for i := 0; i < 5; i++ {
		if err := store.Put(fmt.Sprintf("/f%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(store, ServerConfig{GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	client, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	data, err := client.Open("/f0")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1 || data[0] != 0 {
		t.Errorf("data = %v", data)
	}
}
