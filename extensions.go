package aggcache

import (
	"io"

	"aggcache/internal/hoard"
	"aggcache/internal/multilevel"
	"aggcache/internal/placement"
	"aggcache/internal/prefetch"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
	"aggcache/internal/viz"
	"aggcache/internal/workload"
)

// This file exposes the extension modules: the explicit-prefetching
// baselines of §5, the placement and hoarding applications of §2.1/§6,
// workload visualization, and trace import/merge tooling.

// Explicit prefetching baselines.
type (
	// Predictor guesses upcoming files from the access history.
	Predictor = prefetch.Predictor
	// PrefetchingCache drives a Predictor with explicit per-file
	// prefetch requests, the way classic prefetchers did.
	PrefetchingCache = prefetch.PrefetchingCache
	// PrefetchStats counts a prefetching cache's activity.
	PrefetchStats = prefetch.Stats
)

// NewLastSuccessorPredictor returns the last-successor model (Lei &
// Duchamp 1997).
func NewLastSuccessorPredictor() *prefetch.LastSuccessor { return prefetch.NewLastSuccessor() }

// NewFirstSuccessorPredictor returns the first-successor model.
func NewFirstSuccessorPredictor() *prefetch.FirstSuccessor { return prefetch.NewFirstSuccessor() }

// NewProbabilityGraphPredictor returns Griffioen & Appleton's
// probability-graph predictor.
func NewProbabilityGraphPredictor(lookahead int, minChance float64) (*prefetch.ProbabilityGraph, error) {
	return prefetch.NewProbabilityGraph(lookahead, minChance)
}

// NewPPMPredictor returns a prediction-by-partial-match context model with
// contexts of length 1..maxOrder (the Kroeger & Long line of predictors).
func NewPPMPredictor(maxOrder int) (*prefetch.PPM, error) {
	return prefetch.NewPPM(maxOrder)
}

// NewPrefetchingCache builds an LRU cache that prefetches up to depth
// predictions after every access.
func NewPrefetchingCache(capacity, depth int, p Predictor) (*PrefetchingCache, error) {
	return prefetch.NewPrefetchingCache(capacity, depth, p)
}

// Data placement (§2.1).
type (
	// Layout assigns files to slots on a one-dimensional device.
	Layout = placement.Layout
	// SeekCostResult is the outcome of replaying a trace on a layout.
	SeekCostResult = placement.Cost
)

// SequentialLayout lays files out in first-access order.
func SequentialLayout(seq []FileID) *Layout { return placement.Sequential(seq) }

// OrganPipeLayout lays files out by frequency around the device centre.
func OrganPipeLayout(seq []FileID) *Layout { return placement.OrganPipe(seq) }

// GroupedLayout collocates covering-set groups.
func GroupedLayout(cover *Cover, seq []FileID) *Layout { return placement.Grouped(cover, seq) }

// SeekCost replays seq against a layout under the |pos(a)-pos(b)| seek
// model.
func SeekCost(l *Layout, seq []FileID) (SeekCostResult, error) {
	return placement.SeekCost(l, seq)
}

// Mobile hoarding (§6).
type (
	// Hoard is a budget-bounded set of files for disconnected use.
	Hoard = hoard.Hoard
	// HoardPolicy selects the hoard construction strategy.
	HoardPolicy = hoard.Policy
	// HoardResult is a disconnected miss-rate replay.
	HoardResult = hoard.Result
	// HoardRunResult is a session-completion replay.
	HoardRunResult = hoard.RunResult
)

// Hoard selection policies.
const (
	HoardFrequency    = hoard.PolicyFrequency
	HoardGroupClosure = hoard.PolicyGroupClosure
)

// BuildHoard selects up to budget files from a tracker's metadata.
func BuildHoard(t *Tracker, policy HoardPolicy, budget, groupSize int) (*Hoard, error) {
	return hoard.Build(t, policy, budget, groupSize)
}

// EvaluateHoard replays a future sequence, counting disconnected misses.
func EvaluateHoard(h *Hoard, seq []FileID) HoardResult { return hoard.Evaluate(h, seq) }

// EvaluateHoardRuns replays whole sessions; a session fails on any miss.
func EvaluateHoardRuns(h *Hoard, runs [][]FileID) HoardRunResult {
	return hoard.EvaluateRuns(h, runs)
}

// Multi-level hierarchies.
type (
	// HierarchyLevel describes one tier of a cache hierarchy.
	HierarchyLevel = multilevel.Level
	// HierarchyConfig describes a hierarchy run with a latency model.
	HierarchyConfig = multilevel.Config
	// HierarchyResult is the outcome of a hierarchy run.
	HierarchyResult = multilevel.Result
	// HierarchyScheme selects a level's cache policy.
	HierarchyScheme = multilevel.Scheme
)

// Hierarchy level schemes.
const (
	LevelLRU         = multilevel.SchemeLRU
	LevelLFU         = multilevel.SchemeLFU
	LevelAggregating = multilevel.SchemeAggregating
)

// SimulateHierarchy replays an open sequence through a cache hierarchy.
func SimulateHierarchy(ids []FileID, cfg HierarchyConfig) (HierarchyResult, error) {
	return multilevel.Run(ids, cfg)
}

// Workload visualization.
type (
	// FileProfileEntry is one file's predictability summary.
	FileProfileEntry = viz.FileEntry
	// EntropyWindow is one time slice of workload predictability.
	EntropyWindow = viz.Window
)

// ProfileFiles summarizes the predictability of the topN most accessed
// files.
func ProfileFiles(t *Trace, topN int) []FileProfileEntry { return viz.Profile(t, topN) }

// WriteFileReport renders a per-file profile as aligned text.
func WriteFileReport(w io.Writer, entries []FileProfileEntry) error {
	return viz.WriteReport(w, entries)
}

// WriteFileBarsSVG renders a per-file profile as an SVG bar chart.
func WriteFileBarsSVG(w io.Writer, entries []FileProfileEntry) error {
	return viz.WriteBarsSVG(w, entries)
}

// EntropyWindows computes successor entropy over consecutive windows.
func EntropyWindows(ids []FileID, windowLen int) ([]EntropyWindow, error) {
	return viz.Windows(ids, windowLen)
}

// WriteEntropyTimelineSVG renders per-window entropy as an SVG sparkline.
func WriteEntropyTimelineSVG(w io.Writer, windows []EntropyWindow) error {
	return viz.WriteTimelineSVG(w, windows)
}

// EvaluateSuccessorPolicyEvents replays open events, attributing each
// transition to its issuing client when perClient is true (the §2.2
// modeling choice); lists stay shared.
func EvaluateSuccessorPolicyEvents(events []Event, policy SuccessorPolicy, capacity int, perClient bool) (SuccessorEval, error) {
	return successor.EvaluateReplacementEvents(events, policy, capacity, perClient)
}

// Metadata persistence: the paper's non-volatile relationship state.

// SaveTracker persists a tracker's metadata snapshot.
func SaveTracker(t *Tracker, w io.Writer) error { return t.Save(w) }

// LoadTracker restores a tracker from a snapshot written by SaveTracker.
func LoadTracker(r io.Reader) (*Tracker, error) { return successor.LoadTracker(r) }

// WebWorkloadConfig parameterizes the web-proxy workload generator (the
// related-work domain of Hummingbird, §5).
type WebWorkloadConfig = workload.WebConfig

// GenerateWebWorkload synthesizes a web-proxy style trace: pages with
// embedded objects, hyperlink-following sessions, shared site assets.
func GenerateWebWorkload(cfg WebWorkloadConfig) (*Trace, error) {
	return workload.GenerateWeb(cfg)
}

// Trace tooling.

// DFSImportInfo reports what a DFSTrace import consumed.
type DFSImportInfo = trace.DFSImport

// ReadDFSTrace parses a DFSTrace-style ASCII dump (see the trace package
// documentation for the accepted layout and syscall mapping).
func ReadDFSTrace(r io.Reader) (*Trace, DFSImportInfo, error) { return trace.ReadDFSTrace(r) }

// MergeTraces combines traces into one time-ordered trace.
func MergeTraces(traces ...*Trace) (*Trace, error) { return trace.Merge(traces...) }

// SplitTraceByClient partitions a trace into per-client traces.
func SplitTraceByClient(t *Trace) map[uint16]*Trace { return trace.SplitByClient(t) }
