package aggcache_test

import (
	"fmt"

	"aggcache"
)

// The aggregating cache in miniature: teach it a deterministic chain and
// watch a single miss pull the whole working set in.
func ExampleNew() {
	c, err := aggcache.New(aggcache.Config{Capacity: 10, GroupSize: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Teach the chain 1 -> 2 -> 3.
	for i := 0; i < 3; i++ {
		c.Access(1)
		c.Access(2)
		c.Access(3)
	}
	// Evict everything with unrelated files.
	for id := aggcache.FileID(10); id < 20; id++ {
		c.Access(id)
	}
	// One miss on 1 brings 2 and 3 along.
	c.Access(1)
	fmt.Println(c.Contains(2), c.Contains(3))
	// Output: true true
}

// Successor metadata answers "what follows this file?" after observing
// the access sequence.
func ExampleNewTracker() {
	t, err := aggcache.NewTracker(aggcache.SuccessorLRU, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	t.ObserveAll([]aggcache.FileID{7, 8, 9, 7, 8, 9})
	next, ok := t.First(7)
	fmt.Println(next, ok)
	// Output: 8 true
}

// Successor entropy quantifies predictability: a deterministic cycle is
// perfectly predictable (0 bits).
func ExampleSuccessorEntropy() {
	seq := []aggcache.FileID{1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3}
	r, err := aggcache.SuccessorEntropy(seq, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.1f bits over %d files\n", r.Bits, r.Files)
	// Output: 0.0 bits over 3 files
}

// Group construction chains most-likely transitive successors.
func ExampleNewGroupBuilder() {
	t, err := aggcache.NewTracker(aggcache.SuccessorLRU, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	t.ObserveAll([]aggcache.FileID{1, 2, 3, 4, 1, 2, 3, 4})
	b, err := aggcache.NewGroupBuilder(t, 3, aggcache.StrategyChain)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(b.Build(1))
	// Output: [1 2 3]
}

// FilterLRU produces the miss stream an NFS-like server would see behind
// a client cache.
func ExampleFilterLRU() {
	seq := []aggcache.FileID{1, 2, 1, 2, 3, 1}
	misses, err := aggcache.FilterLRU(seq, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(misses)
	// Output: [1 2 3 1]
}
