// Command experiments regenerates the paper's evaluation figures as
// tables. Every figure in §4 (and the §6 headline claims) has an
// experiment ID; see -list.
//
// Tables are bit-identical at every -parallel setting: experiments and
// sweep cells are independent simulations that land in pre-sized slots,
// and each simulation stays single-threaded internally.
//
// Examples:
//
//	experiments -list
//	experiments -fig 4c
//	experiments -fig all -opens 120000 > experiments.txt
//	experiments -fig 3a -csv > fig3a.csv
//	experiments -fig all -parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -fig all -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"

	"aggcache/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "experiment ID (see -list) or 'all'")
		opens    = fs.Int("opens", 120000, "opens per generated workload")
		seed     = fs.Int64("seed", 1, "workload seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		parallel = fs.Int("parallel", 0, "worker bound for experiments and sweep cells (0 = GOMAXPROCS, 1 = sequential)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write an allocation profile to this file at exit")
		pprofSrv = fs.String("pprof", "", "serve net/http/pprof on this address while running")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-7s %s\n", id, title)
		}
		return nil
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Printf("experiments: write memprofile: %v", err)
			}
			f.Close()
		}()
	}
	if *pprofSrv != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			log.Printf("experiments: pprof on http://%s/debug/pprof/", *pprofSrv)
			log.Println(http.ListenAndServe(*pprofSrv, nil))
		}()
	}

	cfg := experiments.Config{Opens: *opens, Seed: *seed, Parallelism: *parallel}
	var tables []*experiments.Table
	if *fig == "all" {
		ts, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = ts
	} else {
		t, err := experiments.Run(*fig, cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
		}
	}
	return nil
}
