// Command experiments regenerates the paper's evaluation figures as
// tables. Every figure in §4 (and the §6 headline claims) has an
// experiment ID; see -list.
//
// Examples:
//
//	experiments -list
//	experiments -fig 4c
//	experiments -fig all -opens 120000 > experiments.txt
//	experiments -fig 3a -csv > fig3a.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"aggcache/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "all", "experiment ID (see -list) or 'all'")
		opens = fs.Int("opens", 120000, "opens per generated workload")
		seed  = fs.Int64("seed", 1, "workload seed")
		csv   = fs.Bool("csv", false, "emit CSV instead of aligned text")
		list  = fs.Bool("list", false, "list experiment IDs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-7s %s\n", id, title)
		}
		return nil
	}

	cfg := experiments.Config{Opens: *opens, Seed: *seed}
	var tables []*experiments.Table
	if *fig == "all" {
		ts, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = ts
	} else {
		t, err := experiments.Run(*fig, cfg)
		if err != nil {
			return err
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.Format())
		}
	}
	return nil
}
