package main

import (
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	os.Stdout = old
	_ = w.Close()
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out[:n])
}

func TestList(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-list"}) })
	for _, id := range []string{"3a", "4c", "7", "claims", "xprefetch"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %q:\n%s", id, out)
		}
	}
}

func TestSingleFigureText(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-fig", "5b", "-opens", "4000"})
	})
	if !strings.Contains(out, "oracle") || !strings.Contains(out, "lru") {
		t.Errorf("figure table missing columns:\n%s", out)
	}
}

func TestSingleFigureCSV(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-fig", "5b", "-opens", "4000", "-csv"})
	})
	if !strings.HasPrefix(out, "successors,oracle,lru,lfu") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "nope", "-opens", "1000"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
