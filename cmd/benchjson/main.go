// Command benchjson converts `go test -bench` output into machine-readable
// JSON, so benchmark baselines can be committed, diffed, and gated in CI
// without scraping aligned text.
//
// It reads benchmark output on stdin and writes a JSON document on stdout:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_BASELINE.json
//
// Each benchmark line ("BenchmarkX-8  1000  123 ns/op  4 B/op  ...")
// becomes one entry carrying the iteration count and every reported
// metric, including custom b.ReportMetric units. Context lines (goos,
// goarch, pkg, cpu) are attached to the benchmarks that follow them.
// Non-benchmark lines are ignored, so raw `go test` output pipes straight
// in. The tool fails if no benchmark lines are found, which catches a
// misquoted -bench regexp in a Makefile.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aggcache/internal/benchparse"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	indent := fl.Bool("indent", true, "indent the JSON output")
	if err := fl.Parse(args); err != nil {
		return err
	}

	set, err := benchparse.Parse(bufio.NewReader(os.Stdin))
	if err != nil {
		return err
	}
	if len(set.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (is the -bench regexp right?)")
	}

	enc := json.NewEncoder(os.Stdout)
	if *indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(set)
}
