// Command cachesim runs trace-driven cache simulations: the aggregating
// client cache of Figure 3 or the two-level filter/server scenario of
// Figure 4.
//
// The input trace comes either from a file written by tracegen (-trace,
// auto-detecting text vs binary) or is generated on the fly (-profile).
//
// Examples:
//
//	cachesim -profile server -mode client -capacity 300 -group 5
//	cachesim -trace server.trc -mode server -filter 300 -server-capacity 300 -scheme agg
//	cachesim -profile workstation -mode hierarchy -capacity 100 -server-capacity 300 -scheme agg
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aggcache/internal/multilevel"
	"aggcache/internal/simulate"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	var (
		traceFile = fs.String("trace", "", "trace file (text or binary); empty generates -profile")
		profile   = fs.String("profile", "server", "generated workload when -trace is empty")
		opens     = fs.Int("opens", 120000, "opens to generate when -trace is empty")
		seed      = fs.Int64("seed", 1, "generator seed")
		mode      = fs.String("mode", "client", "simulation mode: client|server|hierarchy")

		capacity = fs.Int("capacity", 300, "client mode: cache capacity (files)")
		group    = fs.Int("group", 5, "group size g (1 = plain LRU)")

		filter    = fs.Int("filter", 300, "server mode: intervening client LRU capacity")
		serverCap = fs.Int("server-capacity", 300, "server mode: server cache capacity")
		scheme    = fs.String("scheme", "agg", "server mode: server cache scheme: lru|lfu|agg")
		piggyback = fs.Bool("piggyback", false, "server mode (agg): learn from the full piggybacked stream")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ids, err := loadOpenIDs(*traceFile, *profile, *seed, *opens)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d opens\n", len(ids))

	switch *mode {
	case "client":
		r, err := simulate.RunClient(ids, *capacity, *group)
		if err != nil {
			return err
		}
		fmt.Printf("client cache: capacity=%d g=%d\n", r.Capacity, r.GroupSize)
		fmt.Printf("demand fetches:   %d\n", r.Fetches)
		fmt.Printf("hit rate:         %.2f%%\n", 100*r.HitRate)
		fmt.Printf("files fetched:    %d\n", r.Stats.FilesFetched)
		fmt.Printf("prefetch hits:    %d\n", r.Stats.PrefetchHits)
		fmt.Printf("prefetch accuracy %.2f%%\n", 100*r.Stats.PrefetchAccuracy())
		return nil
	case "server":
		r, err := simulate.RunServer(ids, simulate.ServerConfig{
			FilterCapacity: *filter,
			ServerCapacity: *serverCap,
			Scheme:         simulate.Scheme(*scheme),
			GroupSize:      *group,
			Piggyback:      *piggyback,
		})
		if err != nil {
			return err
		}
		fmt.Printf("server cache: scheme=%s filter=%d capacity=%d\n", *scheme, *filter, *serverCap)
		fmt.Printf("client misses (server requests): %d\n", r.ClientMisses)
		fmt.Printf("server hits:                     %d\n", r.ServerHits)
		fmt.Printf("server hit rate:                 %.2f%%\n", 100*r.HitRate)
		return nil
	case "hierarchy":
		res, err := multilevel.Run(ids, multilevel.Config{
			Levels: []multilevel.Level{
				{Name: "client", Capacity: *capacity, Scheme: multilevel.SchemeLRU, HitLatency: 100 * time.Microsecond},
				{Name: "server", Capacity: *serverCap, Scheme: multilevel.Scheme(*scheme), GroupSize: *group, HitLatency: 2 * time.Millisecond},
			},
			BackendLatency: 12 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		fmt.Printf("hierarchy: client LRU %d @0.1ms -> server %s %d @2ms -> backend @12ms\n",
			*capacity, *scheme, *serverCap)
		for _, l := range res.Levels {
			fmt.Printf("  %-8s requests=%8d hits=%8d hit rate=%6.2f%%\n",
				l.Name, l.Requests, l.Hits, 100*l.HitRate())
		}
		fmt.Printf("backend fetches:   %d\n", res.BackendFetches)
		fmt.Printf("mean open latency: %v\n", res.MeanLatency())
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want client, server or hierarchy)", *mode)
	}
}

// loadOpenIDs reads a trace file (sniffing the format) or generates a
// calibrated workload.
func loadOpenIDs(path, profile string, seed int64, opens int) ([]trace.FileID, error) {
	if path == "" {
		tr, err := workload.Standard(workload.Profile(profile), seed, opens)
		if err != nil {
			return nil, err
		}
		return tr.OpenIDs(), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == trace.ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return nil, serr
		}
		tr, err = trace.ReadText(f)
	}
	if err != nil {
		return nil, err
	}
	return tr.OpenIDs(), nil
}
