package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	os.Stdout = old
	_ = w.Close()
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out[:n])
}

func writeTestTrace(t *testing.T, format string) string {
	t.Helper()
	tr, err := workload.Standard(workload.ProfileServer, 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t."+format)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if format == "txt" {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClientModeFromGeneratedWorkload(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "2000", "-mode", "client", "-capacity", "100", "-group", "5"})
	})
	for _, want := range []string{"demand fetches", "hit rate", "prefetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestClientModeFromTraceFiles(t *testing.T) {
	for _, format := range []string{"txt", "trc"} {
		path := writeTestTrace(t, format)
		out := captureStdout(t, func() error {
			return run([]string{"-trace", path, "-mode", "client", "-capacity", "50"})
		})
		if !strings.Contains(out, "trace: 2000 opens") {
			t.Errorf("%s: output missing trace size:\n%s", format, out)
		}
	}
}

func TestServerMode(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "2000", "-mode", "server",
			"-filter", "100", "-server-capacity", "200", "-scheme", "agg", "-piggyback"})
	})
	if !strings.Contains(out, "server hit rate") {
		t.Errorf("output missing hit rate:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-mode", "bogus"},
		{"-trace", "/no/such/file"},
		{"-profile", "bogus"},
		{"-mode", "client", "-capacity", "0", "-opens", "100"},
		{"-mode", "server", "-scheme", "bogus", "-opens", "100"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestHierarchyMode(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "workstation", "-opens", "3000", "-mode", "hierarchy",
			"-capacity", "100", "-server-capacity", "200", "-scheme", "agg"})
	})
	for _, want := range []string{"hierarchy:", "client", "server", "mean open latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
