package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"aggcache/internal/benchparse"
	"aggcache/internal/obs"
)

func TestParseFlagsRejectsBadCombos(t *testing.T) {
	cases := [][]string{
		{"-conns", "0"},
		{"-opens", "-5"},
		{"-cluster", "-1"},
		{"-cluster", "3", "-addr", "127.0.0.1:7070"},
		{"-cluster", "3", "-serial"},
		{"-churn"},
		{"-cluster", "1", "-churn"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) succeeded", args)
		}
	}
}

func TestBenchNames(t *testing.T) {
	for _, tc := range []struct {
		cfg  config
		want string
	}{
		{config{}, "AggbenchOpenPipelined"},
		{config{serial: true}, "AggbenchOpenSerial"},
		{config{cluster: 3}, "AggbenchOpenCluster3"},
		{config{cluster: 1, serial: false}, "AggbenchOpenCluster1"},
		{config{metrics: true}, "AggbenchOpenPipelinedObs"},
		{config{cluster: 3, metrics: true}, "AggbenchOpenCluster3Obs"},
		{config{serial: true, metrics: true}, "AggbenchOpenSerialObs"},
		{config{cluster: 2, churn: true}, "AggbenchOpenClusterChurn2"},
		{config{cluster: 3, churn: true, metrics: true}, "AggbenchOpenClusterChurn3Obs"},
	} {
		if got := (&result{cfg: tc.cfg}).benchName(); got != tc.want {
			t.Errorf("benchName(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}

// TestRunLoadCluster drives a small but complete clustered load run:
// in-process ring, replicated stores, every open correct (errors gate),
// and the routing counters account for actual cross-node traffic.
func TestRunLoadCluster(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-cluster", "2", "-conns", "4", "-workers", "2",
		"-opens", "300", "-files", "128",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.errors != 0 {
		t.Errorf("clustered load run had %d errors", res.errors)
	}
	if res.opens != 4*300 {
		t.Errorf("opens = %d, want %d", res.opens, 4*300)
	}
	if res.clus.nodes != 2 {
		t.Errorf("cluster nodes = %d, want 2", res.clus.nodes)
	}
	if res.clus.forwarded+res.clus.mirrorHits == 0 {
		t.Error("no cross-node opens in a 2-node run")
	}
	if res.clus.local == 0 {
		t.Error("no locally owned opens in a 2-node run")
	}
	if res.clus.degraded != 0 {
		t.Errorf("healthy cluster degraded %d opens", res.clus.degraded)
	}
}

// TestRunLoadChurn runs the full leave/drain/rejoin cycle under load:
// the departing node must hand its group state to the survivors without
// a single client-visible error, and every group it sent must have been
// installed somewhere in the ring.
func TestRunLoadChurn(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-cluster", "2", "-conns", "4", "-workers", "2",
		"-opens", "400", "-files", "128", "-churn",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.errors != 0 {
		t.Errorf("churn run had %d client-visible errors, want 0", res.errors)
	}
	if res.opens != 4*400 {
		t.Errorf("opens = %d, want %d", res.opens, 4*400)
	}
	if !res.clus.churned {
		t.Fatal("churn summary not recorded")
	}
	if res.clus.drainSent == 0 {
		t.Error("drain streamed no groups; the departing node handed nothing off")
	}
	if res.clus.handoffs != res.clus.drainSent {
		t.Errorf("handoffs installed = %d, drain sent = %d; every sent group must land",
			res.clus.handoffs, res.clus.drainSent)
	}
	if res.clus.drainFail != 0 {
		t.Errorf("drain failed %d groups against healthy survivors", res.clus.drainFail)
	}
}

// TestClusterJSONMetrics: the -cluster -json path lands the routing
// counters in the benchparse schema the baseline gate diffs.
func TestClusterJSONMetrics(t *testing.T) {
	res := &result{
		cfg:  config{cluster: 3, conns: 6, workers: 2},
		hist: obs.NewHistogram(),
		clus: clusterSummary{nodes: 3, forwarded: 10, mirrorHits: 5},
	}
	tmp, err := os.CreateTemp(t.TempDir(), "bench*.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.writeJSON(tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var set benchparse.Set
	if err := json.NewDecoder(tmp).Decode(&set); err != nil {
		t.Fatal(err)
	}
	b := set.Benchmarks[0]
	if b.Name != "AggbenchOpenCluster3" {
		t.Errorf("bench name = %q", b.Name)
	}
	if b.Metrics["cluster_nodes"] != 3 || b.Metrics["forwarded"] != 10 || b.Metrics["mirror_hits"] != 5 {
		t.Errorf("cluster metrics missing: %v", b.Metrics)
	}
}

// TestRunLoadMetrics drives a small instrumented run end to end and
// checks the client-side registry lands in the benchparse JSON: the call
// latency histogram must account for every open, and the bare summary
// counters must agree with their obs twins.
func TestRunLoadMetrics(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-metrics", "-conns", "2", "-workers", "2",
		"-opens", "200", "-files", "64", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.reg == nil {
		t.Fatal("-metrics run has no registry")
	}
	om := res.obsMetrics()
	if got := om["fsnet_client_call_latency_ns_count"]; got < float64(res.client.Fetches) {
		t.Errorf("call latency count %v < %d wire fetches", got, res.client.Fetches)
	}
	if om["fsnet_client_inflight"] != 0 {
		t.Errorf("in-flight gauge %v nonzero at quiescence", om["fsnet_client_inflight"])
	}

	tmp, err := os.CreateTemp(t.TempDir(), "bench*.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.writeJSON(tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	var set benchparse.Set
	if err := json.NewDecoder(tmp).Decode(&set); err != nil {
		t.Fatal(err)
	}
	b := set.Benchmarks[0]
	if b.Name != "AggbenchOpenPipelinedObs" {
		t.Errorf("bench name = %q, want AggbenchOpenPipelinedObs", b.Name)
	}
	for _, want := range []string{
		"fsnet_client_call_latency_ns_p95",
		"fsnet_client_reconnects_total",
		"fsnet_client_degraded_hits_total",
	} {
		if _, ok := b.Metrics[want]; !ok {
			t.Errorf("JSON metrics missing %s: %v", want, b.Metrics)
		}
	}
}

func TestGobenchLineShape(t *testing.T) {
	res := &result{cfg: config{cluster: 3, conns: 6, workers: 2}, opens: 100, elapsed: 1e6, hist: obs.NewHistogram()}
	var buf bytes.Buffer
	f, err := os.CreateTemp(t.TempDir(), "gobench")
	if err != nil {
		t.Fatal(err)
	}
	res.writeGobench(f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := buf.ReadFrom(f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkAggbenchOpenCluster3-12") {
		t.Errorf("gobench line = %q", out)
	}
}
