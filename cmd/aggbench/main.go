// Command aggbench is the fsnet load generator: it replays a
// deterministic multi-client workload trace against a server over N
// concurrent connections with M pipelining goroutines per connection, and
// reports open throughput plus a latency distribution (p50/p95/p99 from a
// fixed power-of-two-bucket histogram, so the hot path never allocates or
// sorts).
//
// By default aggbench spins up an in-process server on a loopback socket,
// so one command measures the whole stack; point -addr at a running
// aggserve to load an external server instead. -serial caps the clients
// at protocol version 1, turning every connection into the lock-step
// request/reply baseline — the pipelined/serial ratio is the headline
// speedup of the concurrent serving path (DESIGN.md §10). -proto pins any
// version explicitly (2 pins the assembled-group pipelined protocol, so
// v3's streamed-group delivery diffs against it directly); runs over
// version 3 additionally report time-to-first-byte percentiles, the
// latency until the demanded member's first chunk lands.
//
// -metrics wires an internal/obs registry into the clients and reports
// its series alongside the usual summary; the benchmark name gains an
// "Obs" suffix so baselines track instrumented and bare runs separately
// (their difference is the client-side instrumentation overhead).
//
// -cluster N spins up an in-process consistent-hash cluster of N nodes
// (internal/cluster) with replicated stores and spreads the connections
// across them round-robin, so the same workload measures the sharded
// peer tier — forwarded group hops, mirror absorption, and all — against
// the single-server baseline (-cluster 1 runs one node through the same
// code path for an apples-to-apples comparison).
//
// -churn (with -cluster >= 2) exercises elastic membership under load:
// at 40% progress the last node drains — its goodbye gossip removes it
// from the survivors' views, no per-node operator action — and streams
// every owned group's learned state to the new owners; at 70% the full
// membership is reinstalled on ONE node and gossip (internal/gossip)
// spreads it to the rest. The workload never pauses; the run fails if
// churn surfaces client-visible errors or if any node fails to converge
// to the final epoch, and the summary gains drain/handoff/hint counters
// plus the gossip convergence verdict.
//
// -trace-collect turns aggbench into the fleet trace scraper instead of
// a load generator: given the stats addresses of running aggserve nodes,
// it unions the trace IDs from each node's /traces, joins every node's
// /trace/<id> spans on trace ID, and emits the stitched fleet-wide
// traces as JSON (widest first). -trace-min-nodes fails the run unless
// some trace spans that many nodes — the smoke test's cross-node
// propagation assertion is just this exit code.
//
// Examples:
//
//	aggbench -conns 8 -workers 4
//	aggbench -conns 8 -workers 4 -serial
//	aggbench -addr 127.0.0.1:7070 -conns 16 -opens 50000
//	aggbench -conns 8 -json > pipelined.json
//	aggbench -cluster 3 -conns 9 -workers 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/benchparse"
	"aggcache/internal/cluster"
	"aggcache/internal/fsnet"
	"aggcache/internal/gossip"
	"aggcache/internal/obs"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// delayConn models propagation delay: every byte written becomes visible
// to the peer d later, and every byte the peer sent becomes readable d
// after it hit the wire — without charging anything per syscall, exactly
// like a long pipe and unlike a per-operation sleep (which would bill a
// pipelined batch once per frame instead of once per flight). Throughput
// is unconstrained; only latency is injected, so the measurement isolates
// what request pipelining is supposed to hide.
//
// Release timing is owned by a single process-wide wheel goroutine (see
// delayWheel) rather than per-connection sleeps: time.Sleep rounds up
// to the kernel timer tick (~1.1ms on this hardware), which both
// inflates the injected delay by up to a tick and synchronizes every
// in-flight flight onto the same tick — the wakeup burst then
// serializes on the single CPU and bills queueing delay to the protocol
// under test.
type delayConn struct {
	net.Conn
	dOut time.Duration   // propagation charged on the write path
	dIn  time.Duration   // propagation charged on the read path
	out  chan delayChunk // wheel -> write pump, already due
	in   chan delayChunk // wheel -> Read, already due

	mu         sync.Mutex
	pending    []byte  // matured but unconsumed read bytes
	pendingBox *[]byte // pooled backing array behind pending
	readErr    error
	werr       atomic.Value // first write-pump error
}

type delayChunk struct {
	data []byte
	box  *[]byte // pooled backing array, recycled once data is consumed
	err  error
}

// delayBufPool recycles chunk backing arrays. The pumps move tens of
// thousands of chunks per second; allocating each one fresh made the
// harness itself the biggest source of GC work in the profile, which
// was billed to the client under measurement.
var delayBufPool = sync.Pool{New: func() any {
	b := make([]byte, 128<<10)
	return &b
}}

func getDelayBuf(n int) ([]byte, *[]byte) {
	bp := delayBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n], bp
}

// delayRelease is one scheduled hand-off: at due (nanoseconds on the
// wheel's monotonic clock), chunk c is forwarded to ch (a delayConn's
// out or in channel). seq breaks due ties so same-connection chunks
// keep FIFO order through the heap.
type delayRelease struct {
	due int64
	seq uint64
	ch  chan delayChunk
	c   delayChunk
}

// delayWheel releases every delayConn's chunks at their due times from
// one goroutine. A min-heap orders releases; the loop sleeps through
// the bulk of the wait and yields through the final kernel tick
// (time.Sleep rounds up to the ~1.1ms tick on this hardware, which
// would both inflate the injected delay by up to half an RTT and
// synchronize every in-flight reply onto the same tick — the wakeup
// burst then serializes on the CPU and bills queueing delay to the
// protocol under test). Centralizing the wait means exactly one
// spinner exists no matter how many connections carry delay, and the
// spin reads only the clock and an atomic — the heap lock is taken
// just to push and pop.
type delayWheel struct {
	epoch time.Time
	head  atomic.Int64 // earliest due, or noDue when the heap is empty
	mu    sync.Mutex
	h     []delayRelease
	seq   uint64
	wake  chan struct{}
}

const noDue = int64(1) << 62

var (
	wheelOnce sync.Once
	wheel     *delayWheel
)

func sharedWheel() *delayWheel {
	wheelOnce.Do(func() {
		wheel = &delayWheel{epoch: time.Now(), wake: make(chan struct{}, 1)}
		wheel.head.Store(noDue)
		go wheel.loop()
	})
	return wheel
}

// now is the wheel's monotonic clock: nanoseconds since the wheel
// started.
func (w *delayWheel) now() int64 {
	return int64(time.Since(w.epoch))
}

func (w *delayWheel) add(delay time.Duration, ch chan delayChunk, c delayChunk) {
	due := w.now() + int64(delay)
	w.mu.Lock()
	w.seq++
	w.h = append(w.h, delayRelease{due: due, seq: w.seq, ch: ch, c: c})
	w.up(len(w.h) - 1)
	first := w.h[0].seq == w.seq
	if first {
		w.head.Store(due)
	}
	w.mu.Unlock()
	if first {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

func (w *delayWheel) less(i, j int) bool {
	if w.h[i].due != w.h[j].due {
		return w.h[i].due < w.h[j].due
	}
	return w.h[i].seq < w.h[j].seq
}

func (w *delayWheel) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !w.less(i, p) {
			break
		}
		w.h[i], w.h[p] = w.h[p], w.h[i]
		i = p
	}
}

func (w *delayWheel) down(i int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(w.h) && w.less(l, m) {
			m = l
		}
		if r < len(w.h) && w.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		w.h[i], w.h[m] = w.h[m], w.h[i]
		i = m
	}
}

func (w *delayWheel) loop() {
	// Empirical kernel timer granularity: time.Sleep(d) completes at
	// roughly d rounded up to the next ~1.1ms tick. Sleep only the
	// portion guaranteed not to overshoot; yield through the rest. One
	// yield per clock read keeps releases prompt even when the run
	// queue is deep — every Gosched may run another goroutine's full
	// slice, so batching yields would stall releases.
	const tick = 1150 * time.Microsecond
	var scratch []delayRelease
	for {
		head := w.head.Load()
		if head == noDue {
			<-w.wake
			continue
		}
		d := head - w.now()
		if d > int64(tick) {
			t := time.NewTimer(time.Duration(d) - tick)
			select {
			case <-w.wake:
				t.Stop()
			case <-t.C:
			}
			continue
		}
		if d > 0 {
			runtime.Gosched()
			continue
		}
		now := w.now()
		w.mu.Lock()
		scratch = scratch[:0]
		for len(w.h) > 0 && w.h[0].due <= now {
			scratch = append(scratch, w.h[0])
			last := len(w.h) - 1
			w.h[0] = w.h[last]
			w.h[last] = delayRelease{}
			w.h = w.h[:last]
			w.down(0)
		}
		if len(w.h) > 0 {
			w.head.Store(w.h[0].due)
		} else {
			w.head.Store(noDue)
		}
		w.mu.Unlock()
		for i := range scratch {
			scratch[i].ch <- scratch[i].c
			scratch[i] = delayRelease{}
		}
	}
}

func newDelayConn(conn net.Conn, dOut, dIn time.Duration) *delayConn {
	dc := &delayConn{
		Conn: conn,
		dOut: dOut,
		dIn:  dIn,
		out:  make(chan delayChunk, 1024),
		in:   make(chan delayChunk, 1024),
	}
	if dOut > 0 {
		go dc.writePump()
	}
	go dc.readPump()
	return dc
}

func (dc *delayConn) writePump() {
	for c := range dc.out {
		var err error
		if dc.werr.Load() == nil {
			_, err = dc.Conn.Write(c.data)
		}
		if c.box != nil {
			delayBufPool.Put(c.box)
		}
		if err != nil {
			// Keep draining so the wheel never blocks on a dead
			// connection's channel; Write reports the error.
			dc.werr.Store(err)
		}
	}
}

func (dc *delayConn) readPump() {
	w := sharedWheel()
	for {
		buf, box := getDelayBuf(128 << 10)
		n, err := dc.Conn.Read(buf)
		c := delayChunk{err: err}
		if n > 0 {
			c.data = buf[:n]
			c.box = box
		} else {
			delayBufPool.Put(box)
		}
		w.add(dc.dIn, dc.in, c)
		if err != nil {
			return
		}
	}
}

func (dc *delayConn) Write(p []byte) (int, error) {
	if dc.dOut <= 0 {
		return dc.Conn.Write(p)
	}
	if err, ok := dc.werr.Load().(error); ok {
		return 0, err
	}
	cp, box := getDelayBuf(len(p))
	copy(cp, p)
	sharedWheel().add(dc.dOut, dc.out, delayChunk{data: cp, box: box})
	return len(p), nil
}

func (dc *delayConn) Read(p []byte) (int, error) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	for len(dc.pending) == 0 {
		if dc.readErr != nil {
			return 0, dc.readErr
		}
		c := <-dc.in
		dc.pending = c.data
		dc.pendingBox = c.box
		dc.readErr = c.err
	}
	n := copy(p, dc.pending)
	dc.pending = dc.pending[n:]
	if len(dc.pending) == 0 && dc.pendingBox != nil {
		delayBufPool.Put(dc.pendingBox)
		dc.pendingBox = nil
	}
	return n, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aggbench:", err)
		os.Exit(1)
	}
}

type config struct {
	addr        string
	files       int
	fileSize    int
	group       int
	clientCache int
	serverCache int
	conns       int
	workers     int
	opens       int
	seed        int64
	rtt         time.Duration
	proto       int
	serial      bool
	cluster     int
	churn       bool
	metrics     bool
	jsonOut     bool
	gobench     bool
	cpuProf     string
	memProf     string

	traceCollect  string
	traceMinNodes int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("aggbench", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "", "server address; empty runs an in-process loopback server")
	fs.IntVar(&cfg.files, "files", 2048, "synthetic store size in files (in-process server only)")
	fs.IntVar(&cfg.fileSize, "filesize", 1024, "synthetic file size in bytes")
	fs.IntVar(&cfg.group, "group", 5, "server group size g")
	fs.IntVar(&cfg.clientCache, "cache", 64, "client cache capacity in files")
	fs.IntVar(&cfg.serverCache, "servercache", 256, "server cache capacity in files (in-process server only)")
	fs.IntVar(&cfg.conns, "conns", 8, "concurrent client connections")
	fs.IntVar(&cfg.workers, "workers", 4, "pipelining goroutines per connection")
	fs.IntVar(&cfg.opens, "opens", 20000, "opens per connection")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	fs.DurationVar(&cfg.rtt, "rtt", 0, "simulated network round-trip time (half is injected before each client read and write syscall); zero measures raw loopback")
	fs.IntVar(&cfg.proto, "proto", 0, "cap clients at this protocol version: 1 lock-step, 2 pipelined, 3 streamed groups; 0 negotiates the latest")
	fs.BoolVar(&cfg.serial, "serial", false, "cap clients at protocol version 1 (lock-step baseline; shorthand for -proto 1)")
	fs.IntVar(&cfg.cluster, "cluster", 0, "run an in-process consistent-hash cluster of N nodes with replicated stores, connections spread round-robin (0 = plain single server)")
	fs.BoolVar(&cfg.churn, "churn", false, "mid-run membership churn: at 40%% progress the last node drains out of the ring (its goodbye gossip updates the survivors), at 70%% the rejoin view is installed on one node and gossip spreads it; the run fails unless every node converges (requires -cluster >= 2)")
	fs.BoolVar(&cfg.metrics, "metrics", false, "wire an obs registry into the clients and report its series; the benchmark name gains an Obs suffix so instrumented and bare runs diff separately")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit machine-readable JSON (benchjson-compatible schema)")
	fs.BoolVar(&cfg.gobench, "gobench", false, "emit one `go test -bench`-style result line (pipes into cmd/benchjson)")
	fs.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile of the load run to this file")
	fs.StringVar(&cfg.memProf, "memprofile", "", "write an allocation profile of the load run to this file")
	fs.StringVar(&cfg.traceCollect, "trace-collect", "", "comma-separated stats addresses: skip load generation, scrape each node's /traces and /trace/<id>, and emit fleet-stitched traces as JSON")
	fs.IntVar(&cfg.traceMinNodes, "trace-min-nodes", 1, "with -trace-collect, fail unless some stitched trace spans at least this many nodes")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.traceCollect != "" {
		// Collection is a scrape, not a load run; the load-shape flags
		// do not apply and are ignored.
		return cfg, nil
	}
	if cfg.conns < 1 || cfg.workers < 1 || cfg.opens < 1 {
		return cfg, fmt.Errorf("conns, workers, and opens must all be positive")
	}
	if cfg.proto < 0 || cfg.proto > 3 {
		return cfg, fmt.Errorf("-proto must be 0..3, got %d", cfg.proto)
	}
	if cfg.serial && cfg.proto > 1 {
		return cfg, fmt.Errorf("-serial means protocol 1; it conflicts with -proto %d", cfg.proto)
	}
	if cfg.serial {
		cfg.proto = 1
	}
	if cfg.cluster < 0 {
		return cfg, fmt.Errorf("-cluster must be >= 0, got %d", cfg.cluster)
	}
	if cfg.cluster > 0 && cfg.addr != "" {
		return cfg, fmt.Errorf("-cluster runs in-process nodes; it cannot target an external -addr")
	}
	if cfg.cluster > 0 && cfg.proto == 1 {
		return cfg, fmt.Errorf("-cluster requires the pipelined protocol; drop -serial/-proto 1")
	}
	if cfg.churn && cfg.cluster < 2 {
		return cfg, fmt.Errorf("-churn needs a ring to leave and rejoin; use -cluster 2 or more")
	}
	return cfg, nil
}

// result is one complete load-generation run. Latency lands in an
// obs.Histogram — the same power-of-two-bucket histogram aggbench used to
// carry privately, now shared through internal/obs so /metrics and the
// load generator report percentiles from identical math.
type result struct {
	cfg       config
	opens     uint64
	errors    uint64
	elapsed   time.Duration
	hist      *obs.Histogram
	reg       *obs.Registry         // client-side registry; nil unless -metrics
	client    fsnet.ClientStats     // summed over all connections
	ttfb      obs.HistogramSnapshot // time-to-first-byte, merged over all connections
	hitRate   float64
	protoName string
	clus      clusterSummary // zero when not clustered
}

// pct converts the histogram's nanosecond percentile back to a Duration.
func (r *result) pct(p float64) time.Duration {
	return time.Duration(r.hist.Percentile(p))
}

// clusterSummary aggregates node routing counters across the ring.
type clusterSummary struct {
	nodes      int
	local      uint64
	forwarded  uint64
	mirrorHits uint64
	coalesced  uint64
	degraded   uint64

	// Churn-run extras: what the departing node handed off and what the
	// survivors installed (drainSent counts groups streamed out by the
	// drained node; handoffs counts groups accepted ring-wide).
	churned    bool
	drainSent  uint64
	drainFail  uint64
	handoffs   uint64
	hintQueued uint64
	hintReplay uint64

	// Gossip convergence verdict for the churn script: whether both
	// transitions completed, and whether every node reached the leave
	// and rejoin epochs without the conductor updating it.
	scriptDone      bool
	leaveConverged  bool
	rejoinConverged bool
}

func (r *result) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.opens) / r.elapsed.Seconds()
}

// sequences deals the workload's per-client open streams out to conns
// connections, cycling when the trace has fewer clients than connections,
// and trims or tiles each to exactly opens entries.
func sequences(cfg config) ([][]string, error) {
	tr, err := workload.Generate(workload.Config{
		Seed:            cfg.seed,
		Opens:           cfg.conns * cfg.opens,
		Clients:         cfg.conns,
		InterleaveChunk: 4,
		Tasks:           64,
		TaskLen:         12,
		SharedFiles:     8,
		ZipfS:           1.2,
		Noise:           0.05,
		NoiseUniverse:   cfg.files,
	})
	if err != nil {
		return nil, err
	}
	perClient := make(map[uint16][]string)
	for _, ev := range tr.Events {
		if ev.Op != trace.OpOpen {
			continue
		}
		perClient[ev.Client] = append(perClient[ev.Client], tr.Paths.Path(ev.File))
	}
	streams := make([][]string, 0, len(perClient))
	for _, seq := range perClient {
		streams = append(streams, seq)
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload produced no opens")
	}
	out := make([][]string, cfg.conns)
	for i := range out {
		src := streams[i%len(streams)]
		seq := make([]string, cfg.opens)
		for n := range seq {
			seq[n] = src[n%len(src)]
		}
		out[i] = seq
	}
	return out, nil
}

// seedStore puts every path the sequences demand (plus synthetic filler up
// to cfg.files) into the store, with deterministic contents.
func seedStore(cfg config, seqs [][]string) (*fsnet.Store, error) {
	store := fsnet.NewStore()
	put := func(path string) error {
		if store.Contains(path) {
			return nil
		}
		data := make([]byte, cfg.fileSize)
		for i := range data {
			data[i] = byte(len(path) + i)
		}
		return store.Put(path, data)
	}
	for _, seq := range seqs {
		for _, p := range seq {
			if err := put(p); err != nil {
				return nil, err
			}
		}
	}
	for i := store.Len(); i < cfg.files; i++ {
		if err := put(fmt.Sprintf("/bench/fill%06d", i)); err != nil {
			return nil, err
		}
	}
	return store, nil
}

// provision writes every path the sequences demand to an external
// server, with the same deterministic contents seedStore uses. Runs on a
// plain (undelayed) connection; it is setup, not measurement.
func provision(cfg config, seqs [][]string) error {
	c, err := fsnet.Dial(cfg.addr, fsnet.ClientConfig{CacheCapacity: 1, MaxRetries: 3})
	if err != nil {
		return err
	}
	defer c.Close()
	written := make(map[string]bool)
	for _, seq := range seqs {
		for _, p := range seq {
			if written[p] {
				continue
			}
			written[p] = true
			data := make([]byte, cfg.fileSize)
			for i := range data {
				data[i] = byte(len(p) + i)
			}
			if err := c.Write(p, data); err != nil {
				return fmt.Errorf("provision %s: %w", p, err)
			}
		}
	}
	return nil
}

func runLoad(cfg config) (*result, error) {
	seqs, err := sequences(cfg)
	if err != nil {
		return nil, err
	}

	targets := []string{cfg.addr}
	var shutdowns []func() error
	var nodes []*cluster.Node
	var servers []*fsnet.Server
	switch {
	case cfg.addr == "" && cfg.cluster > 0:
		// In-process cluster: every node gets a full replica of the
		// store, a ring membership over all the listen addresses, and a
		// server with the node wired in as its open router.
		listeners := make([]net.Listener, cfg.cluster)
		addrs := make([]string, cfg.cluster)
		for i := range listeners {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			listeners[i] = l
			addrs[i] = l.Addr().String()
		}
		for i := range addrs {
			store, err := seedStore(cfg, seqs)
			if err != nil {
				return nil, err
			}
			node, err := cluster.NewNode(cluster.Config{Self: addrs[i], Peers: addrs})
			if err != nil {
				return nil, err
			}
			srv, err := fsnet.NewServer(store, fsnet.ServerConfig{
				GroupSize:     cfg.group,
				CacheCapacity: cfg.serverCache,
				Router:        node,
				Views:         node,
			})
			if err != nil {
				_ = node.Close()
				return nil, err
			}
			l := listeners[i]
			go func() { _ = srv.Serve(l) }()
			nodes = append(nodes, node)
			servers = append(servers, srv)
			if cfg.churn {
				// Churn runs converge by gossip, not by the conductor
				// updating every node; a short anti-entropy period keeps
				// the convergence window well inside the run.
				gsp := gossip.New(gossip.Config{Node: node, Interval: 25 * time.Millisecond})
				gsp.Start()
				shutdowns = append(shutdowns, func() error { gsp.Stop(); return nil })
			}
			shutdowns = append(shutdowns, node.Close, srv.Close)
		}
		targets = addrs
	case cfg.addr == "":
		store, err := seedStore(cfg, seqs)
		if err != nil {
			return nil, err
		}
		srv, err := fsnet.NewServer(store, fsnet.ServerConfig{
			GroupSize:     cfg.group,
			CacheCapacity: cfg.serverCache,
		})
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = srv.Serve(l) }()
		targets = []string{l.Addr().String()}
		shutdowns = append(shutdowns, srv.Close)
	}

	// -metrics: one shared client-side registry; every connection's
	// counters land in the same series, so the report is fleet-wide.
	var reg *obs.Registry
	if cfg.metrics {
		reg = obs.NewRegistry()
	}

	clientCfg := fsnet.ClientConfig{
		CacheCapacity: cfg.clientCache,
		MaxRetries:    3,
		Seed:          cfg.seed,
		Obs:           reg,
		MaxProtocol:   cfg.proto,
	}
	if cfg.addr != "" {
		// External server: provision the working set over the wire
		// (writes are write-through to the server's store) so the run
		// measures serving, not NotFound errors.
		if err := provision(cfg, seqs); err != nil {
			return nil, err
		}
	}

	clients := make([]*fsnet.Client, cfg.conns)
	for i := range clients {
		// Connections fan out over the cluster round-robin; with one
		// target every client hits the same server, as before.
		target := targets[i%len(targets)]
		ccfg := clientCfg
		if cfg.rtt > 0 {
			// Simulated WAN: the full round trip of propagation delay,
			// charged once on the reply path. A request/response exchange
			// only ever observes the round-trip sum, and one release
			// horizon suffers the kernel timer-tick quantization once
			// instead of once per direction. A lock-step exchange pays
			// the full RTT per open; a pipelined flight of k requests
			// shares one — which is exactly the latency-hiding the
			// concurrent serving path exists for.
			d := cfg.rtt
			ccfg.Dialer = func() (net.Conn, error) {
				conn, err := net.Dial("tcp", target)
				if err != nil {
					return nil, err
				}
				return newDelayConn(conn, 0, d), nil
			}
		}
		c, err := fsnet.Dial(target, ccfg)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
		for _, stop := range shutdowns {
			_ = stop()
		}
	}()

	res := &result{cfg: cfg, hist: obs.NewHistogram(), reg: reg, protoName: "pipelined"}
	switch cfg.proto {
	case 1:
		res.protoName = "serial"
	case 2:
		res.protoName = "pipelined-v2"
	}
	var opens, errCount atomic.Uint64

	// -churn: a background conductor takes the last node through a full
	// leave/rejoin cycle while the workload runs — and since PR 9 it acts
	// on a single node per transition, leaving dissemination to gossip.
	// At 40% progress the last node drains: its goodbye push removes it
	// from the survivors' views with no conductor involvement. At 70% the
	// full view is reinstalled on node 0 only, and piggybacked hints plus
	// anti-entropy carry it to everyone else — the drained node included,
	// which is what clears its draining flag (the rejoin). The workload
	// itself never pauses, and the run asserts every node converges to
	// the final epoch — elastic membership is only working if the clients
	// cannot tell and the operators did not have to fan out.
	loadDone := make(chan struct{})
	churnDone := make(chan struct{})
	var drainRep cluster.DrainReport
	var leaveConverged, rejoinConverged, churnScriptDone bool
	if cfg.churn && len(nodes) >= 2 {
		total := uint64(cfg.conns) * uint64(cfg.opens)
		waitFor := func(frac float64) bool {
			threshold := uint64(frac * float64(total))
			for opens.Load()+errCount.Load() < threshold {
				select {
				case <-loadDone:
					return false
				case <-time.After(2 * time.Millisecond):
				}
			}
			return true
		}
		// converged polls (bounded) until every listed node has reached
		// epoch want. The poll outlives the load on purpose: gossip may
		// still be spreading the last view when the final open lands.
		converged := func(want uint64, members []*cluster.Node) bool {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				ok := true
				for _, n := range members {
					if n.Epoch() < want {
						ok = false
						break
					}
				}
				if ok {
					return true
				}
				time.Sleep(2 * time.Millisecond)
			}
			return false
		}
		go func() {
			defer close(churnDone)
			victim := len(nodes) - 1
			if !waitFor(0.4) {
				return
			}
			if rep, err := nodes[victim].Drain(servers[victim]); err == nil {
				drainRep = rep
			}
			leaveConverged = converged(drainRep.GoodbyeEpoch, nodes[:victim])
			if !waitFor(0.7) {
				return
			}
			_ = nodes[0].Update(drainRep.GoodbyeEpoch+1, targets)
			rejoinConverged = converged(drainRep.GoodbyeEpoch+1, nodes)
			churnScriptDone = true
		}()
	} else {
		close(churnDone)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for ci, c := range clients {
		seq := seqs[ci]
		var cursor atomic.Int64 // workers on one conn share the sequence
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(c *fsnet.Client) {
				defer wg.Done()
				var buf []byte // per-worker reuse buffer: one alloc per max file size
				for {
					n := cursor.Add(1) - 1
					if n >= int64(len(seq)) {
						return
					}
					t0 := time.Now()
					out, err := c.OpenInto(seq[n], buf)
					res.hist.ObserveDuration(time.Since(t0))
					if err != nil {
						errCount.Add(1)
						continue
					}
					buf = out
					opens.Add(1)
				}
			}(c)
		}
	}
	wg.Wait()
	close(loadDone)
	<-churnDone
	res.elapsed = time.Since(start)
	res.opens = opens.Load()
	res.errors = errCount.Load()
	for _, c := range clients {
		// Per-member time-to-first-byte: on a streamed (v3) connection the
		// clock stops at the first member chunk, so the gap between ttfb
		// and whole-open latency is the streaming win.
		ts := c.TTFB()
		for i, n := range ts.Buckets {
			res.ttfb.Buckets[i] += n
		}
		res.ttfb.Count += ts.Count
		res.ttfb.Sum += ts.Sum
		st := c.Stats()
		res.client.Opens += st.Opens
		res.client.Hits += st.Hits
		res.client.Fetches += st.Fetches
		res.client.FilesReceived += st.FilesReceived
		res.client.BytesReceived += st.BytesReceived
		res.client.PrefetchHits += st.PrefetchHits
		res.client.Retries += st.Retries
		res.client.BrokenConns += st.BrokenConns
		res.client.Reconnects += st.Reconnects
	}
	if res.client.Opens > 0 {
		res.hitRate = float64(res.client.Hits) / float64(res.client.Opens)
	}
	res.clus.nodes = len(nodes)
	for _, n := range nodes {
		st := n.Stats()
		res.clus.local += st.LocalOpens
		res.clus.forwarded += st.ForwardedOpens
		res.clus.mirrorHits += st.MirrorHits
		res.clus.coalesced += st.CoalescedForwards
		res.clus.degraded += st.DegradedOpens
		res.clus.hintQueued += st.HintsQueued
		res.clus.hintReplay += st.HintsReplayed
	}
	if cfg.churn {
		res.clus.churned = true
		res.clus.drainSent = uint64(drainRep.GroupsSent)
		res.clus.drainFail = uint64(drainRep.GroupsFailed)
		res.clus.scriptDone = churnScriptDone
		res.clus.leaveConverged = leaveConverged
		res.clus.rejoinConverged = rejoinConverged
		for _, s := range servers {
			res.clus.handoffs += s.Stats().Handoffs
		}
	}
	return res, nil
}

func (r *result) writeText(out *os.File) {
	fmt.Fprintf(out, "aggbench: %s protocol, %d conns x %d workers, %d opens/conn\n",
		r.protoName, r.cfg.conns, r.cfg.workers, r.cfg.opens)
	fmt.Fprintf(out, "  throughput: %.0f opens/s (%d opens in %v, %d errors)\n",
		r.throughput(), r.opens, r.elapsed.Round(time.Millisecond), r.errors)
	fmt.Fprintf(out, "  latency:    p50 %v  p95 %v  p99 %v\n",
		r.pct(50), r.pct(95), r.pct(99))
	if r.ttfb.Count > 0 {
		fmt.Fprintf(out, "  ttfb:       p50 %v  p95 %v  p99 %v (%d fetches)\n",
			time.Duration(r.ttfb.Percentile(50)), time.Duration(r.ttfb.Percentile(95)),
			time.Duration(r.ttfb.Percentile(99)), r.ttfb.Count)
	}
	fmt.Fprintf(out, "  client:     hit-rate %.3f  fetches %d  files-received %d  prefetch-hits %d\n",
		r.hitRate, r.client.Fetches, r.client.FilesReceived, r.client.PrefetchHits)
	if r.client.Retries+r.client.BrokenConns > 0 {
		fmt.Fprintf(out, "  recovery:   retries %d  broken-conns %d  reconnects %d\n",
			r.client.Retries, r.client.BrokenConns, r.client.Reconnects)
	}
	if r.clus.nodes > 0 {
		fmt.Fprintf(out, "  cluster:    %d nodes  local %d  forwarded %d  mirror-hits %d  coalesced %d  degraded %d\n",
			r.clus.nodes, r.clus.local, r.clus.forwarded, r.clus.mirrorHits, r.clus.coalesced, r.clus.degraded)
	}
	if r.clus.churned {
		fmt.Fprintf(out, "  churn:      drain-sent %d  drain-failed %d  handoffs-installed %d  hints-queued %d  hints-replayed %d\n",
			r.clus.drainSent, r.clus.drainFail, r.clus.handoffs, r.clus.hintQueued, r.clus.hintReplay)
		verdict := func(ok bool) string {
			if ok {
				return "converged"
			}
			return "FAILED"
		}
		if r.clus.scriptDone {
			fmt.Fprintf(out, "  gossip:     leave %s  rejoin %s\n",
				verdict(r.clus.leaveConverged), verdict(r.clus.rejoinConverged))
		} else {
			fmt.Fprintf(out, "  gossip:     churn script did not complete (run too short)\n")
		}
	}
	if r.reg != nil {
		for _, s := range r.reg.Snapshot() {
			if s.Hist != nil {
				fmt.Fprintf(out, "  obs:        %s count %d  p50 %v  p95 %v\n",
					s.Name, s.Hist.Count,
					time.Duration(s.Hist.Percentile(50)), time.Duration(s.Hist.Percentile(95)))
			} else {
				fmt.Fprintf(out, "  obs:        %s %v\n", s.Name, s.Value)
			}
		}
	}
}

// benchName is the identity the baseline gate diffs on; -metrics runs get
// an Obs suffix so instrumented throughput is tracked as its own series
// against the bare run, never mixed into it.
func (r *result) benchName() string {
	name := "AggbenchOpenPipelined"
	switch {
	case r.cfg.cluster > 0 && r.cfg.churn:
		name = fmt.Sprintf("AggbenchOpenClusterChurn%d", r.cfg.cluster)
	case r.cfg.cluster > 0:
		name = fmt.Sprintf("AggbenchOpenCluster%d", r.cfg.cluster)
	case r.cfg.serial || r.cfg.proto == 1:
		name = "AggbenchOpenSerial"
	case r.cfg.proto == 2:
		name = "AggbenchOpenPipelinedV2"
	}
	if r.cfg.metrics {
		name += "Obs"
	}
	return name
}

// obsMetrics flattens the client registry into metric-name -> value pairs
// for the machine-readable outputs. Histograms contribute _count/_p50/_p95
// pseudo-series; labelled series are rare on the client side, so labels
// are folded into the name.
func (r *result) obsMetrics() map[string]float64 {
	if r.reg == nil {
		return nil
	}
	out := make(map[string]float64)
	for _, s := range r.reg.Snapshot() {
		name := s.Name
		for _, l := range s.Labels {
			name += "_" + l.Value
		}
		if s.Hist != nil {
			out[name+"_count"] = float64(s.Hist.Count)
			out[name+"_p50"] = float64(s.Hist.Percentile(50))
			out[name+"_p95"] = float64(s.Hist.Percentile(95))
			continue
		}
		out[name] = s.Value
	}
	return out
}

// writeGobench emits the run as one standard benchmark result line, so
// `aggbench -gobench` pipes into cmd/benchjson alongside `go test -bench`
// output and lands in the same committed baseline.
func (r *result) writeGobench(out *os.File) {
	nsPerOp := float64(r.elapsed.Nanoseconds()) / float64(r.opens)
	fmt.Fprintf(out, "pkg: aggcache/cmd/aggbench\n")
	fmt.Fprintf(out, "Benchmark%s-%d\t%8d\t%.1f ns/op\t%.0f opens/s\t%d p95_ns\t%d p99_ns\t%.3f hit_rate",
		r.benchName(), r.cfg.conns*r.cfg.workers, r.opens, nsPerOp, r.throughput(),
		r.pct(95).Nanoseconds(), r.pct(99).Nanoseconds(), r.hitRate)
	// Unconditional, like the JSON path: stable columns across protocol
	// versions keep the committed baseline's key set fixed.
	fmt.Fprintf(out, "\t%d ttfb_p50_ns\t%d ttfb_p95_ns",
		r.ttfb.Percentile(50), r.ttfb.Percentile(95))
	if om := r.obsMetrics(); om != nil {
		fmt.Fprintf(out, "\t%.0f obs_call_p95_ns\t%.0f obs_reconnects",
			om["fsnet_client_call_latency_ns_p95"], om["fsnet_client_reconnects_total"])
	}
	fmt.Fprintln(out)
}

// writeJSON emits the run in the benchparse schema, so the loadtest
// numbers diff and gate exactly like the committed go-test baselines.
func (r *result) writeJSON(out *os.File) error {
	set := benchparse.Set{
		Benchmarks: []benchparse.Benchmark{{
			Name:       r.benchName(),
			Procs:      r.cfg.conns * r.cfg.workers,
			Pkg:        "aggcache/cmd/aggbench",
			Iterations: int64(r.opens),
			Metrics: map[string]float64{
				"opens/s":  r.throughput(),
				"p50_ns":   float64(r.pct(50).Nanoseconds()),
				"p95_ns":   float64(r.pct(95).Nanoseconds()),
				"p99_ns":   float64(r.pct(99).Nanoseconds()),
				"errors":   float64(r.errors),
				"hit_rate": r.hitRate,
				"fetches":  float64(r.client.Fetches),
				"conns":    float64(r.cfg.conns),
				"workers":  float64(r.cfg.workers),
				"proto":    float64(r.cfg.proto),
				// TTFB keys are emitted unconditionally (zero when the run
				// recorded no fetch timings) so the key set — what benchparse
				// diffs and BENCH_BASELINE.json commits — is identical across
				// protocol versions instead of gaining columns at v3.
				"ttfb_count":  float64(r.ttfb.Count),
				"ttfb_p50_ns": float64(r.ttfb.Percentile(50)),
				"ttfb_p95_ns": float64(r.ttfb.Percentile(95)),
				"ttfb_p99_ns": float64(r.ttfb.Percentile(99)),
			},
		}},
	}
	if r.clus.nodes > 0 {
		m := set.Benchmarks[0].Metrics
		m["cluster_nodes"] = float64(r.clus.nodes)
		m["forwarded"] = float64(r.clus.forwarded)
		m["mirror_hits"] = float64(r.clus.mirrorHits)
		m["coalesced"] = float64(r.clus.coalesced)
		m["degraded"] = float64(r.clus.degraded)
		if r.clus.churned {
			m["churn_drain_sent"] = float64(r.clus.drainSent)
			m["churn_drain_failed"] = float64(r.clus.drainFail)
			m["churn_handoffs"] = float64(r.clus.handoffs)
			m["churn_hints_queued"] = float64(r.clus.hintQueued)
			m["churn_hints_replayed"] = float64(r.clus.hintReplay)
			churnOK := 0.0
			if r.clus.scriptDone && r.clus.leaveConverged && r.clus.rejoinConverged {
				churnOK = 1
			}
			m["churn_gossip_converged"] = churnOK
		}
	}
	for name, v := range r.obsMetrics() {
		set.Benchmarks[0].Metrics[name] = v
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(set)
}

func run(args []string, out *os.File) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	if cfg.traceCollect != "" {
		var addrs []string
		for _, a := range strings.Split(cfg.traceCollect, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		return collectTraces(addrs, cfg.traceMinNodes, out)
	}
	if cfg.cpuProf != "" {
		f, err := os.Create(cfg.cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	res, err := runLoad(cfg)
	if err != nil {
		return err
	}
	if cfg.memProf != "" {
		f, ferr := os.Create(cfg.memProf)
		if ferr != nil {
			return ferr
		}
		runtime.GC()
		if werr := pprof.Lookup("allocs").WriteTo(f, 0); werr != nil {
			_ = f.Close()
			return werr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
	}
	if res.errors > res.opens/10 {
		return fmt.Errorf("%d of %d opens failed; load run not representative", res.errors, res.errors+res.opens)
	}
	if res.clus.scriptDone && !(res.clus.leaveConverged && res.clus.rejoinConverged) {
		return fmt.Errorf("churn: gossip failed to converge membership (leave=%v rejoin=%v)",
			res.clus.leaveConverged, res.clus.rejoinConverged)
	}
	if cfg.jsonOut {
		return res.writeJSON(out)
	}
	if cfg.gobench {
		res.writeGobench(out)
		return nil
	}
	res.writeText(out)
	return nil
}
