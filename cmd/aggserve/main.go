// Command aggserve runs the group-retrieval file server of Figure 2: a
// TCP server that answers open requests with groups of related files,
// learning inter-file relationships from the request stream (and from
// piggybacked client access histories).
//
// The store is seeded either from a directory tree (-root) or with
// synthetic files (-synthetic N). The server runs until SIGINT/SIGTERM,
// then shuts down gracefully and prints its statistics.
//
// Robustness knobs: -idle-timeout drops silent connections,
// -write-timeout unwedges handlers facing stalled readers, and
// -max-conns caps concurrent connections (excess clients receive a
// graceful busy rejection and, with retry configured, back off).
//
// Profiling: -cpuprofile and -memprofile write runtime/pprof profiles
// covering the whole serve lifetime, and -pprof serves net/http/pprof
// for live inspection of a long-running server.
//
// Clustering: -peers (or -peers-file) joins a consistent-hash peer ring
// (internal/cluster). Opens for paths this node owns are served locally;
// everything else is fetched from the owning peer in one group hop, with
// a hot-group mirror and health-checked failover to the local store when
// a peer is down. Every node of a cluster must be started with the same
// peer list and a -self address that appears in it. -stats serves a
// JSON snapshot (server counters plus per-peer health) over HTTP.
//
// Elastic membership: -peers-file names a file of peer addresses (one
// per line, optional "epoch N" directive) that is re-read on SIGHUP or
// POST /reload and installed as a new epoch-numbered membership view —
// nodes join and leave without restarting the fleet. The -stats
// listener additionally serves /healthz (liveness), /readyz (readiness:
// 503 while draining, so a load balancer rotates the node out), and
// POST /drain, which streams every owned group's learned state to its
// next owner and flips readiness. SIGTERM on a clustered node drains
// before exiting, so a rolling restart hands state off automatically.
//
// Observability: every aggserve carries an internal/obs registry wired
// through the server, cache, and cluster layers. The -stats HTTP server
// additionally exposes /metrics (Prometheus text format: request
// counters, per-phase latency histograms, cache hit/miss counters,
// per-peer breaker gauges) and /metrics.json (the same snapshot plus
// recent events as JSON). -slow-request logs opens slower than the
// threshold to the bounded event log, and -log-events mirrors every
// recorded event to stderr through log/slog.
//
// Examples:
//
//	aggserve -addr :7070 -root ./testdata
//	aggserve -addr 127.0.0.1:7070 -synthetic 1000 -group 5 -cache 256
//	aggserve -addr :7070 -synthetic 1000 -max-conns 512 -write-timeout 10s
//	aggserve -addr :7070 -synthetic 1000 -pprof localhost:6060
//	aggserve -addr 127.0.0.1:7071 -self 127.0.0.1:7071 \
//	    -peers 127.0.0.1:7071,127.0.0.1:7072,127.0.0.1:7073 \
//	    -synthetic 1000 -stats 127.0.0.1:8071
//	aggserve -addr :7070 -synthetic 1000 -stats 127.0.0.1:8071 \
//	    -slow-request 50ms -log-events   # then: curl 127.0.0.1:8071/metrics
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"aggcache/internal/cluster"
	"aggcache/internal/fsnet"
	"aggcache/internal/gossip"
	"aggcache/internal/obs"
	"aggcache/internal/obs/otrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aggserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("aggserve", flag.ContinueOnError)
	var (
		addr         = fl.String("addr", "127.0.0.1:7070", "listen address")
		root         = fl.String("root", "", "seed the store from this directory tree")
		synthetic    = fl.Int("synthetic", 0, "seed the store with N synthetic files instead")
		group        = fl.Int("group", 5, "retrieval group size g")
		capacity     = fl.Int("cache", 256, "server memory cache capacity (files)")
		succCap      = fl.Int("successors", 3, "per-file successor list capacity")
		metadata     = fl.String("metadata", "", "persist learned relationships to this file (loaded at start if present, saved at shutdown)")
		idleTimeout  = fl.Duration("idle-timeout", 5*time.Minute, "drop connections idle for this long (0 disables)")
		writeTimeout = fl.Duration("write-timeout", 30*time.Second, "per-reply write deadline so stalled readers cannot wedge handlers (0 disables)")
		maxConns     = fl.Int("max-conns", 0, "cap on concurrently served connections; excess get a busy rejection (0 = unlimited)")
		maxProto     = fl.Int("max-proto", 0, "cap the negotiated protocol version: 1 lock-step, 2 pipelined, 3 streamed groups (0 = latest)")
		cpuProf      = fl.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = fl.String("memprofile", "", "write an allocation profile to this file at shutdown")
		pprofSrv     = fl.String("pprof", "", "serve net/http/pprof on this address while running")
		peers        = fl.String("peers", "", "comma-separated cluster peer addresses (must include -self); empty runs standalone")
		peersFile    = fl.String("peers-file", "", "file of cluster peer addresses, one per line with optional 'epoch N' directive; re-read on SIGHUP or POST /reload")
		self         = fl.String("self", "", "this node's advertised address within -peers (defaults to -addr)")
		replicas     = fl.Int("ring-replicas", 0, "consistent-hash virtual nodes per peer (0 = library default)")
		gossipEvery  = fl.Duration("gossip-interval", time.Second, "anti-entropy period for membership gossip (0 disables the background loop; piggybacked hints still converge)")
		gossipFanout = fl.Int("gossip-fanout", 1, "distinct random peers reconciled per anti-entropy round")
		traceSample  = fl.Int("trace-sample", otrace.DefaultSampleRate, "head-sample one request trace in N (1 traces everything, negative disables head sampling; slow requests are always tail-captured)")
		traceCap     = fl.Int("trace-buffer", otrace.DefaultCapacity, "bound on the in-memory span ring served by /traces and /trace/<id>")
		statsAddr    = fl.String("stats", "", "serve stats over HTTP on this address: /stats (JSON counters), /metrics (Prometheus text), /metrics.json (metrics plus recent events)")
		slowReq      = fl.Duration("slow-request", 0, "record opens slower than this to the event log (0 disables)")
		logEvents    = fl.Bool("log-events", false, "mirror recorded events (slow requests, breaker transitions, reconnects) to stderr via log/slog")
	)
	if err := fl.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Printf("aggserve: write memprofile: %v", err)
			}
			f.Close()
		}()
	}
	if *pprofSrv != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers.
			log.Printf("aggserve: pprof on http://%s/debug/pprof/", *pprofSrv)
			log.Println(http.ListenAndServe(*pprofSrv, nil))
		}()
	}

	store := fsnet.NewStore()
	switch {
	case *root != "":
		n, err := seedFromDir(store, *root)
		if err != nil {
			return err
		}
		log.Printf("aggserve: loaded %d files from %s", n, *root)
	case *synthetic > 0:
		for i := 0; i < *synthetic; i++ {
			path := fmt.Sprintf("/synthetic/f%06d", i)
			if err := store.Put(path, []byte(fmt.Sprintf("synthetic contents of %s", path))); err != nil {
				return err
			}
		}
		log.Printf("aggserve: seeded %d synthetic files", *synthetic)
	default:
		return fmt.Errorf("provide -root DIR or -synthetic N to populate the store")
	}

	if *maxConns < 0 {
		return fmt.Errorf("-max-conns must be >= 0, got %d", *maxConns)
	}
	if *maxProto < 0 || *maxProto > 3 {
		return fmt.Errorf("-max-proto must be 0..3, got %d", *maxProto)
	}

	// The registry is unconditional: a standing server always pays the few
	// nanoseconds of instrumentation so /metrics and the event log work
	// the moment anyone asks, with no restart-to-observe dance.
	reg := obs.NewRegistry()
	if *logEvents {
		reg.Events().SetSink(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}

	// The tracer is likewise unconditional: at the default 1/1024 head
	// sampling an unsampled request costs one atomic add, and the span
	// ring is a fixed allocation. The node name is the advertised address
	// so stitched fleet traces name their hops usefully.
	traceNode := *self
	if traceNode == "" {
		traceNode = *addr
	}
	tracer := otrace.New(otrace.Config{
		Node:       traceNode,
		SampleRate: *traceSample,
		Capacity:   *traceCap,
	})

	var node *cluster.Node
	if *peers != "" && *peersFile != "" {
		return fmt.Errorf("-peers and -peers-file are mutually exclusive")
	}
	if *peers != "" || *peersFile != "" {
		selfAddr := *self
		if selfAddr == "" {
			selfAddr = *addr
		}
		var (
			peerList  []string
			fileEpoch uint64
		)
		if *peersFile != "" {
			var err error
			fileEpoch, peerList, err = readPeersFile(*peersFile)
			if err != nil {
				return err
			}
		} else {
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					peerList = append(peerList, p)
				}
			}
		}
		// Fail fast: a -self that is malformed or absent from the peer
		// list would otherwise surface only on the first forward, as a
		// confusing misroute. Catch it before binding any sockets.
		if err := validatePeers(selfAddr, peerList); err != nil {
			return err
		}
		var err error
		node, err = cluster.NewNode(cluster.Config{
			Self:     selfAddr,
			Peers:    peerList,
			Replicas: *replicas,
			Obs:      reg,
			Trace:    tracer,
		})
		if err != nil {
			return err
		}
		defer node.Close()
		if fileEpoch > 1 {
			// The file declares a later epoch than NewNode's initial view;
			// install it so a restarted node rejoins at the fleet's epoch.
			if err := node.Update(fileEpoch, peerList); err != nil {
				return err
			}
		}
		log.Printf("aggserve: joined %d-peer ring as %s (epoch %d)", len(peerList), selfAddr, node.Epoch())
	}

	// The gossiper runs whenever clustering is on, even at interval 0:
	// hint-triggered pulls (a peer's piggybacked epoch outrunning ours)
	// need its subscription regardless of the anti-entropy loop.
	if node != nil {
		gsp := gossip.New(gossip.Config{Node: node, Interval: *gossipEvery, Fanout: *gossipFanout, Obs: reg, Trace: tracer})
		gsp.Start()
		defer gsp.Stop()
	}

	// reload re-reads -peers-file and installs it as a new membership
	// view. An epoch 0 file (no directive) means "one past whatever is
	// installed", so plain peer-list edits always win.
	reload := func() error {
		if node == nil || *peersFile == "" {
			return fmt.Errorf("membership reload needs -peers-file")
		}
		epoch, peerList, err := readPeersFile(*peersFile)
		if err != nil {
			return err
		}
		if epoch == 0 {
			epoch = node.Epoch() + 1
		}
		if err := node.Update(epoch, peerList); err != nil {
			return err
		}
		log.Printf("aggserve: membership updated to epoch %d (%d peers)", node.Epoch(), len(peerList))
		return nil
	}

	srvCfg := fsnet.ServerConfig{
		GroupSize:         *group,
		CacheCapacity:     *capacity,
		SuccessorCapacity: *succCap,
		IdleTimeout:       *idleTimeout,
		WriteTimeout:      *writeTimeout,
		MaxConns:          *maxConns,
		MaxProtocol:       *maxProto,
		Logger:            log.New(os.Stderr, "", log.LstdFlags),
		Obs:               reg,
		SlowRequest:       *slowReq,
		Trace:             tracer,
	}
	if node != nil {
		// A typed nil in the Router interface would still be "set"; only
		// wire the hooks when clustering is actually on.
		srvCfg.Router = node
		srvCfg.Views = node
	}
	srv, err := fsnet.NewServer(store, srvCfg)
	if err != nil {
		return err
	}
	if *metadata != "" {
		if f, err := os.Open(*metadata); err == nil {
			loadErr := srv.LoadMetadata(f)
			_ = f.Close()
			if loadErr != nil {
				return fmt.Errorf("load metadata: %w", loadErr)
			}
			log.Printf("aggserve: restored relationship metadata from %s", *metadata)
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	if *statsAddr != "" {
		sl, err := net.Listen("tcp", *statsAddr)
		if err != nil {
			return fmt.Errorf("stats listener: %w", err)
		}
		defer sl.Close()
		mux := http.NewServeMux()
		mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(statsSnapshot(srv, node)); err != nil {
				log.Printf("aggserve: encode stats: %v", err)
			}
		})
		mux.Handle("/metrics", reg.MetricsHandler())
		mux.Handle("/metrics.json", reg.JSONHandler())
		mux.Handle("/traces", tracer.SummariesHandler())
		mux.Handle("/trace/", tracer.TraceHandler())
		// Liveness: the process is up and serving HTTP. Readiness adds
		// membership: a standalone node is always ready; a clustered node
		// is ready only while it is in the ring and not draining, so load
		// balancers rotate a draining node out before it exits.
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			if node != nil && !node.Ready() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ready")
		})
		mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			if node == nil {
				http.Error(w, "not clustered", http.StatusConflict)
				return
			}
			rep, err := node.Drain(srv)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			log.Printf("aggserve: drained: %d groups exported, %d sent, %d failed, %d skipped",
				rep.GroupsExported, rep.GroupsSent, rep.GroupsFailed, rep.GroupsSkipped)
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
		})
		mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			if err := reload(); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "epoch %d\n", node.Epoch())
		})
		go func() { _ = http.Serve(sl, mux) }()
		log.Printf("aggserve: stats on http://%s/stats (Prometheus at /metrics, events at /metrics.json)", sl.Addr())
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("aggserve: listening on %s (g=%d cache=%d)", l.Addr(), *group, *capacity)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 4)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case s := <-sig:
			if s == syscall.SIGHUP {
				// Hot membership reload: re-read -peers-file in place.
				if err := reload(); err != nil {
					log.Printf("aggserve: reload: %v", err)
				}
				continue
			}
			log.Printf("aggserve: received %s, shutting down", s)
			if s == syscall.SIGTERM && node != nil {
				// Graceful exit: hand owned group state to the next
				// owners before closing, so a rolling restart stays warm.
				// SIGINT skips the drain for a fast local stop.
				if rep, err := node.Drain(srv); err != nil {
					if !errors.Is(err, cluster.ErrDraining) {
						log.Printf("aggserve: drain: %v", err)
					}
				} else {
					log.Printf("aggserve: drained: %d groups exported, %d sent, %d failed, %d skipped",
						rep.GroupsExported, rep.GroupsSent, rep.GroupsFailed, rep.GroupsSkipped)
				}
			}
			break loop
		case err := <-done:
			return fmt.Errorf("serve: %w", err)
		}
	}
	if *metadata != "" {
		if err := saveMetadata(srv, *metadata); err != nil {
			log.Printf("aggserve: save metadata: %v", err)
		} else {
			log.Printf("aggserve: saved relationship metadata to %s", *metadata)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	log.Printf("aggserve: requests=%d errors=%d files-sent=%d rejected=%d panics=%d disconnects=%d cache{%s}",
		st.Requests, st.Errors, st.FilesSent, st.Rejected, st.Panics, st.Disconnects, st.Cache.String())
	if node != nil {
		cs := node.Stats()
		log.Printf("aggserve: cluster local=%d forwarded=%d mirror-hits=%d coalesced=%d degraded=%d",
			cs.LocalOpens, cs.ForwardedOpens, cs.MirrorHits, cs.CoalescedForwards, cs.DegradedOpens)
	}
	return nil
}

// validatePeers checks the cluster configuration before any socket is
// bound: every peer address must be host:port shaped and the advertised
// self address must appear in the list verbatim. Ring placement compares
// addresses as strings, so "localhost:7071" versus "127.0.0.1:7071"
// would silently own disjoint key ranges — require an exact match.
func validatePeers(self string, peerList []string) error {
	if _, _, err := net.SplitHostPort(self); err != nil {
		return fmt.Errorf("invalid -self address %q: %w", self, err)
	}
	found := false
	for _, p := range peerList {
		if _, _, err := net.SplitHostPort(p); err != nil {
			return fmt.Errorf("invalid peer address %q: %w", p, err)
		}
		if p == self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("self address %q is not in the peer list %v; every node must list itself (addresses are compared verbatim)", self, peerList)
	}
	return nil
}

// readPeersFile loads and parses a -peers-file.
func readPeersFile(path string) (epoch uint64, peerList []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	epoch, peerList, err = cluster.ParsePeersFile(f)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	return epoch, peerList, nil
}

// snapshot is the /stats JSON document: the full server counters
// (CoalescedStages and RemoteOpens included) plus, when clustering is
// on, the node's routing counters and per-peer breaker health.
type snapshot struct {
	// Epoch is the installed membership epoch, lifted to the top level
	// (0 when standalone) so fleet tooling polling for convergence can
	// key on one stable field.
	Epoch   uint64
	Server  fsnet.ServerStats
	Cluster *cluster.NodeStats `json:",omitempty"`
}

func statsSnapshot(srv *fsnet.Server, node *cluster.Node) snapshot {
	snap := snapshot{Server: srv.Stats()}
	if node != nil {
		cs := node.Stats()
		snap.Epoch = cs.Epoch
		snap.Cluster = &cs
	}
	return snap
}

// saveMetadata writes the server's learned state atomically (write to a
// temp file, then rename).
func saveMetadata(srv *fsnet.Server, path string) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = os.Remove(tmp)
		}
	}()
	if err = srv.SaveMetadata(f); err != nil {
		_ = f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// seedFromDir loads every regular file under root into the store, keyed by
// its path relative to root (with a leading slash).
func seedFromDir(store *fsnet.Store, root string) (int, error) {
	var n int
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if err := store.Put("/"+filepath.ToSlash(rel), data); err != nil {
			return err
		}
		n++
		return nil
	})
	return n, err
}
