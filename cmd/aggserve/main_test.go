package main

import (
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"aggcache/internal/fsnet"
)

func TestSeedFromDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"a.txt":     "alpha",
		"sub/b.txt": "beta",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store := fsnet.NewStore()
	n, err := seedFromDir(store, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("seeded %d files, want 2", n)
	}
	data, ok := store.Get("/sub/b.txt")
	if !ok || string(data) != "beta" {
		t.Errorf("Get(/sub/b.txt) = %q,%v", data, ok)
	}
}

func TestSeedFromDirMissing(t *testing.T) {
	if _, err := seedFromDir(fsnet.NewStore(), "/no/such/dir"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{}, // no store source
		{"-synthetic", "5", "-addr", "256.0.0.1:bad"}, // bad address
		{"-root", "/no/such/dir"},
		{"-synthetic", "5", "-group", "-3"},
		{"-synthetic", "5", "-max-conns", "-1"},
		{"-synthetic", "5", "-idle-timeout", "nonsense"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunServesAndShutsDown drives the full binary path: start, serve one
// client, SIGTERM, graceful exit.
func TestRunServesAndShutsDown(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-synthetic", "20"})
	}()
	// The listener address is random; rediscover it is not possible from
	// outside, so give the server a moment and then just exercise
	// shutdown. (Protocol behaviour is covered by fsnet's own tests.)
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// Ensure the fixed-address path also works end to end with a real client.
func TestRunWithClient(t *testing.T) {
	// Find a free port first.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-synthetic", "20"})
	}()
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	var client *fsnet.Client
	deadline := time.Now().Add(3 * time.Second)
	for {
		client, err = fsnet.Dial(addr, fsnet.ClientConfig{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer client.Close()
	data, err := client.Open("/synthetic/f000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty file data")
	}
}

func TestMetadataPersistAcrossRestart(t *testing.T) {
	metaPath := filepath.Join(t.TempDir(), "meta.agsm")

	startOnce := func() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", addr, "-synthetic", "10", "-metadata", metaPath})
		}()
		// Touch the server so it learns something on the first run.
		deadline := time.Now().Add(3 * time.Second)
		var client *fsnet.Client
		var err2 error
		for {
			client, err2 = fsnet.Dial(addr, fsnet.ClientConfig{})
			if err2 == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial: %v", err2)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := client.Open("/synthetic/f000000"); err != nil {
			t.Fatal(err)
		}
		_ = client.Close()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no shutdown")
		}
	}

	startOnce()
	if _, err := os.Stat(metaPath); err != nil {
		t.Fatalf("metadata not saved: %v", err)
	}
	// Second run loads the saved metadata without error.
	startOnce()
}
