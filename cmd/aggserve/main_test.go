package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aggcache/internal/cluster"
	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
)

func TestSeedFromDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"a.txt":     "alpha",
		"sub/b.txt": "beta",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store := fsnet.NewStore()
	n, err := seedFromDir(store, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("seeded %d files, want 2", n)
	}
	data, ok := store.Get("/sub/b.txt")
	if !ok || string(data) != "beta" {
		t.Errorf("Get(/sub/b.txt) = %q,%v", data, ok)
	}
}

func TestSeedFromDirMissing(t *testing.T) {
	if _, err := seedFromDir(fsnet.NewStore(), "/no/such/dir"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{}, // no store source
		{"-synthetic", "5", "-addr", "256.0.0.1:bad"}, // bad address
		{"-root", "/no/such/dir"},
		{"-synthetic", "5", "-group", "-3"},
		{"-synthetic", "5", "-max-conns", "-1"},
		{"-synthetic", "5", "-idle-timeout", "nonsense"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunServesAndShutsDown drives the full binary path: start, serve one
// client, SIGTERM, graceful exit.
func TestRunServesAndShutsDown(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-synthetic", "20"})
	}()
	// The listener address is random; rediscover it is not possible from
	// outside, so give the server a moment and then just exercise
	// shutdown. (Protocol behaviour is covered by fsnet's own tests.)
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// Ensure the fixed-address path also works end to end with a real client.
func TestRunWithClient(t *testing.T) {
	// Find a free port first.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-synthetic", "20"})
	}()
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	var client *fsnet.Client
	deadline := time.Now().Add(3 * time.Second)
	for {
		client, err = fsnet.Dial(addr, fsnet.ClientConfig{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer client.Close()
	data, err := client.Open("/synthetic/f000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty file data")
	}
}

func TestMetadataPersistAcrossRestart(t *testing.T) {
	metaPath := filepath.Join(t.TempDir(), "meta.agsm")

	startOnce := func() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", addr, "-synthetic", "10", "-metadata", metaPath})
		}()
		// Touch the server so it learns something on the first run.
		deadline := time.Now().Add(3 * time.Second)
		var client *fsnet.Client
		var err2 error
		for {
			client, err2 = fsnet.Dial(addr, fsnet.ClientConfig{})
			if err2 == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial: %v", err2)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := client.Open("/synthetic/f000000"); err != nil {
			t.Fatal(err)
		}
		_ = client.Close()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no shutdown")
		}
	}

	startOnce()
	if _, err := os.Stat(metaPath); err != nil {
		t.Fatalf("metadata not saved: %v", err)
	}
	// Second run loads the saved metadata without error.
	startOnce()
}

// freeAddrs reserves n distinct loopback addresses by listening and
// immediately closing. Racy in principle, fine for tests in practice.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return addrs
}

func dialRetry(t *testing.T, addr string) *fsnet.Client {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		client, err := fsnet.Dial(addr, fsnet.ClientConfig{})
		if err == nil {
			return client
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunCluster boots a 3-node cluster of full aggserve instances with
// replicated synthetic stores, opens every file through one node (so
// misses forward across the ring), and reads the JSON stats endpoint.
func TestRunCluster(t *testing.T) {
	addrs := freeAddrs(t, 4)
	peers := strings.Join(addrs[:3], ",")
	statsAddr := addrs[3]

	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		args := []string{
			"-addr", addrs[i], "-self", addrs[i], "-peers", peers,
			"-synthetic", "40", "-idle-timeout", "0",
		}
		if i == 0 {
			args = append(args, "-stats", statsAddr)
		}
		go func() { done <- run(args) }()
	}
	shutdown := func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		for i := 0; i < 3; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("node exited: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("cluster node did not shut down")
				return
			}
		}
	}
	defer shutdown()

	client := dialRetry(t, addrs[0])
	defer client.Close()
	for f := 0; f < 40; f++ {
		path := fmt.Sprintf("/synthetic/f%06d", f)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		if string(data) != "synthetic contents of "+path {
			t.Fatalf("open %s = %q", path, data)
		}
	}

	resp, err := http.Get("http://" + statsAddr + "/stats")
	if err != nil {
		t.Fatalf("stats endpoint: %v", err)
	}
	defer resp.Body.Close()
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if snap.Server.Requests == 0 {
		t.Error("stats report zero requests after workload")
	}
	if snap.Cluster == nil {
		t.Fatal("stats missing cluster section on a clustered node")
	}
	if snap.Cluster.Members != 3 || len(snap.Cluster.Peers) != 2 {
		t.Errorf("cluster stats members=%d peers=%d, want 3/2", snap.Cluster.Members, len(snap.Cluster.Peers))
	}
	if snap.Cluster.ForwardedOpens == 0 {
		t.Error("40-file sweep through one node forwarded nothing")
	}
	for _, p := range snap.Cluster.Peers {
		if !p.Up {
			t.Errorf("peer %s down in healthy cluster", p.Addr)
		}
	}

	// The same stats server exposes Prometheus text; it must parse under
	// the strict exposition parser and carry the full catalogue.
	mresp, err := http.Get("http://" + statsAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	parsed, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if s, ok := parsed.Find("fsnet_server_requests_total", nil); !ok || s.Value == 0 {
		t.Errorf("fsnet_server_requests_total = %+v, %v; want nonzero", s, ok)
	}
	if parsed.Types["fsnet_server_request_latency_ns"] != "histogram" {
		t.Errorf("latency type = %q, want histogram", parsed.Types["fsnet_server_request_latency_ns"])
	}
	// The latency histogram is split by phase (hit/stage/forward); the
	// sweep must have landed somewhere, whichever way routing went.
	var latCount float64
	for _, s := range parsed.Samples {
		if s.Name == "fsnet_server_request_latency_ns_count" {
			latCount += s.Value
		}
	}
	if latCount == 0 {
		t.Error("latency histogram empty after workload")
	}
	for _, name := range []string{"core_cache_hits_total", "core_cache_misses_total", "cluster_forwarded_opens_total"} {
		if _, ok := parsed.Find(name, nil); !ok {
			t.Errorf("metric %s not exported", name)
		}
	}
	// Per-peer breaker gauges: one closed series per remote peer.
	for _, p := range snap.Cluster.Peers {
		s, ok := parsed.Find("cluster_peer_state", map[string]string{"peer": p.Addr})
		if !ok {
			t.Errorf("cluster_peer_state{peer=%q} not exported", p.Addr)
		} else if s.Value != 0 {
			t.Errorf("breaker state for healthy peer %s = %v, want 0 (closed)", p.Addr, s.Value)
		}
	}

	// /metrics.json serves the same snapshot for humans and scripts.
	jresp, err := http.Get("http://" + statsAddr + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics.json endpoint: %v", err)
	}
	defer jresp.Body.Close()
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode metrics.json: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Error("metrics.json carries no metrics")
	}
}

func TestRunClusterBadConfig(t *testing.T) {
	cases := [][]string{
		// -self not a member of -peers must fail fast, before any socket.
		{"-addr", "127.0.0.1:0", "-synthetic", "5",
			"-self", "10.0.0.1:1", "-peers", "10.0.0.2:1,10.0.0.3:1"},
		// Malformed peer address.
		{"-addr", "127.0.0.1:0", "-synthetic", "5",
			"-self", "10.0.0.1:1", "-peers", "10.0.0.1:1,not-an-address"},
		// Malformed self address.
		{"-addr", "127.0.0.1:0", "-synthetic", "5",
			"-self", "nonsense", "-peers", "10.0.0.2:1"},
		// -peers and -peers-file are mutually exclusive.
		{"-addr", "127.0.0.1:0", "-synthetic", "5", "-self", "10.0.0.1:1",
			"-peers", "10.0.0.1:1", "-peers-file", "/no/such/file"},
		// Missing peers file.
		{"-addr", "127.0.0.1:0", "-synthetic", "5",
			"-self", "10.0.0.1:1", "-peers-file", "/no/such/file"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want fast config error", args)
		}
	}
}

func TestValidatePeers(t *testing.T) {
	ok := []string{"127.0.0.1:1", "127.0.0.1:2"}
	if err := validatePeers("127.0.0.1:1", ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := validatePeers("127.0.0.1:3", ok); err == nil {
		t.Error("self outside list accepted")
	}
	if err := validatePeers("no-port", ok); err == nil {
		t.Error("malformed self accepted")
	}
	if err := validatePeers("127.0.0.1:1", []string{"127.0.0.1:1", "bad"}); err == nil {
		t.Error("malformed peer accepted")
	}
	// Addresses are compared verbatim: an equivalent-but-different
	// spelling of self must be rejected, not silently half-joined.
	if err := validatePeers("localhost:1", []string{"127.0.0.1:1"}); err == nil {
		t.Error("differently spelled self accepted")
	}
}

// httpGet polls until the stats server answers, then returns the status
// code and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				t.Fatalf("read %s: %v", url, rerr)
			}
			return resp.StatusCode, string(body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("GET %s: %v", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunClusterDrainEndpoints exercises the operational surface of a
// rolling restart: /healthz and /readyz report a healthy joined node,
// POST /drain hands group state off and flips readiness to 503, and a
// second drain is rejected as a conflict.
func TestRunClusterDrainEndpoints(t *testing.T) {
	addrs := freeAddrs(t, 3)
	peers := strings.Join(addrs[:2], ",")
	statsAddr := addrs[2]

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		args := []string{
			"-addr", addrs[i], "-self", addrs[i], "-peers", peers,
			"-synthetic", "30", "-idle-timeout", "0",
		}
		if i == 0 {
			args = append(args, "-stats", statsAddr)
		}
		go func() { done <- run(args) }()
	}
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		for i := 0; i < 2; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("node exited: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("cluster node did not shut down")
				return
			}
		}
	}()

	base := "http://" + statsAddr
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := httpGet(t, base+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("/readyz = %d %q, want 200 ready", code, body)
	}

	// Open some files so the node has learned group state to hand off.
	client := dialRetry(t, addrs[0])
	for f := 0; f < 30; f++ {
		path := fmt.Sprintf("/synthetic/f%06d", f)
		if _, err := client.Open(path); err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
	}
	client.Close()

	// GET on /drain must be refused; drain is a state change.
	if code, _ := httpGet(t, base+"/drain"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /drain = %d, want 405", code)
	}

	resp, err := http.Post(base+"/drain", "", nil)
	if err != nil {
		t.Fatalf("POST /drain: %v", err)
	}
	var rep cluster.DrainReport
	if derr := json.NewDecoder(resp.Body).Decode(&rep); derr != nil {
		t.Fatalf("decode drain report: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain = %d", resp.StatusCode)
	}
	if rep.GroupsExported == 0 || rep.GroupsSent == 0 {
		t.Errorf("drain report %+v: expected exported and sent groups after workload", rep)
	}

	if code, body := httpGet(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d %q, want 503", code, body)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after drain = %d, want 200 (still alive)", code)
	}

	resp2, err := http.Post(base+"/drain", "", nil)
	if err != nil {
		t.Fatalf("second POST /drain: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second drain = %d, want 409", resp2.StatusCode)
	}

	// A drained node still answers opens locally — degraded, never dark.
	c2 := dialRetry(t, addrs[0])
	if _, err := c2.Open("/synthetic/f000003"); err != nil {
		t.Errorf("open on drained node: %v", err)
	}
	c2.Close()
}

// TestRunPeersFileReload boots a two-node cluster from a -peers-file,
// then grows the membership through POST /reload and SIGHUP, watching
// the epoch advance through /stats.
func TestRunPeersFileReload(t *testing.T) {
	addrs := freeAddrs(t, 4)
	statsAddr := addrs[3]
	pf := filepath.Join(t.TempDir(), "peers.conf")
	writePeers := func(lines ...string) {
		t.Helper()
		if err := os.WriteFile(pf, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writePeers("# initial two-node ring", addrs[0], addrs[1])

	done := make(chan error, 3)
	start := func(i int, extra ...string) {
		args := append([]string{
			"-addr", addrs[i], "-self", addrs[i], "-peers-file", pf,
			"-synthetic", "20", "-idle-timeout", "0",
		}, extra...)
		go func() { done <- run(args) }()
	}
	start(0, "-stats", statsAddr)
	start(1)
	nodes := 2
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		for i := 0; i < nodes; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("node exited: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("node did not shut down")
				return
			}
		}
	}()

	base := "http://" + statsAddr
	clusterStats := func() *cluster.NodeStats {
		t.Helper()
		_, body := httpGet(t, base+"/stats")
		var snap snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("decode stats: %v", err)
		}
		if snap.Cluster == nil {
			t.Fatal("stats missing cluster section")
		}
		return snap.Cluster
	}
	if cs := clusterStats(); cs.Epoch != 1 || cs.Members != 2 {
		t.Fatalf("initial epoch=%d members=%d, want 1/2", cs.Epoch, cs.Members)
	}

	// Grow to three nodes: extend the file, boot the joiner at epoch 2,
	// and tell node 0 to re-read via POST /reload.
	writePeers("epoch 2", addrs[0], addrs[1], addrs[2])
	start(2)
	nodes = 3
	resp, err := http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /reload = %d", resp.StatusCode)
	}
	if cs := clusterStats(); cs.Epoch != 2 || cs.Members != 3 {
		t.Fatalf("after reload epoch=%d members=%d, want 2/3", cs.Epoch, cs.Members)
	}
	// A replayed (stale) reload must be refused.
	resp2, err := http.Post(base+"/reload", "", nil)
	if err != nil {
		t.Fatalf("stale POST /reload: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("stale reload = %d, want 409", resp2.StatusCode)
	}

	// SIGHUP is the other reload path; no epoch directive means "one
	// past installed", so the edit applies everywhere it is delivered.
	writePeers(addrs[0], addrs[1], addrs[2])
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if cs := clusterStats(); cs.Epoch >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP reload did not advance the epoch")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The grown ring routes: a sweep through node 0 reaches the joiner.
	client := dialRetry(t, addrs[0])
	defer client.Close()
	for f := 0; f < 20; f++ {
		path := fmt.Sprintf("/synthetic/f%06d", f)
		if _, err := client.Open(path); err != nil {
			t.Fatalf("open %s after growth: %v", path, err)
		}
	}
}
