package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
)

func TestSeedFromDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"a.txt":     "alpha",
		"sub/b.txt": "beta",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store := fsnet.NewStore()
	n, err := seedFromDir(store, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("seeded %d files, want 2", n)
	}
	data, ok := store.Get("/sub/b.txt")
	if !ok || string(data) != "beta" {
		t.Errorf("Get(/sub/b.txt) = %q,%v", data, ok)
	}
}

func TestSeedFromDirMissing(t *testing.T) {
	if _, err := seedFromDir(fsnet.NewStore(), "/no/such/dir"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{}, // no store source
		{"-synthetic", "5", "-addr", "256.0.0.1:bad"}, // bad address
		{"-root", "/no/such/dir"},
		{"-synthetic", "5", "-group", "-3"},
		{"-synthetic", "5", "-max-conns", "-1"},
		{"-synthetic", "5", "-idle-timeout", "nonsense"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunServesAndShutsDown drives the full binary path: start, serve one
// client, SIGTERM, graceful exit.
func TestRunServesAndShutsDown(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-synthetic", "20"})
	}()
	// The listener address is random; rediscover it is not possible from
	// outside, so give the server a moment and then just exercise
	// shutdown. (Protocol behaviour is covered by fsnet's own tests.)
	time.Sleep(200 * time.Millisecond)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// Ensure the fixed-address path also works end to end with a real client.
func TestRunWithClient(t *testing.T) {
	// Find a free port first.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-synthetic", "20"})
	}()
	defer func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop")
		}
	}()

	var client *fsnet.Client
	deadline := time.Now().Add(3 * time.Second)
	for {
		client, err = fsnet.Dial(addr, fsnet.ClientConfig{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer client.Close()
	data, err := client.Open("/synthetic/f000001")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty file data")
	}
}

func TestMetadataPersistAcrossRestart(t *testing.T) {
	metaPath := filepath.Join(t.TempDir(), "meta.agsm")

	startOnce := func() {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", addr, "-synthetic", "10", "-metadata", metaPath})
		}()
		// Touch the server so it learns something on the first run.
		deadline := time.Now().Add(3 * time.Second)
		var client *fsnet.Client
		var err2 error
		for {
			client, err2 = fsnet.Dial(addr, fsnet.ClientConfig{})
			if err2 == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("dial: %v", err2)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := client.Open("/synthetic/f000000"); err != nil {
			t.Fatal(err)
		}
		_ = client.Close()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no shutdown")
		}
	}

	startOnce()
	if _, err := os.Stat(metaPath); err != nil {
		t.Fatalf("metadata not saved: %v", err)
	}
	// Second run loads the saved metadata without error.
	startOnce()
}

// freeAddrs reserves n distinct loopback addresses by listening and
// immediately closing. Racy in principle, fine for tests in practice.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return addrs
}

func dialRetry(t *testing.T, addr string) *fsnet.Client {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		client, err := fsnet.Dial(addr, fsnet.ClientConfig{})
		if err == nil {
			return client
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRunCluster boots a 3-node cluster of full aggserve instances with
// replicated synthetic stores, opens every file through one node (so
// misses forward across the ring), and reads the JSON stats endpoint.
func TestRunCluster(t *testing.T) {
	addrs := freeAddrs(t, 4)
	peers := strings.Join(addrs[:3], ",")
	statsAddr := addrs[3]

	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		args := []string{
			"-addr", addrs[i], "-self", addrs[i], "-peers", peers,
			"-synthetic", "40", "-idle-timeout", "0",
		}
		if i == 0 {
			args = append(args, "-stats", statsAddr)
		}
		go func() { done <- run(args) }()
	}
	shutdown := func() {
		_ = syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
		for i := 0; i < 3; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("node exited: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Error("cluster node did not shut down")
				return
			}
		}
	}
	defer shutdown()

	client := dialRetry(t, addrs[0])
	defer client.Close()
	for f := 0; f < 40; f++ {
		path := fmt.Sprintf("/synthetic/f%06d", f)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		if string(data) != "synthetic contents of "+path {
			t.Fatalf("open %s = %q", path, data)
		}
	}

	resp, err := http.Get("http://" + statsAddr + "/stats")
	if err != nil {
		t.Fatalf("stats endpoint: %v", err)
	}
	defer resp.Body.Close()
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if snap.Server.Requests == 0 {
		t.Error("stats report zero requests after workload")
	}
	if snap.Cluster == nil {
		t.Fatal("stats missing cluster section on a clustered node")
	}
	if snap.Cluster.Members != 3 || len(snap.Cluster.Peers) != 2 {
		t.Errorf("cluster stats members=%d peers=%d, want 3/2", snap.Cluster.Members, len(snap.Cluster.Peers))
	}
	if snap.Cluster.ForwardedOpens == 0 {
		t.Error("40-file sweep through one node forwarded nothing")
	}
	for _, p := range snap.Cluster.Peers {
		if !p.Up {
			t.Errorf("peer %s down in healthy cluster", p.Addr)
		}
	}

	// The same stats server exposes Prometheus text; it must parse under
	// the strict exposition parser and carry the full catalogue.
	mresp, err := http.Get("http://" + statsAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	parsed, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if s, ok := parsed.Find("fsnet_server_requests_total", nil); !ok || s.Value == 0 {
		t.Errorf("fsnet_server_requests_total = %+v, %v; want nonzero", s, ok)
	}
	if parsed.Types["fsnet_server_request_latency_ns"] != "histogram" {
		t.Errorf("latency type = %q, want histogram", parsed.Types["fsnet_server_request_latency_ns"])
	}
	// The latency histogram is split by phase (hit/stage/forward); the
	// sweep must have landed somewhere, whichever way routing went.
	var latCount float64
	for _, s := range parsed.Samples {
		if s.Name == "fsnet_server_request_latency_ns_count" {
			latCount += s.Value
		}
	}
	if latCount == 0 {
		t.Error("latency histogram empty after workload")
	}
	for _, name := range []string{"core_cache_hits_total", "core_cache_misses_total", "cluster_forwarded_opens_total"} {
		if _, ok := parsed.Find(name, nil); !ok {
			t.Errorf("metric %s not exported", name)
		}
	}
	// Per-peer breaker gauges: one closed series per remote peer.
	for _, p := range snap.Cluster.Peers {
		s, ok := parsed.Find("cluster_peer_state", map[string]string{"peer": p.Addr})
		if !ok {
			t.Errorf("cluster_peer_state{peer=%q} not exported", p.Addr)
		} else if s.Value != 0 {
			t.Errorf("breaker state for healthy peer %s = %v, want 0 (closed)", p.Addr, s.Value)
		}
	}

	// /metrics.json serves the same snapshot for humans and scripts.
	jresp, err := http.Get("http://" + statsAddr + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics.json endpoint: %v", err)
	}
	defer jresp.Body.Close()
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode metrics.json: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Error("metrics.json carries no metrics")
	}
}

func TestRunClusterBadConfig(t *testing.T) {
	// -self not a member of -peers must fail fast.
	err := run([]string{"-addr", "127.0.0.1:0", "-synthetic", "5",
		"-self", "10.0.0.1:1", "-peers", "10.0.0.2:1,10.0.0.3:1"})
	if err == nil {
		t.Fatal("self outside peers accepted")
	}
}
