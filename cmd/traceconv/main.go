// Command traceconv converts traces between the supported encodings
// (text, binary, and DFSTrace ASCII dumps as input) using the streaming
// scanner/writer pipeline, so traces larger than memory convert fine.
//
// Examples:
//
//	traceconv -in trace.txt -out trace.trc -to binary
//	traceconv -in dump.dfs -from dfs -out trace.txt -to text
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aggcache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("traceconv", flag.ContinueOnError)
	var (
		in   = fs.String("in", "-", "input file (- for stdin)")
		out  = fs.String("out", "-", "output file (- for stdout)")
		from = fs.String("from", "auto", "input format: auto|text|binary|dfs")
		to   = fs.String("to", "binary", "output format: text|binary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	var writer *trace.Writer
	switch *to {
	case "text":
		writer, err = trace.NewTextWriter(w)
	case "binary":
		writer, err = trace.NewBinaryWriter(w)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		return err
	}

	n, err := convert(r, *from, writer)
	if err != nil {
		return err
	}
	if err := writer.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "traceconv: %d records\n", n)
	return nil
}

// convert streams records from r (in the given format) into writer.
func convert(r io.Reader, from string, writer *trace.Writer) (int, error) {
	// DFS dumps have no streaming scanner (they need whole-trace host
	// mapping anyway and are text-light); load and replay.
	if from == "dfs" {
		tr, imp, err := trace.ReadDFSTrace(r)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "traceconv: dfs import: %d records, %d skipped ops, %d malformed\n",
			imp.Records, imp.SkippedOps, imp.Malformed)
		for _, ev := range tr.Events {
			if err := writer.Write(ev, tr.Paths.Path(ev.File)); err != nil {
				return 0, err
			}
		}
		return tr.Len(), nil
	}

	scanner, err := openScanner(r, from)
	if err != nil {
		return 0, err
	}
	n := 0
	for scanner.Scan() {
		if err := writer.Write(scanner.Event(), scanner.Path()); err != nil {
			return n, err
		}
		n++
	}
	return n, scanner.Err()
}

// openScanner builds a streaming scanner, sniffing the format when asked.
func openScanner(r io.Reader, from string) (*trace.Scanner, error) {
	switch from {
	case "text":
		return trace.NewTextScanner(r)
	case "binary":
		return trace.NewBinaryScanner(r)
	case "auto":
		br := newPeeker(r)
		head, err := br.peek(4)
		if err != nil {
			return nil, fmt.Errorf("sniff format: %w", err)
		}
		if string(head) == "AGTR" {
			return trace.NewBinaryScanner(br)
		}
		return trace.NewTextScanner(br)
	default:
		return nil, fmt.Errorf("unknown input format %q", from)
	}
}

// peeker lets the sniffer look at the first bytes without consuming them.
type peeker struct {
	r   io.Reader
	buf []byte
}

func newPeeker(r io.Reader) *peeker { return &peeker{r: r} }

func (p *peeker) peek(n int) ([]byte, error) {
	for len(p.buf) < n {
		tmp := make([]byte, n-len(p.buf))
		m, err := p.r.Read(tmp)
		p.buf = append(p.buf, tmp[:m]...)
		if err != nil {
			return p.buf, err
		}
	}
	return p.buf[:n], nil
}

func (p *peeker) Read(b []byte) (int, error) {
	if len(p.buf) > 0 {
		n := copy(b, p.buf)
		p.buf = p.buf[n:]
		return n, nil
	}
	return p.r.Read(b)
}
