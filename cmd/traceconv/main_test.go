package main

import (
	"os"
	"path/filepath"
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func writeTrace(t *testing.T, dir, name, format string) (string, *trace.Trace) {
	t.Helper()
	tr, err := workload.Standard(workload.ProfileServer, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if format == "text" {
		err = trace.WriteText(f, tr)
	} else {
		err = trace.WriteBinary(f, tr)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path, tr
}

func readAny(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == trace.ErrBadMagic {
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		tr, err = trace.ReadText(f)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func equal(a, b *trace.Trace) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
		if a.Paths.Path(a.Events[i].File) != b.Paths.Path(b.Events[i].File) {
			return false
		}
	}
	return true
}

func TestConvertTextToBinaryAndBack(t *testing.T) {
	dir := t.TempDir()
	textPath, orig := writeTrace(t, dir, "in.txt", "text")
	binPath := filepath.Join(dir, "out.trc")
	if err := run([]string{"-in", textPath, "-out", binPath, "-to", "binary"}); err != nil {
		t.Fatal(err)
	}
	backPath := filepath.Join(dir, "back.txt")
	if err := run([]string{"-in", binPath, "-out", backPath, "-to", "text"}); err != nil {
		t.Fatal(err)
	}
	if !equal(orig, readAny(t, backPath)) {
		t.Error("double conversion changed the trace")
	}
}

func TestConvertAutoSniffsBinary(t *testing.T) {
	dir := t.TempDir()
	binPath, orig := writeTrace(t, dir, "in.trc", "binary")
	outPath := filepath.Join(dir, "out.txt")
	if err := run([]string{"-in", binPath, "-out", outPath, "-from", "auto", "-to", "text"}); err != nil {
		t.Fatal(err)
	}
	if !equal(orig, readAny(t, outPath)) {
		t.Error("auto-sniffed conversion changed the trace")
	}
}

func TestConvertDFS(t *testing.T) {
	dir := t.TempDir()
	dfsPath := filepath.Join(dir, "dump.dfs")
	dump := "1.0 host 10 20 open /x\n1.5 host 10 20 open /y\n2.0 host 10 20 seek /x\n"
	if err := os.WriteFile(dfsPath, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "out.txt")
	if err := run([]string{"-in", dfsPath, "-from", "dfs", "-out", outPath, "-to", "text"}); err != nil {
		t.Fatal(err)
	}
	tr := readAny(t, outPath)
	if tr.Len() != 2 {
		t.Errorf("converted %d records, want 2 (seek skipped)", tr.Len())
	}
}

func TestConvertErrors(t *testing.T) {
	dir := t.TempDir()
	textPath, _ := writeTrace(t, dir, "in.txt", "text")
	cases := [][]string{
		{"-in", "/no/such/file"},
		{"-in", textPath, "-to", "xml"},
		{"-in", textPath, "-from", "qux"},
		{"-in", textPath, "-from", "binary"}, // wrong format declared
		{"-badflag"},
		{"-in", textPath, "-out", "/nonexistent-dir/x"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
