package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	done := make(chan string, 1)
	go func() {
		// Drain concurrently: DOT output can exceed the pipe buffer.
		buf := new(strings.Builder)
		tmp := make([]byte, 64*1024)
		for {
			n, err := r.Read(tmp)
			buf.Write(tmp[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	go func() { errCh <- f() }()
	runErr := <-errCh
	os.Stdout = old
	_ = w.Close()
	out := <-done
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return out
}

func TestDOTOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "1500"})
	})
	if !strings.HasPrefix(out, "digraph") {
		t.Errorf("not DOT output:\n%.200s", out)
	}
	if !strings.Contains(out, "->") {
		t.Error("no edges emitted")
	}
}

func TestTopRestriction(t *testing.T) {
	full := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "1500"})
	})
	top := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "1500", "-top", "5"})
	})
	if strings.Count(top, "->") >= strings.Count(full, "->") {
		t.Errorf("-top did not shrink the graph: %d vs %d edges",
			strings.Count(top, "->"), strings.Count(full, "->"))
	}
}

func TestFromTraceFile(t *testing.T) {
	tr, err := workload.Standard(workload.ProfileServer, 1, 800)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return run([]string{"-trace", path, "-top", "8"})
	})
	if !strings.HasPrefix(out, "digraph") {
		t.Error("trace-file input produced no DOT")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-profile", "bogus"},
		{"-trace", "/no/such/file"},
		{"-successors", "0", "-opens", "100"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
