// Command relgraph builds the inter-file relationship graph of §2.1 from
// a trace and emits it as Graphviz DOT, with each edge labelled by its
// likelihood rank (1 = most likely successor), like the paper's Figure 1.
//
// Examples:
//
//	relgraph -profile server -opens 5000 -top 30 | dot -Tsvg > graph.svg
//	relgraph -trace server.trc -successors 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relgraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relgraph", flag.ContinueOnError)
	var (
		traceFile = fs.String("trace", "", "trace file (text or binary); empty generates -profile")
		profile   = fs.String("profile", "server", "generated workload when -trace is empty")
		opens     = fs.Int("opens", 5000, "opens to generate when -trace is empty")
		seed      = fs.Int64("seed", 1, "generator seed")
		succCap   = fs.Int("successors", 3, "per-file successor list capacity")
		top       = fs.Int("top", 0, "restrict to the N most accessed files (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := loadTrace(*traceFile, *profile, *seed, *opens)
	if err != nil {
		return err
	}
	tk, err := successor.NewTracker(successor.PolicyLRU, *succCap)
	if err != nil {
		return err
	}
	ids := tr.OpenIDs()
	tk.ObserveAll(ids)

	if *top > 0 {
		// Restrict to the hottest files by re-tracking a filtered
		// sequence: edges between cold files would swamp the output.
		counts := tk.Counts()
		type heat struct {
			id trace.FileID
			n  uint64
		}
		hs := make([]heat, 0, len(counts))
		for id, n := range counts {
			hs = append(hs, heat{id, n})
		}
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].n != hs[j].n {
				return hs[i].n > hs[j].n
			}
			return hs[i].id < hs[j].id
		})
		keep := make(map[trace.FileID]bool, *top)
		for i := 0; i < *top && i < len(hs); i++ {
			keep[hs[i].id] = true
		}
		var filtered []trace.FileID
		for _, id := range ids {
			if keep[id] {
				filtered = append(filtered, id)
			}
		}
		tk, err = successor.NewTracker(successor.PolicyLRU, *succCap)
		if err != nil {
			return err
		}
		tk.ObserveAll(filtered)
	}

	g := successor.BuildGraph(tk)
	return g.WriteDOT(os.Stdout, tr.Paths)
}

// loadTrace mirrors cachesim's trace loading.
func loadTrace(path, profile string, seed int64, opens int) (*trace.Trace, error) {
	if path == "" {
		return workload.Standard(workload.Profile(profile), seed, opens)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == trace.ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return nil, serr
		}
		tr, err = trace.ReadText(f)
	}
	return tr, err
}
