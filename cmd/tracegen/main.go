// Command tracegen synthesizes file-access traces calibrated to the four
// workloads of the paper's evaluation and writes them in the library's
// text or binary trace format.
//
// Usage:
//
//	tracegen -profile server -opens 120000 -seed 1 -format binary -o server.trc
//
// A summary of the generated trace is printed to standard error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		profile = fs.String("profile", "server", "workload profile: workstation|users|write|server")
		opens   = fs.Int("opens", 120000, "number of open events to generate")
		seed    = fs.Int64("seed", 1, "generator seed")
		format  = fs.String("format", "text", "output format: text|binary")
		out     = fs.String("o", "-", "output file (- for stdout)")
		quiet   = fs.Bool("q", false, "suppress the summary on stderr")

		// Profile overrides; negative values keep the preset.
		clients = fs.Int("clients", -1, "override: number of interleaved clients")
		tasks   = fs.Int("tasks", -1, "override: number of recurring tasks")
		taskLen = fs.Int("tasklen", -1, "override: files per task")
		noise   = fs.Float64("noise", -1, "override: per-step deviation probability")
		churn   = fs.Float64("churn", -1, "override: per-task-completion churn probability")
		writes  = fs.Float64("writes", -1, "override: write fraction")
		phase   = fs.Int("phase", -1, "override: opens per popularity-phase rotation (0 disables drift)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := workload.ProfileConfig(workload.Profile(*profile), *seed, *opens)
	if err != nil {
		return err
	}
	if *clients >= 0 {
		cfg.Clients = *clients
	}
	if *tasks >= 0 {
		cfg.Tasks = *tasks
	}
	if *taskLen >= 0 {
		cfg.TaskLen = *taskLen
	}
	if *noise >= 0 {
		cfg.Noise = *noise
	}
	if *churn >= 0 {
		cfg.ChurnProb = *churn
	}
	if *writes >= 0 {
		cfg.WriteFraction = *writes
	}
	if *phase >= 0 {
		cfg.PhaseEvery = *phase
	}
	tr, err := workload.Generate(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "binary":
		err = trace.WriteBinary(w, tr)
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", *format)
	}
	if err != nil {
		return err
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "generated %s workload (seed %d):\n%s\n",
			*profile, *seed, trace.Summarize(tr))
	}
	return nil
}
