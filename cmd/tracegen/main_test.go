package main

import (
	"os"
	"path/filepath"
	"testing"

	"aggcache/internal/trace"
)

func TestRunGeneratesText(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.txt")
	err := run([]string{"-profile", "server", "-opens", "500", "-o", out, "-q"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tr.OpenIDs()); got != 500 {
		t.Errorf("opens = %d, want 500", got)
	}
}

func TestRunGeneratesBinary(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	err := run([]string{"-format", "binary", "-opens", "200", "-o", out, "-q"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := trace.ReadBinary(f); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverrides(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.txt")
	err := run([]string{"-opens", "300", "-clients", "3", "-writes", "0", "-o", out, "-q"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(tr)
	if s.Clients != 3 {
		t.Errorf("clients = %d, want 3", s.Clients)
	}
	if s.Writes != 0 {
		t.Errorf("writes = %d, want 0", s.Writes)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-profile", "bogus", "-o", filepath.Join(t.TempDir(), "x")},
		{"-format", "xml", "-o", filepath.Join(t.TempDir(), "x")},
		{"-badflag"},
		{"-o", "/nonexistent-dir/file"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
