package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errCh := make(chan error, 1)
	go func() { errCh <- f() }()
	runErr := <-errCh
	os.Stdout = old
	_ = w.Close()
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	_ = r.Close()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return string(out[:n])
}

func TestSweepOutput(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "2000", "-maxlen", "3"})
	})
	if !strings.Contains(out, "length  entropy(bits)") {
		t.Errorf("missing header:\n%s", out)
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("want 3 sweep rows:\n%s", out)
	}
}

func TestFilteredSweep(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "2000", "-maxlen", "2", "-filter", "50"})
	})
	if !strings.Contains(out, "filtered through LRU(50)") {
		t.Errorf("missing filter note:\n%s", out)
	}
}

func TestPerFileReportAndSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "files.svg")
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "2000", "-perfile", "5", "-svg", svg})
	})
	if !strings.Contains(out, "accesses") {
		t.Errorf("missing per-file header:\n%s", out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("svg output malformed")
	}
}

func TestTimelineAndSVG(t *testing.T) {
	svg := filepath.Join(t.TempDir(), "tl.svg")
	out := captureStdout(t, func() error {
		return run([]string{"-profile", "server", "-opens", "3000", "-timeline", "1000", "-svg", svg})
	})
	if !strings.Contains(out, "entropy(bits)") {
		t.Errorf("missing timeline header:\n%s", out)
	}
	if _, err := os.Stat(svg); err != nil {
		t.Errorf("svg not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-maxlen", "0"},
		{"-profile", "bogus"},
		{"-trace", "/no/such/file"},
		{"-badflag"},
		{"-opens", "1000", "-timeline", "1"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
