// Command entropy computes successor entropy (the paper's predictability
// metric, §4.5) for a trace, optionally after filtering it through an
// intervening LRU cache — the computations behind Figures 7 and 8.
//
// It can also emit per-file predictability reports and SVG charts (the
// visualization direction the paper's §6 sketches).
//
// Examples:
//
//	entropy -profile users -maxlen 20
//	entropy -trace users.trc -filter 500 -maxlen 20
//	entropy -profile server -perfile 25
//	entropy -profile server -perfile 25 -svg files.svg
//	entropy -profile write -timeline 5000 -svg timeline.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"aggcache/internal/entropy"
	"aggcache/internal/simulate"
	"aggcache/internal/trace"
	"aggcache/internal/viz"
	"aggcache/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "entropy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("entropy", flag.ContinueOnError)
	var (
		traceFile = fs.String("trace", "", "trace file (text or binary); empty generates -profile")
		profile   = fs.String("profile", "server", "generated workload when -trace is empty")
		opens     = fs.Int("opens", 120000, "opens to generate when -trace is empty")
		seed      = fs.Int64("seed", 1, "generator seed")
		maxLen    = fs.Int("maxlen", 20, "largest successor-sequence symbol length")
		filter    = fs.Int("filter", 0, "filter the trace through an LRU cache of this capacity first (0 = unfiltered)")
		ctxLen    = fs.Int("context", 1, "conditioning context length (1 = the paper's per-file condition)")
		perFile   = fs.Int("perfile", 0, "report the N most accessed files' per-file predictability instead of the sweep")
		timeline  = fs.Int("timeline", 0, "report entropy over windows of this many opens instead of the sweep")
		svgOut    = fs.String("svg", "", "with -perfile or -timeline: also write an SVG chart to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxLen < 1 {
		return fmt.Errorf("maxlen must be >= 1, got %d", *maxLen)
	}

	tr, err := loadTrace(*traceFile, *profile, *seed, *opens)
	if err != nil {
		return err
	}
	ids := tr.OpenIDs()

	if *perFile > 0 {
		entries := viz.Profile(tr, *perFile)
		if err := viz.WriteReport(os.Stdout, entries); err != nil {
			return err
		}
		if *svgOut != "" {
			return writeSVG(*svgOut, func(f *os.File) error {
				return viz.WriteBarsSVG(f, entries)
			})
		}
		return nil
	}
	if *timeline > 0 {
		windows, err := viz.Windows(ids, *timeline)
		if err != nil {
			return err
		}
		fmt.Println(" start  entropy(bits)")
		for _, w := range windows {
			fmt.Printf("%6d  %13.4f\n", w.Start, w.Bits)
		}
		if *svgOut != "" {
			return writeSVG(*svgOut, func(f *os.File) error {
				return viz.WriteTimelineSVG(f, windows)
			})
		}
		return nil
	}

	if *filter > 0 {
		ids, err = simulate.FilterLRU(ids, *filter)
		if err != nil {
			return err
		}
		fmt.Printf("filtered through LRU(%d): %d misses remain\n", *filter, len(ids))
	}

	if *ctxLen < 1 {
		return fmt.Errorf("context must be >= 1, got %d", *ctxLen)
	}
	results := make([]entropy.Result, 0, *maxLen)
	for k := 1; k <= *maxLen; k++ {
		r, err := entropy.ConditionalEntropy(ids, *ctxLen, k)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Println("length  entropy(bits)  files  occurrences")
	for _, r := range results {
		fmt.Printf("%6d  %13.4f  %5d  %11d\n", r.SymbolLength, r.Bits, r.Files, r.Occurrences)
	}
	return nil
}

// loadTrace mirrors cachesim's trace loading but keeps the whole trace
// (per-file reports need path names).
func loadTrace(path, profile string, seed int64, opens int) (*trace.Trace, error) {
	if path == "" {
		return workload.Standard(workload.Profile(profile), seed, opens)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err == trace.ErrBadMagic {
		if _, serr := f.Seek(0, 0); serr != nil {
			return nil, serr
		}
		tr, err = trace.ReadText(f)
	}
	return tr, err
}

// writeSVG writes a chart through render into path.
func writeSVG(path string, render func(*os.File) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return render(f)
}
