package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "benchmarks": [
    {"name": "BenchmarkOpenLoopback", "procs": 1, "iterations": 100,
     "metrics": {"allocs/op": 4, "ns/op": 5000, "B/op": 1200}},
    {"name": "BenchmarkOpenPipelined", "procs": 8, "iterations": 100,
     "metrics": {"allocs/op": 10, "ns/op": 2000, "B/op": 900}},
    {"name": "BenchmarkOnlyInBaseline", "procs": 1, "iterations": 1,
     "metrics": {"allocs/op": 1, "ns/op": 10}}
  ]
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(baselineJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinThreshold(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkOpenLoopback \t 120 \t 5500 ns/op \t 1200 B/op \t 4 allocs/op\n" +
			"BenchmarkOpenPipelined-8 \t 120 \t 1900 ns/op \t 900 B/op \t 11 allocs/op\n")
	var out bytes.Buffer
	if err := run([]string{"-baseline", writeBaseline(t)}, in, &out); err != nil {
		t.Fatalf("gate failed within threshold: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SKIP  BenchmarkOnlyInBaseline") {
		t.Errorf("missing SKIP line for unrun baseline benchmark:\n%s", out.String())
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	// 4 -> 7 allocs/op: over 20% plus the 0.5 slack.
	in := strings.NewReader("BenchmarkOpenLoopback \t 120 \t 5000 ns/op \t 1200 B/op \t 7 allocs/op\n")
	var out bytes.Buffer
	err := run([]string{"-baseline", writeBaseline(t)}, in, &out)
	if err == nil {
		t.Fatalf("gate passed a 75%% alloc regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL  BenchmarkOpenLoopback") {
		t.Errorf("missing FAIL line:\n%s", out.String())
	}
}

func TestGateIgnoresTimeRegression(t *testing.T) {
	// ns/op triples but allocs hold: informational only.
	in := strings.NewReader("BenchmarkOpenLoopback \t 120 \t 15000 ns/op \t 1200 B/op \t 4 allocs/op\n")
	var out bytes.Buffer
	if err := run([]string{"-baseline", writeBaseline(t)}, in, &out); err != nil {
		t.Fatalf("gate failed on wall-time noise: %v\n%s", err, out.String())
	}
}

func TestGateHandlesNewAndMetricless(t *testing.T) {
	in := strings.NewReader(
		"BenchmarkBrandNew \t 10 \t 100 ns/op \t 1 allocs/op\n" +
			"BenchmarkOpenLoopback \t 120 \t 5000 ns/op \t 4321 opens/s\n")
	var out bytes.Buffer
	if err := run([]string{"-baseline", writeBaseline(t)}, in, &out); err != nil {
		t.Fatalf("gate failed on new/metricless benchmarks: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "NEW   BenchmarkBrandNew") {
		t.Errorf("missing NEW line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "INFO  BenchmarkOpenLoopback") {
		t.Errorf("missing INFO line for allocs-less run:\n%s", out.String())
	}
}

func TestGateRejectsEmptyInput(t *testing.T) {
	if err := run([]string{"-baseline", writeBaseline(t)}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("empty bench output passed the gate")
	}
}
