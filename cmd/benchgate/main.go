// Command benchgate is the allocation-regression gate: it reads fresh
// `go test -bench` output on stdin, diffs it against a committed
// baseline (BENCH_BASELINE.json, the benchparse schema), and fails when
// allocs/op regresses beyond the threshold on any benchmark present in
// both sets.
//
//	go test -run '^$' -bench . -benchmem ./internal/fsnet/ | benchgate -baseline BENCH_BASELINE.json
//
// allocs/op is the gated metric: it is deterministic for a fixed code
// path, so a 20% jump is a code change, not scheduler noise. ns/op and
// B/op deltas are reported for context but never fail the gate — wall
// time on shared CI machines is too noisy to gate on. Benchmarks only in
// the baseline (not run today) or only in today's run (new) are listed
// and skipped. Refresh the baseline with `make bench-json` when a change
// moves the numbers on purpose.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"aggcache/internal/benchparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fl := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fl.String("baseline", "BENCH_BASELINE.json", "committed baseline to diff against")
	threshold := fl.Float64("threshold", 0.20, "allowed fractional allocs/op regression before the gate fails")
	slack := fl.Float64("slack", 0.5, "absolute allocs/op slack added to the threshold, so near-zero baselines do not fail on rounding")
	if err := fl.Parse(args); err != nil {
		return err
	}
	if *threshold < 0 {
		return fmt.Errorf("-threshold must be >= 0, got %v", *threshold)
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var baseline benchparse.Set
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse baseline %s: %w", *baselinePath, err)
	}

	current, err := benchparse.Parse(bufio.NewReader(in))
	if err != nil {
		return fmt.Errorf("parse bench output: %w", err)
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (is the -bench regexp right?)")
	}

	base := make(map[string]benchparse.Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}

	var failures int
	seen := make(map[string]bool)
	for _, cur := range current.Benchmarks {
		seen[cur.Name] = true
		ref, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(out, "NEW   %-40s (not in baseline; add via make bench-json)\n", cur.Name)
			continue
		}
		curAllocs, haveCur := cur.Metrics["allocs/op"]
		refAllocs, haveRef := ref.Metrics["allocs/op"]
		nsDelta := delta(cur.Metrics["ns/op"], ref.Metrics["ns/op"])
		if !haveCur || !haveRef {
			// aggbench gobench lines carry opens/s but no -benchmem
			// columns; report throughput movement instead of gating.
			fmt.Fprintf(out, "INFO  %-40s ns/op %+.1f%% (no allocs/op; not gated)\n", cur.Name, nsDelta)
			continue
		}
		limit := refAllocs*(1+*threshold) + *slack
		if curAllocs > limit {
			failures++
			fmt.Fprintf(out, "FAIL  %-40s allocs/op %.1f -> %.1f (limit %.1f)  ns/op %+.1f%%\n",
				cur.Name, refAllocs, curAllocs, limit, nsDelta)
			continue
		}
		fmt.Fprintf(out, "ok    %-40s allocs/op %.1f -> %.1f  ns/op %+.1f%%\n",
			cur.Name, refAllocs, curAllocs, nsDelta)
	}
	for _, ref := range baseline.Benchmarks {
		if !seen[ref.Name] {
			fmt.Fprintf(out, "SKIP  %-40s (in baseline, not in this run)\n", ref.Name)
		}
	}

	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed allocs/op beyond %.0f%%", failures, *threshold*100)
	}
	return nil
}

// delta returns the percentage change from ref to cur, 0 when ref is
// missing or zero (context only; never gated).
func delta(cur, ref float64) float64 {
	if ref == 0 {
		return 0
	}
	return (cur - ref) / ref * 100
}
