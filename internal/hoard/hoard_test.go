package hoard

import (
	"math/rand"
	"testing"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

func tracker(t *testing.T, seq []trace.FileID) *successor.Tracker {
	t.Helper()
	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll(seq)
	return tr
}

func TestBuildValidation(t *testing.T) {
	tr := tracker(t, nil)
	if _, err := Build(nil, PolicyFrequency, 10, 1); err == nil {
		t.Error("nil tracker accepted")
	}
	if _, err := Build(tr, "bogus", 10, 1); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := Build(tr, PolicyFrequency, -1, 1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Build(tr, PolicyGroupClosure, 10, 0); err == nil {
		t.Error("zero group size accepted for closure policy")
	}
}

func TestBuildFrequencyTakesHottest(t *testing.T) {
	seq := []trace.FileID{1, 1, 1, 2, 2, 3}
	h, err := Build(tracker(t, seq), PolicyFrequency, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(1) || !h.Contains(2) {
		t.Errorf("hoard = %v, want {1,2}", h.Files())
	}
	if h.Contains(3) || h.Len() != 2 {
		t.Errorf("hoard = %v, want exactly {1,2}", h.Files())
	}
}

func TestBuildRespectsBudget(t *testing.T) {
	var seq []trace.FileID
	for i := 0; i < 100; i++ {
		seq = append(seq, trace.FileID(i%20))
	}
	tr := tracker(t, seq)
	for _, p := range []Policy{PolicyFrequency, PolicyGroupClosure} {
		h, err := Build(tr, p, 7, 4)
		if err != nil {
			t.Fatal(err)
		}
		if h.Len() > 7 {
			t.Errorf("%s: hoard size %d exceeds budget 7", p, h.Len())
		}
	}
}

func TestBuildZeroBudget(t *testing.T) {
	h, err := Build(tracker(t, []trace.FileID{1, 2}), PolicyFrequency, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Errorf("hoard = %v, want empty", h.Files())
	}
}

func TestGroupClosureHoardsWholeWorkingSets(t *testing.T) {
	// One hot task {1,2,3} (each file 10 accesses) and several lukewarm
	// standalone files with 4-9 accesses each. Frequency at budget 3
	// takes 1,2,3 too... make the standalone files hotter than the
	// task tail: task files 2,3 get fewer accesses than standalones.
	var seq []trace.FileID
	for i := 0; i < 10; i++ {
		seq = append(seq, 1, 2, 3) // chain; each member 10 accesses
	}
	for i := 0; i < 12; i++ {
		seq = append(seq, 50) // hot standalone
	}
	for i := 0; i < 11; i++ {
		seq = append(seq, 51)
	}
	tr := tracker(t, seq)

	h, err := Build(tr, PolicyGroupClosure, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The hottest seed is 50 (12 accesses): its group is just itself
	// (its successor list points to 50->50? no: successive 50s make
	// 50->50 self loop, filtered by Build's dedup). Then 51. Then 1's
	// closure {1,2,3} but only 1 slot remains -> partial. The point of
	// this test is subtler: with budget 5 the closure policy must bring
	// in 2 and 3 along with 1.
	h5, err := Build(tr, PolicyGroupClosure, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !h5.Contains(1) || !h5.Contains(2) || !h5.Contains(3) {
		t.Errorf("budget-5 closure hoard = %v, want task {1,2,3} complete", h5.Files())
	}
	_ = h
}

func TestEvaluate(t *testing.T) {
	h := &Hoard{files: map[trace.FileID]bool{1: true, 2: true}}
	r := Evaluate(h, []trace.FileID{1, 2, 3, 1, 4})
	if r.Accesses != 5 || r.Misses != 2 {
		t.Errorf("result = %+v", r)
	}
	if r.MissRate() != 0.4 {
		t.Errorf("MissRate = %v, want 0.4", r.MissRate())
	}
	if (Result{}).MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
}

func TestEvaluateRuns(t *testing.T) {
	h := &Hoard{files: map[trace.FileID]bool{1: true, 2: true}}
	r := EvaluateRuns(h, [][]trace.FileID{{1, 2}, {1, 3}, {2}})
	if r.Runs != 3 || r.Complete != 2 {
		t.Errorf("result = %+v", r)
	}
	if got := r.CompletionRate(); got < 0.66 || got > 0.67 {
		t.Errorf("CompletionRate = %v, want 2/3", got)
	}
	if (RunResult{}).CompletionRate() != 0 {
		t.Error("empty CompletionRate != 0")
	}
}

// The headline: on task-structured workloads judged by whole-session
// completeness, hoarding working-set closures beats hoarding by raw
// popularity at the same budget. Frequency ranks the early files of many
// tasks above the rarely-reached tails of even the hottest tasks, so it
// beheads every working set; closure hoards fewer tasks but whole.
func TestGroupClosureBeatsFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// 12 tasks x 8 files. 70% of runs hit the 4 hot tasks. A run
	// executes a random prefix of its task (interrupted builds), which
	// gives within-task popularity skew: tails are much colder than
	// heads.
	var tasks [][]trace.FileID
	id := trace.FileID(0)
	for i := 0; i < 12; i++ {
		var task []trace.FileID
		for j := 0; j < 8; j++ {
			task = append(task, id)
			id++
		}
		tasks = append(tasks, task)
	}
	pickTask := func() int {
		if rng.Float64() < 0.55 {
			return rng.Intn(3) // hot tasks
		}
		return 3 + rng.Intn(9)
	}
	// Connected-time history: many runs are interrupted early
	// (incremental builds, aborted scripts), truncating geometrically.
	// This is what gives within-task popularity skew: task tails are
	// far colder than heads, so frequency selection beheads every task.
	var past []trace.FileID
	for i := 0; i < 800; i++ {
		task := tasks[pickTask()]
		for _, id := range task {
			past = append(past, id)
			if rng.Float64() > 0.65 {
				break
			}
		}
	}
	// Disconnected sessions are complete work sessions: the whole task
	// is needed or the session fails.
	var future [][]trace.FileID
	for i := 0; i < 200; i++ {
		future = append(future, tasks[pickTask()])
	}

	tr := tracker(t, past)
	const budget = 32 // room for exactly 4 whole tasks
	freq, err := Build(tr, PolicyFrequency, budget, 8)
	if err != nil {
		t.Fatal(err)
	}
	closure, err := Build(tr, PolicyGroupClosure, budget, 8)
	if err != nil {
		t.Fatal(err)
	}
	fr := EvaluateRuns(freq, future)
	cr := EvaluateRuns(closure, future)
	t.Logf("disconnected run completion: frequency=%.3f group-closure=%.3f",
		fr.CompletionRate(), cr.CompletionRate())
	if cr.CompletionRate() <= fr.CompletionRate() {
		t.Errorf("group closure (%.3f) did not beat frequency (%.3f)",
			cr.CompletionRate(), fr.CompletionRate())
	}
}

// Complementary finding to the paper's Figure 5: recency-ranked successor
// lists are best for *cache* metadata, but hoard closures are better built
// from frequency-ranked lists — interrupted runs inject recent-but-wrong
// successors that recency ranking follows off the working set, while
// frequency ranking keeps the stable task structure.
func TestFrequencyRankedClosuresHoardBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const numTasks, taskLen = 12, 8
	var tasks [][]trace.FileID
	id := trace.FileID(0)
	for i := 0; i < numTasks; i++ {
		var task []trace.FileID
		for j := 0; j < taskLen; j++ {
			task = append(task, id)
			id++
		}
		tasks = append(tasks, task)
	}
	pick := func() int {
		if rng.Float64() < 0.55 {
			return rng.Intn(3)
		}
		return 3 + rng.Intn(numTasks-3)
	}
	var past []trace.FileID
	for i := 0; i < 1500; i++ {
		for _, fid := range tasks[pick()] {
			past = append(past, fid)
			if rng.Float64() > 0.65 {
				break
			}
		}
	}
	var future [][]trace.FileID
	for i := 0; i < 300; i++ {
		future = append(future, tasks[pick()])
	}

	completion := func(policy successor.Policy) float64 {
		tr, err := successor.NewTracker(policy, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr.ObserveAll(past)
		h, err := Build(tr, PolicyGroupClosure, 32, taskLen)
		if err != nil {
			t.Fatal(err)
		}
		return EvaluateRuns(h, future).CompletionRate()
	}
	lru := completion(successor.PolicyLRU)
	lfu := completion(successor.PolicyLFU)
	t.Logf("closure completion: lru-ranked=%.3f lfu-ranked=%.3f", lru, lfu)
	if lfu <= lru {
		t.Errorf("frequency-ranked closures (%.3f) did not beat recency-ranked (%.3f)", lfu, lru)
	}
}
