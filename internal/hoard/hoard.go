// Package hoard applies grouping to mobile file hoarding — the paper's §6
// names this application as future work and §5 contrasts it with the Seer
// project's clustering approach. A hoard is the set of files copied onto a
// disconnecting machine; a hoard miss while disconnected is a hard
// failure, not a latency blip, so hoard selection quality matters more
// than cache replacement quality.
//
// Two selectors are provided:
//
//   - Frequency: take the most-accessed files until the budget is spent —
//     the independence-assumption baseline.
//   - GroupClosure: walk seeds in decreasing access count, but charge the
//     budget for each seed's *group* (its predicted successor closure) as
//     a unit, so working sets are hoarded whole instead of beheaded.
//
// On task-structured workloads, frequency selection strands the cold tail
// of every popular working set; group closure hoards fewer distinct
// working sets but hoards them completely, and wins on disconnected miss
// rate.
package hoard

import (
	"fmt"
	"sort"

	"aggcache/internal/group"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

// Policy selects a hoard-construction strategy.
type Policy string

// Hoard selection policies.
const (
	// PolicyFrequency hoards the globally most-accessed files.
	PolicyFrequency Policy = "frequency"
	// PolicyGroupClosure hoards whole predicted working sets.
	PolicyGroupClosure Policy = "group"
)

// Hoard is a selected set of files, bounded by a budget.
type Hoard struct {
	files map[trace.FileID]bool
}

// Contains reports whether id is hoarded.
func (h *Hoard) Contains(id trace.FileID) bool { return h.files[id] }

// Len returns the number of hoarded files.
func (h *Hoard) Len() int { return len(h.files) }

// Files returns the hoarded ids in ascending order.
func (h *Hoard) Files() []trace.FileID {
	out := make([]trace.FileID, 0, len(h.files))
	for id := range h.files {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Build selects up to budget files using the tracker's metadata. For
// PolicyGroupClosure, groupSize bounds each seed's closure (it is ignored
// for PolicyFrequency).
func Build(t *successor.Tracker, policy Policy, budget, groupSize int) (*Hoard, error) {
	if t == nil {
		return nil, fmt.Errorf("hoard: tracker must not be nil")
	}
	if budget < 0 {
		return nil, fmt.Errorf("hoard: budget must be >= 0, got %d", budget)
	}
	seeds := seedsByHeat(t)
	h := &Hoard{files: make(map[trace.FileID]bool, budget)}

	switch policy {
	case PolicyFrequency:
		for _, id := range seeds {
			if h.Len() >= budget {
				break
			}
			h.files[id] = true
		}
	case PolicyGroupClosure:
		if groupSize < 1 {
			return nil, fmt.Errorf("hoard: group size must be >= 1, got %d", groupSize)
		}
		b, err := group.NewBuilder(t, groupSize, group.StrategyChain)
		if err != nil {
			return nil, err
		}
		for _, id := range seeds {
			if h.Len() >= budget {
				break
			}
			if h.files[id] {
				continue
			}
			for _, m := range b.Build(id) {
				if h.Len() >= budget {
					break
				}
				h.files[m] = true
			}
		}
	default:
		return nil, fmt.Errorf("hoard: unknown policy %q", policy)
	}
	return h, nil
}

// seedsByHeat returns every file the tracker has seen, in decreasing
// access-count order (ids ascending on ties, for determinism).
func seedsByHeat(t *successor.Tracker) []trace.FileID {
	counts := t.Counts()
	out := make([]trace.FileID, 0, len(counts))
	for id := range counts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Result is the outcome of a disconnected-operation replay.
type Result struct {
	Accesses uint64
	Misses   uint64
}

// MissRate is disconnected misses over accesses.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// Evaluate replays a (future) access sequence against the hoard: every
// access to an unhoarded file is a disconnected miss.
func Evaluate(h *Hoard, seq []trace.FileID) Result {
	var r Result
	for _, id := range seq {
		r.Accesses++
		if !h.Contains(id) {
			r.Misses++
		}
	}
	return r
}

// RunResult is the outcome of a session-level replay: disconnected work
// usually fails entirely when any needed file is missing (a build with a
// missing header does not half-succeed), so hoards are judged on how many
// whole runs they can serve.
type RunResult struct {
	Runs     uint64
	Complete uint64
}

// CompletionRate is fully served runs over all runs.
func (r RunResult) CompletionRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Complete) / float64(r.Runs)
}

// EvaluateRuns replays task runs against the hoard; a run is complete iff
// every one of its accesses is hoarded.
func EvaluateRuns(h *Hoard, runs [][]trace.FileID) RunResult {
	var r RunResult
	for _, run := range runs {
		r.Runs++
		complete := true
		for _, id := range run {
			if !h.Contains(id) {
				complete = false
				break
			}
		}
		if complete {
			r.Complete++
		}
	}
	return r
}
