package singleflight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoalescesOverlappingCalls pins the contract fsnet and cluster
// both rely on: one execution per key among overlapping callers, fresh
// execution once the flight has landed.
func TestDoCoalescesOverlappingCalls(t *testing.T) {
	var g Group[string]
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		val, ok, coalesced := g.Do("k", func() (string, bool) {
			calls.Add(1)
			close(entered)
			<-release
			return "value", true
		})
		if !ok || coalesced || val != "value" {
			t.Errorf("leader got val=%q ok=%v coalesced=%v", val, ok, coalesced)
		}
	}()
	<-entered

	const followers = 8
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, ok, coalesced := g.Do("k", func() (string, bool) {
				t.Error("follower executed fn despite leader in flight")
				return "", false
			})
			if !ok || !coalesced || val != "value" {
				t.Errorf("follower got val=%q ok=%v coalesced=%v", val, ok, coalesced)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the followers join the flight
	close(release)
	wg.Wait()
	<-leaderDone
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}

	// Non-overlapping call starts fresh.
	_, _, coalesced := g.Do("k", func() (string, bool) { calls.Add(1); return "", true })
	if coalesced {
		t.Error("later call reported coalesced")
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("fn ran %d times after fresh call, want 2", n)
	}
}

// TestDoDistinctKeysRunIndependently: flights on different keys never
// block each other or share results.
func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int]
	aEntered := make(chan struct{})
	aRelease := make(chan struct{})
	go g.Do("a", func() (int, bool) {
		close(aEntered)
		<-aRelease
		return 1, true
	})
	<-aEntered
	done := make(chan struct{})
	go func() {
		defer close(done)
		val, ok, coalesced := g.Do("b", func() (int, bool) { return 2, true })
		if val != 2 || !ok || coalesced {
			t.Errorf(`Do("b") = %d,%v,%v`, val, ok, coalesced)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal(`Do("b") blocked behind the "a" flight`)
	}
	close(aRelease)
}

// TestDoNotOK: a leader returning ok=false shares that verdict with its
// followers (the "ran and found nothing" case).
func TestDoNotOK(t *testing.T) {
	var g Group[[]byte]
	val, ok, coalesced := g.Do("missing", func() ([]byte, bool) { return nil, false })
	if val != nil || ok || coalesced {
		t.Errorf("Do = %v,%v,%v, want nil,false,false", val, ok, coalesced)
	}
}

// TestDoConcurrentStress hammers one Group from many goroutines across a
// handful of keys; run under -race this pins memory safety of the
// flight lifecycle (claim, execute, land, delete).
func TestDoConcurrentStress(t *testing.T) {
	var g Group[int]
	keys := []string{"a", "b", "c", "d"}
	var executions atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := keys[(i+j)%len(keys)]
				val, ok, _ := g.Do(key, func() (int, bool) {
					executions.Add(1)
					return len(key), true
				})
				if !ok || val != len(key) {
					t.Errorf("Do(%q) = %d,%v", key, val, ok)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if executions.Load() == 0 {
		t.Error("fn never executed")
	}
}
