// Package singleflight coalesces concurrent calls that share a key:
// overlapping Do calls with the same key run the function once and share
// the first caller's result. It generalizes the staging coalescer that
// grew up inside internal/fsnet's server (DESIGN.md §10) so the cluster
// peer tier can reuse the exact same contract for cross-peer fetches.
//
// Results are only shared between calls that overlap in time; a call that
// starts after the flight completed runs fresh. That is deliberately
// weaker than a cache — the point is to collapse a thundering herd into
// one execution, not to remember answers.
package singleflight

import "sync"

// Group coalesces concurrent Do calls per key. The zero value is ready to
// use. A Group must not be copied after first use.
type Group[V any] struct {
	mu      sync.Mutex
	flights map[string]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	ok   bool
}

// Do runs fn once per key among overlapping callers: the first caller for
// a key (the leader) executes fn; callers that arrive while the leader is
// in flight block and share its result. coalesced reports whether this
// caller joined another caller's flight instead of executing fn itself.
//
// The ok result is carried through from fn verbatim; it lets callers
// distinguish "ran and found nothing" from a usable result without
// resorting to sentinel values.
func (g *Group[V]) Do(key string, fn func() (V, bool)) (val V, ok, coalesced bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight[V])
	}
	if f, exists := g.flights[key]; exists {
		g.mu.Unlock()
		<-f.done
		return f.val, f.ok, true
	}
	f := &flight[V]{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.val, f.ok = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.ok, false
}
