package cache

import "aggcache/internal/trace"

// LFU is a least-frequently-used cache with O(1) operations, implemented
// with a doubly linked list of frequency buckets, each holding an LRU list
// of entries at that frequency. Ties at the minimum frequency are broken in
// LRU order, which is the strongest common variant and the fairest baseline
// for Figure 4.
//
// Frequencies are counted only while a file is resident (no ghost history);
// this matches the paper's description of a "basic" LFU server cache.
type LFU struct {
	capacity int
	nodes    map[trace.FileID]*lfuNode
	freqHead *freqBucket // lowest frequency
	stats    Stats
}

var _ Cache = (*LFU)(nil)

type freqBucket struct {
	freq       uint64
	head, tail *lfuNode // head is most recent within the bucket
	prev, next *freqBucket
}

type lfuNode struct {
	id         trace.FileID
	bucket     *freqBucket
	prev, next *lfuNode
}

// NewLFU returns an LFU cache holding up to capacity files.
func NewLFU(capacity int) (*LFU, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &LFU{
		capacity: capacity,
		nodes:    make(map[trace.FileID]*lfuNode, capacity),
	}, nil
}

// Access records a demand reference: a hit promotes id to the next
// frequency bucket, a miss inserts it at frequency 1, evicting the least
// frequent (LRU-within-bucket) victim if full.
func (c *LFU) Access(id trace.FileID) bool {
	if n, ok := c.nodes[id]; ok {
		c.stats.Hits++
		c.promote(n)
		return true
	}
	c.stats.Misses++
	if len(c.nodes) >= c.capacity {
		c.evict()
	}
	c.insert(id)
	return false
}

// Contains reports residency without perturbing state.
func (c *LFU) Contains(id trace.FileID) bool {
	_, ok := c.nodes[id]
	return ok
}

// Frequency returns the resident frequency count of id, or 0 if absent.
func (c *LFU) Frequency(id trace.FileID) uint64 {
	if n, ok := c.nodes[id]; ok {
		return n.bucket.freq
	}
	return 0
}

// Len returns the number of resident files.
func (c *LFU) Len() int { return len(c.nodes) }

// Cap returns the capacity in files.
func (c *LFU) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *LFU) Stats() Stats { return c.stats }

// Victim returns the id that would be evicted next, or false if empty.
func (c *LFU) Victim() (trace.FileID, bool) {
	if c.freqHead == nil {
		return 0, false
	}
	return c.freqHead.tail.id, true
}

func (c *LFU) insert(id trace.FileID) {
	b := c.freqHead
	if b == nil || b.freq != 1 {
		nb := &freqBucket{freq: 1, next: b}
		if b != nil {
			b.prev = nb
		}
		c.freqHead = nb
		b = nb
	}
	n := &lfuNode{id: id}
	c.nodes[id] = n
	bucketPushHead(b, n)
	n.bucket = b
}

// promote moves n from its bucket to the freq+1 bucket.
func (c *LFU) promote(n *lfuNode) {
	b := n.bucket
	next := b.next
	if next == nil || next.freq != b.freq+1 {
		nb := &freqBucket{freq: b.freq + 1, prev: b, next: next}
		if next != nil {
			next.prev = nb
		}
		b.next = nb
		next = nb
	}
	c.bucketRemove(b, n)
	bucketPushHead(next, n)
	n.bucket = next
}

func (c *LFU) evict() {
	b := c.freqHead
	v := b.tail
	c.bucketRemove(b, v)
	delete(c.nodes, v.id)
	c.stats.Evictions++
}

// bucketRemove unlinks n from b, dropping b entirely if it empties.
func (c *LFU) bucketRemove(b *freqBucket, n *lfuNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
	n.prev, n.next = nil, nil
	if b.head == nil {
		// Unlink the empty bucket.
		if b.prev != nil {
			b.prev.next = b.next
		} else {
			c.freqHead = b.next
		}
		if b.next != nil {
			b.next.prev = b.prev
		}
	}
}

func bucketPushHead(b *freqBucket, n *lfuNode) {
	n.next = b.head
	n.prev = nil
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}
