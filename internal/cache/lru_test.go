package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/trace"
)

func TestNewLRURejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		if _, err := NewLRU(c); err == nil {
			t.Errorf("NewLRU(%d) succeeded", c)
		}
	}
}

func TestLRUBasicHitMiss(t *testing.T) {
	c, _ := NewLRU(2)
	if c.Access(1) {
		t.Error("first access hit")
	}
	if !c.Access(1) {
		t.Error("second access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _ := NewLRU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(1) // 1 is now MRU; LRU order: 1,3,2
	c.Access(4) // evicts 2
	if c.Contains(2) {
		t.Error("2 still resident, want evicted")
	}
	for _, id := range []trace.FileID{1, 3, 4} {
		if !c.Contains(id) {
			t.Errorf("%d evicted, want resident", id)
		}
	}
	if v, ok := c.Victim(); !ok || v != 3 {
		t.Errorf("Victim = %d,%v want 3,true", v, ok)
	}
}

func TestLRUInsertTailIsNextVictim(t *testing.T) {
	c, _ := NewLRU(3)
	c.Access(1)
	c.Access(2)
	c.InsertTail(9)
	if v, _ := c.Victim(); v != 9 {
		t.Errorf("Victim = %d, want tail-inserted 9", v)
	}
	// Tail insert into a full cache evicts the old tail, and the
	// newcomer becomes the victim.
	c.Access(3) // miss on full cache evicts tail 9; order now 3,2,1
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	c.InsertTail(10)
	if c.Len() != 3 {
		t.Errorf("Len = %d after tail insert, want 3", c.Len())
	}
	if v, _ := c.Victim(); v != 10 {
		t.Errorf("Victim = %d, want 10", v)
	}
}

func TestLRUInsertTailResidentNoop(t *testing.T) {
	c, _ := NewLRU(3)
	c.Access(1)
	c.Access(2) // order: 2,1
	c.InsertTail(2)
	got := c.Resident()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("Resident = %v, want [2 1] (tail insert must not demote a resident)", got)
	}
}

func TestLRUTouch(t *testing.T) {
	c, _ := NewLRU(2)
	c.Access(1)
	c.Access(2) // order: 2,1
	if !c.Touch(1) {
		t.Error("Touch(1) = false")
	}
	if c.Touch(9) {
		t.Error("Touch(9) = true for absent id")
	}
	// Touch must not count demand stats.
	if s := c.Stats(); s.Hits != 0 || s.Misses != 2 {
		t.Errorf("stats after Touch = %+v", s)
	}
	if v, _ := c.Victim(); v != 2 {
		t.Errorf("Victim = %d, want 2 after touching 1", v)
	}
}

func TestLRURemove(t *testing.T) {
	c, _ := NewLRU(2)
	c.Access(1)
	c.Access(2)
	if !c.Remove(1) {
		t.Error("Remove(1) = false")
	}
	if c.Remove(1) {
		t.Error("double Remove(1) = true")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if s := c.Stats(); s.Evictions != 0 {
		t.Errorf("Remove counted as eviction: %+v", s)
	}
}

func TestLRUResidentOrder(t *testing.T) {
	c, _ := NewLRU(4)
	for _, id := range []trace.FileID{1, 2, 3} {
		c.Access(id)
	}
	c.InsertTail(9)
	got := c.Resident()
	want := []trace.FileID{3, 2, 1, 9}
	if len(got) != len(want) {
		t.Fatalf("Resident = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resident = %v, want %v", got, want)
		}
	}
}

func TestLRUVictimEmpty(t *testing.T) {
	c, _ := NewLRU(1)
	if _, ok := c.Victim(); ok {
		t.Error("Victim on empty cache reported ok")
	}
}

// lruModel is an executable-specification LRU used to cross-check the
// linked-list implementation.
type lruModel struct {
	cap   int
	order []trace.FileID // MRU first
}

func (m *lruModel) access(id trace.FileID) bool {
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			m.order = append([]trace.FileID{id}, m.order...)
			return true
		}
	}
	m.order = append([]trace.FileID{id}, m.order...)
	if len(m.order) > m.cap {
		m.order = m.order[:m.cap]
	}
	return false
}

// Property: the LRU implementation agrees with the executable model on
// random access strings, and never exceeds capacity.
func TestLRUMatchesModel(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		c, err := NewLRU(capacity)
		if err != nil {
			return false
		}
		m := &lruModel{cap: capacity}
		for i := 0; i < 500; i++ {
			id := trace.FileID(rng.Intn(capacity * 3))
			if c.Access(id) != m.access(id) {
				return false
			}
			if c.Len() > capacity {
				return false
			}
			got := c.Resident()
			if len(got) != len(m.order) {
				return false
			}
			for j := range got {
				if got[j] != m.order[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
