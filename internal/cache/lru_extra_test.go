package cache

import (
	"testing"

	"aggcache/internal/trace"
)

func TestLRUEvictVictim(t *testing.T) {
	c, _ := NewLRU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	id, ok := c.EvictVictim()
	if !ok || id != 1 {
		t.Fatalf("EvictVictim = %d,%v want 1,true", id, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	c.EvictVictim()
	c.EvictVictim()
	if _, ok := c.EvictVictim(); ok {
		t.Error("EvictVictim on empty cache reported ok")
	}
}

func TestLRUEvictVictimExceptSkipsProtected(t *testing.T) {
	c, _ := NewLRU(4)
	for _, id := range []trace.FileID{1, 2, 3, 4} {
		c.Access(id)
	}
	// LRU order (victim first): 1, 2, 3, 4.
	protected := map[trace.FileID]bool{1: true, 2: true}
	id, ok := c.EvictVictimExcept(protected)
	if !ok || id != 3 {
		t.Fatalf("EvictVictimExcept = %d,%v want 3,true", id, ok)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("protected entries evicted")
	}
}

func TestLRUEvictVictimExceptAllProtected(t *testing.T) {
	c, _ := NewLRU(2)
	c.Access(1)
	c.Access(2)
	if _, ok := c.EvictVictimExcept(map[trace.FileID]bool{1: true, 2: true}); ok {
		t.Error("eviction succeeded with every resident protected")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (nothing evicted)", c.Len())
	}
}

func TestLRUOnEvictCallback(t *testing.T) {
	c, _ := NewLRU(2)
	var evicted []trace.FileID
	c.OnEvict(func(id trace.FileID) { evicted = append(evicted, id) })
	c.Access(1)
	c.Access(2)
	c.Access(3) // evicts 1
	c.EvictVictim()
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted = %v, want [1 2]", evicted)
	}
	// Remove must NOT fire the callback.
	c.Access(4)
	before := len(evicted)
	c.Remove(4)
	if len(evicted) != before {
		t.Error("Remove fired the eviction callback")
	}
	// Clearing the callback must stop notifications.
	c.OnEvict(nil)
	c.Access(5)
	c.Access(6)
	if len(evicted) != before {
		t.Error("cleared callback still fired")
	}
}
