package cache

import (
	"container/list"

	"aggcache/internal/trace"
)

// ARC is the Adaptive Replacement Cache of Megiddo & Modha (FAST 2003), a
// later landmark answer to the same recency-vs-frequency tension the
// paper's §2.2 discusses. It splits residents between a recency list (T1)
// and a frequency list (T2), keeps ghost histories of evictions from each
// (B1, B2), and continuously tunes the target size p of T1 from which
// ghost list is getting hits. Included as an ablation baseline.
type ARC struct {
	capacity int
	p        int // target size of t1

	t1, t2, b1, b2 *list.List // MRU at Front
	where          map[trace.FileID]arcLoc
	elems          map[trace.FileID]*list.Element
	stats          Stats
}

var _ Cache = (*ARC)(nil)

type arcLoc uint8

const (
	inT1 arcLoc = iota + 1
	inT2
	inB1
	inB2
)

// NewARC returns an ARC cache holding up to capacity files.
func NewARC(capacity int) (*ARC, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &ARC{
		capacity: capacity,
		t1:       list.New(),
		t2:       list.New(),
		b1:       list.New(),
		b2:       list.New(),
		where:    make(map[trace.FileID]arcLoc, 2*capacity),
		elems:    make(map[trace.FileID]*list.Element, 2*capacity),
	}, nil
}

// Access records a demand reference per the ARC algorithm.
func (c *ARC) Access(id trace.FileID) bool {
	switch c.where[id] {
	case inT1, inT2:
		// Case I: hit — promote to MRU of T2.
		c.stats.Hits++
		c.remove(id)
		c.pushFront(c.t2, id, inT2)
		return true

	case inB1:
		// Case II: ghost hit in B1 — favour recency.
		c.stats.Misses++
		c.p = minInt(c.capacity, c.p+maxInt(1, c.b2.Len()/maxInt(1, c.b1.Len())))
		c.replace(false)
		c.remove(id)
		c.pushFront(c.t2, id, inT2)
		return false

	case inB2:
		// Case III: ghost hit in B2 — favour frequency.
		c.stats.Misses++
		c.p = maxInt(0, c.p-maxInt(1, c.b1.Len()/maxInt(1, c.b2.Len())))
		c.replace(true)
		c.remove(id)
		c.pushFront(c.t2, id, inT2)
		return false
	}

	// Case IV: complete miss.
	c.stats.Misses++
	switch {
	case c.t1.Len()+c.b1.Len() == c.capacity:
		if c.t1.Len() < c.capacity {
			c.dropLRU(c.b1)
			c.replace(false)
		} else {
			// B1 is empty and T1 full: evict T1's LRU outright.
			c.evictLRU(c.t1)
		}
	case c.t1.Len()+c.b1.Len() < c.capacity:
		total := c.t1.Len() + c.t2.Len() + c.b1.Len() + c.b2.Len()
		if total >= c.capacity {
			if total == 2*c.capacity {
				c.dropLRU(c.b2)
			}
			c.replace(false)
		}
	}
	c.pushFront(c.t1, id, inT1)
	return false
}

// Contains reports residency (T1 or T2) without perturbing state.
func (c *ARC) Contains(id trace.FileID) bool {
	loc := c.where[id]
	return loc == inT1 || loc == inT2
}

// Len returns the number of resident files.
func (c *ARC) Len() int { return c.t1.Len() + c.t2.Len() }

// Cap returns the capacity in files.
func (c *ARC) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *ARC) Stats() Stats { return c.stats }

// TargetRecency returns p, ARC's learned target size for the recency
// list — observable for tests and ablation reports.
func (c *ARC) TargetRecency() int { return c.p }

// replace demotes a resident to its ghost list per the ARC REPLACE rule.
func (c *ARC) replace(ghostHitInB2 bool) {
	if c.t1.Len() >= 1 && (c.t1.Len() > c.p || (ghostHitInB2 && c.t1.Len() == c.p)) {
		id := c.t1.Back().Value.(trace.FileID)
		c.remove(id)
		c.pushFront(c.b1, id, inB1)
		c.stats.Evictions++
	} else if c.t2.Len() > 0 {
		id := c.t2.Back().Value.(trace.FileID)
		c.remove(id)
		c.pushFront(c.b2, id, inB2)
		c.stats.Evictions++
	}
}

func (c *ARC) pushFront(l *list.List, id trace.FileID, loc arcLoc) {
	c.elems[id] = l.PushFront(id)
	c.where[id] = loc
}

// remove unlinks id from whichever list holds it.
func (c *ARC) remove(id trace.FileID) {
	if e, ok := c.elems[id]; ok {
		switch c.where[id] {
		case inT1:
			c.t1.Remove(e)
		case inT2:
			c.t2.Remove(e)
		case inB1:
			c.b1.Remove(e)
		case inB2:
			c.b2.Remove(e)
		}
		delete(c.elems, id)
		delete(c.where, id)
	}
}

// dropLRU forgets the LRU entry of a ghost list.
func (c *ARC) dropLRU(l *list.List) {
	if back := l.Back(); back != nil {
		c.remove(back.Value.(trace.FileID))
	}
}

// evictLRU evicts the LRU resident of l without ghost tracking.
func (c *ARC) evictLRU(l *list.List) {
	if back := l.Back(); back != nil {
		c.remove(back.Value.(trace.FileID))
		c.stats.Evictions++
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
