package cache

import (
	"container/list"

	"aggcache/internal/trace"
)

// TwoQ is the 2Q replacement policy of Johnson & Shasha (VLDB 1994) — the
// baseline the MQ paper (Zhou et al., cited in the paper's related work)
// measures itself against. New entries go to a small FIFO probation queue
// (A1in); entries evicted from probation leave a ghost (A1out); a
// re-reference while ghosted proves reuse and promotes the entry into the
// main LRU area (Am). One-shot scans therefore wash through probation
// without disturbing the hot set.
type TwoQ struct {
	capacity int
	kin      int // max resident probation entries
	kout     int // max ghost entries

	a1in  *list.List // FIFO, front = newest
	a1out *list.List // ghost FIFO, front = newest
	am    *list.List // LRU, front = MRU
	where map[trace.FileID]twoqLoc
	elems map[trace.FileID]*list.Element
	stats Stats
}

var _ Cache = (*TwoQ)(nil)

type twoqLoc uint8

const (
	inA1in twoqLoc = iota + 1
	inA1out
	inAm
)

// NewTwoQ returns a 2Q cache holding up to capacity files, with the
// authors' recommended tuning: Kin = capacity/4, Kout = capacity/2.
func NewTwoQ(capacity int) (*TwoQ, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	return &TwoQ{
		capacity: capacity,
		kin:      kin,
		kout:     kout,
		a1in:     list.New(),
		a1out:    list.New(),
		am:       list.New(),
		where:    make(map[trace.FileID]twoqLoc, 2*capacity),
		elems:    make(map[trace.FileID]*list.Element, 2*capacity),
	}, nil
}

// Access records a demand reference per the 2Q algorithm.
func (c *TwoQ) Access(id trace.FileID) bool {
	switch c.where[id] {
	case inAm:
		c.stats.Hits++
		c.am.MoveToFront(c.elems[id])
		return true
	case inA1in:
		// 2Q leaves probation entries where they are: a quick second
		// touch within the FIFO window is not proof of long-term reuse.
		c.stats.Hits++
		return true
	case inA1out:
		// Ghost hit: proven reuse; promote into the main area.
		c.stats.Misses++
		c.removeFrom(c.a1out, id)
		c.makeRoom()
		c.elems[id] = c.am.PushFront(id)
		c.where[id] = inAm
		return false
	}
	c.stats.Misses++
	c.makeRoom()
	c.elems[id] = c.a1in.PushFront(id)
	c.where[id] = inA1in
	return false
}

// Contains reports residency (A1in or Am) without perturbing state.
func (c *TwoQ) Contains(id trace.FileID) bool {
	loc := c.where[id]
	return loc == inA1in || loc == inAm
}

// Len returns the number of resident files.
func (c *TwoQ) Len() int { return c.a1in.Len() + c.am.Len() }

// Cap returns the capacity in files.
func (c *TwoQ) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *TwoQ) Stats() Stats { return c.stats }

// makeRoom frees one slot if the cache is full: probation overflow spills
// to the ghost list; otherwise the main area's LRU entry goes (with no
// ghost — Am departures have already proven and spent their reuse).
func (c *TwoQ) makeRoom() {
	if c.Len() < c.capacity {
		return
	}
	if c.a1in.Len() > c.kin || (c.am.Len() == 0 && c.a1in.Len() > 0) {
		// Evict probation tail to ghost.
		back := c.a1in.Back()
		id := back.Value.(trace.FileID)
		c.removeFrom(c.a1in, id)
		c.elems[id] = c.a1out.PushFront(id)
		c.where[id] = inA1out
		if c.a1out.Len() > c.kout {
			old := c.a1out.Back().Value.(trace.FileID)
			c.removeFrom(c.a1out, old)
		}
		c.stats.Evictions++
		return
	}
	if c.am.Len() > 0 {
		id := c.am.Back().Value.(trace.FileID)
		c.removeFrom(c.am, id)
		c.stats.Evictions++
	}
}

func (c *TwoQ) removeFrom(l *list.List, id trace.FileID) {
	if e, ok := c.elems[id]; ok {
		l.Remove(e)
		delete(c.elems, id)
		delete(c.where, id)
	}
}
