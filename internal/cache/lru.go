package cache

import "aggcache/internal/trace"

// LRU is a least-recently-used cache. Beyond the Cache interface it exposes
// the explicit placement operations the aggregating cache needs: the paper
// places the demanded file at the head of the LRU list and appends the rest
// of the fetched group at the tail so that unconfirmed successors do not
// displace confirmed residents (§3).
type LRU struct {
	capacity int
	nodes    map[trace.FileID]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	free     *lruNode // recycled nodes, so steady-state churn stays off the heap
	onEvict  func(trace.FileID)
	stats    Stats
}

var _ Cache = (*LRU)(nil)

type lruNode struct {
	id         trace.FileID
	prev, next *lruNode
}

// NewLRU returns an LRU cache holding up to capacity files.
func NewLRU(capacity int) (*LRU, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &LRU{
		capacity: capacity,
		nodes:    make(map[trace.FileID]*lruNode, capacity),
	}, nil
}

// Access records a demand reference: a hit moves id to the head, a miss
// inserts it at the head, evicting the tail if full.
func (c *LRU) Access(id trace.FileID) bool {
	if n, ok := c.nodes[id]; ok {
		c.stats.Hits++
		c.moveToHead(n)
		return true
	}
	c.stats.Misses++
	c.InsertHead(id)
	return false
}

// Contains reports residency without touching recency or stats.
func (c *LRU) Contains(id trace.FileID) bool {
	_, ok := c.nodes[id]
	return ok
}

// Touch moves a resident id to the head without counting a demand access.
// It reports whether id was resident.
func (c *LRU) Touch(id trace.FileID) bool {
	n, ok := c.nodes[id]
	if ok {
		c.moveToHead(n)
	}
	return ok
}

// InsertHead places id at the most-recently-used position, evicting from
// the tail if needed. A resident id is moved, not duplicated.
func (c *LRU) InsertHead(id trace.FileID) {
	if n, ok := c.nodes[id]; ok {
		c.moveToHead(n)
		return
	}
	c.makeRoom()
	n := c.newNode(id)
	c.nodes[id] = n
	c.pushHead(n)
}

// InsertTail places id at the least-recently-used position — the paper's
// placement for opportunistically fetched group members. A resident id is
// left where it is (it already earned its position). Inserting into a full
// cache evicts the current tail first, so the newcomer never displaces more
// than one resident and becomes the next victim itself.
func (c *LRU) InsertTail(id trace.FileID) {
	if _, ok := c.nodes[id]; ok {
		return
	}
	c.makeRoom()
	n := c.newNode(id)
	c.nodes[id] = n
	if c.tail == nil {
		c.head, c.tail = n, n
		return
	}
	n.prev = c.tail
	c.tail.next = n
	c.tail = n
}

// Remove drops id from the cache, reporting whether it was resident.
// The removal is not counted as an eviction.
func (c *LRU) Remove(id trace.FileID) bool {
	n, ok := c.nodes[id]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.nodes, id)
	c.recycle(n)
	return true
}

// Len returns the number of resident files.
func (c *LRU) Len() int { return len(c.nodes) }

// Cap returns the capacity in files.
func (c *LRU) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *LRU) Stats() Stats { return c.stats }

// Victim returns the id that would be evicted next, or false if empty.
func (c *LRU) Victim() (trace.FileID, bool) {
	if c.tail == nil {
		return 0, false
	}
	return c.tail.id, true
}

// EvictVictimExcept evicts the least recently used entry whose id is not
// in protected, reporting which id was dropped, or false when every
// resident is protected. The aggregating cache uses this so that making
// room for an incoming group never evicts the group's own members — the
// paper's "increasing the retention priority of soon-to-be-accessed group
// members".
func (c *LRU) EvictVictimExcept(protected map[trace.FileID]bool) (trace.FileID, bool) {
	for n := c.tail; n != nil; n = n.prev {
		if protected[n.id] {
			continue
		}
		return c.evict(n), true
	}
	return 0, false
}

// EvictVictimExceptIDs is EvictVictimExcept with the protected set given
// as a slice — for callers whose set is a small fetch group. Membership
// is a linear scan, which for the paper's g of a handful beats building
// a map on every miss; the slice is read-only and never retained.
func (c *LRU) EvictVictimExceptIDs(protected []trace.FileID) (trace.FileID, bool) {
	for n := c.tail; n != nil; n = n.prev {
		if containsID(protected, n.id) {
			continue
		}
		return c.evict(n), true
	}
	return 0, false
}

func containsID(ids []trace.FileID, id trace.FileID) bool {
	for _, p := range ids {
		if p == id {
			return true
		}
	}
	return false
}

// evict removes n for capacity, recycles it, and fires the hook.
func (c *LRU) evict(n *lruNode) trace.FileID {
	id := n.id
	c.unlink(n)
	delete(c.nodes, id)
	c.recycle(n)
	c.stats.Evictions++
	if c.onEvict != nil {
		c.onEvict(id)
	}
	return id
}

// OnEvict registers f to be called with each id evicted for capacity
// (including EvictVictim, but not Remove). Pass nil to clear.
func (c *LRU) OnEvict(f func(trace.FileID)) { c.onEvict = f }

// EvictVictim evicts the least recently used entry, reporting which id was
// dropped. Used by the aggregating cache to make room for an incoming
// group before placing its members at the tail.
func (c *LRU) EvictVictim() (trace.FileID, bool) {
	if c.tail == nil {
		return 0, false
	}
	return c.evict(c.tail), true
}

// Resident returns the resident ids from most to least recently used.
func (c *LRU) Resident() []trace.FileID {
	out := make([]trace.FileID, 0, len(c.nodes))
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.id)
	}
	return out
}

func (c *LRU) makeRoom() {
	for len(c.nodes) >= c.capacity {
		c.evict(c.tail)
	}
}

// newNode reuses a recycled node when one is available; in steady state
// (every insertion paired with an eviction) the list allocates nothing.
func (c *LRU) newNode(id trace.FileID) *lruNode {
	if n := c.free; n != nil {
		c.free = n.next
		n.id = id
		n.prev, n.next = nil, nil
		return n
	}
	return &lruNode{id: id}
}

// recycle pushes an unlinked node onto the free list. The list never
// exceeds the high-water mark of concurrent residents, so it cannot grow
// beyond capacity nodes.
func (c *LRU) recycle(n *lruNode) {
	n.prev = nil
	n.next = c.free
	c.free = n
}

func (c *LRU) pushHead(n *lruNode) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) moveToHead(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushHead(n)
}

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
