package cache

import (
	"math/rand"
	"testing"

	"aggcache/internal/trace"
)

func TestNewFactory(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCLOCK, PolicyMQ, PolicyARC, PolicyTwoQ} {
		c, err := New(p, 8)
		if err != nil {
			t.Fatalf("New(%s): %v", p, err)
		}
		if c.Cap() != 8 {
			t.Errorf("New(%s).Cap() = %d, want 8", p, c.Cap())
		}
	}
	if _, err := New("belady", 8); err == nil {
		t.Error("New(belady) succeeded, want error")
	}
	if _, err := New(PolicyLRU, 0); err == nil {
		t.Error("New(lru, 0) succeeded, want error")
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("idle HitRate != 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", s.Accesses())
	}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", s.HitRate())
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

// Property shared by all online policies: occupancy never exceeds capacity,
// Contains agrees with what Access just did, and a repeated access always
// hits.
func TestAllPoliciesInvariants(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCLOCK, PolicyMQ, PolicyARC, PolicyTwoQ} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			c, err := New(p, 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				id := trace.FileID(rng.Intn(40))
				c.Access(id)
				if c.Len() > c.Cap() {
					t.Fatalf("occupancy %d exceeds capacity %d", c.Len(), c.Cap())
				}
				if !c.Contains(id) {
					t.Fatalf("just-accessed %d not resident", id)
				}
				if !c.Access(id) {
					t.Fatalf("immediate re-access of %d missed", id)
				}
			}
			s := c.Stats()
			if s.Accesses() != 4000 {
				t.Errorf("accesses = %d, want 4000", s.Accesses())
			}
		})
	}
}

// A cache with capacity >= universe must stop missing once warm.
func TestAllPoliciesNoEvictionWhenOversized(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCLOCK, PolicyMQ, PolicyARC, PolicyTwoQ} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			c, err := New(p, 100)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 3000; i++ {
				c.Access(trace.FileID(rng.Intn(50)))
			}
			s := c.Stats()
			if s.Evictions != 0 {
				t.Errorf("evictions = %d, want 0", s.Evictions)
			}
			if s.Misses != 50 {
				t.Errorf("misses = %d, want 50 (one per unique file)", s.Misses)
			}
		})
	}
}

func TestCLOCKSecondChance(t *testing.T) {
	c, _ := NewCLOCK(3)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	// Re-reference 1: its bit is set, so the sweep must skip it and evict
	// 2 (the first unreferenced entry after clearing order).
	c.Access(1)
	c.Access(4)
	if !c.Contains(1) {
		t.Error("referenced 1 evicted despite second chance")
	}
	if c.Contains(2) {
		t.Error("2 survived, want evicted")
	}
}

func TestCLOCKAllReferencedDegradesToFIFO(t *testing.T) {
	c, _ := NewCLOCK(2)
	c.Access(1)
	c.Access(2)
	c.Access(1)
	c.Access(2) // both referenced
	c.Access(3) // sweep clears both, evicts the first candidate
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if !c.Contains(3) {
		t.Error("newcomer 3 not resident")
	}
}

func TestMQPromotesFrequentBlocks(t *testing.T) {
	c, _ := NewMQ(4)
	// Make 1 frequent.
	for i := 0; i < 8; i++ {
		c.Access(1)
	}
	c.Access(2)
	c.Access(3)
	c.Access(4)
	// Cache full; a burst of new files should evict the low-frequency
	// queue entries, never the frequent 1.
	c.Access(5)
	c.Access(6)
	if !c.Contains(1) {
		t.Error("frequent file 1 evicted before one-shot files")
	}
}

func TestMQHistoryRestoresFrequency(t *testing.T) {
	c, _ := NewMQLifeTime(2, 1000)
	for i := 0; i < 7; i++ {
		c.Access(1) // freq 7 -> level 2
	}
	c.Access(2)
	c.Access(3) // evicts... 2 or 1 depending on queues; force 1 out:
	c.Access(2)
	c.Access(3)
	// After enough churn 1 is evicted; re-access it and it should be
	// protected quickly thanks to ghost history.
	if c.Contains(1) {
		// Evict 1 by filling with fresh ids.
		c.Access(4)
		c.Access(5)
	}
	if c.Contains(1) {
		t.Skip("workload did not evict 1; MQ parameters changed")
	}
	c.Access(1) // recall: freq resumes near 8, placing it in a high queue
	c.Access(9)
	c.Access(10)
	if !c.Contains(1) {
		t.Error("re-fetched frequent file 1 evicted immediately; ghost history not applied")
	}
}

func TestNewMQLifeTimeValidation(t *testing.T) {
	if _, err := NewMQLifeTime(4, 0); err == nil {
		t.Error("NewMQLifeTime(4, 0) succeeded")
	}
	if _, err := NewMQLifeTime(0, 10); err == nil {
		t.Error("NewMQLifeTime(0, 10) succeeded")
	}
}

func TestOPTKnownSequence(t *testing.T) {
	// Classic example: with capacity 2 and string 1 2 3 1 2, OPT keeps 1
	// and 2 when 3 arrives... it must evict one of {1,2}; farthest next
	// use at that point: next(1)=3, next(2)=4, so it evicts 2? No: 3 is
	// inserted; victim is the resident with the farthest next use, which
	// is 2 (index 4) vs 1 (index 3) -> evict 2. Then 1 hits, 2 misses.
	refs := []trace.FileID{1, 2, 3, 1, 2}
	opt, err := NewOPT(2, refs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.Hits != 1 || s.Misses != 4 {
		t.Errorf("OPT stats = %+v, want 1 hit 4 misses", s)
	}
}

func TestOPTBeatsLRUOnLoopingPattern(t *testing.T) {
	// Cyclic reference of N+1 files through an N-sized cache is LRU's
	// pathological case (0% hits); OPT must do strictly better.
	var refs []trace.FileID
	for round := 0; round < 50; round++ {
		for id := trace.FileID(0); id < 5; id++ {
			refs = append(refs, id)
		}
	}
	lru, _ := NewLRU(4)
	for _, id := range refs {
		lru.Access(id)
	}
	opt, _ := NewOPT(4, refs)
	optStats, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if lru.Stats().Hits != 0 {
		t.Fatalf("LRU hits = %d on loop, want 0", lru.Stats().Hits)
	}
	if optStats.Hits == 0 {
		t.Error("OPT hits = 0 on loop, want > 0")
	}
}

func TestOPTErrors(t *testing.T) {
	refs := []trace.FileID{1, 2}
	opt, _ := NewOPT(1, refs)
	if _, err := opt.Access(9); err == nil {
		t.Error("Access with wrong id succeeded")
	}
	if _, err := opt.Access(1); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Access(2); err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Access(1); err == nil {
		t.Error("Access past end succeeded")
	}
	if _, err := NewOPT(0, refs); err == nil {
		t.Error("NewOPT(0) succeeded")
	}
}

// Property: no online policy beats OPT's hit count on random strings.
func TestOPTIsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		refs := make([]trace.FileID, 3000)
		for i := range refs {
			// Mildly skewed random references.
			refs[i] = trace.FileID(rng.Intn(rng.Intn(60) + 1))
		}
		const capacity = 12
		opt, _ := NewOPT(capacity, refs)
		optStats, err := opt.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCLOCK, PolicyMQ, PolicyARC, PolicyTwoQ} {
			c, _ := New(p, capacity)
			for _, id := range refs {
				c.Access(id)
			}
			if got := c.Stats().Hits; got > optStats.Hits {
				t.Errorf("trial %d: %s hits %d > OPT hits %d", trial, p, got, optStats.Hits)
			}
		}
	}
}

func TestOPTContainsLenCap(t *testing.T) {
	refs := []trace.FileID{1, 2, 1}
	opt, _ := NewOPT(2, refs)
	if _, err := opt.Access(1); err != nil {
		t.Fatal(err)
	}
	if !opt.Contains(1) || opt.Contains(2) {
		t.Error("Contains wrong after one access")
	}
	if opt.Len() != 1 || opt.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d, want 1/2", opt.Len(), opt.Cap())
	}
}
