package cache

import (
	"fmt"
	"math/bits"

	"aggcache/internal/trace"
)

// MQ implements the Multi-Queue replacement algorithm of Zhou, Philbin and
// Li (USENIX ATC 2001), which the paper cites as the contemporaneous answer
// to the same second-level-cache problem the aggregating cache addresses in
// §4.3. MQ keeps m LRU queues; a block with resident frequency f lives in
// queue floor(log2 f). Blocks expire out of their queue after lifeTime
// accesses without a reference and are demoted one level. A ghost history
// remembers the frequency of recently evicted blocks so a re-fetched block
// re-enters at its old level.
type MQ struct {
	capacity int
	lifeTime uint64
	queues   []*mqQueue
	nodes    map[trace.FileID]*mqNode
	history  *historyBuffer
	now      uint64 // logical clock: one tick per demand access
	stats    Stats
}

var _ Cache = (*MQ)(nil)

const (
	mqNumQueues = 8
	// mqDefaultLifeTime follows the paper's guidance that lifeTime should
	// approximate the peak temporal distance between correlated accesses;
	// for file-level traces a few hundred accesses works well and the
	// value is configurable through NewMQLifeTime.
	mqDefaultLifeTime = 256
)

type mqQueue struct {
	head, tail *mqNode // head = MRU
	size       int
}

type mqNode struct {
	id         trace.FileID
	freq       uint64
	level      int
	expire     uint64
	prev, next *mqNode
}

// historyBuffer is MQ's ghost cache: id -> frequency at eviction, bounded
// FIFO.
type historyBuffer struct {
	capacity int
	order    []trace.FileID
	freqs    map[trace.FileID]uint64
}

func newHistoryBuffer(capacity int) *historyBuffer {
	return &historyBuffer{
		capacity: capacity,
		freqs:    make(map[trace.FileID]uint64, capacity),
	}
}

func (h *historyBuffer) remember(id trace.FileID, freq uint64) {
	if _, ok := h.freqs[id]; !ok {
		if len(h.order) >= h.capacity {
			old := h.order[0]
			h.order = h.order[1:]
			delete(h.freqs, old)
		}
		h.order = append(h.order, id)
	}
	h.freqs[id] = freq
}

func (h *historyBuffer) recall(id trace.FileID) (uint64, bool) {
	f, ok := h.freqs[id]
	if ok {
		delete(h.freqs, id)
		for i, v := range h.order {
			if v == id {
				h.order = append(h.order[:i], h.order[i+1:]...)
				break
			}
		}
	}
	return f, ok
}

// NewMQ returns an MQ cache with the default lifeTime and a ghost history
// sized at 4x capacity (the authors' recommendation).
func NewMQ(capacity int) (*MQ, error) {
	return NewMQLifeTime(capacity, mqDefaultLifeTime)
}

// NewMQLifeTime returns an MQ cache with an explicit queue lifeTime.
func NewMQLifeTime(capacity int, lifeTime uint64) (*MQ, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	if lifeTime == 0 {
		return nil, fmt.Errorf("cache: mq lifeTime must be positive")
	}
	qs := make([]*mqQueue, mqNumQueues)
	for i := range qs {
		qs[i] = &mqQueue{}
	}
	return &MQ{
		capacity: capacity,
		lifeTime: lifeTime,
		queues:   qs,
		nodes:    make(map[trace.FileID]*mqNode, capacity),
		history:  newHistoryBuffer(4 * capacity),
	}, nil
}

// Access records a demand reference per the MQ algorithm.
func (c *MQ) Access(id trace.FileID) bool {
	c.now++
	hit := false
	if n, ok := c.nodes[id]; ok {
		c.stats.Hits++
		hit = true
		c.queueRemove(n)
		n.freq++
		n.level = mqLevel(n.freq)
		n.expire = c.now + c.lifeTime
		c.queuePushHead(n)
	} else {
		c.stats.Misses++
		if len(c.nodes) >= c.capacity {
			c.evict()
		}
		freq := uint64(1)
		if old, ok := c.history.recall(id); ok {
			freq = old + 1
		}
		n := &mqNode{id: id, freq: freq, level: mqLevel(freq), expire: c.now + c.lifeTime}
		c.nodes[id] = n
		c.queuePushHead(n)
	}
	c.adjust()
	return hit
}

// Contains reports residency without perturbing state.
func (c *MQ) Contains(id trace.FileID) bool {
	_, ok := c.nodes[id]
	return ok
}

// Len returns the number of resident files.
func (c *MQ) Len() int { return len(c.nodes) }

// Cap returns the capacity in files.
func (c *MQ) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *MQ) Stats() Stats { return c.stats }

// adjust demotes expired queue tails one level, as in the published
// algorithm ("Adjust" runs once per access).
func (c *MQ) adjust() {
	for lvl := 1; lvl < mqNumQueues; lvl++ {
		q := c.queues[lvl]
		if q.tail != nil && q.tail.expire < c.now {
			n := q.tail
			c.queueRemove(n)
			n.level = lvl - 1
			n.expire = c.now + c.lifeTime
			c.queuePushHead(n)
		}
	}
}

func (c *MQ) evict() {
	for lvl := 0; lvl < mqNumQueues; lvl++ {
		q := c.queues[lvl]
		if q.tail == nil {
			continue
		}
		v := q.tail
		c.queueRemove(v)
		delete(c.nodes, v.id)
		c.history.remember(v.id, v.freq)
		c.stats.Evictions++
		return
	}
}

func (c *MQ) queuePushHead(n *mqNode) {
	q := c.queues[n.level]
	n.next = q.head
	n.prev = nil
	if q.head != nil {
		q.head.prev = n
	}
	q.head = n
	if q.tail == nil {
		q.tail = n
	}
	q.size++
}

func (c *MQ) queueRemove(n *mqNode) {
	q := c.queues[n.level]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		q.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		q.tail = n.prev
	}
	n.prev, n.next = nil, nil
	q.size--
}

// mqLevel maps a frequency to its queue index: floor(log2 f), capped.
func mqLevel(freq uint64) int {
	lvl := bits.Len64(freq) - 1
	if lvl >= mqNumQueues {
		lvl = mqNumQueues - 1
	}
	return lvl
}
