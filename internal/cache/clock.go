package cache

import "aggcache/internal/trace"

// CLOCK is the classic second-chance approximation of LRU: resident files
// sit on a circular list with a reference bit; the hand sweeps past
// referenced entries (clearing their bit) and evicts the first
// unreferenced one. Included as an additional baseline for ablations.
type CLOCK struct {
	capacity int
	nodes    map[trace.FileID]*clockNode
	hand     *clockNode // next candidate in the circular list
	stats    Stats
}

var _ Cache = (*CLOCK)(nil)

type clockNode struct {
	id         trace.FileID
	referenced bool
	prev, next *clockNode
}

// NewCLOCK returns a CLOCK cache holding up to capacity files.
func NewCLOCK(capacity int) (*CLOCK, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	return &CLOCK{
		capacity: capacity,
		nodes:    make(map[trace.FileID]*clockNode, capacity),
	}, nil
}

// Access records a demand reference: a hit sets the reference bit, a miss
// inserts the file just behind the hand, evicting via the sweep if full.
func (c *CLOCK) Access(id trace.FileID) bool {
	if n, ok := c.nodes[id]; ok {
		c.stats.Hits++
		n.referenced = true
		return true
	}
	c.stats.Misses++
	if len(c.nodes) >= c.capacity {
		c.evict()
	}
	c.insert(id)
	return false
}

// Contains reports residency without perturbing state.
func (c *CLOCK) Contains(id trace.FileID) bool {
	_, ok := c.nodes[id]
	return ok
}

// Len returns the number of resident files.
func (c *CLOCK) Len() int { return len(c.nodes) }

// Cap returns the capacity in files.
func (c *CLOCK) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *CLOCK) Stats() Stats { return c.stats }

func (c *CLOCK) insert(id trace.FileID) {
	n := &clockNode{id: id, referenced: false}
	c.nodes[id] = n
	if c.hand == nil {
		n.prev, n.next = n, n
		c.hand = n
		return
	}
	// Insert immediately before the hand so the newcomer is the last
	// entry the sweep reaches.
	p := c.hand.prev
	p.next = n
	n.prev = p
	n.next = c.hand
	c.hand.prev = n
}

func (c *CLOCK) evict() {
	for {
		if !c.hand.referenced {
			v := c.hand
			if v.next == v {
				c.hand = nil
			} else {
				v.prev.next = v.next
				v.next.prev = v.prev
				c.hand = v.next
			}
			delete(c.nodes, v.id)
			c.stats.Evictions++
			return
		}
		c.hand.referenced = false
		c.hand = c.hand.next
	}
}
