// Package cache provides the whole-file cache simulators the paper's
// experiments are built on: LRU and LFU (the baselines of Figure 4), plus
// CLOCK, Multi-Queue (Zhou et al. 2001, discussed in related work) and
// Belady's OPT as reference points for ablation studies.
//
// Caches here model whole-file caching driven by open requests, exactly as
// in the paper's evaluation: an Access is a demand reference that counts a
// hit or a miss and inserts the file on a miss.
package cache

import (
	"fmt"

	"aggcache/internal/trace"
)

// Cache is a fixed-capacity whole-file cache simulator.
type Cache interface {
	// Access records a demand reference to id. On a miss the file is
	// inserted (evicting per policy if full). Reports whether the
	// reference hit.
	Access(id trace.FileID) bool
	// Contains reports whether id is resident without perturbing any
	// replacement state or statistics.
	Contains(id trace.FileID) bool
	// Len returns the number of resident files.
	Len() int
	// Cap returns the capacity in files.
	Cap() int
	// Stats returns a copy of the access statistics so far.
	Stats() Stats
}

// Stats counts the demand activity of a cache.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Accesses returns the number of demand references.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns hits over accesses, or 0 for an idle cache.
func (s Stats) HitRate() float64 {
	if n := s.Accesses(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d hit-rate=%.3f",
		s.Hits, s.Misses, s.Evictions, s.HitRate())
}

// Policy names a replacement policy for construction by tools and sweeps.
type Policy string

// Replacement policies available from New.
const (
	PolicyLRU   Policy = "lru"
	PolicyLFU   Policy = "lfu"
	PolicyCLOCK Policy = "clock"
	PolicyMQ    Policy = "mq"
	PolicyARC   Policy = "arc"
	PolicyTwoQ  Policy = "2q"
)

// New constructs a cache of the given policy and capacity. OPT is excluded
// because it needs the future reference string; build it with NewOPT.
func New(p Policy, capacity int) (Cache, error) {
	switch p {
	case PolicyLRU:
		return NewLRU(capacity)
	case PolicyLFU:
		return NewLFU(capacity)
	case PolicyCLOCK:
		return NewCLOCK(capacity)
	case PolicyMQ:
		return NewMQ(capacity)
	case PolicyARC:
		return NewARC(capacity)
	case PolicyTwoQ:
		return NewTwoQ(capacity)
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", p)
	}
}

func checkCapacity(capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("cache: capacity must be positive, got %d", capacity)
	}
	return nil
}
