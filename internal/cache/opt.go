package cache

import (
	"container/heap"
	"fmt"

	"aggcache/internal/trace"
)

// OPT is Belady's optimal offline replacement policy: on eviction it drops
// the resident file whose next reference is farthest in the future. It
// needs the complete reference string up front, so it does not satisfy the
// online Cache constructor; build it with NewOPT and drive it with the same
// sequence. OPT gives the unbeatable hit-rate bound used in ablation
// benches.
type OPT struct {
	capacity int
	refs     []trace.FileID
	// next[i] is the index of the next reference to refs[i] after i, or
	// len(refs) if none.
	next     []int
	pos      int
	resident map[trace.FileID]int // id -> its next-use index
	pq       optHeap              // lazy max-heap over (nextUse, id)
	stats    Stats
}

type optEntry struct {
	nextUse int
	id      trace.FileID
}

type optHeap []optEntry

func (h optHeap) Len() int            { return len(h) }
func (h optHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optEntry)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewOPT builds the optimal policy for the given reference string.
func NewOPT(capacity int, refs []trace.FileID) (*OPT, error) {
	if err := checkCapacity(capacity); err != nil {
		return nil, err
	}
	next := make([]int, len(refs))
	last := make(map[trace.FileID]int, 64)
	for i := len(refs) - 1; i >= 0; i-- {
		if j, ok := last[refs[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(refs)
		}
		last[refs[i]] = i
	}
	return &OPT{
		capacity: capacity,
		refs:     refs,
		next:     next,
		resident: make(map[trace.FileID]int, capacity),
	}, nil
}

// Access consumes the next reference, which must equal id (OPT is tied to
// its precomputed string). It returns hit/miss like the online caches.
func (c *OPT) Access(id trace.FileID) (bool, error) {
	if c.pos >= len(c.refs) {
		return false, fmt.Errorf("cache: OPT reference string exhausted at access %d", c.pos)
	}
	if c.refs[c.pos] != id {
		return false, fmt.Errorf("cache: OPT access %d expects file %d, got %d", c.pos, c.refs[c.pos], id)
	}
	nextUse := c.next[c.pos]
	c.pos++

	if _, ok := c.resident[id]; ok {
		c.stats.Hits++
		c.resident[id] = nextUse
		heap.Push(&c.pq, optEntry{nextUse: nextUse, id: id})
		return true, nil
	}
	c.stats.Misses++
	if len(c.resident) >= c.capacity {
		c.evict()
	}
	c.resident[id] = nextUse
	heap.Push(&c.pq, optEntry{nextUse: nextUse, id: id})
	return false, nil
}

// Run drives the whole precomputed reference string and returns the final
// stats. It is the common way to use OPT.
func (c *OPT) Run() (Stats, error) {
	for c.pos < len(c.refs) {
		if _, err := c.Access(c.refs[c.pos]); err != nil {
			return c.stats, err
		}
	}
	return c.stats, nil
}

// Contains reports residency.
func (c *OPT) Contains(id trace.FileID) bool {
	_, ok := c.resident[id]
	return ok
}

// Len returns the number of resident files.
func (c *OPT) Len() int { return len(c.resident) }

// Cap returns the capacity in files.
func (c *OPT) Cap() int { return c.capacity }

// Stats returns a copy of the demand statistics.
func (c *OPT) Stats() Stats { return c.stats }

// evict pops heap entries until one matches the live next-use table (lazy
// deletion), then drops that id.
func (c *OPT) evict() {
	for c.pq.Len() > 0 {
		e := heap.Pop(&c.pq).(optEntry)
		if cur, ok := c.resident[e.id]; ok && cur == e.nextUse {
			delete(c.resident, e.id)
			c.stats.Evictions++
			return
		}
	}
	// Unreachable if resident is non-empty: every resident id has a live
	// heap entry.
}
