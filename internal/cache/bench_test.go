package cache

import (
	"math/rand"
	"testing"

	"aggcache/internal/trace"
)

// benchRefs builds a mildly skewed reference string.
func benchRefs(n, universe int) []trace.FileID {
	rng := rand.New(rand.NewSource(1))
	refs := make([]trace.FileID, n)
	for i := range refs {
		if rng.Float64() < 0.8 {
			refs[i] = trace.FileID(rng.Intn(universe / 4))
		} else {
			refs[i] = trace.FileID(rng.Intn(universe))
		}
	}
	return refs
}

func BenchmarkPolicies(b *testing.B) {
	refs := benchRefs(1<<16, 4096)
	for _, p := range []Policy{PolicyLRU, PolicyLFU, PolicyCLOCK, PolicyMQ, PolicyARC, PolicyTwoQ} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			c, err := New(p, 1024)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(refs[i&(len(refs)-1)])
			}
		})
	}
}

func BenchmarkOPT(b *testing.B) {
	refs := benchRefs(1<<16, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt, err := NewOPT(1024, refs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := opt.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(refs)), "refs/op")
}
