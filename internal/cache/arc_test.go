package cache

import (
	"math/rand"
	"testing"

	"aggcache/internal/trace"
)

func TestNewARCValidation(t *testing.T) {
	if _, err := NewARC(0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestARCBasicHitMiss(t *testing.T) {
	c, _ := NewARC(2)
	if c.Access(1) {
		t.Error("cold access hit")
	}
	if !c.Access(1) {
		t.Error("warm access missed")
	}
	if !c.Contains(1) {
		t.Error("Contains(1) false")
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestARCInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c, _ := NewARC(16)
	for i := 0; i < 20000; i++ {
		id := trace.FileID(rng.Intn(64))
		c.Access(id)
		if c.Len() > c.Cap() {
			t.Fatalf("residents %d exceed capacity %d", c.Len(), c.Cap())
		}
		if !c.Contains(id) {
			t.Fatal("just-accessed id not resident")
		}
		if p := c.TargetRecency(); p < 0 || p > c.Cap() {
			t.Fatalf("p = %d out of [0,%d]", p, c.Cap())
		}
		// Ghost lists individually bounded by capacity (ARC keeps
		// |T1|+|B1| <= c and |L1|+|L2| <= 2c).
		if c.b1.Len() > c.Cap() || c.b2.Len() > c.Cap()+1 {
			t.Fatalf("ghost lists out of bound: b1=%d b2=%d", c.b1.Len(), c.b2.Len())
		}
	}
}

// ARC's signature behaviour: a one-shot scan must not flush the frequent
// working set the way plain LRU does.
func TestARCScanResistance(t *testing.T) {
	const capacity = 16
	arc, _ := NewARC(capacity)
	lru, _ := NewLRU(capacity)

	hot := make([]trace.FileID, 8)
	for i := range hot {
		hot[i] = trace.FileID(i)
	}
	// Warm the hot set until it is frequent (in T2).
	for round := 0; round < 10; round++ {
		for _, id := range hot {
			arc.Access(id)
			lru.Access(id)
		}
	}
	// One-shot scan of many cold files.
	for i := 100; i < 200; i++ {
		arc.Access(trace.FileID(i))
		lru.Access(trace.FileID(i))
	}
	var arcSurvived, lruSurvived int
	for _, id := range hot {
		if arc.Contains(id) {
			arcSurvived++
		}
		if lru.Contains(id) {
			lruSurvived++
		}
	}
	if lruSurvived != 0 {
		t.Fatalf("LRU kept %d hot files through the scan; test premise broken", lruSurvived)
	}
	if arcSurvived < len(hot)/2 {
		t.Errorf("ARC kept only %d/%d hot files through the scan", arcSurvived, len(hot))
	}
}

func TestARCGhostHitAdaptsP(t *testing.T) {
	c, _ := NewARC(4)
	// Build frequent residents (T2) so later misses demote T1 entries
	// into the B1 ghost list instead of evicting them outright (a pure
	// miss stream never populates B1, per Case IV.A).
	c.Access(0)
	c.Access(0)
	c.Access(1)
	c.Access(1) // 0,1 in T2
	c.Access(2)
	c.Access(3) // 2,3 in T1; cache full
	c.Access(4) // REPLACE demotes T1's LRU (2) into B1
	if c.Contains(2) {
		t.Fatal("2 still resident; expected demotion to ghost B1")
	}
	p0 := c.TargetRecency()
	c.Access(2) // B1 ghost hit: p must grow (favour recency)
	if c.TargetRecency() <= p0 {
		t.Errorf("p = %d after B1 ghost hit, want > %d", c.TargetRecency(), p0)
	}
	if !c.Contains(2) {
		t.Error("ghost-hit file not brought back resident")
	}
}

func TestARCFactory(t *testing.T) {
	c, err := New(PolicyARC, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	if !c.Contains(1) {
		t.Error("factory-built ARC broken")
	}
}

func TestARCNeverBeatsOPT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	refs := make([]trace.FileID, 4000)
	for i := range refs {
		refs[i] = trace.FileID(rng.Intn(rng.Intn(50) + 1))
	}
	opt, _ := NewOPT(12, refs)
	optStats, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	arc, _ := NewARC(12)
	for _, id := range refs {
		arc.Access(id)
	}
	if arc.Stats().Hits > optStats.Hits {
		t.Errorf("ARC hits %d > OPT hits %d", arc.Stats().Hits, optStats.Hits)
	}
}
