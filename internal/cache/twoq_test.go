package cache

import (
	"testing"

	"aggcache/internal/trace"
)

func TestNewTwoQValidation(t *testing.T) {
	if _, err := NewTwoQ(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	// Tiny capacities still get sane queue bounds.
	c, err := NewTwoQ(1)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	c.Access(2)
	if c.Len() > 1 {
		t.Errorf("Len = %d exceeds capacity 1", c.Len())
	}
}

func TestTwoQProbationThenPromotion(t *testing.T) {
	c, _ := NewTwoQ(8) // kin=2 kout=4
	// 1 enters probation, is pushed out by later arrivals (ghost), and
	// its re-reference promotes it to Am.
	c.Access(1)
	c.Access(2)
	c.Access(3)
	// probation holds 3 > kin? eviction happens only when cache full
	// (8); fill it.
	for id := trace.FileID(4); id <= 8; id++ {
		c.Access(id)
	}
	// Cache full: next insert spills probation tail (1) to ghost.
	c.Access(9)
	if c.Contains(1) {
		t.Fatal("1 still resident; expected spill to ghost")
	}
	// Ghost hit promotes into Am.
	c.Access(1)
	if !c.Contains(1) {
		t.Fatal("ghost hit did not promote 1")
	}
	if c.where[1] != inAm {
		t.Errorf("1 in %d, want Am", c.where[1])
	}
}

func TestTwoQScanResistance(t *testing.T) {
	const capacity = 16
	c, _ := NewTwoQ(capacity)
	// Build a hot set in Am via ghost promotions.
	hot := []trace.FileID{1, 2, 3, 4}
	warm := func() {
		for _, id := range hot {
			c.Access(id)
		}
	}
	warm()
	// Push them through probation into ghosts.
	for id := trace.FileID(100); id < 130; id++ {
		c.Access(id)
	}
	warm() // ghost hits -> Am
	for _, id := range hot {
		if c.where[id] != inAm {
			t.Skipf("hot set not in Am (%v); tuning changed", c.where[id])
		}
	}
	// A long one-shot scan must wash through probation only.
	for id := trace.FileID(1000); id < 1200; id++ {
		c.Access(id)
	}
	for _, id := range hot {
		if !c.Contains(id) {
			t.Errorf("scan evicted hot file %d from Am", id)
		}
	}
}

func TestTwoQProbationHitDoesNotPromote(t *testing.T) {
	c, _ := NewTwoQ(8)
	c.Access(5)
	if !c.Access(5) {
		t.Fatal("probation re-access missed")
	}
	if c.where[5] != inA1in {
		t.Errorf("5 promoted by a probation hit; 2Q defers promotion to ghost hits")
	}
}

func TestTwoQFactoryAndOPTBound(t *testing.T) {
	c, err := New(PolicyTwoQ, 8)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(1)
	if !c.Contains(1) {
		t.Error("factory-built 2Q broken")
	}
	// Bounded by OPT on a skewed string.
	x := uint32(5)
	refs := make([]trace.FileID, 4000)
	for i := range refs {
		x = x*1664525 + 1013904223
		refs[i] = trace.FileID((x >> 20) % 50)
	}
	opt, _ := NewOPT(12, refs)
	optStats, err := opt.Run()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := NewTwoQ(12)
	for _, id := range refs {
		q.Access(id)
	}
	if q.Stats().Hits > optStats.Hits {
		t.Errorf("2Q hits %d > OPT hits %d", q.Stats().Hits, optStats.Hits)
	}
}
