package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/trace"
)

func TestNewLFURejectsBadCapacity(t *testing.T) {
	if _, err := NewLFU(0); err == nil {
		t.Error("NewLFU(0) succeeded")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c, _ := NewLFU(3)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	c.Access(2)
	c.Access(3) // freq: 1->2, 2->2, 3->1
	c.Access(4) // must evict 3
	if c.Contains(3) {
		t.Error("3 resident, want evicted (least frequent)")
	}
	for _, id := range []trace.FileID{1, 2, 4} {
		if !c.Contains(id) {
			t.Errorf("%d missing", id)
		}
	}
}

func TestLFUTieBrokenByLRU(t *testing.T) {
	c, _ := NewLFU(3)
	c.Access(1)
	c.Access(2)
	c.Access(3) // all freq 1; LRU of the tie is 1
	if v, ok := c.Victim(); !ok || v != 1 {
		t.Errorf("Victim = %d,%v want 1,true", v, ok)
	}
	c.Access(4) // evicts 1
	if c.Contains(1) {
		t.Error("1 resident, want evicted (LRU within frequency tie)")
	}
}

func TestLFUFrequencyTracking(t *testing.T) {
	c, _ := NewLFU(4)
	c.Access(7)
	c.Access(7)
	c.Access(7)
	if got := c.Frequency(7); got != 3 {
		t.Errorf("Frequency(7) = %d, want 3", got)
	}
	if got := c.Frequency(42); got != 0 {
		t.Errorf("Frequency(42) = %d, want 0", got)
	}
}

func TestLFUForgetsOnEviction(t *testing.T) {
	c, _ := NewLFU(1)
	c.Access(1)
	c.Access(1) // freq 2
	c.Access(2) // evicts 1
	c.Access(1) // re-enters at freq 1, evicting 2
	if got := c.Frequency(1); got != 1 {
		t.Errorf("Frequency(1) after re-fetch = %d, want 1 (no ghost history)", got)
	}
}

func TestLFUVictimEmpty(t *testing.T) {
	c, _ := NewLFU(1)
	if _, ok := c.Victim(); ok {
		t.Error("Victim on empty cache reported ok")
	}
}

func TestLFUStats(t *testing.T) {
	c, _ := NewLFU(2)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// lfuModel is an executable specification: evict minimum frequency, ties by
// least recent use.
type lfuModel struct {
	cap  int
	freq map[trace.FileID]int
	last map[trace.FileID]int
	tick int
}

func newLFUModel(capacity int) *lfuModel {
	return &lfuModel{
		cap:  capacity,
		freq: make(map[trace.FileID]int),
		last: make(map[trace.FileID]int),
	}
}

func (m *lfuModel) access(id trace.FileID) bool {
	m.tick++
	if _, ok := m.freq[id]; ok {
		m.freq[id]++
		m.last[id] = m.tick
		return true
	}
	if len(m.freq) >= m.cap {
		var victim trace.FileID
		best := -1
		for v := range m.freq {
			if best == -1 ||
				m.freq[v] < m.freq[victim] ||
				(m.freq[v] == m.freq[victim] && m.last[v] < m.last[victim]) {
				victim = v
				best = 0
			}
		}
		delete(m.freq, victim)
		delete(m.last, victim)
	}
	m.freq[id] = 1
	m.last[id] = m.tick
	return false
}

// Property: the bucket LFU agrees with the executable model and stays
// within capacity.
func TestLFUMatchesModel(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		c, err := NewLFU(capacity)
		if err != nil {
			return false
		}
		m := newLFUModel(capacity)
		for i := 0; i < 600; i++ {
			id := trace.FileID(rng.Intn(capacity * 3))
			if c.Access(id) != m.access(id) {
				return false
			}
			if c.Len() > capacity || c.Len() != len(m.freq) {
				return false
			}
			for v, f := range m.freq {
				if !c.Contains(v) || c.Frequency(v) != uint64(f) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
