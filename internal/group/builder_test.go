package group

import (
	"testing"
	"testing/quick"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

func newTracker(t *testing.T, seq []trace.FileID) *successor.Tracker {
	t.Helper()
	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll(seq)
	return tr
}

func TestNewBuilderValidation(t *testing.T) {
	tr := newTracker(t, nil)
	if _, err := NewBuilder(nil, 3, StrategyChain); err == nil {
		t.Error("nil tracker accepted")
	}
	if _, err := NewBuilder(tr, 0, StrategyChain); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewBuilder(tr, 3, Strategy(99)); err == nil {
		t.Error("bad strategy accepted")
	}
}

func TestBuildSize1IsJustTheFile(t *testing.T) {
	tr := newTracker(t, []trace.FileID{1, 2, 3})
	b, _ := NewBuilder(tr, 1, StrategyChain)
	g := b.Build(1)
	if len(g) != 1 || g[0] != 1 {
		t.Errorf("Build = %v, want [1]", g)
	}
}

func TestBuildChainsTransitiveSuccessors(t *testing.T) {
	// Deterministic chain 1->2->3->4 repeated.
	tr := newTracker(t, []trace.FileID{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4})
	b, _ := NewBuilder(tr, 3, StrategyChain)
	g := b.Build(1)
	want := []trace.FileID{1, 2, 3}
	if len(g) != 3 {
		t.Fatalf("Build = %v, want %v", g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("Build = %v, want %v", g, want)
		}
	}
}

func TestBuildNoMetadataReturnsSingleton(t *testing.T) {
	tr := newTracker(t, nil)
	b, _ := NewBuilder(tr, 5, StrategyChain)
	g := b.Build(42)
	if len(g) != 1 || g[0] != 42 {
		t.Errorf("Build = %v, want [42]", g)
	}
}

func TestBuildBreaksCycles(t *testing.T) {
	// 1->2->1 cycle; group of 4 must not loop forever or duplicate, and
	// falls back to other successors when available.
	tr := newTracker(t, []trace.FileID{1, 2, 1, 2, 1, 2})
	b, _ := NewBuilder(tr, 4, StrategyChain)
	g := b.Build(1)
	seen := make(map[trace.FileID]bool)
	for _, m := range g {
		if seen[m] {
			t.Fatalf("duplicate member in %v", g)
		}
		seen[m] = true
	}
	if len(g) != 2 {
		t.Errorf("Build = %v, want [1 2] (cycle exhausts candidates)", g)
	}
}

func TestBuildFallbackUsesLowerRankedSuccessors(t *testing.T) {
	// 1 is followed by 2 (most recent) and 3; 2 dead-ends back to 1.
	// Chain: 1 -> 2 -> (1 seen, dead end) -> fallback picks 3 from 1's
	// list.
	tr := newTracker(t, []trace.FileID{1, 3, 9, 1, 2, 1, 2, 1, 2})
	b, _ := NewBuilder(tr, 3, StrategyChain)
	g := b.Build(1)
	if len(g) != 3 {
		t.Fatalf("Build = %v, want 3 members", g)
	}
	if g[0] != 1 || g[1] != 2 {
		t.Fatalf("Build = %v, want prefix [1 2]", g)
	}
	if g[2] != 3 {
		t.Errorf("Build = %v, want fallback member 3", g)
	}
}

func TestBuildBreadthTakesRankedSuccessorsFirst(t *testing.T) {
	// 1's successors by recency: 4, 3, 2 (capacity 3). Breadth group of
	// 3 takes 4 and 3; chain group of 3 would take 4 then 4's successor.
	tr := newTracker(t, []trace.FileID{1, 2, 9, 1, 3, 9, 1, 4, 5, 9})
	bb, _ := NewBuilder(tr, 3, StrategyBreadth)
	g := bb.Build(1)
	if len(g) != 3 || g[0] != 1 || g[1] != 4 || g[2] != 3 {
		t.Errorf("breadth Build = %v, want [1 4 3]", g)
	}
	bc, _ := NewBuilder(tr, 3, StrategyChain)
	g = bc.Build(1)
	if len(g) != 3 || g[0] != 1 || g[1] != 4 || g[2] != 5 {
		t.Errorf("chain Build = %v, want [1 4 5]", g)
	}
}

// Property: for any sequence and size, Build(id) starts with id, has no
// duplicates, and has length in [1, size].
func TestBuildInvariants(t *testing.T) {
	for _, strat := range []Strategy{StrategyChain, StrategyBreadth} {
		strat := strat
		f := func(raw []uint8, sizeRaw uint8, startRaw uint8) bool {
			seq := make([]trace.FileID, len(raw))
			for i, r := range raw {
				seq[i] = trace.FileID(r % 20)
			}
			tr, err := successor.NewTracker(successor.PolicyLRU, 3)
			if err != nil {
				return false
			}
			tr.ObserveAll(seq)
			size := int(sizeRaw%10) + 1
			b, err := NewBuilder(tr, size, strat)
			if err != nil {
				return false
			}
			id := trace.FileID(startRaw % 20)
			g := b.Build(id)
			if len(g) < 1 || len(g) > size || g[0] != id {
				return false
			}
			seen := make(map[trace.FileID]bool, len(g))
			for _, m := range g {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("strategy %d: %v", strat, err)
		}
	}
}

func TestBuildCover(t *testing.T) {
	seq := []trace.FileID{1, 2, 3, 1, 2, 3, 4, 5, 4, 5, 1, 2}
	tr := newTracker(t, seq)
	b, _ := NewBuilder(tr, 3, StrategyChain)
	c := BuildCover(tr, b, seq)

	// Every file in the sequence must be covered.
	for _, id := range seq {
		if !c.Covers(id) {
			t.Errorf("file %d not covered", id)
		}
	}
	if c.Covers(99) {
		t.Error("Covers(99) = true for absent file")
	}
	if c.OverlapFactor() < 1.0 {
		t.Errorf("OverlapFactor = %v, want >= 1", c.OverlapFactor())
	}
	if c.Members() < 5 {
		t.Errorf("Members = %d, want >= 5 distinct files covered", c.Members())
	}
}

func TestBuildCoverEmpty(t *testing.T) {
	tr := newTracker(t, nil)
	b, _ := NewBuilder(tr, 3, StrategyChain)
	c := BuildCover(tr, b, nil)
	if len(c.Groups) != 0 {
		t.Errorf("Groups = %v, want empty", c.Groups)
	}
	if c.OverlapFactor() != 0 {
		t.Errorf("OverlapFactor = %v, want 0", c.OverlapFactor())
	}
}

func TestBuildCoverAllowsOverlap(t *testing.T) {
	// Shared hub file 0 follows everything (like /bin/sh): appears in
	// the successor lists of several seeds, so it should land in more
	// than one group.
	seq := []trace.FileID{1, 0, 2, 0, 3, 0, 1, 0, 2, 0, 3, 0}
	tr := newTracker(t, seq)
	b, _ := NewBuilder(tr, 2, StrategyChain)
	c := BuildCover(tr, b, seq)
	var containing int
	for _, g := range c.Groups {
		for _, m := range g {
			if m == 0 {
				containing++
				break
			}
		}
	}
	if containing < 2 {
		t.Errorf("hub file in %d groups, want >= 2 (overlap permitted)", containing)
	}
}

func TestCoverStats(t *testing.T) {
	seq := []trace.FileID{1, 0, 2, 0, 3, 0, 1, 0, 2, 0, 3, 0}
	tr := newTracker(t, seq)
	b, _ := NewBuilder(tr, 2, StrategyChain)
	c := BuildCover(tr, b, seq)
	st := c.Stats()
	if st.Groups != len(c.Groups) {
		t.Errorf("Groups = %d, want %d", st.Groups, len(c.Groups))
	}
	if st.Members != c.Members() {
		t.Errorf("Members = %d, want %d", st.Members, c.Members())
	}
	if st.Distinct != 4 {
		t.Errorf("Distinct = %d, want 4", st.Distinct)
	}
	if st.Replicas != st.Members-st.Distinct {
		t.Errorf("Replicas inconsistent: %+v", st)
	}
	// The hub file 0 appears in several groups.
	if st.MaxMemberships < 2 {
		t.Errorf("MaxMemberships = %d, want >= 2 for the hub", st.MaxMemberships)
	}
	if st.MeanGroupLen <= 0 || st.MeanGroupLen > 2 {
		t.Errorf("MeanGroupLen = %v", st.MeanGroupLen)
	}
}

func TestCoverStatsEmpty(t *testing.T) {
	var c Cover
	st := c.Stats()
	if st != (CoverStats{}) {
		t.Errorf("empty stats = %+v", st)
	}
}
