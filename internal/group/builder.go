// Package group constructs retrieval groups from successor metadata: the
// demanded file plus a best-effort chain of its most-likely transitive
// successors (§2 of the paper). It also builds the overlapping
// minimal-covering-set groupings of §2.1 used when grouping drives data
// placement rather than caching.
package group

import (
	"fmt"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

// Strategy selects how a group is extended beyond the demanded file.
type Strategy int

// Group-construction strategies.
const (
	// StrategyChain follows the most-likely immediate successor
	// recursively (the paper's transitive-successor chaining), falling
	// back to lower-ranked successors of earlier members when the chain
	// dead-ends or cycles.
	StrategyChain Strategy = iota + 1
	// StrategyBreadth takes the demanded file's ranked successors first,
	// then their successors, breadth-first. Used for the ablation bench;
	// the paper's design is StrategyChain.
	StrategyBreadth
)

// Builder assembles groups of a fixed target size from a tracker's
// metadata. The tracker stays owned by the caller and keeps learning as the
// workload proceeds; Build reads the current metadata.
//
// A Builder carries reusable scratch state (the generation-stamped
// seen-set below) and is not safe for concurrent use — exactly like the
// Tracker it reads. Parallel sweeps give every simulation its own
// Builder.
type Builder struct {
	tracker  *successor.Tracker
	size     int
	strategy Strategy

	// seen is a dense generation-stamped membership set indexed by
	// FileID (IDs are interned densely, so they double as indices).
	// seen[id] == gen means id is in the group being built. Bumping gen
	// empties the set in O(1), so the per-miss hot path allocates and
	// clears nothing.
	seen []uint32
	gen  uint32
	// succ and queue are scratch buffers for ranked-successor reads and
	// the breadth-first frontier.
	succ  []trace.FileID
	queue []trace.FileID
}

// NewBuilder returns a Builder producing groups of up to size files.
func NewBuilder(t *successor.Tracker, size int, strategy Strategy) (*Builder, error) {
	if t == nil {
		return nil, fmt.Errorf("group: tracker must not be nil")
	}
	if size < 1 {
		return nil, fmt.Errorf("group: size must be >= 1, got %d", size)
	}
	if strategy != StrategyChain && strategy != StrategyBreadth {
		return nil, fmt.Errorf("group: unknown strategy %d", strategy)
	}
	return &Builder{tracker: t, size: size, strategy: strategy}, nil
}

// Size returns the target group size g.
func (b *Builder) Size() int { return b.size }

// SetSize changes the target group size; the adaptive aggregating cache
// tunes g online through this.
func (b *Builder) SetSize(n int) error {
	if n < 1 {
		return fmt.Errorf("group: size must be >= 1, got %d", n)
	}
	b.size = n
	return nil
}

// Build returns a best-effort group for a demand access to id: id itself
// first, then up to size-1 predicted members, without duplicates. The
// result length is in [1, size]. The returned slice is freshly allocated
// and owned by the caller; the per-miss hot path uses AppendBuild with a
// reused buffer instead.
func (b *Builder) Build(id trace.FileID) []trace.FileID {
	return b.AppendBuild(make([]trace.FileID, 0, b.size), id)
}

// AppendBuild appends the group for id to dst and returns the extended
// slice. With a buffer of spare capacity it performs no allocations
// (beyond one-time scratch growth), which is what strips the group
// construction out of the aggregating cache's miss-path heap traffic.
func (b *Builder) AppendBuild(dst []trace.FileID, id trace.FileID) []trace.FileID {
	start := len(dst)
	dst = append(dst, id)
	if b.size == 1 {
		return dst
	}
	b.nextGen()
	b.mark(id)

	switch b.strategy {
	case StrategyChain:
		dst = b.extendChain(dst, start)
	case StrategyBreadth:
		dst = b.extendBreadth(dst, start)
	}
	return dst
}

// nextGen starts a fresh, empty seen-set in O(1) by bumping the
// generation stamp. On the (rare) uint32 wraparound the stamps are
// cleared so stale marks from 2^32 builds ago cannot alias.
func (b *Builder) nextGen() {
	b.gen++
	if b.gen == 0 {
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.gen = 1
	}
}

// mark adds id to the current generation's membership, growing the dense
// table on first sight of a high id. FileIDs are interned densely in
// first-use order, so the table tops out at the trace's distinct-file
// count.
func (b *Builder) mark(id trace.FileID) {
	if int(id) >= len(b.seen) {
		grown := make([]uint32, int(id)+1+len(b.seen)/2)
		copy(grown, b.seen)
		b.seen = grown
	}
	b.seen[id] = b.gen
}

// marked reports membership in the group being built.
func (b *Builder) marked(id trace.FileID) bool {
	return int(id) < len(b.seen) && b.seen[id] == b.gen
}

// extendChain follows most-likely successors as far as possible; when the
// chain revisits a member or runs out of metadata it scans earlier members'
// remaining ranked successors for a fresh continuation point. The group
// under construction is dst[start:].
func (b *Builder) extendChain(dst []trace.FileID, start int) []trace.FileID {
	cur := dst[start]
	for len(dst)-start < b.size {
		next, ok := b.chainNext(cur)
		if !ok {
			next, ok = b.fallback(dst[start:])
			if !ok {
				break
			}
		}
		dst = append(dst, next)
		b.mark(next)
		cur = next
	}
	return dst
}

// chainNext picks the best-ranked unseen successor of cur.
func (b *Builder) chainNext(cur trace.FileID) (trace.FileID, bool) {
	b.succ = b.tracker.AppendSuccessors(b.succ[:0], cur)
	for _, s := range b.succ {
		if !b.marked(s) {
			return s, true
		}
	}
	return 0, false
}

// fallback finds the first unseen successor of any existing member, in
// member order, so stalled chains restart from the most confirmed context.
func (b *Builder) fallback(group []trace.FileID) (trace.FileID, bool) {
	for _, m := range group {
		b.succ = b.tracker.AppendSuccessors(b.succ[:0], m)
		for _, s := range b.succ {
			if !b.marked(s) {
				return s, true
			}
		}
	}
	return 0, false
}

// extendBreadth performs a BFS over ranked successors.
func (b *Builder) extendBreadth(dst []trace.FileID, start int) []trace.FileID {
	b.queue = append(b.queue[:0], dst[start])
	for qi := 0; qi < len(b.queue) && len(dst)-start < b.size; qi++ {
		cur := b.queue[qi]
		b.succ = b.tracker.AppendSuccessors(b.succ[:0], cur)
		for _, s := range b.succ {
			if b.marked(s) {
				continue
			}
			dst = append(dst, s)
			b.mark(s)
			b.queue = append(b.queue, s)
			if len(dst)-start >= b.size {
				break
			}
		}
	}
	return dst
}
