// Package group constructs retrieval groups from successor metadata: the
// demanded file plus a best-effort chain of its most-likely transitive
// successors (§2 of the paper). It also builds the overlapping
// minimal-covering-set groupings of §2.1 used when grouping drives data
// placement rather than caching.
package group

import (
	"fmt"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

// Strategy selects how a group is extended beyond the demanded file.
type Strategy int

// Group-construction strategies.
const (
	// StrategyChain follows the most-likely immediate successor
	// recursively (the paper's transitive-successor chaining), falling
	// back to lower-ranked successors of earlier members when the chain
	// dead-ends or cycles.
	StrategyChain Strategy = iota + 1
	// StrategyBreadth takes the demanded file's ranked successors first,
	// then their successors, breadth-first. Used for the ablation bench;
	// the paper's design is StrategyChain.
	StrategyBreadth
)

// Builder assembles groups of a fixed target size from a tracker's
// metadata. The tracker stays owned by the caller and keeps learning as the
// workload proceeds; Build reads the current metadata.
type Builder struct {
	tracker  *successor.Tracker
	size     int
	strategy Strategy
}

// NewBuilder returns a Builder producing groups of up to size files.
func NewBuilder(t *successor.Tracker, size int, strategy Strategy) (*Builder, error) {
	if t == nil {
		return nil, fmt.Errorf("group: tracker must not be nil")
	}
	if size < 1 {
		return nil, fmt.Errorf("group: size must be >= 1, got %d", size)
	}
	if strategy != StrategyChain && strategy != StrategyBreadth {
		return nil, fmt.Errorf("group: unknown strategy %d", strategy)
	}
	return &Builder{tracker: t, size: size, strategy: strategy}, nil
}

// Size returns the target group size g.
func (b *Builder) Size() int { return b.size }

// SetSize changes the target group size; the adaptive aggregating cache
// tunes g online through this.
func (b *Builder) SetSize(n int) error {
	if n < 1 {
		return fmt.Errorf("group: size must be >= 1, got %d", n)
	}
	b.size = n
	return nil
}

// Build returns a best-effort group for a demand access to id: id itself
// first, then up to size-1 predicted members, without duplicates. The
// result length is in [1, size].
func (b *Builder) Build(id trace.FileID) []trace.FileID {
	group := make([]trace.FileID, 1, b.size)
	group[0] = id
	if b.size == 1 {
		return group
	}
	seen := make(map[trace.FileID]bool, b.size)
	seen[id] = true

	switch b.strategy {
	case StrategyChain:
		group = b.extendChain(group, seen)
	case StrategyBreadth:
		group = b.extendBreadth(group, seen)
	}
	return group
}

// extendChain follows most-likely successors as far as possible; when the
// chain revisits a member or runs out of metadata it scans earlier members'
// remaining ranked successors for a fresh continuation point.
func (b *Builder) extendChain(group []trace.FileID, seen map[trace.FileID]bool) []trace.FileID {
	cur := group[0]
	for len(group) < b.size {
		next, ok := b.chainNext(cur, seen)
		if !ok {
			next, ok = b.fallback(group, seen)
			if !ok {
				break
			}
		}
		group = append(group, next)
		seen[next] = true
		cur = next
	}
	return group
}

// chainNext picks the best-ranked unseen successor of cur.
func (b *Builder) chainNext(cur trace.FileID, seen map[trace.FileID]bool) (trace.FileID, bool) {
	for _, s := range b.tracker.Successors(cur) {
		if !seen[s] {
			return s, true
		}
	}
	return 0, false
}

// fallback finds the first unseen successor of any existing member, in
// member order, so stalled chains restart from the most confirmed context.
func (b *Builder) fallback(group []trace.FileID, seen map[trace.FileID]bool) (trace.FileID, bool) {
	for _, m := range group {
		for _, s := range b.tracker.Successors(m) {
			if !seen[s] {
				return s, true
			}
		}
	}
	return 0, false
}

// extendBreadth performs a BFS over ranked successors.
func (b *Builder) extendBreadth(group []trace.FileID, seen map[trace.FileID]bool) []trace.FileID {
	queue := []trace.FileID{group[0]}
	for len(queue) > 0 && len(group) < b.size {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range b.tracker.Successors(cur) {
			if seen[s] {
				continue
			}
			group = append(group, s)
			seen[s] = true
			queue = append(queue, s)
			if len(group) >= b.size {
				break
			}
		}
	}
	return group
}
