package group

import (
	"sort"

	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

// Cover is an overlapping covering set of groups over the relationship
// graph: every file that appears in the tracker belongs to at least one
// group, and popular files may appear in many (§2.1 explicitly rejects
// disjoint partitions because shared files like a shell executable belong
// to several working sets).
type Cover struct {
	Groups [][]trace.FileID
}

// BuildCover computes a minimal-covering-set style grouping: seed files are
// considered in decreasing access-count order (hot files first, as in
// placement optimization); any file not yet covered seeds a new group built
// by the Builder's strategy, and group members may already be covered —
// that is the permitted overlap.
func BuildCover(t *successor.Tracker, b *Builder, files []trace.FileID) *Cover {
	// Deduplicate and sort seeds by access count (desc), id asc for
	// determinism.
	uniq := make(map[trace.FileID]bool, len(files))
	seeds := make([]trace.FileID, 0, len(files))
	for _, id := range files {
		if !uniq[id] {
			uniq[id] = true
			seeds = append(seeds, id)
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		ci, cj := t.AccessCount(seeds[i]), t.AccessCount(seeds[j])
		if ci != cj {
			return ci > cj
		}
		return seeds[i] < seeds[j]
	})

	covered := make(map[trace.FileID]bool, len(seeds))
	var c Cover
	for _, id := range seeds {
		if covered[id] {
			continue
		}
		g := b.Build(id)
		for _, m := range g {
			covered[m] = true
		}
		c.Groups = append(c.Groups, g)
	}
	return &c
}

// Covers reports whether id is a member of at least one group.
func (c *Cover) Covers(id trace.FileID) bool {
	for _, g := range c.Groups {
		for _, m := range g {
			if m == id {
				return true
			}
		}
	}
	return false
}

// Members returns the total membership count across groups (>= the number
// of distinct files when groups overlap).
func (c *Cover) Members() int {
	var n int
	for _, g := range c.Groups {
		n += len(g)
	}
	return n
}

// OverlapFactor is total membership over distinct files: 1.0 means the
// cover is a partition, larger values quantify replication of shared files.
func (c *Cover) OverlapFactor() float64 {
	distinct := make(map[trace.FileID]bool)
	for _, g := range c.Groups {
		for _, m := range g {
			distinct[m] = true
		}
	}
	if len(distinct) == 0 {
		return 0
	}
	return float64(c.Members()) / float64(len(distinct))
}

// CoverStats quantifies a cover's storage footprint — the analysis the
// paper's §6 asks for ("the effects of group formation on storage
// requirements"): when groups drive *placement*, every extra membership
// of a shared file is a physical replica.
type CoverStats struct {
	// Groups is the number of groups in the cover.
	Groups int
	// Distinct is the number of distinct files covered.
	Distinct int
	// Members is total membership (>= Distinct under overlap).
	Members int
	// Replicas is Members - Distinct: the extra storage grouping costs
	// when placed physically.
	Replicas int
	// MaxMemberships is the largest number of groups any single file
	// belongs to (the hub files of §2.1).
	MaxMemberships int
	// MeanGroupLen is the average achieved group length (<= the target
	// g when metadata runs short).
	MeanGroupLen float64
}

// Stats computes the cover's storage accounting.
func (c *Cover) Stats() CoverStats {
	st := CoverStats{Groups: len(c.Groups)}
	memberships := make(map[trace.FileID]int)
	for _, g := range c.Groups {
		st.Members += len(g)
		for _, m := range g {
			memberships[m]++
		}
	}
	st.Distinct = len(memberships)
	st.Replicas = st.Members - st.Distinct
	for _, n := range memberships {
		if n > st.MaxMemberships {
			st.MaxMemberships = n
		}
	}
	if st.Groups > 0 {
		st.MeanGroupLen = float64(st.Members) / float64(st.Groups)
	}
	return st
}
