package workload

import (
	"fmt"
	"math/rand"
	"time"

	"aggcache/internal/trace"
)

// Web workload
//
// The paper's related work (§5) singles out the web-proxy domain —
// Hummingbird groups files by hyperlink structure, Bestavros and Duchamp
// speculate on link traversal. GenerateWeb synthesizes that domain's
// access pattern so grouping can be evaluated on it: *pages* consist of
// an HTML file plus embedded objects (stylesheets, scripts, images) that
// are always fetched right after it, sessions perform random walks over a
// hyperlink graph with Zipf-popular entry pages, and a shared asset pool
// (site-wide CSS/JS) appears across many pages — the web analogue of the
// shell-and-make hub files.
//
// Unlike the file-system generator, relationships here are *structural*
// (a page literally contains its objects), which is precisely the
// information Hummingbird needs to be told and the aggregating cache
// learns on its own.

// WebConfig parameterizes web-trace generation.
type WebConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Requests is the number of open events to emit.
	Requests int
	// Pages is the number of distinct pages on the site.
	Pages int
	// ObjectsPerPage is the number of embedded objects per page.
	ObjectsPerPage int
	// SharedAssets is the pool of site-wide assets; each page embeds a
	// couple at fixed slots.
	SharedAssets int
	// Links is the out-degree of the hyperlink graph.
	Links int
	// FollowProb is the chance a session follows a link from the
	// current page rather than jumping to a popular entry page.
	FollowProb float64
	// ZipfS skews entry-page popularity (> 1).
	ZipfS float64
	// Clients is the number of interleaved browsing sessions.
	Clients int
}

func (c WebConfig) withDefaults() WebConfig {
	if c.Requests == 0 {
		c.Requests = 50000
	}
	if c.Pages == 0 {
		c.Pages = 300
	}
	if c.ObjectsPerPage == 0 {
		c.ObjectsPerPage = 6
	}
	if c.SharedAssets == 0 {
		c.SharedAssets = 12
	}
	if c.Links == 0 {
		c.Links = 4
	}
	if c.FollowProb == 0 {
		c.FollowProb = 0.7
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.Clients == 0 {
		c.Clients = 4
	}
	return c
}

func (c WebConfig) validate() error {
	switch {
	case c.Requests < 0:
		return fmt.Errorf("workload: requests must be >= 0, got %d", c.Requests)
	case c.Pages < 1:
		return fmt.Errorf("workload: pages must be >= 1, got %d", c.Pages)
	case c.ObjectsPerPage < 0:
		return fmt.Errorf("workload: objects per page must be >= 0, got %d", c.ObjectsPerPage)
	case c.Links < 1:
		return fmt.Errorf("workload: links must be >= 1, got %d", c.Links)
	case c.FollowProb < 0 || c.FollowProb > 1:
		return fmt.Errorf("workload: follow probability must be in [0,1], got %v", c.FollowProb)
	case c.ZipfS <= 1:
		return fmt.Errorf("workload: ZipfS must be > 1, got %v", c.ZipfS)
	case c.Clients < 1:
		return fmt.Errorf("workload: clients must be >= 1, got %d", c.Clients)
	}
	return nil
}

// GenerateWeb synthesizes a web-proxy style trace per cfg.
func GenerateWeb(cfg WebConfig) (*trace.Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Pages-1))

	// Lay out each page's object list (embedding shared assets at two
	// deterministic slots) and its outbound links.
	type page struct {
		html    string
		objects []string
		links   []int
	}
	pages := make([]page, cfg.Pages)
	for i := range pages {
		p := page{html: fmt.Sprintf("/site/page%04d.html", i)}
		sharedA := rng.Intn(cfg.SharedAssets)
		sharedB := rng.Intn(cfg.SharedAssets)
		slotA := 0
		slotB := 0
		if cfg.ObjectsPerPage > 0 {
			slotA = rng.Intn(cfg.ObjectsPerPage)
			slotB = rng.Intn(cfg.ObjectsPerPage)
		}
		for j := 0; j < cfg.ObjectsPerPage; j++ {
			switch j {
			case slotA:
				p.objects = append(p.objects, fmt.Sprintf("/assets/shared%03d", sharedA))
			case slotB:
				p.objects = append(p.objects, fmt.Sprintf("/assets/shared%03d", sharedB))
			default:
				p.objects = append(p.objects, fmt.Sprintf("/site/page%04d/obj%02d", i, j))
			}
		}
		for j := 0; j < cfg.Links; j++ {
			p.links = append(p.links, rng.Intn(cfg.Pages))
		}
		pages[i] = p
	}

	type session struct {
		client  uint16
		current int
		started bool
	}
	sessions := make([]*session, cfg.Clients)
	for i := range sessions {
		sessions[i] = &session{client: uint16(i + 1)}
	}

	tr := trace.NewTrace()
	now := time.Duration(0)
	emit := func(c uint16, path string) {
		now += time.Duration(1+rng.Intn(500)) * time.Microsecond
		tr.Append(trace.Event{Time: now, Client: c, Op: trace.OpOpen}, path)
	}

	requests := 0
	for requests < cfg.Requests {
		s := sessions[rng.Intn(len(sessions))]
		if !s.started || rng.Float64() >= cfg.FollowProb {
			s.current = int(zipf.Uint64())
			s.started = true
		} else {
			links := pages[s.current].links
			s.current = links[rng.Intn(len(links))]
		}
		pg := pages[s.current]
		emit(s.client, pg.html)
		requests++
		for _, obj := range pg.objects {
			if requests >= cfg.Requests {
				break
			}
			emit(s.client, obj)
			requests++
		}
	}
	return tr, nil
}
