package workload

import (
	"testing"

	"aggcache/internal/core"
	"aggcache/internal/entropy"
	"aggcache/internal/trace"
)

func gen(t *testing.T, p Profile, opens int) *trace.Trace {
	t.Helper()
	tr, err := Standard(p, 1, opens)
	if err != nil {
		t.Fatalf("Standard(%s): %v", p, err)
	}
	return tr
}

func TestGenerateOpensBudget(t *testing.T) {
	for _, p := range Profiles() {
		tr := gen(t, p, 5000)
		if got := len(tr.OpenIDs()); got != 5000 {
			t.Errorf("%s: opens = %d, want 5000", p, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, ProfileServer, 3000)
	b := gen(t, ProfileServer, 3000)
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	c, err := Standard(ProfileServer, 2, 3000)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Events) == len(a.Events)
	if same {
		same = false
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := ProfileConfig("bogus", 1, 100); err == nil {
		t.Error("bogus profile accepted")
	}
	bad := []Config{
		{Opens: -1},
		{Clients: -2},
		{ZipfS: 0.5, Tasks: 10, TaskLen: 5},
		{Noise: 1.5},
		{WriteFraction: -0.1},
		{ChurnProb: 2},
		{FreshProb: -1},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded", cfg)
		}
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr, err := Generate(Config{Opens: 1000, ZipfS: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.OpenIDs()) != 1000 {
		t.Errorf("opens = %d, want 1000", len(tr.OpenIDs()))
	}
}

// Calibration: the structural properties the paper's experiments rely on.

func TestCalibrationAccessSkew(t *testing.T) {
	for _, p := range Profiles() {
		s := trace.Summarize(gen(t, p, 20000))
		if s.Top10Share < 0.3 {
			t.Errorf("%s: Top10Share = %.3f, want >= 0.3 (heavy skew)", p, s.Top10Share)
		}
		if s.RepeatFraction < 0.5 {
			t.Errorf("%s: RepeatFraction = %.3f, want >= 0.5", p, s.RepeatFraction)
		}
	}
}

func TestCalibrationWriteProfileWritesMost(t *testing.T) {
	writeStats := trace.Summarize(gen(t, ProfileWrite, 15000))
	for _, p := range []Profile{ProfileServer, ProfileWorkstation, ProfileUsers} {
		s := trace.Summarize(gen(t, p, 15000))
		if writeStats.WriteFraction <= s.WriteFraction {
			t.Errorf("write profile write fraction %.3f <= %s %.3f",
				writeStats.WriteFraction, p, s.WriteFraction)
		}
	}
}

func TestCalibrationUsersHasMostClients(t *testing.T) {
	s := trace.Summarize(gen(t, ProfileUsers, 10000))
	if s.Clients < 4 {
		t.Errorf("users clients = %d, want several", s.Clients)
	}
	for _, p := range []Profile{ProfileServer, ProfileWorkstation} {
		if got := trace.Summarize(gen(t, p, 10000)).Clients; got != 1 {
			t.Errorf("%s clients = %d, want 1", p, got)
		}
	}
}

// The paper's Figure 7 ordering: the server workload is by far the most
// predictable (successor entropy well under 1 bit at symbol length 1);
// every other profile is strictly less predictable.
func TestCalibrationEntropyOrdering(t *testing.T) {
	const opens = 30000
	bits := make(map[Profile]float64, 4)
	for _, p := range Profiles() {
		r, err := entropy.SuccessorEntropy(gen(t, p, opens).OpenIDs(), 1)
		if err != nil {
			t.Fatal(err)
		}
		bits[p] = r.Bits
		t.Logf("%s: successor entropy = %.3f bits", p, r.Bits)
	}
	if bits[ProfileServer] >= 1.0 {
		t.Errorf("server entropy = %.3f, want < 1 bit (paper §4.5)", bits[ProfileServer])
	}
	for _, p := range []Profile{ProfileWorkstation, ProfileUsers, ProfileWrite} {
		if bits[p] <= bits[ProfileServer] {
			t.Errorf("%s entropy %.3f <= server %.3f; server must be most predictable",
				p, bits[p], bits[ProfileServer])
		}
	}
}

// The paper's headline client-side result: on the server workload, a g5
// aggregating cache cuts demand fetches dramatically versus plain LRU; on
// the write workload the gain exists but is the most modest.
func TestCalibrationGroupingGains(t *testing.T) {
	reduction := func(p Profile) float64 {
		ids := gen(t, p, 30000).OpenIDs()
		run := func(g int) uint64 {
			agg, err := core.New(core.Config{Capacity: 300, GroupSize: g})
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				agg.Access(id)
			}
			return agg.Stats().DemandFetches()
		}
		lru := run(1)
		g5 := run(5)
		return 1 - float64(g5)/float64(lru)
	}
	server := reduction(ProfileServer)
	write := reduction(ProfileWrite)
	t.Logf("fetch reduction: server=%.1f%% write=%.1f%%", 100*server, 100*write)
	if server < 0.40 {
		t.Errorf("server g5 reduction = %.1f%%, want >= 40%%", 100*server)
	}
	if write <= 0 {
		t.Errorf("write g5 reduction = %.1f%%, want > 0", 100*write)
	}
	if write >= server {
		t.Errorf("write reduction %.1f%% >= server %.1f%%; server must gain most",
			100*write, 100*server)
	}
}
