package workload

import (
	"strings"
	"testing"

	"aggcache/internal/core"
	"aggcache/internal/entropy"
	"aggcache/internal/trace"
)

func TestGenerateWebBudgetAndDeterminism(t *testing.T) {
	cfg := WebConfig{Seed: 1, Requests: 5000}
	a, err := GenerateWeb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.OpenIDs()); got != 5000 {
		t.Errorf("requests = %d, want 5000", got)
	}
	b, err := GenerateWeb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestGenerateWebValidation(t *testing.T) {
	bad := []WebConfig{
		{Requests: -1},
		{Pages: -2},
		{FollowProb: 1.5},
		{ZipfS: 0.9},
		{Clients: -1},
		{Links: -1},
		{ObjectsPerPage: -1},
	}
	for _, cfg := range bad {
		if _, err := GenerateWeb(cfg); err == nil {
			t.Errorf("GenerateWeb(%+v) succeeded", cfg)
		}
	}
}

func TestGenerateWebStructure(t *testing.T) {
	tr, err := GenerateWeb(WebConfig{Seed: 2, Requests: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var pages, objects, shared int
	for i := 0; i < tr.Paths.Len(); i++ {
		p := tr.Paths.Path(trace.FileID(i))
		switch {
		case strings.HasSuffix(p, ".html"):
			pages++
		case strings.HasPrefix(p, "/assets/shared"):
			shared++
		default:
			objects++
		}
	}
	if pages == 0 || objects == 0 || shared == 0 {
		t.Errorf("universe missing a class: pages=%d objects=%d shared=%d", pages, objects, shared)
	}
	// Embedded objects make the stream highly predictable at k=1.
	r, err := entropy.SuccessorEntropy(tr.OpenIDs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("web successor entropy = %.3f bits", r.Bits)
	if r.Bits > 3.5 {
		t.Errorf("web workload entropy %.3f unexpectedly high", r.Bits)
	}
}

// The Hummingbird result, reproduced without hyperlink hints: grouping
// learns the page->objects structure from the access stream alone and
// slashes proxy fetches.
func TestWebGroupingReducesFetches(t *testing.T) {
	tr, err := GenerateWeb(WebConfig{Seed: 3, Requests: 30000})
	if err != nil {
		t.Fatal(err)
	}
	ids := tr.OpenIDs()
	run := func(g int) uint64 {
		c, err := core.New(core.Config{Capacity: 400, GroupSize: g})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			c.Access(id)
		}
		return c.Stats().DemandFetches()
	}
	lru := run(1)
	g7 := run(7)
	reduction := 1 - float64(g7)/float64(lru)
	t.Logf("web fetch reduction: %.1f%% (lru %d -> g7 %d)", 100*reduction, lru, g7)
	if reduction < 0.4 {
		t.Errorf("grouping reduced web fetches only %.1f%%, want >= 40%%", 100*reduction)
	}
}
