// Package workload synthesizes file-access traces with the structural
// properties of the four CMU DFSTrace workloads the paper evaluates
// (mozart=workstation, ives=users, dvorak=write, barber=server). The real
// traces are proprietary, so this generator is the documented substitution
// (see DESIGN.md §3): it reproduces the properties the paper's results
// depend on — heavy access skew, stable inter-file successor relations
// born from recurring tasks, globally shared "hub" files that belong to
// many working sets, write-driven churn, and multi-user interleaving —
// without claiming the authors' absolute numbers.
//
// The model: each client cycles through *tasks* (think build trees and
// script runs). A task is a fixed ordered list of files, some slots of
// which reference globally shared hub files (the /bin/sh and make of
// §2.1). Task selection follows a Zipf law. Each step may deviate into
// noise (an open of a rarely-reused file), tasks may churn (a member file
// replaced by a fresh one, as compilers and editors do), and opens may be
// followed by writes. The emitted event stream is exactly what the paper's
// predictors consume: an open-event sequence whose predictability varies
// by profile.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"aggcache/internal/trace"
)

// Profile names one of the paper's four calibrated workloads.
type Profile string

// The four workloads of §4.1, named as the paper renames them.
const (
	// ProfileWorkstation models mozart, a personal workstation.
	ProfileWorkstation Profile = "workstation"
	// ProfileUsers models ives, the system with the most users.
	ProfileUsers Profile = "users"
	// ProfileWrite models dvorak, the system with the largest
	// proportion of write activity.
	ProfileWrite Profile = "write"
	// ProfileServer models barber, a server with the highest system-call
	// rate and mostly application-driven (highly predictable) accesses.
	ProfileServer Profile = "server"
)

// Profiles lists the four standard profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{ProfileWorkstation, ProfileUsers, ProfileWrite, ProfileServer}
}

// Config parameterizes trace generation. Zero values take documented
// defaults in Generate; ProfileConfig returns the calibrated presets.
type Config struct {
	// Profile is informational (stamped into paths); presets fill the
	// remaining fields.
	Profile Profile
	// Seed makes generation deterministic.
	Seed int64
	// Opens is the number of open events to emit.
	Opens int
	// Clients is the number of interleaved client machines.
	Clients int
	// InterleaveChunk is how many events one client emits before the
	// stream may switch to another; small chunks mean fine-grained
	// interleaving and a less predictable merged stream.
	InterleaveChunk int
	// Tasks is the number of distinct recurring tasks.
	Tasks int
	// TaskLen is the number of file opens per task run.
	TaskLen int
	// SharedFiles is the size of the hub-file pool; each task embeds a
	// couple of hub files at fixed positions.
	SharedFiles int
	// ZipfS is the task-popularity skew exponent (> 1).
	ZipfS float64
	// Noise is the per-step probability of deviating into an open of a
	// noise-pool file instead of the task's next file.
	Noise float64
	// NoiseUniverse is the size of the noise file pool.
	NoiseUniverse int
	// ChurnProb is the per-task-completion probability that one member
	// file is replaced by a brand-new file (metadata-destroying churn).
	ChurnProb float64
	// FreshProb is the per-step probability of opening a brand-new,
	// never-to-be-reused file (temporaries).
	FreshProb float64
	// WriteFraction is the probability that an open is followed by a
	// write event to the same file.
	WriteFraction float64
	// PhaseEvery makes task popularity non-stationary: after every
	// PhaseEvery opens the Zipf popularity ranking rotates by one task,
	// so the locally hot working set drifts over time the way real users
	// move between projects. 0 disables drift. Non-stationarity is what
	// makes recency beat frequency for successor lists (§4.4): without
	// it, frequency estimates converge and LFU ties or edges out LRU.
	PhaseEvery int
}

// ProfileConfig returns the calibrated preset for p with the given seed
// and open count. The presets are chosen so the cross-profile *orderings*
// the paper reports hold: server is the most predictable and gains most
// from grouping; write is the least stable; users interleaves many
// clients. See workload tests for the asserted calibration targets.
func ProfileConfig(p Profile, seed int64, opens int) (Config, error) {
	base := Config{Profile: p, Seed: seed, Opens: opens}
	switch p {
	case ProfileServer:
		base.Clients = 1
		base.InterleaveChunk = 1
		base.Tasks = 80
		base.TaskLen = 25
		base.SharedFiles = 20
		base.ZipfS = 1.4
		base.Noise = 0.03
		base.NoiseUniverse = 2000
		base.ChurnProb = 0.01
		base.FreshProb = 0.004
		base.WriteFraction = 0.08
		base.PhaseEvery = 2500
	case ProfileWorkstation:
		base.Clients = 1
		base.InterleaveChunk = 1
		base.Tasks = 150
		base.TaskLen = 15
		base.SharedFiles = 25
		base.ZipfS = 1.25
		base.Noise = 0.10
		base.NoiseUniverse = 3000
		base.ChurnProb = 0.03
		base.FreshProb = 0.02
		base.WriteFraction = 0.12
		base.PhaseEvery = 1500
	case ProfileUsers:
		base.Clients = 8
		base.InterleaveChunk = 4
		base.Tasks = 250
		base.TaskLen = 12
		base.SharedFiles = 30
		base.ZipfS = 1.2
		base.Noise = 0.08
		base.NoiseUniverse = 4000
		base.ChurnProb = 0.02
		base.FreshProb = 0.01
		base.WriteFraction = 0.10
		base.PhaseEvery = 1500
	case ProfileWrite:
		base.Clients = 2
		base.InterleaveChunk = 8
		base.Tasks = 150
		base.TaskLen = 20
		base.SharedFiles = 20
		base.ZipfS = 1.25
		base.Noise = 0.08
		base.NoiseUniverse = 3000
		base.ChurnProb = 0.25
		base.FreshProb = 0.06
		base.WriteFraction = 0.50
		base.PhaseEvery = 1200
	default:
		return Config{}, fmt.Errorf("workload: unknown profile %q", p)
	}
	return base, nil
}

// Standard returns the calibrated trace for profile p — the library's
// stand-in for "load the CMU trace".
func Standard(p Profile, seed int64, opens int) (*trace.Trace, error) {
	cfg, err := ProfileConfig(p, seed, opens)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

func (c Config) withDefaults() Config {
	if c.Opens == 0 {
		c.Opens = 50000
	}
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.InterleaveChunk == 0 {
		c.InterleaveChunk = 1
	}
	if c.Tasks == 0 {
		c.Tasks = 100
	}
	if c.TaskLen == 0 {
		c.TaskLen = 15
	}
	if c.SharedFiles == 0 {
		c.SharedFiles = 20
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.NoiseUniverse == 0 {
		c.NoiseUniverse = 2000
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Opens < 0:
		return fmt.Errorf("workload: opens must be >= 0, got %d", c.Opens)
	case c.Clients < 1:
		return fmt.Errorf("workload: clients must be >= 1, got %d", c.Clients)
	case c.Tasks < 1 || c.TaskLen < 1:
		return fmt.Errorf("workload: tasks and task length must be >= 1")
	case c.ZipfS <= 1:
		return fmt.Errorf("workload: ZipfS must be > 1, got %v", c.ZipfS)
	case c.Noise < 0 || c.Noise > 1:
		return fmt.Errorf("workload: noise must be in [0,1], got %v", c.Noise)
	case c.ChurnProb < 0 || c.ChurnProb > 1:
		return fmt.Errorf("workload: churn must be in [0,1], got %v", c.ChurnProb)
	case c.FreshProb < 0 || c.FreshProb > 1:
		return fmt.Errorf("workload: fresh must be in [0,1], got %v", c.FreshProb)
	case c.WriteFraction < 0 || c.WriteFraction > 1:
		return fmt.Errorf("workload: write fraction must be in [0,1], got %v", c.WriteFraction)
	case c.PhaseEvery < 0:
		return fmt.Errorf("workload: phase interval must be >= 0, got %d", c.PhaseEvery)
	}
	return nil
}

// generator carries the evolving generation state.
type generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	tr      *trace.Trace
	tasks   [][]string // task -> ordered file paths (mutated by churn)
	clients []*clientState
	now     time.Duration
	freshN  int
	opens   int
}

type clientState struct {
	id   uint16
	task int
	pos  int
	uid  uint32
	pid  uint32
}

// Generate synthesizes a trace per cfg. Generation is deterministic for a
// given Config (including Seed).
func Generate(cfg Config) (*trace.Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &generator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Tasks-1)),
		tr:   trace.NewTrace(),
	}
	g.buildTasks()
	g.buildClients()
	g.run()
	return g.tr, nil
}

// buildTasks lays out each task's file list, splicing hub files into fixed
// slots so popular executables recur inside many distinct working sets.
func (g *generator) buildTasks() {
	g.tasks = make([][]string, g.cfg.Tasks)
	for t := range g.tasks {
		files := make([]string, 0, g.cfg.TaskLen)
		// Two hub files at deterministic-per-task positions.
		hubA := g.rng.Intn(g.cfg.SharedFiles)
		hubB := g.rng.Intn(g.cfg.SharedFiles)
		posA := g.rng.Intn(g.cfg.TaskLen)
		posB := g.rng.Intn(g.cfg.TaskLen)
		for i := 0; i < g.cfg.TaskLen; i++ {
			switch i {
			case posA:
				files = append(files, sharedPath(hubA))
			case posB:
				files = append(files, sharedPath(hubB))
			default:
				files = append(files, fmt.Sprintf("/task%04d/f%03d", t, i))
			}
		}
		g.tasks[t] = files
	}
}

func (g *generator) buildClients() {
	g.clients = make([]*clientState, g.cfg.Clients)
	for i := range g.clients {
		g.clients[i] = &clientState{
			id:   uint16(i + 1),
			task: -1,
			uid:  uint32(1000 + i),
			pid:  uint32(100 + i*7),
		}
	}
}

// run emits events until the open budget is spent, interleaving clients in
// chunks.
func (g *generator) run() {
	for g.opens < g.cfg.Opens {
		c := g.clients[g.rng.Intn(len(g.clients))]
		for n := 0; n < g.cfg.InterleaveChunk && g.opens < g.cfg.Opens; n++ {
			g.step(c)
		}
	}
}

// step emits the next open (plus a possible write) for client c.
func (g *generator) step(c *clientState) {
	if c.task < 0 {
		c.task = g.pickTask()
		c.pos = 0
		c.pid++
	}

	var path string
	switch {
	case g.rng.Float64() < g.cfg.FreshProb:
		path = fmt.Sprintf("/tmp/fresh%07d", g.freshN)
		g.freshN++
		g.emit(c, trace.OpCreate, path)
	case g.rng.Float64() < g.cfg.Noise:
		path = fmt.Sprintf("/noise/n%05d", g.rng.Intn(g.cfg.NoiseUniverse))
	default:
		path = g.tasks[c.task][c.pos]
		c.pos++
	}

	g.emit(c, trace.OpOpen, path)
	g.opens++
	if g.rng.Float64() < g.cfg.WriteFraction {
		g.emit(c, trace.OpWrite, path)
	}

	if c.pos >= len(g.tasks[c.task]) {
		g.churn(c.task)
		c.task = -1
	}
}

// pickTask draws a task from the Zipf popularity law, rotated by the
// current phase so the hot set drifts as the trace progresses.
func (g *generator) pickTask() int {
	raw := int(g.zipf.Uint64())
	if g.cfg.PhaseEvery > 0 {
		raw += g.opens / g.cfg.PhaseEvery
	}
	return raw % g.cfg.Tasks
}

// churn replaces one non-hub file of the finished task with a brand-new
// path, modelling build outputs and editor temporaries invalidating old
// relationships.
func (g *generator) churn(task int) {
	if g.rng.Float64() >= g.cfg.ChurnProb {
		return
	}
	files := g.tasks[task]
	// Pick a non-hub slot; give up after a few tries if the task is all
	// hubs (cannot happen with the presets, but stay safe).
	for try := 0; try < 4; try++ {
		i := g.rng.Intn(len(files))
		if isSharedPath(files[i]) {
			continue
		}
		files[i] = fmt.Sprintf("/task%04d/gen%07d", task, g.freshN)
		g.freshN++
		return
	}
}

func (g *generator) emit(c *clientState, op trace.Op, path string) {
	g.now += time.Duration(1+g.rng.Intn(2000)) * time.Microsecond
	g.tr.Append(trace.Event{
		Time:   g.now,
		Client: c.id,
		PID:    c.pid,
		UID:    c.uid,
		Op:     op,
	}, path)
}

func sharedPath(i int) string { return fmt.Sprintf("/shared/bin%03d", i) }

func isSharedPath(p string) bool {
	return len(p) > 8 && p[:8] == "/shared/"
}
