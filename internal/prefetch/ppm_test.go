package prefetch

import (
	"testing"

	"aggcache/internal/trace"
)

func TestNewPPMValidation(t *testing.T) {
	if _, err := NewPPM(0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := NewPPM(-1); err == nil {
		t.Error("negative order accepted")
	}
}

func TestPPMOrder1MatchesFrequencyRanking(t *testing.T) {
	p, err := NewPPM(1)
	if err != nil {
		t.Fatal(err)
	}
	// 1 is followed by 2 thrice, by 3 once.
	for _, id := range []trace.FileID{1, 2, 9, 1, 2, 9, 1, 2, 9, 1, 3, 9} {
		p.Observe(id)
	}
	p.Observe(1)
	got := p.Predict(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Predict = %v, want [2 3]", got)
	}
}

func TestPPMHigherOrderDisambiguates(t *testing.T) {
	// The paper's Figure-6 scenario: C appears in two patterns, C D B
	// and C A B... here: after (X C) comes D; after (Y C) comes A. An
	// order-2 model separates them; an order-1 model cannot.
	p2, err := NewPPM(2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPPM(1)
	if err != nil {
		t.Fatal(err)
	}
	seq := []trace.FileID{
		10, 3, 4, 99, // X C D
		20, 3, 5, 99, // Y C A
		10, 3, 4, 99,
		20, 3, 5, 99,
		10, 3, 4, 99,
	}
	for _, id := range seq {
		p1.Observe(id)
		p2.Observe(id)
	}
	// Context is now ...,10,3 (X C): order-2 should predict 4 first.
	// Feed both the fresh context.
	p1.Observe(20)
	p2.Observe(20)
	p1.Observe(3)
	p2.Observe(3)
	got2 := p2.Predict(1)
	if len(got2) != 1 || got2[0] != 5 {
		t.Errorf("order-2 Predict after (20,3) = %v, want [5]", got2)
	}
	// Order-1 sees only "3" and predicts the overall most frequent
	// successor of 3, which is 4 (3 observations vs 2).
	got1 := p1.Predict(1)
	if len(got1) != 1 || got1[0] != 4 {
		t.Errorf("order-1 Predict after 3 = %v, want [4]", got1)
	}
}

func TestPPMEscapeToShorterContext(t *testing.T) {
	p, err := NewPPM(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []trace.FileID{1, 2, 1, 2, 1, 2} {
		p.Observe(id)
	}
	// History (2,1,2)... the order-3 context may be unseen at the
	// start; prediction must still come from shorter contexts.
	got := p.Predict(1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Predict = %v, want [1] via escape", got)
	}
}

func TestPPMEmptyAndBounds(t *testing.T) {
	p, err := NewPPM(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Predict(3); got != nil {
		t.Errorf("Predict before observations = %v", got)
	}
	p.Observe(1)
	if got := p.Predict(0); got != nil {
		t.Errorf("Predict(0) = %v", got)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestPPMContextsGrowth(t *testing.T) {
	p, err := NewPPM(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []trace.FileID{1, 2, 3, 1, 2, 3} {
		p.Observe(id)
	}
	cs := p.Contexts()
	if len(cs) != 2 {
		t.Fatalf("Contexts = %v", cs)
	}
	if cs[0] != 3 {
		t.Errorf("order-1 contexts = %d, want 3", cs[0])
	}
	if cs[1] < 3 {
		t.Errorf("order-2 contexts = %d, want >= 3", cs[1])
	}
}

func TestPPMDrivesPrefetchingCache(t *testing.T) {
	p, err := NewPPM(2)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity below the 10-file universe so the two working sets evict
	// each other and predictions actually fetch.
	c, err := NewPrefetchingCache(6, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		for _, id := range []trace.FileID{1, 2, 3, 4, 5, 20, 21, 22, 23, 24} {
			c.Access(id)
		}
	}
	s := c.Stats()
	if s.PrefetchHits == 0 {
		t.Errorf("PPM-driven cache produced no prefetch hits: %+v", s)
	}
}
