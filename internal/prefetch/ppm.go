package prefetch

import (
	"encoding/binary"
	"fmt"
	"sort"

	"aggcache/internal/trace"
)

// PPM is a finite-multi-order context model in the style of the
// prediction-by-partial-match predictors that Kroeger & Long built on
// Vitter & Krishnan's data-compression approach (paper §5): it keeps
// successor counts conditioned on the last k accesses for every k up to
// MaxOrder, and predicts from the longest matching context first, falling
// back ("escaping") to shorter contexts when a long one has too little
// evidence.
type PPM struct {
	order    int
	contexts []map[string]map[trace.FileID]uint32 // contexts[k-1]: k-length context -> successor counts
	history  []trace.FileID
}

var _ Predictor = (*PPM)(nil)

// NewPPM returns a PPM predictor with contexts of length 1..maxOrder.
func NewPPM(maxOrder int) (*PPM, error) {
	if maxOrder < 1 {
		return nil, fmt.Errorf("prefetch: ppm order must be >= 1, got %d", maxOrder)
	}
	ctxs := make([]map[string]map[trace.FileID]uint32, maxOrder)
	for i := range ctxs {
		ctxs[i] = make(map[string]map[trace.FileID]uint32)
	}
	return &PPM{order: maxOrder, contexts: ctxs}, nil
}

// Observe implements Predictor: id becomes the successor of every context
// suffix of the current history.
func (p *PPM) Observe(id trace.FileID) {
	for k := 1; k <= p.order && k <= len(p.history); k++ {
		key := contextKey(p.history[len(p.history)-k:])
		m, ok := p.contexts[k-1][key]
		if !ok {
			m = make(map[trace.FileID]uint32, 2)
			p.contexts[k-1][key] = m
		}
		m[id]++
	}
	p.history = append(p.history, id)
	if len(p.history) > p.order {
		p.history = p.history[1:]
	}
}

// Predict implements Predictor: candidates from the longest matching
// context first (ranked by count), then progressively shorter contexts
// for anything still missing.
func (p *PPM) Predict(n int) []trace.FileID {
	if n <= 0 || len(p.history) == 0 {
		return nil
	}
	var out []trace.FileID
	seen := make(map[trace.FileID]bool, n)
	// The current file must not predict itself in position 0 slot; it
	// is allowed as a later candidate (self-succession exists), so no
	// special case — dedup only.
	for k := min(p.order, len(p.history)); k >= 1 && len(out) < n; k-- {
		key := contextKey(p.history[len(p.history)-k:])
		m := p.contexts[k-1][key]
		if len(m) == 0 {
			continue
		}
		for _, id := range rankCounts(m) {
			if seen[id] {
				continue
			}
			out = append(out, id)
			seen[id] = true
			if len(out) >= n {
				break
			}
		}
	}
	return out
}

// Name implements Predictor.
func (p *PPM) Name() string { return fmt.Sprintf("ppm(order=%d)", p.order) }

// Contexts returns how many distinct contexts of each length are stored —
// the model's metadata footprint, which grows far faster than the
// aggregating cache's single successor list per file.
func (p *PPM) Contexts() []int {
	out := make([]int, p.order)
	for i, m := range p.contexts {
		out[i] = len(m)
	}
	return out
}

func contextKey(ids []trace.FileID) string {
	buf := make([]byte, 0, len(ids)*binary.MaxVarintLen32)
	var tmp [binary.MaxVarintLen32]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// rankCounts returns ids by count desc, id asc (deterministic).
func rankCounts(m map[trace.FileID]uint32) []trace.FileID {
	ids := make([]trace.FileID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if m[ids[i]] != m[ids[j]] {
			return m[ids[i]] > m[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
