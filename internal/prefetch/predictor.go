// Package prefetch implements the classic *predictive prefetching*
// baselines the paper positions itself against (§5): the last-successor
// predictor of Lei & Duchamp, the first-successor variant studied by
// Kroeger & Long, and the probability-graph scheme of Griffioen &
// Appleton with its look-ahead window and minimum-chance threshold. A
// PrefetchingCache drives any predictor the way those systems did —
// issuing explicit per-file prefetch requests after each demand access —
// so the aggregating cache's implicit group retrieval can be compared
// against genuine prefetchers on equal terms.
package prefetch

import (
	"fmt"

	"aggcache/internal/trace"
)

// Predictor guesses which files will be accessed soon, conditioned on the
// access history it has observed.
type Predictor interface {
	// Observe records a demand access in sequence order.
	Observe(id trace.FileID)
	// Predict returns up to n upcoming files, most likely first,
	// excluding none — callers filter out already-cached files.
	Predict(n int) []trace.FileID
	// Name identifies the predictor in reports.
	Name() string
}

// LastSuccessor predicts that each file will be followed by whatever
// followed it last time, chaining that rule forward for deeper
// predictions — the "last successor" model (Lei & Duchamp 1997).
type LastSuccessor struct {
	last    map[trace.FileID]trace.FileID
	prev    trace.FileID
	hasPrev bool
}

var _ Predictor = (*LastSuccessor)(nil)

// NewLastSuccessor returns an empty last-successor predictor.
func NewLastSuccessor() *LastSuccessor {
	return &LastSuccessor{last: make(map[trace.FileID]trace.FileID)}
}

// Observe implements Predictor.
func (p *LastSuccessor) Observe(id trace.FileID) {
	if p.hasPrev {
		p.last[p.prev] = id
	}
	p.prev = id
	p.hasPrev = true
}

// Predict implements Predictor by following the last-successor chain from
// the current file.
func (p *LastSuccessor) Predict(n int) []trace.FileID {
	if !p.hasPrev || n <= 0 {
		return nil
	}
	out := make([]trace.FileID, 0, n)
	seen := map[trace.FileID]bool{p.prev: true}
	cur := p.prev
	for len(out) < n {
		next, ok := p.last[cur]
		if !ok || seen[next] {
			break
		}
		out = append(out, next)
		seen[next] = true
		cur = next
	}
	return out
}

// Name implements Predictor.
func (p *LastSuccessor) Name() string { return "last-successor" }

// FirstSuccessor predicts that each file is followed by whatever followed
// it the *first* time it was ever seen — the stable variant compared by
// Kroeger & Long (1999). It adapts to nothing, which makes it a useful
// lower bound on adaptivity.
type FirstSuccessor struct {
	first   map[trace.FileID]trace.FileID
	prev    trace.FileID
	hasPrev bool
}

var _ Predictor = (*FirstSuccessor)(nil)

// NewFirstSuccessor returns an empty first-successor predictor.
func NewFirstSuccessor() *FirstSuccessor {
	return &FirstSuccessor{first: make(map[trace.FileID]trace.FileID)}
}

// Observe implements Predictor.
func (p *FirstSuccessor) Observe(id trace.FileID) {
	if p.hasPrev {
		if _, ok := p.first[p.prev]; !ok {
			p.first[p.prev] = id
		}
	}
	p.prev = id
	p.hasPrev = true
}

// Predict implements Predictor.
func (p *FirstSuccessor) Predict(n int) []trace.FileID {
	if !p.hasPrev || n <= 0 {
		return nil
	}
	out := make([]trace.FileID, 0, n)
	seen := map[trace.FileID]bool{p.prev: true}
	cur := p.prev
	for len(out) < n {
		next, ok := p.first[cur]
		if !ok || seen[next] {
			break
		}
		out = append(out, next)
		seen[next] = true
		cur = next
	}
	return out
}

// Name implements Predictor.
func (p *FirstSuccessor) Name() string { return "first-successor" }

// ProbabilityGraph is Griffioen & Appleton's predictor (USENIX 1994): a
// directed graph whose edge A->B counts how often B was accessed within a
// look-ahead window after A. Prediction returns the current file's
// followers whose estimated chance (edge count over the node's total)
// meets the minimum-chance threshold.
type ProbabilityGraph struct {
	lookahead int
	minChance float64
	counts    map[trace.FileID]map[trace.FileID]uint64
	totals    map[trace.FileID]uint64
	window    []trace.FileID
	cur       trace.FileID
	hasCur    bool
}

var _ Predictor = (*ProbabilityGraph)(nil)

// NewProbabilityGraph builds a probability-graph predictor. lookahead is
// the window size in accesses (the paper's scheme tracked followers
// "within a particular look-ahead window"); minChance in [0,1] is the
// prefetch threshold.
func NewProbabilityGraph(lookahead int, minChance float64) (*ProbabilityGraph, error) {
	if lookahead < 1 {
		return nil, fmt.Errorf("prefetch: lookahead must be >= 1, got %d", lookahead)
	}
	if minChance < 0 || minChance > 1 {
		return nil, fmt.Errorf("prefetch: min chance must be in [0,1], got %v", minChance)
	}
	return &ProbabilityGraph{
		lookahead: lookahead,
		minChance: minChance,
		counts:    make(map[trace.FileID]map[trace.FileID]uint64),
		totals:    make(map[trace.FileID]uint64),
	}, nil
}

// Observe implements Predictor: id is a follower (within the look-ahead
// window) of every file currently in the window.
func (p *ProbabilityGraph) Observe(id trace.FileID) {
	for _, w := range p.window {
		if w == id {
			continue
		}
		m, ok := p.counts[w]
		if !ok {
			m = make(map[trace.FileID]uint64, 4)
			p.counts[w] = m
		}
		m[id]++
		p.totals[w]++
	}
	p.window = append(p.window, id)
	if len(p.window) > p.lookahead {
		p.window = p.window[1:]
	}
	p.cur = id
	p.hasCur = true
}

// Predict implements Predictor: the current file's followers at or above
// the minimum chance, most likely first.
func (p *ProbabilityGraph) Predict(n int) []trace.FileID {
	if !p.hasCur || n <= 0 {
		return nil
	}
	m := p.counts[p.cur]
	total := p.totals[p.cur]
	if total == 0 {
		return nil
	}
	type cand struct {
		id    trace.FileID
		count uint64
	}
	cands := make([]cand, 0, len(m))
	for id, c := range m {
		if float64(c)/float64(total) >= p.minChance {
			cands = append(cands, cand{id: id, count: c})
		}
	}
	// Insertion sort by count desc, id asc for determinism (candidate
	// lists are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if a.count > b.count || (a.count == b.count && a.id < b.id) {
				break
			}
			cands[j-1], cands[j] = b, a
		}
	}
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]trace.FileID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Name implements Predictor.
func (p *ProbabilityGraph) Name() string {
	return fmt.Sprintf("probability-graph(w=%d,p=%.2f)", p.lookahead, p.minChance)
}
