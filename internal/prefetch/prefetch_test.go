package prefetch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/trace"
)

func TestLastSuccessorLearnsAndChains(t *testing.T) {
	p := NewLastSuccessor()
	for _, id := range []trace.FileID{1, 2, 3, 4} {
		p.Observe(id)
	}
	p.Observe(1) // current file 1; last successor of 1 is 2, of 2 is 3...
	got := p.Predict(3)
	want := []trace.FileID{2, 3, 4}
	if len(got) != 3 {
		t.Fatalf("Predict = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Predict = %v, want %v", got, want)
		}
	}
}

func TestLastSuccessorAdapts(t *testing.T) {
	p := NewLastSuccessor()
	for _, id := range []trace.FileID{1, 2, 1, 3, 1} {
		p.Observe(id)
	}
	// Last successor of 1 is now 3, not 2.
	got := p.Predict(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("Predict = %v, want [3]", got)
	}
}

func TestLastSuccessorEmptyAndCycle(t *testing.T) {
	p := NewLastSuccessor()
	if got := p.Predict(3); got != nil {
		t.Errorf("Predict before any observation = %v", got)
	}
	for _, id := range []trace.FileID{1, 2, 1, 2, 1} {
		p.Observe(id)
	}
	// Chain 1->2->1 must stop at the cycle.
	got := p.Predict(10)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Predict = %v, want [2]", got)
	}
	if got := p.Predict(0); got != nil {
		t.Errorf("Predict(0) = %v", got)
	}
}

func TestFirstSuccessorNeverAdapts(t *testing.T) {
	p := NewFirstSuccessor()
	for _, id := range []trace.FileID{1, 2, 1, 3, 1, 4, 1} {
		p.Observe(id)
	}
	// First-ever successor of 1 was 2; later evidence is ignored.
	got := p.Predict(1)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Predict = %v, want [2]", got)
	}
	if p.Name() == "" {
		t.Error("empty Name")
	}
}

func TestProbabilityGraphValidation(t *testing.T) {
	if _, err := NewProbabilityGraph(0, 0.1); err == nil {
		t.Error("lookahead 0 accepted")
	}
	if _, err := NewProbabilityGraph(2, -0.1); err == nil {
		t.Error("negative chance accepted")
	}
	if _, err := NewProbabilityGraph(2, 1.5); err == nil {
		t.Error("chance > 1 accepted")
	}
}

func TestProbabilityGraphWindowCounting(t *testing.T) {
	p, err := NewProbabilityGraph(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Window 2: after observing 1 2 3, followers of 1 = {2,3}, of 2 = {3}.
	for _, id := range []trace.FileID{1, 2, 3} {
		p.Observe(id)
	}
	// Make 1 current again and predict.
	p.Observe(1)
	got := p.Predict(5)
	if len(got) != 2 {
		t.Fatalf("Predict = %v, want 2 followers", got)
	}
}

func TestProbabilityGraphThreshold(t *testing.T) {
	p, err := NewProbabilityGraph(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 1 followed by 2 three times and by 3 once: P(2|1)=0.75, P(3|1)=0.25.
	for _, id := range []trace.FileID{1, 2, 1, 2, 1, 2, 1, 3} {
		p.Observe(id)
	}
	p.Observe(1)
	got := p.Predict(5)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Predict = %v, want [2] (3 is under the 0.5 threshold)", got)
	}
}

func TestProbabilityGraphRanksByCount(t *testing.T) {
	p, err := NewProbabilityGraph(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for _, id := range []trace.FileID{1, 2, 3} {
			p.Observe(id)
		}
	}
	p.Observe(1)
	got := p.Predict(2)
	// Follower counts of 1 within window 3: both 2 and 3 appear every
	// round; 2 must rank at least as high as 3... they tie, so id order
	// breaks the tie deterministically.
	if len(got) != 2 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestNewPrefetchingCacheValidation(t *testing.T) {
	if _, err := NewPrefetchingCache(10, 2, nil); err == nil {
		t.Error("nil predictor accepted")
	}
	if _, err := NewPrefetchingCache(10, -1, NewLastSuccessor()); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := NewPrefetchingCache(0, 1, NewLastSuccessor()); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPrefetchingCacheServesChain(t *testing.T) {
	c, err := NewPrefetchingCache(10, 3, NewLastSuccessor())
	if err != nil {
		t.Fatal(err)
	}
	seq := []trace.FileID{1, 2, 3, 4, 5}
	for round := 0; round < 10; round++ {
		for _, id := range seq {
			c.Access(id)
		}
		// Interleave a second working set to force evictions... the
		// cache holds 10 so both sets fit; use 30 distinct files.
		for _, id := range []trace.FileID{20, 21, 22, 23, 24, 25, 26, 27} {
			c.Access(id)
		}
	}
	s := c.Stats()
	if s.PrefetchHits == 0 {
		t.Errorf("no prefetch hits: %+v", s)
	}
	if s.Accuracy() < 0 || s.Accuracy() > 1 {
		t.Errorf("accuracy out of range: %v", s.Accuracy())
	}
	if s.TotalRequests() != s.Misses+s.PrefetchFetches {
		t.Errorf("TotalRequests inconsistent: %+v", s)
	}
}

func TestPrefetchingCacheDepthZeroIsPlainLRU(t *testing.T) {
	c, err := NewPrefetchingCache(5, 0, NewLastSuccessor())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c.Access(trace.FileID(rng.Intn(20)))
	}
	s := c.Stats()
	if s.PrefetchFetches != 0 || s.PrefetchHits != 0 {
		t.Errorf("depth 0 still prefetched: %+v", s)
	}
}

// Property: occupancy bounded; demand hit iff resident at access time;
// request accounting consistent.
func TestPrefetchingCacheInvariants(t *testing.T) {
	f := func(seed int64, capRaw, depthRaw uint8) bool {
		capacity := int(capRaw%20) + 2
		depth := int(depthRaw % 6)
		pg, err := NewProbabilityGraph(4, 0.2)
		if err != nil {
			return false
		}
		c, err := NewPrefetchingCache(capacity, depth, pg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			id := trace.FileID(rng.Intn(capacity * 2))
			c.Access(id)
			if c.Len() > c.Cap() {
				return false
			}
			if !c.Contains(id) {
				return false
			}
		}
		s := c.Stats()
		return s.Hits+s.Misses == 500 && s.PrefetchHits <= s.PrefetchFetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The comparison the aggregating cache motivates: per unit of server
// load, grouping must beat explicit prefetching on a predictable
// workload, because a group ride-shares one request.
func TestPrefetcherGeneratesMoreRequestsThanGrouping(t *testing.T) {
	// Deterministic interleaved tasks.
	var seq []trace.FileID
	rng := rand.New(rand.NewSource(4))
	tasks := [][]trace.FileID{
		{1, 2, 3, 4, 5}, {20, 21, 22, 23, 24}, {40, 41, 42, 43, 44},
	}
	for i := 0; i < 300; i++ {
		seq = append(seq, tasks[rng.Intn(len(tasks))]...)
	}

	pc, err := NewPrefetchingCache(10, 4, NewLastSuccessor())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range seq {
		pc.Access(id)
	}
	ps := pc.Stats()
	// Hit rates will be comparable, but the prefetcher's request count
	// (misses + explicit prefetches) must exceed its own miss count
	// substantially — the load the aggregating cache avoids.
	if ps.PrefetchFetches == 0 {
		t.Fatal("prefetcher never prefetched")
	}
	if ps.TotalRequests() <= ps.DemandFetches() {
		t.Errorf("TotalRequests %d <= DemandFetches %d", ps.TotalRequests(), ps.DemandFetches())
	}
}
