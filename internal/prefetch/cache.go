package prefetch

import (
	"fmt"

	"aggcache/internal/cache"
	"aggcache/internal/trace"
)

// Stats counts a prefetching cache's activity. Unlike the aggregating
// cache — where one miss costs exactly one (group) request — an explicit
// prefetcher issues a separate request per predicted file, so its load on
// the server is DemandFetches + PrefetchFetches.
type Stats struct {
	Hits            uint64
	Misses          uint64
	PrefetchFetches uint64
	// PrefetchHits counts demand hits served by a prefetched file that
	// had not been demanded since arriving.
	PrefetchHits uint64
	Evictions    uint64
}

// DemandFetches is the number of demand-driven requests (== Misses).
func (s Stats) DemandFetches() uint64 { return s.Misses }

// TotalRequests is the total load placed on the remote server.
func (s Stats) TotalRequests() uint64 { return s.Misses + s.PrefetchFetches }

// HitRate returns demand hits over demand accesses.
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Accuracy is PrefetchHits over PrefetchFetches.
func (s Stats) Accuracy() float64 {
	if s.PrefetchFetches == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(s.PrefetchFetches)
}

// PrefetchingCache is a classic prefetching client cache: an LRU cache
// plus a Predictor; after every demand access it issues explicit prefetch
// requests for the predictor's suggestions. Prefetched files enter at the
// LRU tail (the same conservative placement the aggregating cache uses)
// so the comparison isolates *how* data is brought in, not where it is
// placed.
type PrefetchingCache struct {
	capacity   int
	depth      int
	lru        *cache.LRU
	predictor  Predictor
	prefetched map[trace.FileID]bool
	stats      Stats
}

// NewPrefetchingCache builds a prefetching cache of the given capacity
// that asks predictor for up to depth suggestions per access.
func NewPrefetchingCache(capacity, depth int, predictor Predictor) (*PrefetchingCache, error) {
	if predictor == nil {
		return nil, fmt.Errorf("prefetch: predictor must not be nil")
	}
	if depth < 0 {
		return nil, fmt.Errorf("prefetch: depth must be >= 0, got %d", depth)
	}
	lru, err := cache.NewLRU(capacity)
	if err != nil {
		return nil, err
	}
	c := &PrefetchingCache{
		capacity:   capacity,
		depth:      depth,
		lru:        lru,
		predictor:  predictor,
		prefetched: make(map[trace.FileID]bool),
	}
	lru.OnEvict(func(id trace.FileID) { delete(c.prefetched, id) })
	return c, nil
}

// Access processes a demand open, then prefetches.
func (c *PrefetchingCache) Access(id trace.FileID) bool {
	c.predictor.Observe(id)
	hit := c.lru.Contains(id)
	if hit {
		c.stats.Hits++
		if c.prefetched[id] {
			c.stats.PrefetchHits++
			delete(c.prefetched, id)
		}
		c.lru.Touch(id)
	} else {
		c.stats.Misses++
		c.lru.InsertHead(id)
		delete(c.prefetched, id)
	}
	c.prefetch(id)
	return hit
}

// prefetch issues explicit fetches for the predictor's suggestions that
// are not already resident. Like the aggregating cache's group install,
// making room never evicts the batch's own files (or the file just
// demanded); when only protected residents remain, the deeper (less
// likely) predictions are dropped.
func (c *PrefetchingCache) prefetch(current trace.FileID) {
	if c.depth == 0 {
		return
	}
	preds := c.predictor.Predict(c.depth)
	if len(preds) == 0 {
		return
	}
	protected := make(map[trace.FileID]bool, len(preds)+1)
	protected[current] = true
	for _, id := range preds {
		protected[id] = true
	}
	for _, id := range preds {
		if c.lru.Contains(id) {
			continue
		}
		if c.lru.Len() >= c.capacity {
			if _, ok := c.lru.EvictVictimExcept(protected); !ok {
				break
			}
		}
		c.stats.PrefetchFetches++
		c.lru.InsertTail(id)
		c.prefetched[id] = true
	}
}

// Contains reports residency without changing state.
func (c *PrefetchingCache) Contains(id trace.FileID) bool { return c.lru.Contains(id) }

// Len returns the number of resident files.
func (c *PrefetchingCache) Len() int { return c.lru.Len() }

// Cap returns the capacity in files.
func (c *PrefetchingCache) Cap() int { return c.capacity }

// Stats returns a copy of the statistics.
func (c *PrefetchingCache) Stats() Stats {
	s := c.stats
	s.Evictions = c.lru.Stats().Evictions
	return s
}
