package gossip_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"aggcache/internal/cluster"
	"aggcache/internal/faultnet"
	"aggcache/internal/fsnet"
	"aggcache/internal/gossip"
	"aggcache/internal/obs"
)

// The gossip suite runs real nodes over real loopback sockets but keeps
// every clock fake and every anti-entropy round hand-driven: Interval 0
// disables the background loop, Tick() advances dissemination one round
// at a time, and breaker cooldowns lapse by Advance, never by sleeping.

// fakeClock is a hand-advanced clock for breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// harness is an in-process fleet: per node one store replica, one
// cluster.Node, one fsnet server with the node wired as Router and
// Views, and one hand-driven gossiper. Every connection passes through
// BOTH endpoints' gates, so downing one node's gate is a full partition
// of that node — inbound and outbound.
type harness struct {
	addrs     []string
	nodes     []*cluster.Node
	gossipers []*gossip.Gossiper
	gates     map[string]*faultnet.Gate
	clk       *fakeClock
}

func startHarness(t *testing.T, numNodes int) *harness {
	t.Helper()
	h := &harness{gates: make(map[string]*faultnet.Gate), clk: newFakeClock()}

	listeners := make([]net.Listener, numNodes)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		h.addrs = append(h.addrs, l.Addr().String())
		h.gates[l.Addr().String()] = &faultnet.Gate{}
	}

	for i := 0; i < numNodes; i++ {
		store := fsnet.NewStore()
		for f := 0; f < 16; f++ {
			path := fmt.Sprintf("/data/f%03d", f)
			if err := store.Put(path, []byte("contents of "+path)); err != nil {
				t.Fatal(err)
			}
		}
		self := h.addrs[i]
		dial := func(addr string) (net.Conn, error) {
			own, tgt := h.gates[self], h.gates[addr]
			if own.Down() || tgt.Down() {
				return nil, fmt.Errorf("%w: partition: dial %s from %s", faultnet.ErrInjected, addr, self)
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultnet.Wrap(faultnet.Wrap(conn, faultnet.Faults{Gate: tgt}, nil),
				faultnet.Faults{Gate: own}, nil), nil
		}
		node, err := cluster.NewNode(cluster.Config{
			Self:        self,
			Peers:       h.addrs,
			PeerTimeout: 2 * time.Second,
			Dialer:      dial,
			Now:         h.clk.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, node)

		srv, err := fsnet.NewServer(store, fsnet.ServerConfig{
			GroupSize: 2,
			Router:    node,
			Views:     node,
		})
		if err != nil {
			t.Fatal(err)
		}
		l := listeners[i]
		go func() { _ = srv.Serve(l) }()
		t.Cleanup(func() { _ = srv.Close() })
		t.Cleanup(func() { _ = node.Close() })

		g := gossip.New(gossip.Config{Node: node, Seed: int64(i + 1)})
		h.gossipers = append(h.gossipers, g)
		t.Cleanup(g.Stop)
	}
	return h
}

// converge hand-drives rounds until every listed node reaches epoch
// want, bounded by round count — not wall time, so a regression fails
// fast instead of hanging.
func (h *harness) converge(want uint64, idx ...int) bool {
	for round := 0; round < 64; round++ {
		done := true
		for _, i := range idx {
			if h.nodes[i].Epoch() < want {
				done = false
			}
		}
		if done {
			return true
		}
		for _, i := range idx {
			h.gossipers[i].Tick()
		}
	}
	for _, i := range idx {
		if h.nodes[i].Epoch() < want {
			return false
		}
	}
	return true
}

// TestOneUpdateConvergesFleet is the headline acceptance check in
// harness form: a single Update on a single node — one operator reload
// — converges every node's epoch with no other operator action.
func TestOneUpdateConvergesFleet(t *testing.T) {
	h := startHarness(t, 3)
	if err := h.nodes[1].Update(2, h.addrs); err != nil {
		t.Fatal(err)
	}
	if !h.converge(2, 0, 1, 2) {
		t.Fatalf("fleet did not converge: epochs %d/%d/%d",
			h.nodes[0].Epoch(), h.nodes[1].Epoch(), h.nodes[2].Epoch())
	}
	for i, n := range h.nodes {
		if got := len(n.Members()); got != 3 {
			t.Errorf("node %d has %d members after convergence, want 3", i, got)
		}
	}
}

// TestPartitionHealConverges is the deterministic 3-node partition
// test: node C is fully partitioned (both directions), a view update
// lands on A, the connected majority converges while C provably does
// not — and once the partition heals and the breaker cooldown lapses on
// the fake clock, anti-entropy alone carries C to the fleet epoch.
// Zero wall-clock sleeps anywhere.
func TestPartitionHealConverges(t *testing.T) {
	h := startHarness(t, 3)
	const c = 2
	h.gates[h.addrs[c]].SetDown(true)

	if err := h.nodes[0].Update(2, h.addrs); err != nil {
		t.Fatal(err)
	}
	if !h.converge(2, 0, 1) {
		t.Fatalf("connected side did not converge: epochs %d/%d",
			h.nodes[0].Epoch(), h.nodes[1].Epoch())
	}

	// The partitioned node cannot learn the view: its own rounds fail
	// outbound, and nothing reaches it inbound.
	for i := 0; i < 8; i++ {
		h.gossipers[c].Tick()
	}
	if got := h.nodes[c].Epoch(); got != 1 {
		t.Fatalf("partitioned node reached epoch %d, partition is leaky", got)
	}

	// Heal. Breakers tripped by the partition stay open until their
	// cooldown lapses — on the fake clock, not in wall time.
	h.gates[h.addrs[c]].SetDown(false)
	h.clk.Advance(10 * time.Second)

	if !h.converge(2, 0, 1, 2) {
		t.Fatalf("fleet did not converge after heal: epochs %d/%d/%d",
			h.nodes[0].Epoch(), h.nodes[1].Epoch(), h.nodes[c].Epoch())
	}
}

// scriptedView is a minimal View for unit-testing the gossiper's hint
// and tick logic without sockets.
type scriptedView struct {
	self string

	mu      sync.Mutex
	epoch   uint64
	members []string
	hook    func(addr string, epoch uint64)
	pulls   []string
	pushes  []string
}

func (v *scriptedView) Self() string { return v.self }

func (v *scriptedView) Epoch() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch
}

func (v *scriptedView) ViewSnapshot() (uint64, []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.epoch, append([]string(nil), v.members...)
}

func (v *scriptedView) OnViewHint(fn func(addr string, epoch uint64)) {
	v.mu.Lock()
	v.hook = fn
	v.mu.Unlock()
}

func (v *scriptedView) ViewPullFrom(addr string) (bool, uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pulls = append(v.pulls, addr)
	return false, v.epoch, nil
}

func (v *scriptedView) ViewPushTo(addr string, epoch uint64, members []string) (uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pushes = append(v.pushes, addr)
	return epoch, nil
}

func (v *scriptedView) pullCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.pulls)
}

// TestNoteEpochFiltersStaleAndDedupes: hints at or below the installed
// epoch trigger nothing; a newer hint triggers exactly one pull even
// when the same hint arrives in a burst.
func TestNoteEpochFiltersStaleAndDedupes(t *testing.T) {
	v := &scriptedView{self: "a:1", epoch: 5, members: []string{"a:1", "b:2"}}
	reg := obs.NewRegistry()
	g := gossip.New(gossip.Config{Node: v, Obs: reg})
	defer g.Stop()

	g.NoteEpoch("b:2", 5) // not newer
	g.NoteEpoch("b:2", 3) // stale
	g.NoteEpoch("a:1", 9) // self
	g.Stop()              // waits for any pull goroutines
	if got := v.pullCount(); got != 0 {
		t.Fatalf("stale/self hints triggered %d pulls, want 0", got)
	}

	v2 := &scriptedView{self: "a:1", epoch: 5, members: []string{"a:1", "b:2"}}
	g2 := gossip.New(gossip.Config{Node: v2})
	g2.NoteEpoch("b:2", 7)
	g2.NoteEpoch("b:2", 7) // duplicate while (or after) the first is in flight
	g2.Stop()
	if got := v2.pullCount(); got < 1 || got > 2 {
		t.Fatalf("newer hint triggered %d pulls, want 1 (or 2 if the first completed)", got)
	}
}

// TestTickPushesBackWhenPeerOlder: a round against an older peer pulls
// first, then pushes our view so one tick converges the pair in either
// direction.
func TestTickPushesBackWhenPeerOlder(t *testing.T) {
	v := &scriptedView{self: "a:1", epoch: 5, members: []string{"a:1", "b:2"}}
	v.epoch = 5
	g := gossip.New(gossip.Config{Node: v, Seed: 1})
	defer g.Stop()
	// ViewPullFrom reports the peer at our own epoch → no push.
	g.Tick()
	v.mu.Lock()
	pulls, pushes := len(v.pulls), len(v.pushes)
	v.mu.Unlock()
	if pulls != 1 || pushes != 0 {
		t.Fatalf("tick against equal peer: %d pulls %d pushes, want 1/0", pulls, pushes)
	}
	// Drop the reported epoch below ours → the next tick pushes back.
	v.mu.Lock()
	v.epoch = 5
	v.mu.Unlock()
	older := &scriptedView{self: "a:1", epoch: 5, members: []string{"a:1", "b:2"}}
	olderReport := uint64(2)
	pullStub := gossip.New(gossip.Config{Node: &reportingView{scriptedView: older, report: olderReport}, Seed: 1})
	defer pullStub.Stop()
	pullStub.Tick()
	older.mu.Lock()
	pulls, pushes = len(older.pulls), len(older.pushes)
	older.mu.Unlock()
	if pulls != 1 || pushes != 1 {
		t.Fatalf("tick against older peer: %d pulls %d pushes, want 1/1", pulls, pushes)
	}
}

// reportingView wraps scriptedView to report a fixed remote epoch from
// pulls, simulating an older peer.
type reportingView struct {
	*scriptedView
	report uint64
}

func (v *reportingView) ViewPullFrom(addr string) (bool, uint64, error) {
	_, _, _ = v.scriptedView.ViewPullFrom(addr)
	return false, v.report, nil
}

// TestTickFanoutPullsDistinctPeers: with Fanout k, one round reconciles
// with exactly k peers and never the same peer twice; a fanout above the
// live peer count clamps to every peer exactly once. Seeded, so the
// selections are reproducible run to run.
func TestTickFanoutPullsDistinctPeers(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	for _, tc := range []struct {
		fanout int
		want   int
	}{
		{fanout: 0, want: 1}, // default
		{fanout: 3, want: 3},
		{fanout: 99, want: 4}, // clamped to the 4 live peers
	} {
		v := &scriptedView{self: "a:1", epoch: 5, members: members}
		g := gossip.New(gossip.Config{Node: v, Seed: 42, Fanout: tc.fanout})
		g.Tick()
		g.Stop()
		v.mu.Lock()
		pulls := append([]string(nil), v.pulls...)
		v.mu.Unlock()
		if len(pulls) != tc.want {
			t.Errorf("fanout %d: %d pulls %v, want %d", tc.fanout, len(pulls), pulls, tc.want)
		}
		seen := make(map[string]bool)
		for _, addr := range pulls {
			if addr == "a:1" {
				t.Errorf("fanout %d: round pulled self", tc.fanout)
			}
			if seen[addr] {
				t.Errorf("fanout %d: peer %s pulled twice in one round: %v", tc.fanout, addr, pulls)
			}
			seen[addr] = true
		}
	}
}

// TestTickFanoutDeterministic: the same seed yields the same peer
// selection sequence across rounds, so failures in fanout scheduling
// reproduce exactly.
func TestTickFanoutDeterministic(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	run := func() []string {
		v := &scriptedView{self: "a:1", epoch: 5, members: members}
		g := gossip.New(gossip.Config{Node: v, Seed: 7, Fanout: 2})
		defer g.Stop()
		for i := 0; i < 4; i++ {
			g.Tick()
		}
		v.mu.Lock()
		defer v.mu.Unlock()
		return append([]string(nil), v.pulls...)
	}
	first, second := run(), run()
	if len(first) != 8 {
		t.Fatalf("4 rounds at fanout 2 made %d pulls, want 8", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed diverged at pull %d: %v vs %v", i, first, second)
		}
	}
}
