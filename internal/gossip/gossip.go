// Package gossip converges cluster membership fleet-wide from a single
// operator action. It layers two dissemination channels over the view
// verbs the cluster tier exposes:
//
// Piggyback: every fsnet forward and reply on a v3 connection already
// carries the sender's view epoch as a tiny hint frame (see
// fsnet.ViewSource). The transport surfaces each hint through
// OnViewHint; the gossiper reacts to a hint newer than the installed
// view by pulling the sender's full view in the background. Hints make
// convergence ride the data path — a fleet under load converges at
// request latency, not gossip-interval latency — and pulling instead of
// pushing on a hint means a new view is fetched once per hinted peer,
// not blasted at every connection (no push storms).
//
// Anti-entropy: a background loop wakes every Interval, picks Fanout
// distinct random live peers (one by default), and exchanges views with
// each — pull first, then push back if the peer turned out to be older.
// Anti-entropy is what carries idle fleets and heals partitions: it
// needs no traffic and no hints, only that the pair can talk. Random
// peer choice gives the standard epidemic O(log n) spread without
// tracking who knows what; raising the fanout trades bandwidth for a
// proportionally shorter convergence tail.
//
// Epoch rules are the cluster tier's (Update): higher epoch wins,
// stale views are refused, ties never install. The gossiper adds no
// ordering of its own, so a view observed anywhere is either installed
// or provably older than what the receiver already holds.
package gossip

import (
	"math/rand"
	"strconv"
	"sync"
	"time"

	"aggcache/internal/obs"
	"aggcache/internal/obs/otrace"
)

// View is the slice of *cluster.Node the gossiper drives. It stays an
// interface so gossip imports neither cluster nor fsnet, and tests can
// substitute a scripted view.
type View interface {
	// Self is this node's own advertised address.
	Self() string
	// Epoch is the installed view's epoch.
	Epoch() uint64
	// ViewSnapshot returns the installed epoch and member list together.
	ViewSnapshot() (epoch uint64, members []string)
	// OnViewHint registers fn to observe every view-epoch hint the
	// transport sees; nil unregisters.
	OnViewHint(fn func(addr string, epoch uint64))
	// ViewPullFrom fetches addr's view and installs it if newer,
	// reporting whether it installed and addr's epoch.
	ViewPullFrom(addr string) (applied bool, remoteEpoch uint64, err error)
	// ViewPushTo offers a view to addr, returning the epoch addr holds
	// afterwards.
	ViewPushTo(addr string, epoch uint64, members []string) (remoteEpoch uint64, err error)
}

// Config configures one node's gossiper.
type Config struct {
	// Node is the membership view to disseminate. Required.
	Node View
	// Interval is the anti-entropy period. Zero or negative disables
	// the background loop — hint-triggered pulls still run, and Tick
	// can be driven by hand.
	Interval time.Duration
	// Ticker builds the loop's trigger channel; nil selects a
	// time.Ticker. Tests inject a hand-fired channel so rounds run on
	// demand with no wall-clock sleeps.
	Ticker func(d time.Duration) (ch <-chan time.Time, stop func())
	// Seed seeds peer selection; 0 draws from the wall clock. Tests fix
	// it so every round's peer choice is reproducible.
	Seed int64
	// Fanout is how many distinct random peers each anti-entropy round
	// reconciles with (0 selects 1; values above the live peer count are
	// clamped per round). Higher fanout shortens the convergence tail at
	// the cost of proportionally more exchanges.
	Fanout int
	// Obs, when set, registers the gossip counters and the view-epoch
	// gauge with the given registry.
	Obs *obs.Registry
	// Trace, when set, makes each anti-entropy round a trace root (its
	// per-peer exchanges child spans), head-sampled at the tracer's own
	// rate like any other entry point.
	Trace *otrace.Tracer
}

// Gossiper runs the two dissemination channels for one node. Start it
// after the node is serving and Stop it before the node closes. All
// methods are safe for concurrent use.
type Gossiper struct {
	node     View
	interval time.Duration
	ticker   func(d time.Duration) (<-chan time.Time, func())
	fanout   int
	trace    *otrace.Tracer

	rndMu sync.Mutex
	rnd   *rand.Rand

	mu       sync.Mutex
	stopped  bool
	inflight map[string]uint64 // hinted pulls in flight: addr -> epoch
	stop     chan struct{}
	wg       sync.WaitGroup

	rounds     *obs.Counter
	pulls      *obs.Counter
	pushes     *obs.Counter
	applied    *obs.Counter
	hintPulls  *obs.Counter
	staleHints *obs.Counter
	failures   *obs.Counter
	events     *obs.EventLog
}

// New builds a gossiper and subscribes it to the node's view hints.
// The anti-entropy loop does not run until Start.
func New(cfg Config) *Gossiper {
	if cfg.Node == nil {
		panic("gossip: Config.Node is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	tick := cfg.Ticker
	if tick == nil {
		tick = func(d time.Duration) (<-chan time.Time, func()) {
			t := time.NewTicker(d)
			return t.C, t.Stop
		}
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = 1
	}
	g := &Gossiper{
		node:     cfg.Node,
		interval: cfg.Interval,
		ticker:   tick,
		fanout:   fanout,
		trace:    cfg.Trace,
		rnd:      rand.New(rand.NewSource(seed)),
		inflight: make(map[string]uint64),
		stop:     make(chan struct{}),
	}
	g.wireMetrics(cfg.Obs)
	cfg.Node.OnViewHint(g.NoteEpoch)
	return g
}

func (g *Gossiper) wireMetrics(reg *obs.Registry) {
	if reg == nil {
		g.rounds = obs.NewCounter()
		g.pulls = obs.NewCounter()
		g.pushes = obs.NewCounter()
		g.applied = obs.NewCounter()
		g.hintPulls = obs.NewCounter()
		g.staleHints = obs.NewCounter()
		g.failures = obs.NewCounter()
		return
	}
	g.rounds = reg.Counter("gossip_rounds_total", "anti-entropy rounds run")
	g.pulls = reg.Counter("gossip_pulls_total", "view pull exchanges completed")
	g.pushes = reg.Counter("gossip_pushes_total", "views pushed to peers that were older")
	g.applied = reg.Counter("gossip_views_applied_total", "remote views installed via gossip")
	g.hintPulls = reg.Counter("gossip_hint_pulls_total", "background pulls triggered by piggybacked hints")
	g.staleHints = reg.Counter("gossip_stale_hints_total", "hints ignored: epoch not newer than installed")
	g.failures = reg.Counter("gossip_failures_total", "view exchanges that failed (transport or refused)")
	g.events = reg.Events()
	reg.GaugeFunc("gossip_view_epoch", "epoch of the installed membership view as gossip sees it", func() float64 {
		return float64(g.node.Epoch())
	})
}

// Start launches the anti-entropy loop. A zero interval means the
// gossiper is hint-driven only, so Start is a no-op.
func (g *Gossiper) Start() {
	if g.interval <= 0 {
		return
	}
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.wg.Add(1)
	g.mu.Unlock()
	go g.loop()
}

func (g *Gossiper) loop() {
	defer g.wg.Done()
	ch, stop := g.ticker(g.interval)
	defer stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ch:
			g.Tick()
		}
	}
}

// Stop unsubscribes from hints, halts the loop, and waits for every
// in-flight background pull. Idempotent.
func (g *Gossiper) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	close(g.stop)
	g.mu.Unlock()
	g.node.OnViewHint(nil)
	g.wg.Wait()
}

// Tick runs one synchronous anti-entropy round: choose Fanout distinct
// random peers from the installed view, pull each one's view (installing
// it if newer), and push ours back to each peer that turned out to be
// older. The view snapshot is taken once per round — a pull that
// installs a newer view mid-round does not change what the remaining
// exchanges offer; the refreshed view rides the next round. Exported so
// tests — and operators' debug hooks — can drive rounds
// deterministically.
func (g *Gossiper) Tick() {
	g.rounds.Add(1)
	epoch, members := g.node.ViewSnapshot()
	self := g.node.Self()
	peers := members[:0:0]
	for _, m := range members {
		if m != self {
			peers = append(peers, m)
		}
	}
	if len(peers) == 0 {
		return
	}
	k := g.fanout
	if k > len(peers) {
		k = len(peers)
	}
	tctx := g.trace.Root()
	var tstart time.Time
	if tctx.Sampled {
		tstart = time.Now()
	}
	// Partial Fisher-Yates over the local peers copy: each draw swaps the
	// chosen peer into the round's prefix, so the k selections are
	// distinct and a fanout of 1 consumes exactly one rand draw (keeping
	// the historical single-peer selection sequence for seeded tests).
	for i := 0; i < k; i++ {
		j := i + g.intn(len(peers)-i)
		peers[i], peers[j] = peers[j], peers[i]
		g.exchange(peers[i], epoch, members, tctx)
	}
	if tctx.Sampled {
		g.trace.Record(tctx, "gossip_round", "", tstart, time.Since(tstart))
	}
}

// exchange reconciles with one peer: pull, then push back if the peer
// reported an older epoch.
func (g *Gossiper) exchange(addr string, epoch uint64, members []string, tctx otrace.Ctx) {
	ectx := g.trace.Child(tctx)
	var estart time.Time
	if ectx.Sampled {
		estart = time.Now()
		defer func() {
			g.trace.Record(ectx, "gossip_exchange", addr, estart, time.Since(estart))
		}()
	}
	applied, remote, err := g.node.ViewPullFrom(addr)
	if err != nil {
		g.failures.Add(1)
		return
	}
	g.pulls.Add(1)
	if applied {
		g.applied.Add(1)
		g.events.Record("gossip_apply",
			obs.F("from", addr),
			obs.F("epoch", strconv.FormatUint(g.node.Epoch(), 10)))
	}
	if remote < epoch {
		if _, err := g.node.ViewPushTo(addr, epoch, members); err != nil {
			g.failures.Add(1)
			return
		}
		g.pushes.Add(1)
	}
}

// NoteEpoch is the hint callback (registered with OnViewHint): a peer
// advertised holding epoch. A hint at or below the installed epoch is
// noise; a newer one triggers one background pull from that peer,
// deduplicated so a burst of hints from a busy connection costs one
// exchange, not one per frame. Never blocks — safe on reader goroutines.
func (g *Gossiper) NoteEpoch(addr string, epoch uint64) {
	if addr == "" || addr == g.node.Self() || epoch <= g.node.Epoch() {
		g.staleHints.Add(1)
		return
	}
	g.mu.Lock()
	if g.stopped || g.inflight[addr] >= epoch {
		g.mu.Unlock()
		return
	}
	g.inflight[addr] = epoch
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		defer func() {
			g.mu.Lock()
			delete(g.inflight, addr)
			g.mu.Unlock()
		}()
		g.hintPulls.Add(1)
		applied, _, err := g.node.ViewPullFrom(addr)
		if err != nil {
			g.failures.Add(1)
			return
		}
		g.pulls.Add(1)
		if applied {
			g.applied.Add(1)
			g.events.Record("gossip_apply",
				obs.F("from", addr),
				obs.F("epoch", strconv.FormatUint(g.node.Epoch(), 10)))
		}
	}()
}

func (g *Gossiper) intn(n int) int {
	g.rndMu.Lock()
	defer g.rndMu.Unlock()
	return g.rnd.Intn(n)
}
