// Package simulate drives traces through cache configurations: the
// single-level client simulations of Figure 3, the two-level
// filter-then-server simulations of Figure 4, and the LRU filtering used
// by the entropy study of Figure 8.
package simulate

import (
	"fmt"

	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/trace"
)

// ClientResult is one cell of the Figure-3 sweep: an aggregating client
// cache of a given capacity and group size run over an open sequence.
type ClientResult struct {
	Capacity  int
	GroupSize int
	// Fetches is the number of demand fetches the client sent to the
	// remote server — the paper's y-axis, proportional to miss rate.
	Fetches uint64
	// HitRate is demand hits over accesses.
	HitRate float64
	// Stats is the full aggregating-cache accounting.
	Stats core.Stats
}

// RunClient simulates an aggregating client cache over the open sequence.
// GroupSize 1 is plain LRU.
func RunClient(ids []trace.FileID, capacity, groupSize int) (ClientResult, error) {
	agg, err := core.New(core.Config{Capacity: capacity, GroupSize: groupSize})
	if err != nil {
		return ClientResult{}, fmt.Errorf("client sim: %w", err)
	}
	for _, id := range ids {
		agg.Access(id)
	}
	s := agg.Stats()
	return ClientResult{
		Capacity:  capacity,
		GroupSize: groupSize,
		Fetches:   s.DemandFetches(),
		HitRate:   s.HitRate(),
		Stats:     s,
	}, nil
}

// ClientSweep runs RunClient for every (groupSize, capacity) pair,
// returning results[i][j] for groupSizes[i] x capacities[j] — the exact
// grid behind each Figure-3 panel. Cells fan out across GOMAXPROCS
// workers; use ClientSweepOpt to bound or disable the parallelism.
func ClientSweep(ids []trace.FileID, groupSizes, capacities []int) ([][]ClientResult, error) {
	return ClientSweepOpt(ids, groupSizes, capacities, Options{})
}

// ClientSweepOpt is ClientSweep with explicit execution options. The
// grid cells are independent simulations sharing only the read-only
// open sequence, so they are safe to run concurrently; each cell stays
// single-threaded internally and writes its result into a pre-sized
// slot by index, keeping the grid bit-identical to a sequential sweep.
func ClientSweepOpt(ids []trace.FileID, groupSizes, capacities []int, opt Options) ([][]ClientResult, error) {
	out := make([][]ClientResult, len(groupSizes))
	for i := range out {
		out[i] = make([]ClientResult, len(capacities))
	}
	nc := len(capacities)
	err := runCells(len(groupSizes)*nc, opt, func(cell int) error {
		i, j := cell/nc, cell%nc
		r, err := RunClient(ids, capacities[j], groupSizes[i])
		if err != nil {
			return err
		}
		out[i][j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FilterLRU returns the miss stream of an LRU cache of the given capacity
// — the workload an NFS-like server sees after an intervening client cache
// (§4.3), and the input to the filtered-entropy study of Figure 8.
func FilterLRU(ids []trace.FileID, capacity int) ([]trace.FileID, error) {
	c, err := cache.NewLRU(capacity)
	if err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	var misses []trace.FileID
	for _, id := range ids {
		if !c.Access(id) {
			misses = append(misses, id)
		}
	}
	return misses, nil
}
