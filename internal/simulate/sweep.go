package simulate

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Options tunes how a sweep executes. The zero value is the default:
// fan grid cells out across GOMAXPROCS worker goroutines.
type Options struct {
	// Parallelism bounds the number of worker goroutines running grid
	// cells concurrently. 0 means GOMAXPROCS; 1 runs the sweep
	// sequentially on the calling goroutine.
	Parallelism int
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes n independent grid cells, fanning them across a
// bounded worker pool. Each cell writes its result into a pre-sized slot
// identified by its index, so the output layout — and therefore every
// figure table — is identical regardless of scheduling. Cells must not
// share mutable state (sweep cells share only the read-only open
// sequence). The lowest-indexed error wins, matching the sequential
// early-exit order.
func runCells(n int, opt Options, cell func(i int) error) error {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstI  = n
		firstE  error
		stopped atomic.Bool
	)
	fail := func(i int, err error) {
		mu.Lock()
		if err != nil && i < firstI {
			firstI, firstE = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := cell(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}
