package simulate

import (
	"fmt"

	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/trace"
)

// Scheme selects the server-side cache management policy compared in
// Figure 4.
type Scheme string

// Server cache schemes.
const (
	// SchemeLRU is a plain LRU server cache.
	SchemeLRU Scheme = "lru"
	// SchemeLFU is a plain LFU server cache.
	SchemeLFU Scheme = "lfu"
	// SchemeAggregating is the paper's grouping server cache (labelled
	// g5 in Figure 4 when GroupSize is 5).
	SchemeAggregating Scheme = "agg"
)

// ServerConfig parameterizes a two-level simulation: a client LRU cache of
// FilterCapacity in front of a server cache of ServerCapacity.
type ServerConfig struct {
	FilterCapacity int
	ServerCapacity int
	Scheme         Scheme
	// GroupSize applies to SchemeAggregating; default 5 (the paper's
	// g5 configuration).
	GroupSize int
	// Piggyback, for SchemeAggregating, forwards the client's full
	// access stream to the server's metadata (§3's cooperative mode).
	// Without it the server learns only from the filtered miss stream,
	// the §4.3 "no cooperation" assumption.
	Piggyback bool
}

// ServerResult summarizes a two-level run.
type ServerResult struct {
	Config ServerConfig
	// ClientMisses is how many requests reached the server.
	ClientMisses uint64
	// ServerHits and HitRate describe the server cache: HitRate is the
	// paper's Figure-4 y-axis.
	ServerHits uint64
	HitRate    float64
}

// RunServer simulates the Figure-4 scenario: every open goes to the client
// LRU first; its misses form the server's request stream.
func RunServer(ids []trace.FileID, cfg ServerConfig) (ServerResult, error) {
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 5
	}
	client, err := cache.NewLRU(cfg.FilterCapacity)
	if err != nil {
		return ServerResult{}, fmt.Errorf("server sim: client filter: %w", err)
	}

	res := ServerResult{Config: cfg}
	switch cfg.Scheme {
	case SchemeLRU, SchemeLFU:
		srv, err := cache.New(cache.Policy(cfg.Scheme), cfg.ServerCapacity)
		if err != nil {
			return ServerResult{}, fmt.Errorf("server sim: %w", err)
		}
		for _, id := range ids {
			if client.Access(id) {
				continue
			}
			res.ClientMisses++
			if srv.Access(id) {
				res.ServerHits++
			}
		}
	case SchemeAggregating:
		srv, err := core.New(core.Config{Capacity: cfg.ServerCapacity, GroupSize: cfg.GroupSize})
		if err != nil {
			return ServerResult{}, fmt.Errorf("server sim: %w", err)
		}
		for _, id := range ids {
			if cfg.Piggyback {
				srv.Learn(id)
			}
			if client.Access(id) {
				continue
			}
			res.ClientMisses++
			if !cfg.Piggyback {
				srv.Learn(id)
			}
			if srv.Serve(id) {
				res.ServerHits++
			}
		}
	default:
		return ServerResult{}, fmt.Errorf("server sim: unknown scheme %q", cfg.Scheme)
	}

	if res.ClientMisses > 0 {
		res.HitRate = float64(res.ServerHits) / float64(res.ClientMisses)
	}
	return res, nil
}

// ServerSweep runs RunServer across filter capacities for each scheme,
// returning results[i][j] for schemes[i] x filters[j] — one Figure-4
// panel. Cells fan out across GOMAXPROCS workers; use ServerSweepOpt to
// bound or disable the parallelism.
func ServerSweep(ids []trace.FileID, schemes []ServerConfig, filters []int) ([][]ServerResult, error) {
	return ServerSweepOpt(ids, schemes, filters, Options{})
}

// ServerSweepOpt is ServerSweep with explicit execution options. Like
// ClientSweepOpt, cells share only the read-only open sequence and land
// in pre-sized grid slots by index, so the result is bit-identical to a
// sequential sweep.
func ServerSweepOpt(ids []trace.FileID, schemes []ServerConfig, filters []int, opt Options) ([][]ServerResult, error) {
	out := make([][]ServerResult, len(schemes))
	for i := range out {
		out[i] = make([]ServerResult, len(filters))
	}
	nf := len(filters)
	err := runCells(len(schemes)*nf, opt, func(cell int) error {
		i, j := cell/nf, cell%nf
		cfg := schemes[i]
		cfg.FilterCapacity = filters[j]
		r, err := RunServer(ids, cfg)
		if err != nil {
			return err
		}
		out[i][j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MultiServerResult extends ServerResult with per-client accounting.
type MultiServerResult struct {
	Config ServerConfig
	// Clients is the number of distinct clients simulated.
	Clients int
	// ClientMisses is the total number of requests reaching the server.
	ClientMisses uint64
	// ServerHits and HitRate describe the shared server cache.
	ServerHits uint64
	HitRate    float64
}

// RunServerMulti simulates the Figure-4 scenario with the multi-client
// reality restored: each client has its own LRU cache of FilterCapacity,
// and the shared server learns with one metadata context per client (the
// §2.2 choice), so interleaved clients cannot manufacture bogus
// transitions. Events that are not opens are ignored.
func RunServerMulti(events []trace.Event, cfg ServerConfig) (MultiServerResult, error) {
	if cfg.GroupSize == 0 {
		cfg.GroupSize = 5
	}
	if cfg.Scheme != SchemeAggregating {
		return MultiServerResult{}, fmt.Errorf("server sim: multi-client mode supports only the aggregating scheme, got %q", cfg.Scheme)
	}
	srv, err := core.New(core.Config{Capacity: cfg.ServerCapacity, GroupSize: cfg.GroupSize})
	if err != nil {
		return MultiServerResult{}, fmt.Errorf("server sim: %w", err)
	}

	res := MultiServerResult{Config: cfg}
	filters := make(map[uint16]*cache.LRU)
	for _, ev := range events {
		if ev.Op != trace.OpOpen {
			continue
		}
		client, ok := filters[ev.Client]
		if !ok {
			client, err = cache.NewLRU(cfg.FilterCapacity)
			if err != nil {
				return MultiServerResult{}, fmt.Errorf("server sim: client filter: %w", err)
			}
			filters[ev.Client] = client
		}
		if cfg.Piggyback {
			srv.LearnFrom(uint64(ev.Client), ev.File)
		}
		if client.Access(ev.File) {
			continue
		}
		res.ClientMisses++
		if !cfg.Piggyback {
			srv.LearnFrom(uint64(ev.Client), ev.File)
		}
		if srv.Serve(ev.File) {
			res.ServerHits++
		}
	}
	res.Clients = len(filters)
	if res.ClientMisses > 0 {
		res.HitRate = float64(res.ServerHits) / float64(res.ClientMisses)
	}
	return res, nil
}
