package simulate

import (
	"fmt"
	"sync/atomic"
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func benchIDs(b *testing.B, opens int) []trace.FileID {
	b.Helper()
	tr, err := workload.Standard(workload.ProfileServer, 1, opens)
	if err != nil {
		b.Fatal(err)
	}
	return tr.OpenIDs()
}

func TestOptionsWorkers(t *testing.T) {
	if got := (Options{Parallelism: 3}).workers(); got != 3 {
		t.Errorf("workers(3) = %d", got)
	}
	if got := (Options{}).workers(); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
	if got := (Options{Parallelism: -2}).workers(); got < 1 {
		t.Errorf("negative parallelism workers = %d, want >= 1", got)
	}
}

func TestRunCellsCoversAllCells(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		const n = 100
		var hits [n]atomic.Int32
		err := runCells(n, Options{Parallelism: par}, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("par=%d: cell %d ran %d times", par, i, got)
			}
		}
	}
}

// The lowest-indexed error must win regardless of scheduling, so parallel
// and sequential sweeps fail identically.
func TestRunCellsLowestErrorWins(t *testing.T) {
	errAt := func(bad ...int) func(int) error {
		return func(i int) error {
			for _, b := range bad {
				if i == b {
					return fmt.Errorf("cell %d failed", i)
				}
			}
			return nil
		}
	}
	for _, par := range []int{1, 2, 8} {
		err := runCells(64, Options{Parallelism: par}, errAt(40, 7, 55))
		if err == nil {
			t.Fatalf("par=%d: no error", par)
		}
		// With workers racing, a higher-indexed failure may stop the pool
		// before cell 7 is ever claimed — but any error that IS claimed at
		// a lower index must take precedence. Sequentially it is always 7.
		if par == 1 && err.Error() != "cell 7 failed" {
			t.Errorf("sequential error = %v, want cell 7", err)
		}
	}
}

func TestRunCellsZeroCells(t *testing.T) {
	called := false
	if err := runCells(0, Options{}, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("cell invoked for n = 0")
	}
}

// The tentpole's determinism contract: a parallel sweep produces results
// bit-identical to the sequential sweep. Run with -race this also shakes
// out data races between cells.
func TestClientSweepParallelMatchesSequential(t *testing.T) {
	ids := serverIDs(t, 12000)
	groups := []int{1, 3, 5, 7}
	caps := []int{100, 200, 400}
	seq, err := ClientSweepOpt(ids, groups, caps, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ClientSweepOpt(ids, groups, caps, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Errorf("cell %d,%d: sequential %+v != parallel %+v", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestServerSweepParallelMatchesSequential(t *testing.T) {
	ids := serverIDs(t, 12000)
	schemes := []ServerConfig{
		{ServerCapacity: 200, Scheme: SchemeLRU},
		{ServerCapacity: 200, Scheme: SchemeLFU},
		{ServerCapacity: 200, Scheme: SchemeAggregating, GroupSize: 5},
	}
	filters := []int{50, 100, 200, 300}
	seq, err := ServerSweepOpt(ids, schemes, filters, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ServerSweepOpt(ids, schemes, filters, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Errorf("cell %d,%d: sequential %+v != parallel %+v", i, j, seq[i][j], par[i][j])
			}
		}
	}
}

func TestSweepErrorSurfaced(t *testing.T) {
	ids := serverIDs(t, 2000)
	// Capacity 0 in one cell must fail the whole sweep, in parallel too.
	if _, err := ClientSweepOpt(ids, []int{1, 5}, []int{100, 0}, Options{Parallelism: 4}); err == nil {
		t.Error("parallel client sweep swallowed a cell error")
	}
	bad := []ServerConfig{{ServerCapacity: 100, Scheme: "nope"}}
	if _, err := ServerSweepOpt(ids, bad, []int{100}, Options{Parallelism: 4}); err == nil {
		t.Error("parallel server sweep swallowed a cell error")
	}
}

var errSink error

// BenchmarkClientSweep compares a sequential Figure-3 grid against the
// worker-pool fan-out; the parallel/sequential ns/op ratio is the sweep
// engine's speedup on this machine (bounded by GOMAXPROCS).
func BenchmarkClientSweep(b *testing.B) {
	ids := benchIDs(b, 20000)
	groups := []int{1, 2, 3, 5, 7, 10}
	caps := []int{100, 200, 400, 800}
	for _, bc := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errSink = ClientSweepOpt(ids, groups, caps, Options{Parallelism: bc.par})
				if errSink != nil {
					b.Fatal(errSink)
				}
			}
		})
	}
}

func BenchmarkServerSweep(b *testing.B) {
	ids := benchIDs(b, 20000)
	schemes := []ServerConfig{
		{ServerCapacity: 300, Scheme: SchemeLRU},
		{ServerCapacity: 300, Scheme: SchemeLFU},
		{ServerCapacity: 300, Scheme: SchemeAggregating, GroupSize: 5},
	}
	filters := []int{50, 100, 200, 300, 600}
	for _, bc := range []struct {
		name string
		par  int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errSink = ServerSweepOpt(ids, schemes, filters, Options{Parallelism: bc.par})
				if errSink != nil {
					b.Fatal(errSink)
				}
			}
		})
	}
}
