package simulate

import (
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func serverIDs(t *testing.T, opens int) []trace.FileID {
	t.Helper()
	tr, err := workload.Standard(workload.ProfileServer, 1, opens)
	if err != nil {
		t.Fatal(err)
	}
	return tr.OpenIDs()
}

func TestRunClientValidation(t *testing.T) {
	if _, err := RunClient(nil, 0, 1); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := RunClient(nil, 10, -1); err == nil {
		t.Error("negative group accepted")
	}
}

func TestRunClientEmptySequence(t *testing.T) {
	r, err := RunClient(nil, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fetches != 0 || r.HitRate != 0 {
		t.Errorf("empty run = %+v", r)
	}
}

func TestRunClientGroupingReducesFetches(t *testing.T) {
	ids := serverIDs(t, 15000)
	lru, err := RunClient(ids, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	g5, err := RunClient(ids, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g5.Fetches >= lru.Fetches {
		t.Errorf("g5 fetches %d >= lru fetches %d", g5.Fetches, lru.Fetches)
	}
	if lru.Fetches == 0 {
		t.Error("LRU fetches = 0; trace too small for the cache")
	}
}

func TestClientSweepShape(t *testing.T) {
	ids := serverIDs(t, 8000)
	groups := []int{1, 3, 5}
	caps := []int{100, 200, 400}
	grid, err := ClientSweep(ids, groups, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != len(groups) {
		t.Fatalf("rows = %d, want %d", len(grid), len(groups))
	}
	for i, row := range grid {
		if len(row) != len(caps) {
			t.Fatalf("row %d cols = %d, want %d", i, len(row), len(caps))
		}
		// Fetches must not increase with capacity for the same g.
		for j := 1; j < len(row); j++ {
			if row[j].Fetches > row[j-1].Fetches {
				t.Errorf("g=%d: fetches increased with capacity: %d -> %d",
					groups[i], row[j-1].Fetches, row[j].Fetches)
			}
		}
	}
}

func TestFilterLRU(t *testing.T) {
	ids := []trace.FileID{1, 2, 1, 2, 3, 1}
	misses, err := FilterLRU(ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cache 2: 1 miss, 2 miss, 1 hit, 2 hit, 3 miss(evict 1), 1 miss.
	want := []trace.FileID{1, 2, 3, 1}
	if len(misses) != len(want) {
		t.Fatalf("misses = %v, want %v", misses, want)
	}
	for i := range want {
		if misses[i] != want[i] {
			t.Fatalf("misses = %v, want %v", misses, want)
		}
	}
	if _, err := FilterLRU(ids, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestFilterLRUIsSubsequence(t *testing.T) {
	ids := serverIDs(t, 5000)
	misses, err := FilterLRU(ids, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(misses) == 0 || len(misses) >= len(ids) {
		t.Fatalf("misses = %d of %d; filter did nothing", len(misses), len(ids))
	}
	// Subsequence check.
	j := 0
	for _, id := range ids {
		if j < len(misses) && misses[j] == id {
			j++
		}
	}
	if j != len(misses) {
		t.Error("miss stream is not a subsequence of the input")
	}
}

func TestRunServerSchemes(t *testing.T) {
	ids := serverIDs(t, 10000)
	for _, scheme := range []Scheme{SchemeLRU, SchemeLFU, SchemeAggregating} {
		r, err := RunServer(ids, ServerConfig{
			FilterCapacity: 100,
			ServerCapacity: 300,
			Scheme:         scheme,
		})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if r.ClientMisses == 0 {
			t.Errorf("%s: no client misses", scheme)
		}
		if r.HitRate < 0 || r.HitRate > 1 {
			t.Errorf("%s: hit rate %v out of range", scheme, r.HitRate)
		}
	}
	if _, err := RunServer(ids, ServerConfig{FilterCapacity: 10, ServerCapacity: 10, Scheme: "opt"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RunServer(ids, ServerConfig{FilterCapacity: 0, ServerCapacity: 10, Scheme: SchemeLRU}); err == nil {
		t.Error("zero filter capacity accepted")
	}
}

// The paper's central Figure-4 observation: once the client filter reaches
// the server capacity, plain LRU collapses while the aggregating cache
// keeps a solid hit rate.
func TestRunServerAggregatingSurvivesFiltering(t *testing.T) {
	ids := serverIDs(t, 25000)
	const serverCap = 300
	lru, err := RunServer(ids, ServerConfig{FilterCapacity: serverCap, ServerCapacity: serverCap, Scheme: SchemeLRU})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunServer(ids, ServerConfig{FilterCapacity: serverCap, ServerCapacity: serverCap, Scheme: SchemeAggregating})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("filter=cache=%d: LRU=%.3f agg=%.3f", serverCap, lru.HitRate, agg.HitRate)
	if lru.HitRate > 0.15 {
		t.Errorf("LRU hit rate %.3f did not collapse under equal-size filtering", lru.HitRate)
	}
	if agg.HitRate < 0.25 {
		t.Errorf("aggregating hit rate %.3f, want >= 0.25 (paper: 30-60%%)", agg.HitRate)
	}
	if agg.HitRate <= lru.HitRate {
		t.Error("aggregating cache did not beat LRU under filtering")
	}
}

func TestRunServerPiggybackHelps(t *testing.T) {
	ids := serverIDs(t, 20000)
	base := ServerConfig{FilterCapacity: 200, ServerCapacity: 300, Scheme: SchemeAggregating}
	plain, err := RunServer(ids, base)
	if err != nil {
		t.Fatal(err)
	}
	pb := base
	pb.Piggyback = true
	coop, err := RunServer(ids, pb)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("agg hit rate: filtered metadata=%.3f piggybacked=%.3f", plain.HitRate, coop.HitRate)
	// Full-stream metadata must not hurt; usually it helps.
	if coop.HitRate < plain.HitRate-0.05 {
		t.Errorf("piggybacked metadata much worse: %.3f vs %.3f", coop.HitRate, plain.HitRate)
	}
}

func TestServerSweepShape(t *testing.T) {
	ids := serverIDs(t, 6000)
	schemes := []ServerConfig{
		{ServerCapacity: 200, Scheme: SchemeLRU},
		{ServerCapacity: 200, Scheme: SchemeAggregating, GroupSize: 5},
	}
	filters := []int{50, 150, 300}
	grid, err := ServerSweep(ids, schemes, filters)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 3 {
		t.Fatalf("grid shape %dx%d, want 2x3", len(grid), len(grid[0]))
	}
	for i := range grid {
		for j := range grid[i] {
			if grid[i][j].Config.FilterCapacity != filters[j] {
				t.Errorf("cell %d,%d filter = %d, want %d",
					i, j, grid[i][j].Config.FilterCapacity, filters[j])
			}
		}
	}
}

func TestRunServerMulti(t *testing.T) {
	tr, err := workload.Standard(workload.ProfileUsers, 1, 15000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunServerMulti(tr.Events, ServerConfig{
		FilterCapacity: 100,
		ServerCapacity: 300,
		Scheme:         SchemeAggregating,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients < 4 {
		t.Errorf("clients = %d, want several", res.Clients)
	}
	if res.ClientMisses == 0 || res.HitRate <= 0 {
		t.Errorf("result = %+v", res)
	}

	// The multi-client simulation with per-client filters and contexts
	// must beat the single-merged-stream approximation of the same
	// scenario: merging both destroys client locality at the filter and
	// corrupts the server's metadata.
	merged, err := RunServer(tr.OpenIDs(), ServerConfig{
		FilterCapacity: 100,
		ServerCapacity: 300,
		Scheme:         SchemeAggregating,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("server hit rate: per-client=%.3f merged=%.3f", res.HitRate, merged.HitRate)
	if res.HitRate <= merged.HitRate {
		t.Errorf("per-client simulation (%.3f) did not beat merged (%.3f)", res.HitRate, merged.HitRate)
	}
}

func TestRunServerMultiValidation(t *testing.T) {
	if _, err := RunServerMulti(nil, ServerConfig{FilterCapacity: 10, ServerCapacity: 10, Scheme: SchemeLRU}); err == nil {
		t.Error("non-aggregating scheme accepted")
	}
	if _, err := RunServerMulti([]trace.Event{{Op: trace.OpOpen}}, ServerConfig{FilterCapacity: 0, ServerCapacity: 10, Scheme: SchemeAggregating}); err == nil {
		t.Error("zero filter capacity accepted")
	}
	// Empty input is fine.
	res, err := RunServerMulti(nil, ServerConfig{FilterCapacity: 10, ServerCapacity: 10, Scheme: SchemeAggregating})
	if err != nil || res.ClientMisses != 0 {
		t.Errorf("empty run = %+v, %v", res, err)
	}
}
