// Package faultnet injects deterministic, seedable network faults into
// net.Conn and net.Listener values. It is the test substrate for the
// robustness features of internal/fsnet: the chaos suite wraps both sides
// of a client/server pair and drives real workloads through latency
// spikes, partial writes, injected I/O errors, mid-frame connection
// resets, and read blackholes.
//
// Determinism: every wrapped connection owns a PRNG derived from the
// configured Seed (and, for listener- or dialer-produced connections, the
// connection's accept/dial ordinal). Given the same seed and the same
// sequence of Read/Write calls on a connection, the same faults fire at
// the same points. Concurrency across connections does not perturb any
// single connection's schedule.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error for every fault this package injects.
// Wrapped errors satisfy errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultnet: injected fault")

// Faults configures which faults fire and how often. All probabilities
// are per Read/Write call in [0,1]; zero disables that fault class. At
// most one error-class fault (partial write, read/write error, reset,
// blackhole) fires per call; latency is independent and may combine with
// any of them.
type Faults struct {
	// Seed drives the deterministic fault schedule. Connections accepted
	// by a Listener or produced by a Dialer fold their ordinal into the
	// seed so each connection gets an independent but reproducible
	// schedule.
	Seed int64

	// Gate, when non-nil, attaches a deterministic on/off kill switch to
	// the connection: while the gate is down every Read and Write fails
	// immediately (no randomness involved). See the Gate type.
	Gate *Gate

	// LatencyProb is the chance an operation sleeps for Latency before
	// touching the wire.
	LatencyProb float64
	// Latency is the injected delay (default 1ms when LatencyProb > 0).
	Latency time.Duration

	// PartialWriteProb is the chance a Write transmits only a prefix of
	// the buffer and then fails, leaving the peer with a truncated frame.
	PartialWriteProb float64
	// ReadErrProb is the chance a Read fails outright without consuming
	// anything from the wire.
	ReadErrProb float64
	// WriteErrProb is the chance a Write fails outright without
	// transmitting anything.
	WriteErrProb float64
	// ResetProb is the chance an operation hard-closes the underlying
	// connection mid-call, the way a TCP RST tears a stream down.
	ResetProb float64
	// BlackholeProb is the chance a Read blocks silently — no data, no
	// error — until the read deadline expires or the connection is
	// closed. Pair with deadlines: a blackholed read with no deadline
	// blocks until Close.
	BlackholeProb float64
}

// Stats counts the faults a connection (or every connection of a shared
// Listener/Dialer) has injected. All counters are atomic.
type Stats struct {
	Latencies     atomic.Uint64
	PartialWrites atomic.Uint64
	ReadErrs      atomic.Uint64
	WriteErrs     atomic.Uint64
	Resets        atomic.Uint64
	Blackholes    atomic.Uint64
	Gated         atomic.Uint64
}

// Total returns the number of injected faults of every class, latency
// included.
func (s *Stats) Total() uint64 {
	return s.Latencies.Load() + s.PartialWrites.Load() + s.ReadErrs.Load() +
		s.WriteErrs.Load() + s.Resets.Load() + s.Blackholes.Load() + s.Gated.Load()
}

// Gate is a deterministic on/off fault shared by any number of
// connections and dialers: while down, every Read and Write on a gated
// connection fails immediately with ErrInjected and gated dials are
// refused. Unlike the probabilistic fault classes it consumes no random
// draws, so flipping a gate never perturbs another fault's schedule. It
// models a peer dropping off the network at an exact, test-controlled
// instant — the primitive the cluster failover suite kills peers with.
type Gate struct {
	down atomic.Bool
}

// SetDown opens (true) or heals (false) the gate.
func (g *Gate) SetDown(down bool) { g.down.Store(down) }

// Down reports whether the gate is currently failing operations.
func (g *Gate) Down() bool { return g.down.Load() }

// gated reports whether the gate fault fires for this connection.
func (c *Conn) gated() bool {
	return c.f.Gate != nil && c.f.Gate.Down()
}

// GatedDialer returns a dial function producing connections to addr that
// all share gate: while the gate is down the dial itself is refused, and
// connections established earlier fail their next Read or Write. The
// shared Stats counts refused dials and failed operations as Gated.
func GatedDialer(addr string, gate *Gate) (func() (net.Conn, error), *Stats) {
	stats := &Stats{}
	return func() (net.Conn, error) {
		if gate.Down() {
			stats.Gated.Add(1)
			return nil, fmt.Errorf("%w: gate down: dial %s", ErrInjected, addr)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return Wrap(conn, Faults{Gate: gate}, stats), nil
	}, stats
}

// Conn wraps a net.Conn with fault injection. Methods not listed here
// forward to the underlying connection.
type Conn struct {
	inner net.Conn
	f     Faults
	stats *Stats

	mu           sync.Mutex // guards rng and readDeadline
	rng          *rand.Rand
	readDeadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// Wrap returns a fault-injecting view of conn. The caller keeps ownership
// of stats, which may be shared across connections; pass nil to have the
// Conn allocate its own (retrievable via Stats).
func Wrap(conn net.Conn, f Faults, stats *Stats) *Conn {
	if stats == nil {
		stats = &Stats{}
	}
	if f.Latency == 0 && f.LatencyProb > 0 {
		f.Latency = time.Millisecond
	}
	return &Conn{
		inner:  conn,
		f:      f,
		stats:  stats,
		rng:    rand.New(rand.NewSource(f.Seed)),
		closed: make(chan struct{}),
	}
}

// Stats returns the fault counters this connection reports into.
func (c *Conn) Stats() *Stats { return c.stats }

// roll draws one uniform variate; a single draw per fault check keeps the
// schedule deterministic for a fixed call sequence.
func (c *Conn) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	c.mu.Lock()
	v := c.rng.Float64()
	c.mu.Unlock()
	return v < p
}

func (c *Conn) maybeLatency() {
	if c.roll(c.f.LatencyProb) {
		c.stats.Latencies.Add(1)
		select {
		case <-time.After(c.f.Latency):
		case <-c.closed:
		}
	}
}

// reset hard-closes the underlying connection, approximating a RST.
func (c *Conn) reset(op string) error {
	c.stats.Resets.Add(1)
	c.closeOnce.Do(func() { close(c.closed) })
	_ = c.inner.Close()
	return fmt.Errorf("%w: connection reset during %s", ErrInjected, op)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if c.gated() {
		c.stats.Gated.Add(1)
		return 0, fmt.Errorf("%w: gate down: read", ErrInjected)
	}
	c.maybeLatency()
	switch {
	case c.roll(c.f.ReadErrProb):
		c.stats.ReadErrs.Add(1)
		return 0, fmt.Errorf("%w: read error", ErrInjected)
	case c.roll(c.f.ResetProb):
		return 0, c.reset("read")
	case c.roll(c.f.BlackholeProb):
		c.stats.Blackholes.Add(1)
		return 0, c.blackhole()
	}
	return c.inner.Read(p)
}

// blackhole blocks until the read deadline passes or the connection
// closes, then reports the corresponding error — the wire went silent.
func (c *Conn) blackhole() error {
	c.mu.Lock()
	d := c.readDeadline
	c.mu.Unlock()
	var expire <-chan time.Time
	if !d.IsZero() {
		t := time.NewTimer(time.Until(d))
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-expire:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	}
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	if c.gated() {
		c.stats.Gated.Add(1)
		return 0, fmt.Errorf("%w: gate down: write", ErrInjected)
	}
	c.maybeLatency()
	switch {
	case c.roll(c.f.WriteErrProb):
		c.stats.WriteErrs.Add(1)
		return 0, fmt.Errorf("%w: write error", ErrInjected)
	case c.roll(c.f.ResetProb):
		return 0, c.reset("write")
	case len(p) > 1 && c.roll(c.f.PartialWriteProb):
		c.stats.PartialWrites.Add(1)
		c.mu.Lock()
		n := 1 + c.rng.Intn(len(p)-1)
		c.mu.Unlock()
		wrote, err := c.inner.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, fmt.Errorf("%w: partial write (%d of %d bytes)", ErrInjected, wrote, len(p))
	}
	return c.inner.Write(p)
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}

// Listener wraps a net.Listener so every accepted connection carries
// fault injection. Accepted connections share one Stats and derive their
// seeds from the configured Seed plus their accept ordinal.
type Listener struct {
	net.Listener
	f     Faults
	stats *Stats
	n     atomic.Uint64
}

// WrapListener returns a fault-injecting view of l.
func WrapListener(l net.Listener, f Faults) *Listener {
	return &Listener{Listener: l, f: f, stats: &Stats{}}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	f := l.f
	f.Seed = deriveSeed(l.f.Seed, l.n.Add(1))
	return Wrap(conn, f, l.stats), nil
}

// Stats returns the counters shared by every accepted connection.
func (l *Listener) Stats() *Stats { return l.stats }

// Dialer returns a dial function producing fault-injecting connections to
// addr, suitable for fsnet's ClientConfig.Dialer. Connections share the
// returned Stats and derive their seeds from their dial ordinal.
func Dialer(addr string, f Faults) (func() (net.Conn, error), *Stats) {
	stats := &Stats{}
	var n atomic.Uint64
	return func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		df := f
		df.Seed = deriveSeed(f.Seed, n.Add(1))
		return Wrap(conn, df, stats), nil
	}, stats
}

// deriveSeed mixes a per-connection ordinal into the base seed
// (splitmix64 finalizer) so each connection's schedule is independent yet
// reproducible.
func deriveSeed(base int64, ordinal uint64) int64 {
	z := uint64(base) + ordinal*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
