package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// tcpPair returns two ends of a real loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server = <-accepted
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

func TestNoFaultsPassesThrough(t *testing.T) {
	a, b := tcpPair(t)
	fa := Wrap(a, Faults{Seed: 1}, nil)
	msg := []byte("hello over the wire")
	go func() {
		if _, err := fa.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("got %q", buf)
	}
	if n := fa.Stats().Total(); n != 0 {
		t.Errorf("injected %d faults with all probabilities zero", n)
	}
}

func TestWriteErrorInjection(t *testing.T) {
	a, _ := tcpPair(t)
	c := Wrap(a, Faults{Seed: 7, WriteErrProb: 1}, nil)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if c.Stats().WriteErrs.Load() != 1 {
		t.Errorf("WriteErrs = %d", c.Stats().WriteErrs.Load())
	}
}

func TestReadErrorInjection(t *testing.T) {
	a, _ := tcpPair(t)
	c := Wrap(a, Faults{Seed: 7, ReadErrProb: 1}, nil)
	if _, err := c.Read(make([]byte, 4)); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if c.Stats().ReadErrs.Load() != 1 {
		t.Errorf("ReadErrs = %d", c.Stats().ReadErrs.Load())
	}
}

func TestPartialWriteDeliversPrefixThenFails(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Faults{Seed: 3, PartialWriteProb: 1}, nil)
	payload := []byte("0123456789abcdef")
	n, err := c.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write of %d bytes, want strict prefix", n)
	}
	// The prefix really reached the peer.
	buf := make([]byte, n)
	if err := b.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(payload[:n]) {
		t.Errorf("peer got %q, want %q", buf, payload[:n])
	}
}

func TestResetClosesUnderlyingConn(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Faults{Seed: 5, ResetProb: 1}, nil)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Peer observes the closed stream.
	if err := b.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after reset")
	}
	if c.Stats().Resets.Load() != 1 {
		t.Errorf("Resets = %d", c.Stats().Resets.Load())
	}
}

func TestBlackholeHonoursReadDeadline(t *testing.T) {
	a, _ := tcpPair(t)
	c := Wrap(a, Faults{Seed: 9, BlackholeProb: 1}, nil)
	if err := c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 4))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("blackhole returned after %v, before the deadline", elapsed)
	}
}

func TestBlackholeUnblocksOnClose(t *testing.T) {
	a, _ := tcpPair(t)
	c := Wrap(a, Faults{Seed: 9, BlackholeProb: 1}, nil)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed read did not unblock on Close")
	}
}

func TestLatencyInjection(t *testing.T) {
	a, b := tcpPair(t)
	c := Wrap(a, Faults{Seed: 11, LatencyProb: 1, Latency: 30 * time.Millisecond}, nil)
	start := time.Now()
	go func() {
		_, _ = c.Write([]byte("x"))
	}()
	if err := b.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("write completed in %v, want >= latency", elapsed)
	}
	if c.Stats().Latencies.Load() == 0 {
		t.Error("no latency recorded")
	}
}

// TestDeterministicSchedule: identical seeds produce identical fault
// decisions for an identical call sequence.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []bool {
		a, _ := tcpPair(t)
		c := Wrap(a, Faults{Seed: seed, WriteErrProb: 0.5}, nil)
		out := make([]bool, 64)
		for i := range out {
			_, err := c.Write([]byte("abcdef"))
			out[i] = err != nil
		}
		return out
	}
	one, two := run(42), run(42)
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
	}
	other := run(43)
	same := true
	for i := range one {
		if one[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := WrapListener(raw, Faults{Seed: 1, ReadErrProb: 1})
	defer l.Close()
	go func() {
		conn, err := net.Dial("tcp", raw.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		_, _ = conn.Write([]byte("x"))
		time.Sleep(100 * time.Millisecond)
	}()
	conn, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn read err = %v, want ErrInjected", err)
	}
	if l.Stats().ReadErrs.Load() != 1 {
		t.Errorf("listener stats = %d read errors", l.Stats().ReadErrs.Load())
	}
}

func TestDialerProducesFaultyConns(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		for {
			conn, err := raw.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	dial, stats := Dialer(raw.Addr().String(), Faults{Seed: 2, WriteErrProb: 1})
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if stats.WriteErrs.Load() != 1 {
		t.Errorf("shared stats = %d write errors", stats.WriteErrs.Load())
	}
}

// TestGateKillsAndHeals: a shared gate fails live connections and new
// dials deterministically while down, and everything works again once
// healed — the exact peer-death/revival cycle the cluster suite drives.
func TestGateKillsAndHeals(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		for {
			conn, err := raw.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	var gate Gate
	dial, stats := GatedDialer(raw.Addr().String(), &gate)
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Gate up: the connection echoes.
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}

	// Gate down: the live connection fails its next operation, and new
	// dials are refused.
	gate.SetDown(true)
	if !gate.Down() {
		t.Error("Down() = false after SetDown(true)")
	}
	if _, err := conn.Write([]byte("ping")); !errors.Is(err, ErrInjected) {
		t.Errorf("gated write err = %v, want ErrInjected", err)
	}
	if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
		t.Errorf("gated read err = %v, want ErrInjected", err)
	}
	if _, err := dial(); !errors.Is(err, ErrInjected) {
		t.Errorf("gated dial err = %v, want ErrInjected", err)
	}
	if got := stats.Gated.Load(); got != 3 {
		t.Errorf("Gated = %d, want 3", got)
	}
	if stats.Total() != 3 {
		t.Errorf("Total = %d, want 3", stats.Total())
	}

	// Healed: new dials and operations succeed again.
	gate.SetDown(false)
	conn2, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, buf); err != nil {
		t.Fatal(err)
	}
}

// TestGateDoesNotPerturbSchedule: flipping a gate consumes no random
// draws, so the probabilistic fault schedule is identical with and
// without gate checks in between.
func TestGateDoesNotPerturbSchedule(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()

	run := func(gate *Gate) []bool {
		c := Wrap(a, Faults{Seed: 7, WriteErrProb: 0.5, Gate: gate}, nil)
		outcomes := make([]bool, 0, 16)
		for i := 0; i < 16; i++ {
			if gate != nil {
				gate.SetDown(true)
				if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
					t.Fatalf("gated write err = %v", err)
				}
				gate.SetDown(false)
			}
			_, err := c.Write([]byte("x"))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}

	plain := run(nil)
	gated := run(&Gate{})
	for i := range plain {
		if plain[i] != gated[i] {
			t.Fatalf("schedules diverge at op %d: plain=%v gated=%v", i, plain, gated)
		}
	}
}
