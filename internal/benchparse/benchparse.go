// Package benchparse parses `go test -bench` output into a structured
// form. It understands the standard benchmark line grammar —
//
//	BenchmarkName[-P] <iterations> (<value> <unit>)+
//
// — including -benchmem columns (B/op, allocs/op) and custom metrics
// reported via testing.B.ReportMetric, plus the goos/goarch/pkg/cpu
// context lines the test runner prints before a package's benchmarks.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmarks, with the
	// trailing -P GOMAXPROCS suffix stripped into Procs.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if the line had none).
	Procs int `json:"procs"`
	// Pkg is the import path from the most recent "pkg:" context line.
	Pkg string `json:"pkg,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op": 79.2, "allocs/op": 0.
	Metrics map[string]float64 `json:"metrics"`
}

// Set is a whole benchmark run: shared context plus every parsed line.
type Set struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse consumes benchmark output and returns the structured results.
// Lines that are not benchmark results or context lines are skipped, so
// the full stdout of `go test -bench` parses cleanly. A malformed line
// that does start with "Benchmark" is an error: silently dropping it
// would corrupt a committed baseline.
func Parse(r io.Reader) (*Set, error) {
	set := &Set{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(text, "goos: "):
			set.Goos = strings.TrimPrefix(text, "goos: ")
		case strings.HasPrefix(text, "goarch: "):
			set.Goarch = strings.TrimPrefix(text, "goarch: ")
		case strings.HasPrefix(text, "cpu: "):
			set.CPU = strings.TrimPrefix(text, "cpu: ")
		case strings.HasPrefix(text, "pkg: "):
			pkg = strings.TrimPrefix(text, "pkg: ")
		case strings.HasPrefix(text, "Benchmark"):
			b, err := parseLine(text)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			b.Pkg = pkg
			set.Benchmarks = append(set.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

func parseLine(text string) (Benchmark, error) {
	fields := strings.Fields(text)
	// Name, iterations, then at least one (value, unit) pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", text)
	}
	b := Benchmark{Name: fields[0], Procs: 1, Metrics: make(map[string]float64)}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b.Iterations = n
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
