package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: aggcache
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAccessAggregating 	31153653	        79.19 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationPlacement/tail-4         	     100	  11862049 ns/op	        66.03 hitrate_%
PASS
ok  	aggcache	2.555s
pkg: aggcache/internal/simulate
BenchmarkClientSweep/sequential 	       2	 663512345 ns/op	 1253 B/op	       12 allocs/op
`

func TestParse(t *testing.T) {
	set, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if set.Goos != "linux" || set.Goarch != "amd64" {
		t.Errorf("context = %q/%q", set.Goos, set.Goarch)
	}
	if !strings.Contains(set.CPU, "Xeon") {
		t.Errorf("cpu = %q", set.CPU)
	}
	if len(set.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(set.Benchmarks))
	}

	b := set.Benchmarks[0]
	if b.Name != "BenchmarkAccessAggregating" || b.Procs != 1 || b.Pkg != "aggcache" {
		t.Errorf("bench 0 = %+v", b)
	}
	if b.Iterations != 31153653 {
		t.Errorf("iterations = %d", b.Iterations)
	}
	if b.Metrics["ns/op"] != 79.19 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", b.Metrics)
	}

	sub := set.Benchmarks[1]
	if sub.Name != "BenchmarkAblationPlacement/tail" || sub.Procs != 4 {
		t.Errorf("sub-benchmark = %+v", sub)
	}
	if sub.Metrics["hitrate_%"] != 66.03 {
		t.Errorf("custom metric = %v", sub.Metrics)
	}

	sweep := set.Benchmarks[2]
	if sweep.Pkg != "aggcache/internal/simulate" {
		t.Errorf("pkg context not updated: %+v", sweep)
	}
}

func TestParseMalformedBenchmarkLine(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkHalf 	123",         // no metrics
		"BenchmarkOdd 	10	5 ns/op	7", // dangling value
		"BenchmarkNaNIter 	x	5 ns/op",
		"BenchmarkBadValue 	10	abc ns/op",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed line %q", bad)
		}
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	set, err := Parse(strings.NewReader("hello\nPASS\nok  \tpkg\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Benchmarks) != 0 {
		t.Errorf("benchmarks = %+v", set.Benchmarks)
	}
}

func TestParseNameWithDashButNoProcs(t *testing.T) {
	set, err := Parse(strings.NewReader("BenchmarkFoo/tail-case 	10	5.0 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	b := set.Benchmarks[0]
	if b.Name != "BenchmarkFoo/tail-case" || b.Procs != 1 {
		t.Errorf("bench = %+v", b)
	}
}
