package experiments

import (
	"sync"
	"testing"

	"aggcache/internal/workload"
)

// The acceptance bar for the parallel engine: every figure table a
// parallel RunAll emits must be bit-identical to the sequential run's.
// Under -race this test also exercises the memoized workload cache and
// the experiment fan-out for data races.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full RunAll comparison is not short")
	}
	cfg := Config{Opens: 6000, Seed: 1}
	seqCfg := cfg
	seqCfg.Parallelism = 1
	seq, err := RunAll(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := cfg
	parCfg.Parallelism = 8
	par, err := RunAll(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("table counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		s, p := seq[i].Format(), par[i].Format()
		if s != p {
			t.Errorf("table %d (%s) differs between sequential and parallel runs:\n--- sequential ---\n%s--- parallel ---\n%s",
				i, seq[i].ID, s, p)
		}
	}
}

// Concurrent cold-cache requests for the same workload must generate it
// exactly once and hand every caller the same shared slices.
func TestStandardWorkloadMemoized(t *testing.T) {
	ResetWorkloadCache()
	cfg := Config{Opens: 3000, Seed: 7}
	const callers = 8
	type got struct {
		opens  int
		events int
	}
	results := make([]got, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer wg.Done()
			tr, ids, err := standardWorkload(cfg, workload.ProfileServer)
			if err != nil {
				t.Error(err)
				return
			}
			if tr == nil || len(ids) == 0 {
				t.Error("empty memoized workload")
				return
			}
			results[c] = got{opens: len(ids), events: len(tr.Events)}
		}(c)
	}
	wg.Wait()
	for c := 1; c < callers; c++ {
		if results[c] != results[0] {
			t.Errorf("caller %d saw %+v, caller 0 saw %+v", c, results[c], results[0])
		}
	}

	// Same key must return the identical shared backing slice, not a copy.
	_, ids1, err := standardWorkload(cfg, workload.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	_, ids2, err := standardWorkload(cfg, workload.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	if &ids1[0] != &ids2[0] {
		t.Error("memoized workload was regenerated for an identical key")
	}

	// A different key must not alias.
	other := cfg
	other.Seed = 8
	_, ids3, err := standardWorkload(other, workload.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	if &ids3[0] == &ids1[0] {
		t.Error("distinct keys share a workload")
	}
	ResetWorkloadCache()
}

func TestResetWorkloadCache(t *testing.T) {
	cfg := Config{Opens: 2000, Seed: 3}
	_, ids1, err := standardWorkload(cfg, workload.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	ResetWorkloadCache()
	_, ids2, err := standardWorkload(cfg, workload.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	if &ids1[0] == &ids2[0] {
		t.Error("reset did not drop the cached workload")
	}
	if len(ids1) != len(ids2) {
		t.Errorf("regenerated workload differs: %d vs %d opens", len(ids1), len(ids2))
	}
}
