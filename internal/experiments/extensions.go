package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/group"
	"aggcache/internal/hoard"
	"aggcache/internal/multilevel"
	"aggcache/internal/placement"
	"aggcache/internal/prefetch"
	"aggcache/internal/simulate"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// Extension experiments: studies beyond the paper's figures, covering its
// related-work comparisons (explicit prefetchers, §5) and its stated
// future-work applications (data placement and mobile hoarding, §6).
// They carry "x"-prefixed IDs to keep the figure namespace clean.

// xprefetch compares the aggregating cache against the explicit
// prefetchers of §5 at equal cache capacity: hit rate is only half the
// story — the server-request column shows the load the prefetchers add
// and grouping avoids.
func xprefetch(cfg Config) (*Table, error) {
	ids, err := openIDs(cfg, workload.ProfileServer)
	if err != nil {
		return nil, err
	}
	const (
		capacity = 300
		depth    = 4
	)
	t := &Table{
		ID:      "xprefetch",
		XLabel:  "scheme",
		Columns: []string{"hit rate (%)", "demand fetches", "total server requests", "prefetch accuracy (%)"},
	}
	t.Title, _ = Title("xprefetch")

	// Plain LRU.
	lru, err := simulate.RunClient(ids, capacity, 1)
	if err != nil {
		return nil, err
	}
	t.RowLabels = append(t.RowLabels, "lru")
	t.Rows = append(t.Rows, []float64{100 * lru.HitRate, float64(lru.Fetches), float64(lru.Fetches), 0})

	// Explicit prefetchers.
	preds := []prefetch.Predictor{
		prefetch.NewFirstSuccessor(),
		prefetch.NewLastSuccessor(),
	}
	if pg, err := prefetch.NewProbabilityGraph(4, 0.1); err == nil {
		preds = append(preds, pg)
	}
	if ppm, err := prefetch.NewPPM(2); err == nil {
		preds = append(preds, ppm)
	}
	for _, p := range preds {
		c, err := prefetch.NewPrefetchingCache(capacity, depth, p)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			c.Access(id)
		}
		s := c.Stats()
		t.RowLabels = append(t.RowLabels, p.Name())
		t.Rows = append(t.Rows, []float64{
			100 * s.HitRate(),
			float64(s.DemandFetches()),
			float64(s.TotalRequests()),
			100 * s.Accuracy(),
		})
	}

	// The aggregating cache (one request per miss, group rides along).
	agg, err := simulate.RunClient(ids, capacity, depth+1)
	if err != nil {
		return nil, err
	}
	t.RowLabels = append(t.RowLabels, fmt.Sprintf("aggregating g=%d", depth+1))
	t.Rows = append(t.Rows, []float64{
		100 * agg.HitRate,
		float64(agg.Fetches),
		float64(agg.Fetches),
		100 * agg.Stats.PrefetchAccuracy(),
	})

	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=server opens=%d seed=%d capacity=%d prefetch depth=%d", cfg.Opens, cfg.Seed, capacity, depth),
		"extension study (paper §5): explicit prefetchers pay one request per prediction; grouping ride-shares the miss")
	return t, nil
}

// xplacement compares layouts by mean seek distance (§2.1 / §6 future
// work).
func xplacement(cfg Config) (*Table, error) {
	ids, err := openIDs(cfg, workload.ProfileServer)
	if err != nil {
		return nil, err
	}
	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		return nil, err
	}
	tr.ObserveAll(ids)
	b, err := group.NewBuilder(tr, 8, group.StrategyChain)
	if err != nil {
		return nil, err
	}
	cover := group.BuildCover(tr, b, ids)

	t := &Table{
		ID:      "xplacement",
		XLabel:  "layout",
		Columns: []string{"mean seek (slots)", "total seek (k-slots)", "unplaced"},
	}
	t.Title, _ = Title("xplacement")
	layouts := []struct {
		name   string
		layout *placement.Layout
	}{
		{"sequential (first access)", placement.Sequential(ids)},
		{"organ pipe (frequency)", placement.OrganPipe(ids)},
		{"grouped (covering sets)", placement.Grouped(cover, ids)},
	}
	for _, l := range layouts {
		c, err := placement.SeekCost(l.layout, ids)
		if err != nil {
			return nil, err
		}
		t.RowLabels = append(t.RowLabels, l.name)
		t.Rows = append(t.Rows, []float64{c.Mean(), float64(c.Total) / 1000, float64(c.Unplaced)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=server opens=%d seed=%d group size=8", cfg.Opens, cfg.Seed),
		"extension study (paper §2.1/§6): relationship-aware placement vs the frequency-only organ pipe")
	return t, nil
}

// xhoard compares hoard selectors on disconnected session completion (§6
// future work).
func xhoard(cfg Config) (*Table, error) {
	// Hoarding wants a session-structured workload with interrupted
	// histories; build it directly from tasks so run boundaries are
	// known.
	rng := rand.New(rand.NewSource(cfg.Seed))
	const (
		numTasks = 12
		taskLen  = 8
	)
	var tasks [][]trace.FileID
	id := trace.FileID(0)
	for i := 0; i < numTasks; i++ {
		var task []trace.FileID
		for j := 0; j < taskLen; j++ {
			task = append(task, id)
			id++
		}
		tasks = append(tasks, task)
	}
	pickTask := func() int {
		if rng.Float64() < 0.55 {
			return rng.Intn(3) // hot tasks
		}
		return 3 + rng.Intn(numTasks-3)
	}
	var past []trace.FileID
	for i := 0; i < cfg.Opens/taskLen; i++ {
		for _, fid := range tasks[pickTask()] {
			past = append(past, fid)
			if rng.Float64() > 0.65 {
				break
			}
		}
	}
	var future [][]trace.FileID
	for i := 0; i < 500; i++ {
		future = append(future, tasks[pickTask()])
	}

	// Hoard closures use frequency-ranked successor lists: recency wins
	// for cache metadata (Fig 5), but hoarding wants *stable* working-set
	// membership, and frequency ranking keeps interrupted-run noise out
	// of the chains (see the xhoard notes in EXPERIMENTS.md).
	tr, err := successor.NewTracker(successor.PolicyLFU, 3)
	if err != nil {
		return nil, err
	}
	tr.ObserveAll(past)

	t := &Table{
		ID:      "xhoard",
		XLabel:  "budget (files)",
		Columns: []string{"budget", "frequency completion (%)", "group-closure completion (%)"},
	}
	t.Title, _ = Title("xhoard")
	for _, budget := range []int{8, 16, 32, 64} {
		freq, err := hoard.Build(tr, hoard.PolicyFrequency, budget, taskLen)
		if err != nil {
			return nil, err
		}
		closure, err := hoard.Build(tr, hoard.PolicyGroupClosure, budget, taskLen)
		if err != nil {
			return nil, err
		}
		fr := hoard.EvaluateRuns(freq, future)
		cr := hoard.EvaluateRuns(closure, future)
		t.Rows = append(t.Rows, []float64{
			float64(budget),
			100 * fr.CompletionRate(),
			100 * cr.CompletionRate(),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("synthetic task workload, %d tasks x %d files, interrupted histories, seed=%d", numTasks, taskLen, cfg.Seed),
		"extension study (paper §6): y = fraction of disconnected sessions fully served by the hoard")
	return t, nil
}

// xlatency runs a three-scheme latency comparison through the multilevel
// hierarchy: the Figure-4 scenario expressed in milliseconds instead of
// hit rates.
func xlatency(cfg Config) (*Table, error) {
	ids, err := openIDs(cfg, workload.ProfileWorkstation)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "xlatency",
		XLabel:  "server scheme",
		Columns: []string{"mean open latency (ms)", "client hit (%)", "server hit (%)", "backend fetches"},
	}
	t.Title, _ = Title("xlatency")
	for _, scheme := range []multilevel.Scheme{multilevel.SchemeLRU, multilevel.SchemeLFU, multilevel.SchemeAggregating} {
		res, err := multilevel.Run(ids, multilevel.Config{
			Levels: []multilevel.Level{
				{Name: "client", Capacity: 300, Scheme: multilevel.SchemeLRU, HitLatency: 100 * time.Microsecond},
				{Name: "server", Capacity: 300, Scheme: scheme, GroupSize: 5, HitLatency: 2 * time.Millisecond},
			},
			BackendLatency: 12 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		label := string(scheme)
		if scheme == multilevel.SchemeAggregating {
			label = "aggregating g=5"
		}
		t.RowLabels = append(t.RowLabels, label)
		t.Rows = append(t.Rows, []float64{
			float64(res.MeanLatency()) / float64(time.Millisecond),
			100 * res.Levels[0].HitRate(),
			100 * res.Levels[1].HitRate(),
			float64(res.BackendFetches),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=workstation opens=%d seed=%d; client LRU 300 @0.1ms, server 300 @2ms, backend @12ms", cfg.Opens, cfg.Seed),
		"extension study: the §4.3 scenario expressed as mean open latency")
	return t, nil
}

// xdecay evaluates the paper's §6 conjecture — that the ideal successor
// likelihood estimate combines recency and frequency — by adding the
// exponentially decayed frequency policy to the Figure-5 comparison.
func xdecay(cfg Config) (*Table, error) {
	ids, err := openIDs(cfg, workload.ProfileWorkstation)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "xdecay",
		XLabel:  "number of successors",
		Columns: []string{"successors", "oracle", "lru", "lfu", "decay(0.75)"},
	}
	t.Title, _ = Title("xdecay")

	oracle, err := successor.EvaluateReplacement(ids, successor.PolicyOracle, 0)
	if err != nil {
		return nil, err
	}
	caps := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lru, err := successor.EvaluateReplacementSweep(ids, successor.PolicyLRU, caps)
	if err != nil {
		return nil, err
	}
	lfu, err := successor.EvaluateReplacementSweep(ids, successor.PolicyLFU, caps)
	if err != nil {
		return nil, err
	}
	decay, err := successor.EvaluateReplacementSweep(ids, successor.PolicyDecay, caps)
	if err != nil {
		return nil, err
	}
	for i, c := range caps {
		t.Rows = append(t.Rows, []float64{float64(c), oracle.MissProbability(), lru[i], lfu[i], decay[i]})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=workstation opens=%d seed=%d lambda=%.2f", cfg.Opens, cfg.Seed, successor.DefaultDecay),
		"extension study (paper §6): decayed frequency as the recency/frequency hybrid")
	return t, nil
}

// xweb evaluates grouping in the web-proxy domain of the related work
// (§5, Hummingbird): page-plus-embedded-object structure learned from the
// access stream alone, with no hyperlink hints.
func xweb(cfg Config) (*Table, error) {
	tr, err := workload.GenerateWeb(workload.WebConfig{Seed: cfg.Seed, Requests: cfg.Opens})
	if err != nil {
		return nil, err
	}
	ids := tr.OpenIDs()
	t := &Table{
		ID:      "xweb",
		XLabel:  "proxy cache capacity (files)",
		Columns: []string{"capacity", "lru", "g3", "g7", "reduction g7 (%)"},
	}
	t.Title, _ = Title("xweb")
	for _, capacity := range []int{200, 400, 800} {
		lru, err := simulate.RunClient(ids, capacity, 1)
		if err != nil {
			return nil, err
		}
		g3, err := simulate.RunClient(ids, capacity, 3)
		if err != nil {
			return nil, err
		}
		g7, err := simulate.RunClient(ids, capacity, 7)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []float64{
			float64(capacity),
			float64(lru.Fetches),
			float64(g3.Fetches),
			float64(g7.Fetches),
			100 * (1 - float64(g7.Fetches)/float64(lru.Fetches)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("web workload: requests=%d seed=%d (pages + embedded objects, link-following sessions)", cfg.Opens, cfg.Seed),
		"extension study (paper §5/Hummingbird): structural relationships learned purely from the request stream")
	return t, nil
}

// xoverlap quantifies the storage cost of overlapping groups as the group
// size grows — the paper's §6 "effects of group formation on storage
// requirements".
func xoverlap(cfg Config) (*Table, error) {
	ids, err := openIDs(cfg, workload.ProfileServer)
	if err != nil {
		return nil, err
	}
	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		return nil, err
	}
	tr.ObserveAll(ids)

	t := &Table{
		ID:      "xoverlap",
		XLabel:  "group size g",
		Columns: []string{"g", "groups", "overlap factor", "replicas (%)", "max memberships", "mean group len"},
	}
	t.Title, _ = Title("xoverlap")
	for _, g := range []int{2, 3, 5, 8, 12} {
		b, err := group.NewBuilder(tr, g, group.StrategyChain)
		if err != nil {
			return nil, err
		}
		cover := group.BuildCover(tr, b, ids)
		st := cover.Stats()
		replicaPct := 0.0
		if st.Distinct > 0 {
			replicaPct = 100 * float64(st.Replicas) / float64(st.Distinct)
		}
		t.Rows = append(t.Rows, []float64{
			float64(g),
			float64(st.Groups),
			cover.OverlapFactor(),
			replicaPct,
			float64(st.MaxMemberships),
			st.MeanGroupLen,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=server opens=%d seed=%d", cfg.Opens, cfg.Seed),
		"extension study (paper §6): replicas = extra physical copies if the cover drives placement")
	return t, nil
}

// xcontext quantifies the §2.2 modeling question — should events be
// differentiated by the driving client? — on the multi-user workload:
// successor metadata quality when transitions are attributed per client
// vs taken from the merged stream.
func xcontext(cfg Config) (*Table, error) {
	tr, _, err := standardWorkload(cfg, workload.ProfileUsers)
	if err != nil {
		return nil, err
	}
	events := tr.Events
	t := &Table{
		ID:      "xcontext",
		XLabel:  "successor list size",
		Columns: []string{"successors", "merged stream", "per-client context"},
	}
	t.Title, _ = Title("xcontext")
	for _, capacity := range []int{1, 2, 3, 5, 8} {
		merged, err := successor.EvaluateReplacementEvents(events, successor.PolicyLRU, capacity, false)
		if err != nil {
			return nil, err
		}
		perClient, err := successor.EvaluateReplacementEvents(events, successor.PolicyLRU, capacity, true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []float64{
			float64(capacity),
			merged.MissProbability(),
			perClient.MissProbability(),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=users (%d interleaved clients) opens=%d seed=%d", 8, cfg.Opens, cfg.Seed),
		"extension study (paper §2.2): y = P(successor list misses the next file); per-client transitions never span clients")
	return t, nil
}

// xbakeoff runs every replacement policy in the library plus the
// aggregating cache over all four workloads at one capacity — the
// capstone context table for where grouping sits among classic policies.
func xbakeoff(cfg Config) (*Table, error) {
	const capacity = 300
	t := &Table{
		ID:      "xbakeoff",
		XLabel:  "policy",
		Columns: []string{"workstation", "users", "write", "server"},
	}
	t.Title, _ = Title("xbakeoff")

	profiles := []workload.Profile{
		workload.ProfileWorkstation, workload.ProfileUsers,
		workload.ProfileWrite, workload.ProfileServer,
	}
	streams := make([][]trace.FileID, len(profiles))
	for i, p := range profiles {
		ids, err := openIDs(cfg, p)
		if err != nil {
			return nil, err
		}
		streams[i] = ids
	}

	addRow := func(label string, run func(ids []trace.FileID) (float64, error)) error {
		row := make([]float64, 0, len(streams))
		for _, ids := range streams {
			hr, err := run(ids)
			if err != nil {
				return err
			}
			row = append(row, 100*hr)
		}
		t.RowLabels = append(t.RowLabels, label)
		t.Rows = append(t.Rows, row)
		return nil
	}

	for _, p := range []cache.Policy{cache.PolicyLRU, cache.PolicyLFU, cache.PolicyCLOCK,
		cache.PolicyTwoQ, cache.PolicyARC, cache.PolicyMQ} {
		p := p
		if err := addRow(string(p), func(ids []trace.FileID) (float64, error) {
			c, err := cache.New(p, capacity)
			if err != nil {
				return 0, err
			}
			for _, id := range ids {
				c.Access(id)
			}
			return c.Stats().HitRate(), nil
		}); err != nil {
			return nil, err
		}
	}
	if err := addRow("aggregating g=5", func(ids []trace.FileID) (float64, error) {
		r, err := simulate.RunClient(ids, capacity, 5)
		if err != nil {
			return 0, err
		}
		return r.HitRate, nil
	}); err != nil {
		return nil, err
	}
	if err := addRow("OPT (offline bound)", func(ids []trace.FileID) (float64, error) {
		opt, err := cache.NewOPT(capacity, ids)
		if err != nil {
			return 0, err
		}
		s, err := opt.Run()
		if err != nil {
			return 0, err
		}
		return s.HitRate(), nil
	}); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("capacity=%d opens=%d seed=%d; cells = demand hit rate (%%)", capacity, cfg.Opens, cfg.Seed),
		"the aggregating cache may exceed OPT: OPT bounds demand-only policies, while grouping transfers extra files per miss")
	return t, nil
}
