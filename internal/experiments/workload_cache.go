package experiments

import (
	"sync"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// The ~20 experiments draw from only four standard workload profiles, yet
// each figure used to regenerate its traces from scratch — by far the
// largest repeated cost in RunAll. The cache below memoizes
// workload.Standard keyed by (profile, seed, opens) so each distinct
// trace is generated exactly once per process, even when experiments run
// concurrently.
//
// Cached traces and open sequences are shared across goroutines and MUST
// be treated as read-only by every consumer; all simulators and
// evaluators in this repository only read them (they build their own
// derived state). The cache is tiny: one entry per distinct
// (profile, seed, opens) triple seen, i.e. four entries for a full
// RunAll.

type workloadKey struct {
	profile workload.Profile
	seed    int64
	opens   int
}

type workloadEntry struct {
	once sync.Once
	tr   *trace.Trace
	ids  []trace.FileID
	err  error
}

var workloadCache sync.Map // workloadKey -> *workloadEntry

// standardWorkload returns the memoized standard trace and its open
// sequence for (p, cfg.Seed, cfg.Opens). Generation happens exactly once
// per key even under concurrent callers (sync.Once per entry). Both
// returned values are shared; callers must not mutate them.
func standardWorkload(cfg Config, p workload.Profile) (*trace.Trace, []trace.FileID, error) {
	key := workloadKey{profile: p, seed: cfg.Seed, opens: cfg.Opens}
	v, _ := workloadCache.LoadOrStore(key, &workloadEntry{})
	e := v.(*workloadEntry)
	e.once.Do(func() {
		e.tr, e.err = workload.Standard(p, cfg.Seed, cfg.Opens)
		if e.err == nil {
			e.ids = e.tr.OpenIDs()
		}
	})
	return e.tr, e.ids, e.err
}

// ResetWorkloadCache drops every memoized workload. Tests use it to
// measure cold-cache behaviour; production callers never need it.
func ResetWorkloadCache() {
	workloadCache.Range(func(k, _ any) bool {
		workloadCache.Delete(k)
		return true
	})
}
