package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is the output of one experiment: a labelled grid of series, the
// textual analogue of one paper figure.
type Table struct {
	ID     string
	Title  string
	XLabel string
	// Columns names each column; Columns[0] describes the x value
	// except for claim-style tables, which use RowLabels.
	Columns []string
	// Rows holds the numeric data, one row per x value (or per claim).
	Rows [][]float64
	// RowLabels, when non-empty, names each row (claim-style tables).
	RowLabels []string
	// Notes records workload parameters and axis semantics.
	Notes []string
}

// addClaim appends a labelled (measured, low, high) row.
func (t *Table) addClaim(label string, measured, low, high float64) {
	t.RowLabels = append(t.RowLabels, label)
	t.Rows = append(t.Rows, []float64{measured, low, high})
}

// Format renders the table as aligned text for terminals and experiment
// logs.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.XLabel != "" {
		fmt.Fprintf(&b, "x: %s\n", t.XLabel)
	}

	// Assemble the string matrix: header + rows.
	header := make([]string, 0, len(t.Columns)+1)
	if len(t.RowLabels) > 0 {
		header = append(header, "")
	}
	header = append(header, t.Columns...)
	matrix := [][]string{header}
	for i, row := range t.Rows {
		line := make([]string, 0, len(row)+1)
		if len(t.RowLabels) > 0 {
			line = append(line, t.RowLabels[i])
		}
		for _, v := range row {
			line = append(line, formatCell(v))
		}
		matrix = append(matrix, line)
	}

	widths := make([]int, 0, len(header))
	for _, line := range matrix {
		for i, cell := range line {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, line := range matrix {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 && len(t.RowLabels) > 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values for plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.RowLabels) > 0 {
		b.WriteString("label,")
	}
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for i, row := range t.Rows {
		var cells []string
		if len(t.RowLabels) > 0 {
			cells = append(cells, csvQuote(t.RowLabels[i]))
		}
		for _, v := range row {
			cells = append(cells, formatCell(v))
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// formatCell prints integers bare and fractions with fixed precision.
func formatCell(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
