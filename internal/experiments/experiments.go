// Package experiments regenerates every figure of the paper's evaluation
// (§4) as a table of series: Figure 3 (client demand fetches), Figure 4
// (server hit rates behind client filters), Figure 5 (successor-list
// replacement policies), Figure 7 (successor entropy vs symbol length),
// Figure 8 (entropy under intervening-cache filtering), plus the headline
// §6 claims. Each experiment maps onto the modules listed in DESIGN.md's
// per-experiment index and is exposed through cmd/experiments and the
// root-level benchmarks.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aggcache/internal/entropy"
	"aggcache/internal/simulate"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

// Config scales an experiment run.
type Config struct {
	// Opens is the open-event count of each generated workload
	// (default 120000 — large enough for the shapes to be stable).
	Opens int
	// Seed drives workload generation (default 1).
	Seed int64
	// Parallelism bounds the worker goroutines RunAll fans experiments
	// out on, and is forwarded to the sweep engines inside each figure.
	// 0 means GOMAXPROCS; 1 reproduces the fully sequential run. Every
	// setting yields bit-identical tables: experiments share only the
	// memoized read-only workloads, each simulation stays
	// single-threaded, and results land in pre-sized slots by index.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Opens == 0 {
		c.Opens = 120000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Runner is the signature of an experiment.
type Runner func(Config) (*Table, error)

// titles maps experiment IDs (the paper's figure numbering) to their
// human-readable titles.
var titles = map[string]string{
	"3a":     "Fig 3(a): client demand fetches vs cache capacity (server workload)",
	"3b":     "Fig 3(b): client demand fetches vs cache capacity (write workload)",
	"4a":     "Fig 4(a): server hit rate vs client filter capacity (workstation workload)",
	"4b":     "Fig 4(b): server hit rate vs client filter capacity (users workload)",
	"4c":     "Fig 4(c): server hit rate vs client filter capacity (server workload)",
	"5a":     "Fig 5(a): P(miss future successor) vs successor list size (workstation workload)",
	"5b":     "Fig 5(b): P(miss future successor) vs successor list size (server workload)",
	"7":      "Fig 7: successor entropy vs successor sequence length (all workloads)",
	"8a":     "Fig 8(a): successor entropy vs sequence length under LRU filters (write workload)",
	"8b":     "Fig 8(b): successor entropy vs sequence length under LRU filters (users workload)",
	"claims": "\u00a76 headline claims: client fetch reduction and server hit-rate gains",

	// Extension studies beyond the paper's figures.
	"xprefetch":  "Extension: aggregating cache vs explicit prefetchers (\u00a75 baselines)",
	"xplacement": "Extension: group-aware data placement vs organ-pipe (\u00a72.1/\u00a76)",
	"xhoard":     "Extension: hoard selection for disconnected operation (\u00a76)",
	"xlatency":   "Extension: mean open latency through a client/server hierarchy",
	"xdecay":     "Extension: decayed-frequency successor lists (the \u00a76 recency/frequency hybrid)",
	"xweb":       "Extension: grouping a web proxy's fetches (\u00a75/Hummingbird domain)",
	"xoverlap":   "Extension: storage cost of overlapping groups vs group size (\u00a76)",
	"xcontext":   "Extension: per-client vs merged successor contexts on the users workload (\u00a72.2)",
	"xbakeoff":   "Extension: every replacement policy vs the aggregating cache, all workloads",
}

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"3a":     func(c Config) (*Table, error) { return fig3(c, workload.ProfileServer) },
	"3b":     func(c Config) (*Table, error) { return fig3(c, workload.ProfileWrite) },
	"4a":     func(c Config) (*Table, error) { return fig4(c, workload.ProfileWorkstation) },
	"4b":     func(c Config) (*Table, error) { return fig4(c, workload.ProfileUsers) },
	"4c":     func(c Config) (*Table, error) { return fig4(c, workload.ProfileServer) },
	"5a":     func(c Config) (*Table, error) { return fig5(c, workload.ProfileWorkstation) },
	"5b":     func(c Config) (*Table, error) { return fig5(c, workload.ProfileServer) },
	"7":      fig7,
	"8a":     func(c Config) (*Table, error) { return fig8(c, workload.ProfileWrite) },
	"8b":     func(c Config) (*Table, error) { return fig8(c, workload.ProfileUsers) },
	"claims": claims,

	"xprefetch":  xprefetch,
	"xplacement": xplacement,
	"xhoard":     xhoard,
	"xlatency":   xlatency,
	"xdecay":     xdecay,
	"xweb":       xweb,
	"xoverlap":   xoverlap,
	"xcontext":   xcontext,
	"xbakeoff":   xbakeoff,
}

// IDs returns the known experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human title for an experiment ID.
func Title(id string) (string, bool) {
	t, ok := titles[id]
	return t, ok
}

// Run executes one experiment.
func Run(id string, cfg Config) (*Table, error) {
	run, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return run(cfg.withDefaults())
}

// RunAll executes every experiment, returning tables in ID order.
// Experiments fan out across cfg.Parallelism workers (default
// GOMAXPROCS); workloads are memoized so each (profile, seed, opens)
// trace is generated once for the whole run. Tables are bit-identical
// to a sequential run at any parallelism.
func RunAll(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	ids := IDs()
	out := make([]*Table, len(ids))
	err := runParallel(len(ids), cfg.Parallelism, func(i int) error {
		t, err := Run(ids[i], cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
		out[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runParallel executes n independent jobs on a bounded worker pool,
// mirroring the sweep engine in internal/simulate: results go into
// pre-sized slots by index and the lowest-indexed error wins, so output
// and failure behaviour match the sequential loop.
func runParallel(n, parallelism int, job func(i int) error) error {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstI  = n
		firstE  error
		stopped atomic.Bool
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stopped.Load() {
					return
				}
				if err := job(i); err != nil {
					mu.Lock()
					if i < firstI {
						firstI, firstE = i, err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstE
}

func openIDs(cfg Config, p workload.Profile) ([]trace.FileID, error) {
	_, ids, err := standardWorkload(cfg, p)
	return ids, err
}

// sweepOptions forwards the run's parallelism bound to the sweep engine.
func sweepOptions(cfg Config) simulate.Options {
	return simulate.Options{Parallelism: cfg.Parallelism}
}

// fig3 sweeps cache capacity x group size, reporting demand fetches.
func fig3(cfg Config, p workload.Profile) (*Table, error) {
	ids, err := openIDs(cfg, p)
	if err != nil {
		return nil, err
	}
	groups := []int{1, 2, 3, 5, 7, 10}
	capacities := []int{100, 200, 300, 400, 500, 600, 700, 800}
	grid, err := simulate.ClientSweepOpt(ids, groups, capacities, sweepOptions(cfg))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "3" + panelSuffix(p, workload.ProfileServer, workload.ProfileWrite),
		XLabel:  "cache capacity (files)",
		Columns: []string{"capacity", "lru", "g2", "g3", "g5", "g7", "g10"},
	}
	t.Title, _ = Title(t.ID)
	for j, c := range capacities {
		row := make([]float64, 0, len(groups)+1)
		row = append(row, float64(c))
		for i := range groups {
			row = append(row, float64(grid[i][j].Fetches))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=%s opens=%d seed=%d", p, cfg.Opens, cfg.Seed),
		"y = demand fetches (client requests to remote server), proportional to miss rate")
	return t, nil
}

// fig4 sweeps the intervening client cache capacity for three server cache
// schemes at a fixed server capacity of 300 files.
func fig4(cfg Config, p workload.Profile) (*Table, error) {
	ids, err := openIDs(cfg, p)
	if err != nil {
		return nil, err
	}
	const serverCap = 300
	schemes := []simulate.ServerConfig{
		{ServerCapacity: serverCap, Scheme: simulate.SchemeAggregating, GroupSize: 5},
		{ServerCapacity: serverCap, Scheme: simulate.SchemeLRU},
		{ServerCapacity: serverCap, Scheme: simulate.SchemeLFU},
	}
	filters := []int{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	grid, err := simulate.ServerSweepOpt(ids, schemes, filters, sweepOptions(cfg))
	if err != nil {
		return nil, err
	}
	id := "4" + panelSuffix3(p, workload.ProfileWorkstation, workload.ProfileUsers, workload.ProfileServer)
	t := &Table{
		ID:      id,
		XLabel:  "filter capacity (files), cache capacity = 300",
		Columns: []string{"filter", "g5", "lru", "lfu"},
	}
	t.Title, _ = Title(id)
	for j, f := range filters {
		row := []float64{float64(f)}
		for i := range schemes {
			row = append(row, 100*grid[i][j].HitRate)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=%s opens=%d seed=%d", p, cfg.Opens, cfg.Seed),
		"y = server cache hit rate (%); server metadata learned from the filtered miss stream (no client cooperation)")
	return t, nil
}

// fig5 sweeps the per-file successor list capacity for the three
// replacement policies.
func fig5(cfg Config, p workload.Profile) (*Table, error) {
	ids, err := openIDs(cfg, p)
	if err != nil {
		return nil, err
	}
	id := "5" + panelSuffix(p, workload.ProfileWorkstation, workload.ProfileServer)
	t := &Table{
		ID:      id,
		XLabel:  "number of successors",
		Columns: []string{"successors", "oracle", "lru", "lfu"},
	}
	t.Title, _ = Title(id)

	oracle, err := successor.EvaluateReplacement(ids, successor.PolicyOracle, 0)
	if err != nil {
		return nil, err
	}
	caps := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lru, err := successor.EvaluateReplacementSweep(ids, successor.PolicyLRU, caps)
	if err != nil {
		return nil, err
	}
	lfu, err := successor.EvaluateReplacementSweep(ids, successor.PolicyLFU, caps)
	if err != nil {
		return nil, err
	}
	for i, c := range caps {
		t.Rows = append(t.Rows, []float64{float64(c), oracle.MissProbability(), lru[i], lfu[i]})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=%s opens=%d seed=%d", p, cfg.Opens, cfg.Seed),
		"y = probability a future successor is absent from the per-file list (access-weighted)")
	return t, nil
}

// fig7 sweeps successor-sequence symbol length for all four workloads.
func fig7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "7",
		XLabel:  "successor sequence length",
		Columns: []string{"length", "users", "write", "server", "workstation"},
	}
	t.Title, _ = Title("7")
	order := []workload.Profile{workload.ProfileUsers, workload.ProfileWrite, workload.ProfileServer, workload.ProfileWorkstation}
	ks := seqLengths()
	series := make([][]entropy.Result, len(order))
	for i, p := range order {
		ids, err := openIDs(cfg, p)
		if err != nil {
			return nil, err
		}
		rs, err := entropy.Sweep(ids, ks)
		if err != nil {
			return nil, err
		}
		series[i] = rs
	}
	for j, k := range ks {
		row := []float64{float64(k)}
		for i := range order {
			row = append(row, series[i][j].Bits)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("opens=%d seed=%d", cfg.Opens, cfg.Seed),
		"y = successor entropy (bits); lower = more predictable")
	return t, nil
}

// fig8 computes entropy sweeps of a workload filtered through LRU caches
// of varying capacity.
func fig8(cfg Config, p workload.Profile) (*Table, error) {
	ids, err := openIDs(cfg, p)
	if err != nil {
		return nil, err
	}
	filters := []int{1, 10, 50, 100, 500, 1000}
	id := "8" + panelSuffix(p, workload.ProfileWrite, workload.ProfileUsers)
	t := &Table{
		ID:      id,
		XLabel:  "successor sequence length",
		Columns: []string{"length", "f1", "f10", "f50", "f100", "f500", "f1000"},
	}
	t.Title, _ = Title(id)
	ks := seqLengths()
	series := make([][]entropy.Result, len(filters))
	for i, f := range filters {
		misses, err := simulate.FilterLRU(ids, f)
		if err != nil {
			return nil, err
		}
		rs, err := entropy.Sweep(misses, ks)
		if err != nil {
			return nil, err
		}
		series[i] = rs
	}
	for j, k := range ks {
		row := []float64{float64(k)}
		for i := range filters {
			row = append(row, series[i][j].Bits)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload=%s opens=%d seed=%d", p, cfg.Opens, cfg.Seed),
		"series = intervening LRU client cache capacity; y = successor entropy of the miss stream (bits)")
	return t, nil
}

// claims reproduces the §6 headline numbers.
func claims(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "claims",
		XLabel:  "claim",
		Columns: []string{"measured", "paper low", "paper high"},
	}
	t.Title, _ = Title("claims")

	// Claim 1: client-side grouping cuts LRU demand fetches by 50-60%
	// (server workload, g >= 5).
	srvIDs, err := openIDs(cfg, workload.ProfileServer)
	if err != nil {
		return nil, err
	}
	lru, err := simulate.RunClient(srvIDs, 300, 1)
	if err != nil {
		return nil, err
	}
	g5, err := simulate.RunClient(srvIDs, 300, 5)
	if err != nil {
		return nil, err
	}
	clientReduction := 100 * (1 - float64(g5.Fetches)/float64(lru.Fetches))
	t.addClaim("client fetch reduction, server workload, g5 (%)", clientReduction, 50, 60)

	// Claim 2: g2-g3 cut miss rates by over 40% on the server workload.
	g3, err := simulate.RunClient(srvIDs, 300, 3)
	if err != nil {
		return nil, err
	}
	t.addClaim("client fetch reduction, server workload, g3 (%)",
		100*(1-float64(g3.Fetches)/float64(lru.Fetches)), 40, 60)

	// Claims 3-4: server cache behind client filters. Small filters
	// (<200): agg improves hit rate by 20-1200%. Large filters (>=300):
	// agg keeps 30-60% while LRU fails.
	wsIDs, err := openIDs(cfg, workload.ProfileWorkstation)
	if err != nil {
		return nil, err
	}
	smallAgg, err := simulate.RunServer(wsIDs, simulate.ServerConfig{
		FilterCapacity: 150, ServerCapacity: 300, Scheme: simulate.SchemeAggregating, GroupSize: 5})
	if err != nil {
		return nil, err
	}
	smallLRU, err := simulate.RunServer(wsIDs, simulate.ServerConfig{
		FilterCapacity: 150, ServerCapacity: 300, Scheme: simulate.SchemeLRU})
	if err != nil {
		return nil, err
	}
	improvement := 100 * (smallAgg.HitRate - smallLRU.HitRate) / smallLRU.HitRate
	t.addClaim("server hit-rate improvement vs LRU, filter=150 (%)", improvement, 20, 1200)

	largeAgg, err := simulate.RunServer(wsIDs, simulate.ServerConfig{
		FilterCapacity: 400, ServerCapacity: 300, Scheme: simulate.SchemeAggregating, GroupSize: 5})
	if err != nil {
		return nil, err
	}
	t.addClaim("server agg hit rate, filter=400 > cache (%)", 100*largeAgg.HitRate, 30, 60)

	t.Notes = append(t.Notes,
		fmt.Sprintf("opens=%d seed=%d", cfg.Opens, cfg.Seed),
		"paper low/high bracket the range reported in §1/§6; shapes, not absolutes, are the reproduction target")
	return t, nil
}

func seqLengths() []int {
	ks := make([]int, 20)
	for i := range ks {
		ks[i] = i + 1
	}
	return ks
}

func panelSuffix(p, a, b workload.Profile) string {
	if p == a {
		return "a"
	}
	if p == b {
		return "b"
	}
	return "?"
}

func panelSuffix3(p, a, b, c workload.Profile) string {
	switch p {
	case a:
		return "a"
	case b:
		return "b"
	case c:
		return "c"
	}
	return "?"
}
