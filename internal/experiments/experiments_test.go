package experiments

import (
	"strings"
	"testing"
)

// small keeps experiment tests fast; shapes asserted here are coarse, the
// full-scale shapes are recorded in EXPERIMENTS.md.
var small = Config{Opens: 12000, Seed: 1}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	want := []string{"3a", "3b", "4a", "4b", "4c", "5a", "5b", "7", "8a", "8b", "claims",
		"xbakeoff", "xcontext", "xdecay", "xhoard", "xlatency", "xoverlap", "xplacement", "xprefetch", "xweb"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if title, ok := Title(id); !ok || title == "" {
			t.Errorf("Title(%s) missing", id)
		}
	}
	if _, ok := Title("99z"); ok {
		t.Error("Title(99z) reported ok")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", small); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig3Shape(t *testing.T) {
	tab, err := Run("3a", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 capacities", len(tab.Rows))
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for _, row := range tab.Rows {
		lru, g5 := row[1], row[4]
		if g5 >= lru {
			t.Errorf("capacity %v: g5 fetches %v >= lru %v", row[0], g5, lru)
		}
		// No deterioration for larger groups (paper: g>5 gains level
		// off but never hurt). Allow small wiggle.
		g10 := row[6]
		if g10 > lru {
			t.Errorf("capacity %v: g10 fetches %v worse than lru %v", row[0], g10, lru)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab, err := Run("4c", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 filter capacities", len(tab.Rows))
	}
	// At the largest filter (500 > cache 300) grouping must dominate
	// LRU/LFU decisively.
	last := tab.Rows[len(tab.Rows)-1]
	g5, lru, lfu := last[1], last[2], last[3]
	if g5 <= lru || g5 <= lfu {
		t.Errorf("filter=500: g5=%.1f%% lru=%.1f%% lfu=%.1f%%; grouping must win", g5, lru, lfu)
	}
	if lru > 20 {
		t.Errorf("filter=500: lru=%.1f%%, want collapsed (<20%%)", lru)
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Run("5b", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 list sizes", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		n, oracle, lru, lfu := row[0], row[1], row[2], row[3]
		if oracle > lru+1e-9 || oracle > lfu+1e-9 {
			t.Errorf("n=%v: oracle %.4f above a bounded policy (lru %.4f lfu %.4f)", n, oracle, lru, lfu)
		}
		// Recency wins. Strict at small lists; at larger lists the
		// margin shrinks toward zero and needs full-length traces to
		// stabilize (see EXPERIMENTS.md), so allow sampling noise.
		eps := 0.0
		if n > 3 {
			eps = 0.003
		}
		if lru > lfu+eps {
			t.Errorf("n=%v: LRU %.4f worse than LFU %.4f (paper: recency wins)", n, lru, lfu)
		}
	}
	// Miss probability must fall as lists grow.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if last[2] >= first[2] {
		t.Errorf("LRU miss prob did not fall with list size: %.4f -> %.4f", first[2], last[2])
	}
}

func TestFig7Shape(t *testing.T) {
	tab, err := Run("7", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d, want 20 lengths", len(tab.Rows))
	}
	// Single-file successors (k=1) are the most predictable for every
	// workload: entropy at k=1 below entropy at k=20.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(tab.Columns); col++ {
		if first[col] >= last[col] {
			t.Errorf("%s: entropy k=1 (%.3f) not below k=20 (%.3f)",
				tab.Columns[col], first[col], last[col])
		}
	}
	// The server workload (column 3) is the most predictable at k=1.
	for col := 1; col < len(tab.Columns); col++ {
		if col == 3 {
			continue
		}
		if first[3] >= first[col] {
			t.Errorf("server entropy %.3f not below %s %.3f at k=1",
				first[3], tab.Columns[col], first[col])
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab, err := Run("8b", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	// Entropy increases with sequence length for every filter size.
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	for col := 1; col < len(tab.Columns); col++ {
		if first[col] >= last[col] {
			t.Errorf("filter %s: entropy k=1 (%.3f) not below k=20 (%.3f)",
				tab.Columns[col], first[col], last[col])
		}
	}
	// A large intervening cache (500) yields a more predictable miss
	// stream at k=1 than a tiny one (10) — the paper's key observation.
	f10, f500 := first[2], first[5]
	if f500 >= f10 {
		t.Errorf("filter 500 entropy %.3f >= filter 10 entropy %.3f at k=1", f500, f10)
	}
}

func TestClaims(t *testing.T) {
	tab, err := Run("claims", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.RowLabels) != 4 {
		t.Fatalf("claims rows = %d, labels = %d, want 4", len(tab.Rows), len(tab.RowLabels))
	}
	for i, row := range tab.Rows {
		measured := row[0]
		if measured <= 0 {
			t.Errorf("claim %q measured %.2f, want positive", tab.RowLabels[i], measured)
		}
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	tabs, err := RunAll(Config{Opens: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Fatalf("tables = %d, want %d", len(tabs), len(IDs()))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "test table",
		XLabel:  "x",
		Columns: []string{"x", "y"},
		Rows:    [][]float64{{1, 0.5}, {2, 0.25}},
		Notes:   []string{"a note"},
	}
	out := tab.Format()
	for _, want := range []string{"test table", "x: x", "0.500", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("CSV header wrong: %s", csv)
	}
	if !strings.Contains(csv, "1,0.500") {
		t.Errorf("CSV data wrong: %s", csv)
	}
}

func TestTableWithRowLabels(t *testing.T) {
	tab := &Table{Columns: []string{"measured", "low", "high"}}
	tab.addClaim(`claim "a", tricky`, 42, 40, 60)
	out := tab.Format()
	if !strings.Contains(out, "claim") || !strings.Contains(out, "42") {
		t.Errorf("Format lost claim row: %s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "label,measured,low,high\n") {
		t.Errorf("CSV header wrong: %s", csv)
	}
	if !strings.Contains(csv, `"claim ""a"", tricky"`) {
		t.Errorf("CSV quoting wrong: %s", csv)
	}
}

func TestExtensionPrefetch(t *testing.T) {
	tab, err := Run("xprefetch", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || len(tab.RowLabels) != 6 {
		t.Fatalf("rows = %d labels = %d, want 6", len(tab.Rows), len(tab.RowLabels))
	}
	// The aggregating row is last; its total server requests must be
	// below every explicit prefetcher's.
	agg := tab.Rows[len(tab.Rows)-1]
	for i := 1; i < len(tab.Rows)-1; i++ {
		if agg[2] >= tab.Rows[i][2] {
			t.Errorf("aggregating requests %.0f >= %s requests %.0f",
				agg[2], tab.RowLabels[i], tab.Rows[i][2])
		}
	}
	// And its hit rate must beat plain LRU.
	if agg[0] <= tab.Rows[0][0] {
		t.Errorf("aggregating hit rate %.1f <= lru %.1f", agg[0], tab.Rows[0][0])
	}
}

func TestExtensionPlacement(t *testing.T) {
	tab, err := Run("xplacement", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// grouped (row 2) must out-seek organ pipe (row 1).
	if tab.Rows[2][0] >= tab.Rows[1][0] {
		t.Errorf("grouped mean seek %.1f >= organ pipe %.1f", tab.Rows[2][0], tab.Rows[1][0])
	}
	// Nothing unplaced.
	for i, row := range tab.Rows {
		if row[2] != 0 {
			t.Errorf("%s: %v unplaced accesses", tab.RowLabels[i], row[2])
		}
	}
}

func TestExtensionHoard(t *testing.T) {
	tab, err := Run("xhoard", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	var closureWins int
	for _, row := range tab.Rows {
		if row[2] > row[1] {
			closureWins++
		}
		if row[1] < 0 || row[1] > 100 || row[2] < 0 || row[2] > 100 {
			t.Errorf("completion out of range: %v", row)
		}
	}
	if closureWins < 2 {
		t.Errorf("group closure won at only %d of 4 budgets", closureWins)
	}
	// Completion must not decrease with budget for either policy.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][2] < tab.Rows[i-1][2]-1e-9 {
			t.Errorf("closure completion fell with budget: %v", tab.Rows)
		}
	}
}

func TestExtensionLatency(t *testing.T) {
	tab, err := Run("xlatency", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// aggregating (row 2) must have the lowest mean latency.
	agg := tab.Rows[2][0]
	if agg >= tab.Rows[0][0] || agg >= tab.Rows[1][0] {
		t.Errorf("aggregating latency %.3f not lowest (lru %.3f, lfu %.3f)",
			agg, tab.Rows[0][0], tab.Rows[1][0])
	}
}

func TestExtensionDecay(t *testing.T) {
	tab, err := Run("xdecay", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 || len(tab.Columns) != 5 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Columns))
	}
	for _, row := range tab.Rows {
		oracle, decay := row[1], row[4]
		if decay < oracle-1e-9 {
			t.Errorf("decay %.4f below the oracle %.4f", decay, oracle)
		}
		// The hybrid must stay close to the better pure policy.
		best := row[2]
		if row[3] < best {
			best = row[3]
		}
		if decay > best+0.02 {
			t.Errorf("n=%v: decay %.4f much worse than best pure policy %.4f", row[0], decay, best)
		}
	}
}

func TestExtensionWeb(t *testing.T) {
	tab, err := Run("xweb", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		lru, g3, g7 := row[1], row[2], row[3]
		if g3 >= lru || g7 >= g3 {
			t.Errorf("capacity %v: fetches not monotone in g: %v %v %v", row[0], lru, g3, g7)
		}
		// At the largest capacity the (test-scale) universe nearly
		// fits, shrinking the head-room; demand a softer floor there.
		floor := 30.0
		if row[0] >= 800 {
			floor = 15.0
		}
		if row[4] < floor {
			t.Errorf("capacity %v: g7 reduction %.1f%%, want >= %.0f%%", row[0], row[4], floor)
		}
	}
}

func TestExtensionOverlap(t *testing.T) {
	tab, err := Run("xoverlap", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[2] < 1.0 {
			t.Errorf("g=%v: overlap factor %v < 1", row[0], row[2])
		}
		if row[5] > row[0] {
			t.Errorf("g=%v: mean group length %v exceeds target", row[0], row[5])
		}
		// Overlap (replication) must grow with group size.
		if i > 0 && row[3] < tab.Rows[i-1][3]-1e-9 {
			t.Errorf("replicas%% fell from %v to %v as g grew", tab.Rows[i-1][3], row[3])
		}
	}
}

func TestExtensionContext(t *testing.T) {
	tab, err := Run("xcontext", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] >= row[1] {
			t.Errorf("n=%v: per-client %.4f not below merged %.4f", row[0], row[2], row[1])
		}
	}
}

func TestExtensionBakeoff(t *testing.T) {
	tab, err := Run("xbakeoff", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 || len(tab.RowLabels) != 8 {
		t.Fatalf("rows = %d, want 8 policies", len(tab.Rows))
	}
	// The aggregating row (index 6) must beat plain LRU (index 0) on
	// every workload; OPT (last row) must bound all demand-only rows.
	for col := 0; col < 4; col++ {
		if tab.Rows[6][col] <= tab.Rows[0][col] {
			t.Errorf("%s: aggregating %.1f <= lru %.1f",
				tab.Columns[col], tab.Rows[6][col], tab.Rows[0][col])
		}
		opt := tab.Rows[7][col]
		for r := 0; r < 6; r++ {
			if tab.Rows[r][col] > opt+1e-9 {
				t.Errorf("%s: %s %.2f above OPT %.2f",
					tab.Columns[col], tab.RowLabels[r], tab.Rows[r][col], opt)
			}
		}
	}
}
