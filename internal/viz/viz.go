// Package viz turns successor-entropy analysis into workload reports —
// the direction the paper's §6 sketches ("extending successor entropy for
// use as part of a more general purpose visualization tool for I/O
// workloads", Luo et al. 2001). It profiles the predictability of
// individual files and of the workload over time, and renders both as
// plain text or self-contained SVG, standard library only.
package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"aggcache/internal/entropy"
	"aggcache/internal/trace"
)

// FileEntry describes one file's predictability.
type FileEntry struct {
	ID   trace.FileID
	Path string
	// Accesses is the file's open count.
	Accesses int
	// Successors is the number of distinct immediate successors
	// observed after it.
	Successors int
	// Entropy is the file's conditional successor entropy in bits
	// (0 = perfectly predictable).
	Entropy float64
}

// Profile computes per-file successor statistics for the topN most
// accessed files (all files if topN <= 0), ordered by access count
// descending, id ascending on ties.
func Profile(t *trace.Trace, topN int) []FileEntry {
	ids := t.OpenIDs()
	counts := make(map[trace.FileID]int)
	succs := make(map[trace.FileID]map[trace.FileID]int)
	for i, id := range ids {
		counts[id]++
		if i+1 < len(ids) {
			m, ok := succs[id]
			if !ok {
				m = make(map[trace.FileID]int, 2)
				succs[id] = m
			}
			m[ids[i+1]]++
		}
	}

	entries := make([]FileEntry, 0, len(counts))
	for id, n := range counts {
		e := FileEntry{
			ID:       id,
			Path:     t.Paths.Path(id),
			Accesses: n,
		}
		if m := succs[id]; len(m) > 0 {
			e.Successors = len(m)
			var total int
			for _, c := range m {
				total += c
			}
			for _, c := range m {
				p := float64(c) / float64(total)
				e.Entropy -= p * math.Log2(p)
			}
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Accesses != entries[j].Accesses {
			return entries[i].Accesses > entries[j].Accesses
		}
		return entries[i].ID < entries[j].ID
	})
	if topN > 0 && len(entries) > topN {
		entries = entries[:topN]
	}
	return entries
}

// WriteReport renders a per-file profile as aligned text.
func WriteReport(w io.Writer, entries []FileEntry) error {
	if _, err := fmt.Fprintf(w, "%-40s %9s %11s %9s\n", "file", "accesses", "successors", "entropy"); err != nil {
		return err
	}
	for _, e := range entries {
		path := e.Path
		if path == "" {
			path = fmt.Sprintf("f%d", e.ID)
		}
		if len(path) > 40 {
			path = "..." + path[len(path)-37:]
		}
		if _, err := fmt.Fprintf(w, "%-40s %9d %11d %9.3f\n", path, e.Accesses, e.Successors, e.Entropy); err != nil {
			return err
		}
	}
	return nil
}

// Window is one time slice of the workload's predictability.
type Window struct {
	// Start is the index of the first open in the window.
	Start int
	// Bits is the successor entropy (k=1) of the window's opens.
	Bits float64
}

// Windows slices the open sequence into consecutive windows of size
// windowLen and computes each window's successor entropy — the workload's
// predictability over time.
func Windows(ids []trace.FileID, windowLen int) ([]Window, error) {
	if windowLen < 2 {
		return nil, fmt.Errorf("viz: window length must be >= 2, got %d", windowLen)
	}
	var out []Window
	for start := 0; start+windowLen <= len(ids); start += windowLen {
		r, err := entropy.SuccessorEntropy(ids[start:start+windowLen], 1)
		if err != nil {
			return nil, err
		}
		out = append(out, Window{Start: start, Bits: r.Bits})
	}
	return out, nil
}

// SVG rendering. The charts are deliberately minimal: fixed layout,
// no external assets, valid standalone SVG 1.1.

const (
	svgBarHeight  = 18
	svgBarGap     = 4
	svgLabelWidth = 320
	svgPlotWidth  = 420
	svgMargin     = 10
)

// WriteBarsSVG renders a per-file profile as a horizontal bar chart of
// entropy, annotated with access counts.
func WriteBarsSVG(w io.Writer, entries []FileEntry) error {
	height := svgMargin*2 + len(entries)*(svgBarHeight+svgBarGap)
	width := svgMargin*2 + svgLabelWidth + svgPlotWidth
	maxBits := 0.0
	for _, e := range entries {
		if e.Entropy > maxBits {
			maxBits = e.Entropy
		}
	}
	if maxBits == 0 {
		maxBits = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	y := svgMargin
	for _, e := range entries {
		path := e.Path
		if path == "" {
			path = fmt.Sprintf("f%d", e.ID)
		}
		barLen := int(float64(svgPlotWidth) * e.Entropy / maxBits)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			svgMargin, y+svgBarHeight-5, svgEscape(truncate(path, 36)))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4477aa"/>`+"\n",
			svgMargin+svgLabelWidth, y, barLen, svgBarHeight)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#333">%.2f bits / %d opens</text>`+"\n",
			svgMargin+svgLabelWidth+barLen+4, y+svgBarHeight-5, e.Entropy, e.Accesses)
		y += svgBarHeight + svgBarGap
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTimelineSVG renders per-window entropy as a polyline sparkline.
func WriteTimelineSVG(w io.Writer, windows []Window) error {
	const (
		plotW = 640
		plotH = 160
	)
	width := plotW + 2*svgMargin
	height := plotH + 2*svgMargin
	maxBits := 0.0
	for _, win := range windows {
		if win.Bits > maxBits {
			maxBits = win.Bits
		}
	}
	if maxBits == 0 {
		maxBits = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`+"\n",
		svgMargin, svgMargin, plotW, plotH)
	if len(windows) > 0 {
		var pts []string
		for i, win := range windows {
			x := svgMargin
			if len(windows) > 1 {
				x += i * plotW / (len(windows) - 1)
			}
			y := svgMargin + plotH - int(float64(plotH)*win.Bits/maxBits)
			pts = append(pts, fmt.Sprintf("%d,%d", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#4477aa" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">successor entropy over time (max %.2f bits)</text>`+"\n",
		svgMargin+4, svgMargin+14, maxBits)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
