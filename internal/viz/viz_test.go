package viz

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func sampleTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr := trace.NewTrace()
	// /hub opened 4 times with alternating successors (1 bit); /a
	// opened 2 times deterministically (0 bits).
	for _, p := range []string{"/hub", "/a", "/hub", "/b", "/hub", "/a", "/hub", "/b", "/a", "/end"} {
		tr.Append(trace.Event{Op: trace.OpOpen}, p)
	}
	return tr
}

func TestProfile(t *testing.T) {
	entries := Profile(sampleTrace(t), 0)
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	// Most accessed first: /hub with 4.
	if entries[0].Path != "/hub" || entries[0].Accesses != 4 {
		t.Errorf("top entry = %+v", entries[0])
	}
	if entries[0].Successors != 2 {
		t.Errorf("/hub successors = %d, want 2", entries[0].Successors)
	}
	if math.Abs(entries[0].Entropy-1.0) > 1e-9 {
		t.Errorf("/hub entropy = %v, want 1 bit", entries[0].Entropy)
	}
	// /a: successors are /hub, /hub, /end -> entropy of {2/3, 1/3}.
	var a FileEntry
	for _, e := range entries {
		if e.Path == "/a" {
			a = e
		}
	}
	want := -(2.0/3.0)*math.Log2(2.0/3.0) - (1.0/3.0)*math.Log2(1.0/3.0)
	if math.Abs(a.Entropy-want) > 1e-9 {
		t.Errorf("/a entropy = %v, want %v", a.Entropy, want)
	}
}

func TestProfileTopN(t *testing.T) {
	entries := Profile(sampleTrace(t), 2)
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Accesses < entries[1].Accesses {
		t.Error("entries not sorted by access count")
	}
}

func TestProfileEmptyTrace(t *testing.T) {
	if entries := Profile(trace.NewTrace(), 10); len(entries) != 0 {
		t.Errorf("entries = %v, want none", entries)
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, Profile(sampleTrace(t), 0)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"file", "/hub", "1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWindows(t *testing.T) {
	// Deterministic cycle: every window is fully predictable.
	var ids []trace.FileID
	for i := 0; i < 100; i++ {
		ids = append(ids, trace.FileID(i%4))
	}
	ws, err := Windows(ids, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 5 {
		t.Fatalf("windows = %d, want 5", len(ws))
	}
	for _, w := range ws {
		if w.Bits != 0 {
			t.Errorf("window at %d: %v bits, want 0", w.Start, w.Bits)
		}
	}
	if _, err := Windows(ids, 1); err == nil {
		t.Error("window length 1 accepted")
	}
}

func TestWindowsDetectRegimeChange(t *testing.T) {
	// First half deterministic, second half pseudo-random: the later
	// windows must be less predictable.
	var ids []trace.FileID
	for i := 0; i < 500; i++ {
		ids = append(ids, trace.FileID(i%5))
	}
	x := uint32(7)
	for i := 0; i < 500; i++ {
		x = x*1664525 + 1013904223
		// Use high bits: an LCG's low bits cycle with a short period
		// and would be perfectly predictable.
		ids = append(ids, trace.FileID((x>>24)%64))
	}
	ws, err := Windows(ids, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("windows = %d", len(ws))
	}
	if ws[0].Bits >= ws[3].Bits {
		t.Errorf("regime change not visible: %v", ws)
	}
}

func TestWriteBarsSVG(t *testing.T) {
	var buf bytes.Buffer
	entries := Profile(sampleTrace(t), 3)
	if err := WriteBarsSVG(&buf, entries); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Errorf("not a complete SVG:\n%s", out)
	}
	if !strings.Contains(out, "/hub") {
		t.Error("SVG missing file label")
	}
	if strings.Count(out, "<rect") < len(entries) {
		t.Error("SVG missing bars")
	}
}

func TestWriteBarsSVGEscapes(t *testing.T) {
	var buf bytes.Buffer
	entries := []FileEntry{{Path: `/a<b>&"c`, Accesses: 1, Entropy: 0.5}}
	if err := WriteBarsSVG(&buf, entries); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<b>") {
		t.Error("SVG did not escape markup in paths")
	}
	if !strings.Contains(out, "&lt;b&gt;") {
		t.Error("escaped path missing")
	}
}

func TestWriteTimelineSVG(t *testing.T) {
	var buf bytes.Buffer
	ws := []Window{{Start: 0, Bits: 0.5}, {Start: 100, Bits: 2.0}, {Start: 200, Bits: 1.0}}
	if err := WriteTimelineSVG(&buf, ws); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "polyline") {
		t.Error("timeline missing polyline")
	}
	// Empty input still renders a valid frame.
	buf.Reset()
	if err := WriteTimelineSVG(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("empty timeline not an SVG")
	}
}

func TestProfileOnGeneratedWorkload(t *testing.T) {
	tr, err := workload.Standard(workload.ProfileServer, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	entries := Profile(tr, 20)
	if len(entries) != 20 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Hub files (present in many tasks) must rank near the top and be
	// less predictable than mid-task files.
	if !strings.HasPrefix(entries[0].Path, "/shared/") {
		t.Logf("top file is %s (not a hub); acceptable but unusual", entries[0].Path)
	}
	for _, e := range entries {
		if e.Entropy < 0 {
			t.Errorf("negative entropy: %+v", e)
		}
	}
}
