// Package trace defines the file-access trace substrate used throughout the
// library: the event record model (patterned after the system-call-level
// records exposed by CMU's DFSTrace toolchain), streaming text and binary
// codecs, filters, and summary statistics.
//
// The aggregating-cache model in the paper deliberately ignores precise
// timing and tracks only the observed *sequence* of file accesses; the Time
// field is carried for completeness but nothing in the library depends on
// it.
package trace

import (
	"fmt"
	"time"
)

// FileID identifies a file within a trace. IDs are dense: an Interner
// assigns them in first-use order starting at zero, so they double as
// indices into per-file tables.
type FileID uint32

// Op is the kind of file-system operation an Event records.
type Op uint8

// Operations recorded in a trace. Open is the only operation the grouping
// model consumes (the paper measures whole-file caching on open requests);
// the rest are carried so that workload generators can express write-heavy
// behaviour and so trace tooling round-trips foreign traces faithfully.
const (
	OpOpen Op = iota + 1
	OpClose
	OpRead
	OpWrite
	OpCreate
	OpUnlink
	OpStat
)

var opNames = [...]string{
	OpOpen:   "open",
	OpClose:  "close",
	OpRead:   "read",
	OpWrite:  "write",
	OpCreate: "create",
	OpUnlink: "unlink",
	OpStat:   "stat",
}

// String returns the lower-case mnemonic for op ("open", "write", ...).
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether op is one of the defined operations.
func (o Op) Valid() bool {
	return o >= OpOpen && o <= OpStat
}

// ParseOp converts a mnemonic produced by Op.String back into an Op.
func ParseOp(s string) (Op, error) {
	for i, name := range opNames {
		if name != "" && name == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("unknown trace op %q", s)
}

// Event is a single record in a file-access trace.
type Event struct {
	// Time is the offset from the start of the trace. The grouping model
	// never consults it (see the package comment).
	Time time.Duration
	// Client identifies the machine or workstation issuing the request.
	Client uint16
	// PID and UID identify the driving process and user, when known.
	PID uint32
	UID uint32
	// Op is the operation performed.
	Op Op
	// File is the interned identity of the file operated on.
	File FileID
}

// Trace is an in-memory file-access trace: an event sequence plus the
// interner that maps FileIDs back to path names.
type Trace struct {
	Events []Event
	Paths  *Interner
}

// NewTrace returns an empty trace with a fresh interner.
func NewTrace() *Trace {
	return &Trace{Paths: NewInterner()}
}

// Append adds an event for the file at path, interning the path as needed.
func (t *Trace) Append(ev Event, path string) {
	ev.File = t.Paths.Intern(path)
	t.Events = append(t.Events, ev)
}

// Len returns the number of events in the trace.
func (t *Trace) Len() int { return len(t.Events) }

// Opens returns the sub-sequence of open events. The returned slice is
// freshly allocated; mutating it does not affect the trace.
func (t *Trace) Opens() []Event { return ByOp(t.Events, OpOpen) }

// OpenIDs returns the sequence of FileIDs touched by open events, which is
// the exact input consumed by the successor model and the cache simulators.
func (t *Trace) OpenIDs() []FileID {
	ids := make([]FileID, 0, len(t.Events))
	for _, ev := range t.Events {
		if ev.Op == OpOpen {
			ids = append(ids, ev.File)
		}
	}
	return ids
}
