package trace

// ByOp returns the events whose operation is one of ops, in order.
func ByOp(events []Event, ops ...Op) []Event {
	var out []Event
	for _, ev := range events {
		for _, op := range ops {
			if ev.Op == op {
				out = append(out, ev)
				break
			}
		}
	}
	return out
}

// ByClient returns the events issued by client, in order.
func ByClient(events []Event, client uint16) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Client == client {
			out = append(out, ev)
		}
	}
	return out
}

// ByUID returns the events issued by uid, in order.
func ByUID(events []Event, uid uint32) []Event {
	var out []Event
	for _, ev := range events {
		if ev.UID == uid {
			out = append(out, ev)
		}
	}
	return out
}

// Head returns the first n events (or all of them if the trace is shorter).
// The returned slice is freshly allocated.
func Head(events []Event, n int) []Event {
	if n > len(events) {
		n = len(events)
	}
	if n < 0 {
		n = 0
	}
	out := make([]Event, n)
	copy(out, events[:n])
	return out
}

// Clients returns the distinct client IDs appearing in events, in order of
// first appearance.
func Clients(events []Event) []uint16 {
	seen := make(map[uint16]bool)
	var out []uint16
	for _, ev := range events {
		if !seen[ev.Client] {
			seen[ev.Client] = true
			out = append(out, ev.Client)
		}
	}
	return out
}

// IDs extracts the FileID sequence from events.
func IDs(events []Event) []FileID {
	out := make([]FileID, len(events))
	for i, ev := range events {
		out[i] = ev.File
	}
	return out
}
