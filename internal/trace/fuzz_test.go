package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the trace codecs: arbitrary bytes must parse or error,
// never panic, and successful parses must re-encode cleanly.

func FuzzReadBinary(f *testing.F) {
	tr := randomTraceForBench(64)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("AGTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil {
			var out bytes.Buffer
			if werr := WriteBinary(&out, got); werr != nil {
				t.Fatalf("re-encode of valid trace failed: %v", werr)
			}
		}
	})
}

func FuzzReadText(f *testing.F) {
	tr := randomTraceForBench(32)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("#aggtrace v1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadText(strings.NewReader(data))
		if err == nil {
			var out bytes.Buffer
			if werr := WriteText(&out, got); werr != nil {
				t.Fatalf("re-encode of valid trace failed: %v", werr)
			}
		}
	})
}

func FuzzReadDFSTrace(f *testing.F) {
	f.Add("1.0 host 1 2 open /x\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		_, _, _ = ReadDFSTrace(strings.NewReader(data))
	})
}
