package trace

import (
	"strings"
	"testing"
	"time"
)

const sampleDFS = `# DFSTrace ASCII dump, host mozart
100.250000 mozart 712 1017 open /usr/bin/make
100.260000 mozart 712 1017 read /usr/bin/make
100.300000 mozart 713 1017 open /src/Makefile
100.350000 mozart 713 1017 seek /src/Makefile
100.400000 mozart 713 1017 stat /src/main.c
100.500000 ives 42 2001 creat /tmp/out
100.600000 mozart 713 1017 close /src/Makefile
`

func TestReadDFSTraceBasic(t *testing.T) {
	tr, imp, err := ReadDFSTrace(strings.NewReader(sampleDFS))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Records != 6 {
		t.Errorf("Records = %d, want 6", imp.Records)
	}
	if imp.SkippedOps != 1 {
		t.Errorf("SkippedOps = %d, want 1 (seek)", imp.SkippedOps)
	}
	if imp.Malformed != 0 {
		t.Errorf("Malformed = %d, want 0", imp.Malformed)
	}
	if len(imp.Hosts) != 2 || imp.Hosts["mozart"] != 1 || imp.Hosts["ives"] != 2 {
		t.Errorf("Hosts = %v", imp.Hosts)
	}
	if tr.Len() != 6 {
		t.Fatalf("trace len = %d, want 6", tr.Len())
	}

	first := tr.Events[0]
	if first.Op != OpOpen || first.PID != 712 || first.UID != 1017 || first.Client != 1 {
		t.Errorf("first event = %+v", first)
	}
	if first.Time != 0 {
		t.Errorf("first time = %v, want rebased 0", first.Time)
	}
	// 100.30 - 100.25 = 50ms offset for the third record.
	if got := tr.Events[2].Time; got != 50*time.Millisecond {
		t.Errorf("third time = %v, want 50ms", got)
	}
	if p := tr.Paths.Path(tr.Events[0].File); p != "/usr/bin/make" {
		t.Errorf("first path = %q", p)
	}
	// Op mapping: creat -> create.
	if tr.Events[4].Op != OpCreate {
		t.Errorf("creat mapped to %v", tr.Events[4].Op)
	}
}

func TestReadDFSTraceTolerance(t *testing.T) {
	in := `garbage line
-5.0 host 1 2 open /x
100 host notanumber 2 open /x
100 host 1 2 open relative/path
100 host 1 2 open /ok
`
	tr, imp, err := ReadDFSTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Records != 1 {
		t.Errorf("Records = %d, want 1", imp.Records)
	}
	if imp.Malformed != 4 {
		t.Errorf("Malformed = %d, want 4", imp.Malformed)
	}
	if tr.Len() != 1 {
		t.Errorf("trace len = %d", tr.Len())
	}
}

func TestReadDFSTraceAllGarbageFails(t *testing.T) {
	if _, _, err := ReadDFSTrace(strings.NewReader("nonsense\nmore nonsense\n")); err == nil {
		t.Error("import with zero recognized records succeeded")
	}
}

func TestReadDFSTraceEmptyInput(t *testing.T) {
	tr, imp, err := ReadDFSTrace(strings.NewReader("\n# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || imp.Records != 0 {
		t.Errorf("empty import = %d records", imp.Records)
	}
}

func TestReadDFSTraceOpMappings(t *testing.T) {
	tests := []struct {
		syscall string
		want    Op
	}{
		{"open", OpOpen}, {"OPENAT", OpOpen},
		{"close", OpClose},
		{"read", OpRead}, {"readv", OpRead},
		{"write", OpWrite}, {"writev", OpWrite},
		{"creat", OpCreate}, {"mkdir", OpCreate},
		{"unlink", OpUnlink}, {"rmdir", OpUnlink},
		{"stat", OpStat}, {"lstat", OpStat}, {"access", OpStat}, {"getattr", OpStat},
	}
	for _, tt := range tests {
		in := "1.0 h 1 2 " + tt.syscall + " /f\n"
		tr, imp, err := ReadDFSTrace(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", tt.syscall, err)
		}
		if imp.Records != 1 {
			t.Fatalf("%s: records = %d", tt.syscall, imp.Records)
		}
		if tr.Events[0].Op != tt.want {
			t.Errorf("%s mapped to %v, want %v", tt.syscall, tr.Events[0].Op, tt.want)
		}
	}
}

func TestReadDFSTraceRoundTripThroughNativeFormat(t *testing.T) {
	// An imported DFS trace must survive our own codecs.
	tr, _, err := ReadDFSTrace(strings.NewReader(sampleDFS))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, back) {
		t.Error("DFS import did not round-trip through the text codec")
	}
}
