package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// DFSTrace ASCII import
//
// The paper's workloads were gathered with CMU's DFSTrace system (Mummert
// & Satyanarayanan 1996). The raw .trc files are a private binary format,
// but the toolchain's ASCII dumps follow a whitespace-separated layout
// that many archives preserve:
//
//	<seconds>[.<fraction>] <host> <pid> <uid> <syscall> <path> [extras...]
//
// ReadDFSTrace parses that layout. Syscalls map onto the Op vocabulary as
// follows: open/openat -> open; close -> close; read/readv -> read;
// write/writev -> write; creat/create/mkdir -> create; unlink/rmdir/
// remove -> unlink; stat/lstat/fstat/access/getattr -> stat. Records with
// other syscalls (seek, chdir, fork, ...) carry no file-access signal for
// the grouping model and are skipped, as are malformed lines; both are
// counted rather than failing the import, because real trace archives are
// long and messy. Lines that are empty or start with '#' are ignored
// silently.
//
// Host names are mapped to dense Client ids in first-appearance order.

// DFSImport reports what an import consumed.
type DFSImport struct {
	// Records is the number of events imported.
	Records int
	// SkippedOps counts well-formed lines whose syscall has no Op
	// mapping.
	SkippedOps int
	// Malformed counts lines that could not be parsed.
	Malformed int
	// Hosts maps each host name to the Client id it was assigned.
	Hosts map[string]uint16
}

// dfsOps maps DFSTrace syscall mnemonics to trace operations.
var dfsOps = map[string]Op{
	"open":    OpOpen,
	"openat":  OpOpen,
	"close":   OpClose,
	"read":    OpRead,
	"readv":   OpRead,
	"write":   OpWrite,
	"writev":  OpWrite,
	"creat":   OpCreate,
	"create":  OpCreate,
	"mkdir":   OpCreate,
	"unlink":  OpUnlink,
	"rmdir":   OpUnlink,
	"remove":  OpUnlink,
	"stat":    OpStat,
	"lstat":   OpStat,
	"fstat":   OpStat,
	"access":  OpStat,
	"getattr": OpStat,
}

// ReadDFSTrace parses a DFSTrace-style ASCII dump into a Trace. Parsing
// is tolerant: unknown syscalls and malformed lines are counted in the
// returned DFSImport, not fatal. An error is returned only for I/O
// failures or if no line could be parsed at all from non-empty input.
func ReadDFSTrace(r io.Reader) (*Trace, DFSImport, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	t := NewTrace()
	imp := DFSImport{Hosts: make(map[string]uint16)}
	var (
		sawContent bool
		baseSet    bool
		base       time.Duration
	)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sawContent = true
		ev, path, ok, known := parseDFSLine(line, imp.Hosts)
		if !ok {
			imp.Malformed++
			continue
		}
		if !known {
			imp.SkippedOps++
			continue
		}
		if !baseSet {
			base = ev.Time
			baseSet = true
		}
		if ev.Time >= base {
			ev.Time -= base
		} else {
			ev.Time = 0
		}
		t.Append(ev, path)
		imp.Records++
	}
	if err := sc.Err(); err != nil {
		return nil, imp, err
	}
	if sawContent && imp.Records == 0 {
		return nil, imp, fmt.Errorf("trace: no DFSTrace records recognized (%d malformed, %d unmapped syscalls)",
			imp.Malformed, imp.SkippedOps)
	}
	return t, imp, nil
}

// parseDFSLine parses one dump line. ok reports parseability; known
// reports whether the syscall maps to an Op.
func parseDFSLine(line string, hosts map[string]uint16) (ev Event, path string, ok, known bool) {
	fields := strings.Fields(line)
	if len(fields) < 6 {
		return Event{}, "", false, false
	}
	secs, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || secs < 0 {
		return Event{}, "", false, false
	}
	pid, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Event{}, "", false, false
	}
	uid, err := strconv.ParseUint(fields[3], 10, 32)
	if err != nil {
		return Event{}, "", false, false
	}
	path = fields[5]
	if path == "" || !strings.HasPrefix(path, "/") {
		return Event{}, "", false, false
	}

	host := fields[1]
	client, have := hosts[host]
	if !have {
		client = uint16(len(hosts) + 1)
		hosts[host] = client
	}

	ev = Event{
		Time:   time.Duration(secs * float64(time.Second)),
		Client: client,
		PID:    uint32(pid),
		UID:    uint32(uid),
	}
	op, mapped := dfsOps[strings.ToLower(fields[4])]
	if !mapped {
		return ev, path, true, false
	}
	ev.Op = op
	return ev, path, true, true
}
