package trace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	for i := 0; i < 100; i++ {
		id := in.Intern(fmt.Sprintf("/f/%d", i))
		if id != FileID(i) {
			t.Fatalf("Intern #%d = %d, want dense id %d", i, id, i)
		}
	}
	if in.Len() != 100 {
		t.Fatalf("Len = %d, want 100", in.Len())
	}
}

func TestInternerIdempotent(t *testing.T) {
	in := NewInterner()
	a := in.Intern("/etc/passwd")
	b := in.Intern("/etc/passwd")
	if a != b {
		t.Errorf("re-interning gave %d then %d", a, b)
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d, want 1", in.Len())
	}
}

func TestInternerLookupAndPath(t *testing.T) {
	in := NewInterner()
	id := in.Intern("x")
	if got := in.Path(id); got != "x" {
		t.Errorf("Path(%d) = %q, want %q", id, got, "x")
	}
	if got, ok := in.Lookup("x"); !ok || got != id {
		t.Errorf("Lookup(x) = %d,%v", got, ok)
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported found")
	}
	if got := in.Path(999); got != "" {
		t.Errorf("Path(999) = %q, want empty", got)
	}
}

func TestInternerClone(t *testing.T) {
	in := NewInterner()
	in.Intern("a")
	in.Intern("b")
	cl := in.Clone()
	cl.Intern("c")
	if in.Len() != 2 {
		t.Errorf("original Len = %d after clone mutation, want 2", in.Len())
	}
	if cl.Len() != 3 {
		t.Errorf("clone Len = %d, want 3", cl.Len())
	}
	if p := cl.Path(0); p != "a" {
		t.Errorf("clone Path(0) = %q, want a", p)
	}
}

// Property: Path(Intern(p)) == p for any path.
func TestInternerRoundTripProperty(t *testing.T) {
	in := NewInterner()
	f := func(p string) bool {
		return in.Path(in.Intern(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
