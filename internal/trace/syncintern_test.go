package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestSyncInternerMatchesInterner(t *testing.T) {
	s := NewSyncInterner()
	plain := NewInterner()
	paths := []string{"/a", "/b", "/a", "/c", "/b", "/d"}
	for _, p := range paths {
		if got, want := s.Intern(p), plain.Intern(p); got != want {
			t.Errorf("Intern(%q) = %d, want %d", p, got, want)
		}
	}
	if s.Len() != plain.Len() {
		t.Errorf("Len = %d, want %d", s.Len(), plain.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got, want := s.Path(FileID(i)), plain.Path(FileID(i)); got != want {
			t.Errorf("Path(%d) = %q, want %q", i, got, want)
		}
	}
	if _, ok := s.Lookup("/missing"); ok {
		t.Error("Lookup of missing path reported ok")
	}
	if got := s.Path(FileID(99)); got != "" {
		t.Errorf("Path of unassigned id = %q, want empty", got)
	}
}

func TestSyncInternerConcurrent(t *testing.T) {
	s := NewSyncInterner()
	const (
		goroutines = 8
		universe   = 64
		rounds     = 200
	)
	// Every goroutine interns an overlapping working set; IDs must come
	// out dense, stable, and consistent across Intern/Lookup/Path.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				p := fmt.Sprintf("/f%02d", (g*3+n)%universe)
				id := s.Intern(p)
				if got := s.Path(id); got != p {
					t.Errorf("Path(Intern(%q)) = %q", p, got)
					return
				}
				if id2, ok := s.Lookup(p); !ok || id2 != id {
					t.Errorf("Lookup(%q) = %d,%v, want %d,true", p, id2, ok, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != universe {
		t.Errorf("Len = %d, want %d", s.Len(), universe)
	}
	seen := make(map[FileID]bool)
	for i := 0; i < universe; i++ {
		p := fmt.Sprintf("/f%02d", i)
		id, ok := s.Lookup(p)
		if !ok || int(id) >= universe || seen[id] {
			t.Errorf("Lookup(%q) = %d,%v: want a unique dense id", p, id, ok)
		}
		seen[id] = true
	}
}

func TestWrapInterner(t *testing.T) {
	in := NewInterner()
	in.Intern("/x")
	in.Intern("/y")
	s := WrapInterner(in)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if id, ok := s.Lookup("/y"); !ok || id != 1 {
		t.Errorf("Lookup(/y) = %d,%v, want 1,true", id, ok)
	}
	if got := s.Intern("/z"); got != 2 {
		t.Errorf("Intern(/z) = %d, want 2", got)
	}
}

// TestSyncInternerPromotion drives the interner well past the promotion
// threshold and checks that IDs stay dense and stable across epochs, via
// both the string and byte-slice entry points.
func TestSyncInternerPromotion(t *testing.T) {
	s := NewSyncInterner()
	const n = 1000 // several promotions at the minimum threshold of 64
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/epoch/f%04d", i)
		var id FileID
		if i%2 == 0 {
			id = s.Intern(p)
		} else {
			id = s.InternBytes([]byte(p))
		}
		if int(id) != i {
			t.Fatalf("Intern(%q) = %d, want %d", p, id, i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("/epoch/f%04d", i)
		if id := s.InternBytes([]byte(p)); int(id) != i {
			t.Errorf("re-InternBytes(%q) = %d, want %d", p, id, i)
		}
		if got := s.Path(FileID(i)); got != p {
			t.Errorf("Path(%d) = %q, want %q", i, got, p)
		}
	}
}

// TestInternerBytes exercises the plain Interner's byte-slice entry
// points against the string ones.
func TestInternerBytes(t *testing.T) {
	in := NewInterner()
	a := in.InternBytes([]byte("/a"))
	if b := in.Intern("/a"); b != a {
		t.Errorf("Intern after InternBytes: %d != %d", b, a)
	}
	if _, ok := in.LookupBytes([]byte("/missing")); ok {
		t.Error("LookupBytes(/missing) = true, want false")
	}
	if id, ok := in.LookupBytes([]byte("/a")); !ok || id != a {
		t.Errorf("LookupBytes(/a) = %d,%v, want %d,true", id, ok, a)
	}
}
