package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestSyncInternerMatchesInterner(t *testing.T) {
	s := NewSyncInterner()
	plain := NewInterner()
	paths := []string{"/a", "/b", "/a", "/c", "/b", "/d"}
	for _, p := range paths {
		if got, want := s.Intern(p), plain.Intern(p); got != want {
			t.Errorf("Intern(%q) = %d, want %d", p, got, want)
		}
	}
	if s.Len() != plain.Len() {
		t.Errorf("Len = %d, want %d", s.Len(), plain.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got, want := s.Path(FileID(i)), plain.Path(FileID(i)); got != want {
			t.Errorf("Path(%d) = %q, want %q", i, got, want)
		}
	}
	if _, ok := s.Lookup("/missing"); ok {
		t.Error("Lookup of missing path reported ok")
	}
	if got := s.Path(FileID(99)); got != "" {
		t.Errorf("Path of unassigned id = %q, want empty", got)
	}
}

func TestSyncInternerConcurrent(t *testing.T) {
	s := NewSyncInterner()
	const (
		goroutines = 8
		universe   = 64
		rounds     = 200
	)
	// Every goroutine interns an overlapping working set; IDs must come
	// out dense, stable, and consistent across Intern/Lookup/Path.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				p := fmt.Sprintf("/f%02d", (g*3+n)%universe)
				id := s.Intern(p)
				if got := s.Path(id); got != p {
					t.Errorf("Path(Intern(%q)) = %q", p, got)
					return
				}
				if id2, ok := s.Lookup(p); !ok || id2 != id {
					t.Errorf("Lookup(%q) = %d,%v, want %d,true", p, id2, ok, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != universe {
		t.Errorf("Len = %d, want %d", s.Len(), universe)
	}
	seen := make(map[FileID]bool)
	for i := 0; i < universe; i++ {
		p := fmt.Sprintf("/f%02d", i)
		id, ok := s.Lookup(p)
		if !ok || int(id) >= universe || seen[id] {
			t.Errorf("Lookup(%q) = %d,%v: want a unique dense id", p, id, ok)
		}
		seen[id] = true
	}
}

func TestWrapInterner(t *testing.T) {
	in := NewInterner()
	in.Intern("/x")
	in.Intern("/y")
	s := WrapInterner(in)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if id, ok := s.Lookup("/y"); !ok || id != 1 {
		t.Errorf("Lookup(/y) = %d,%v, want 1,true", id, ok)
	}
	if got := s.Intern("/z"); got != 2 {
		t.Errorf("Intern(/z) = %d, want 2", got)
	}
}
