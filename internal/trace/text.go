package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Text format
//
// A human-readable, line-oriented trace encoding, one record per line:
//
//	#aggtrace v1
//	<time_us> <client> <pid> <uid> <op> <path>
//
// Fields are tab-separated. time_us is a decimal offset in microseconds
// from the start of the trace. op is a mnemonic from Op.String. Paths must
// not contain tabs or newlines. Lines that are empty or start with '#'
// (other than the header) are ignored, which allows annotated traces.

const textHeader = "#aggtrace v1"

// WriteText encodes the trace in the text format described above.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, textHeader); err != nil {
		return err
	}
	// One reusable line buffer; strconv.Append* keeps the per-record
	// path free of fmt's interface boxing and scratch allocations.
	line := make([]byte, 0, 128)
	for i := range t.Events {
		ev := &t.Events[i]
		path := t.Paths.Path(ev.File)
		if path == "" {
			return fmt.Errorf("trace: event %d references unknown file id %d", i, ev.File)
		}
		line = strconv.AppendInt(line[:0], ev.Time.Microseconds(), 10)
		line = append(line, '\t')
		line = strconv.AppendUint(line, uint64(ev.Client), 10)
		line = append(line, '\t')
		line = strconv.AppendUint(line, uint64(ev.PID), 10)
		line = append(line, '\t')
		line = strconv.AppendUint(line, uint64(ev.UID), 10)
		line = append(line, '\t')
		line = append(line, ev.Op.String()...)
		line = append(line, '\t')
		line = append(line, path...)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace in the text format produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input, want %q header", textHeader)
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != textHeader {
		return nil, fmt.Errorf("trace: bad header %q, want %q", got, textHeader)
	}

	t := NewTrace()
	line := 1
	for sc.Scan() {
		line++
		raw := strings.TrimRight(sc.Text(), "\r")
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		ev, path, err := parseTextLine(raw)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Append(ev, path)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTextLine(raw string) (Event, string, error) {
	fields := strings.SplitN(raw, "\t", 6)
	if len(fields) != 6 {
		return Event{}, "", fmt.Errorf("want 6 tab-separated fields, got %d", len(fields))
	}
	us, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, "", fmt.Errorf("time: %w", err)
	}
	client, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return Event{}, "", fmt.Errorf("client: %w", err)
	}
	pid, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return Event{}, "", fmt.Errorf("pid: %w", err)
	}
	uid, err := strconv.ParseUint(fields[3], 10, 32)
	if err != nil {
		return Event{}, "", fmt.Errorf("uid: %w", err)
	}
	op, err := ParseOp(fields[4])
	if err != nil {
		return Event{}, "", err
	}
	if fields[5] == "" {
		return Event{}, "", fmt.Errorf("empty path")
	}
	ev := Event{
		Time:   time.Duration(us) * time.Microsecond,
		Client: uint16(client),
		PID:    uint32(pid),
		UID:    uint32(uid),
		Op:     op,
	}
	return ev, fields[5], nil
}
