package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a trace. It is what the workload generator's calibration
// tests assert against: the paper's workloads are characterized by heavy
// access skew, a high repeat fraction, and (for the write workload) a large
// write share.
type Stats struct {
	Events      int
	Opens       int
	Writes      int
	UniqueFiles int
	Clients     int

	// RepeatFraction is the share of open events whose file had been
	// opened before. A non-repeating trace cannot be predicted by any
	// online model (§4.5 of the paper).
	RepeatFraction float64

	// WriteFraction is writes+creates+unlinks over all events.
	WriteFraction float64

	// Top10Share is the fraction of open events absorbed by the most
	// popular 10% of files — the access skew the paper's placement
	// discussion relies on.
	Top10Share float64
}

// Summarize computes Stats over a trace.
func Summarize(t *Trace) Stats {
	var s Stats
	s.Events = len(t.Events)
	s.UniqueFiles = t.Paths.Len()
	s.Clients = len(Clients(t.Events))

	counts := make(map[FileID]int)
	var mutating int
	for _, ev := range t.Events {
		switch ev.Op {
		case OpOpen:
			s.Opens++
			counts[ev.File]++
		case OpWrite, OpCreate, OpUnlink:
			mutating++
			if ev.Op == OpWrite {
				s.Writes++
			}
		}
	}
	if s.Events > 0 {
		s.WriteFraction = float64(mutating) / float64(s.Events)
	}

	var repeats int
	for _, n := range counts {
		repeats += n - 1
	}
	if s.Opens > 0 {
		s.RepeatFraction = float64(repeats) / float64(s.Opens)
	}

	if len(counts) > 0 && s.Opens > 0 {
		byCount := make([]int, 0, len(counts))
		for _, n := range counts {
			byCount = append(byCount, n)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(byCount)))
		top := len(byCount) / 10
		if top == 0 {
			top = 1
		}
		var sum int
		for _, n := range byCount[:top] {
			sum += n
		}
		s.Top10Share = float64(sum) / float64(s.Opens)
	}
	return s
}

// String renders the stats as a small aligned report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events        %d\n", s.Events)
	fmt.Fprintf(&b, "opens         %d\n", s.Opens)
	fmt.Fprintf(&b, "writes        %d\n", s.Writes)
	fmt.Fprintf(&b, "unique files  %d\n", s.UniqueFiles)
	fmt.Fprintf(&b, "clients       %d\n", s.Clients)
	fmt.Fprintf(&b, "repeat frac   %.3f\n", s.RepeatFraction)
	fmt.Fprintf(&b, "write frac    %.3f\n", s.WriteFraction)
	fmt.Fprintf(&b, "top10%% share  %.3f", s.Top10Share)
	return b.String()
}
