package trace

// Interner maps file path names to dense FileIDs and back. IDs are assigned
// in first-use order starting at zero so they can index per-file tables
// directly. The zero value is not usable; call NewInterner.
//
// Interner is not safe for concurrent use; trace construction is
// single-threaded by design (a trace is a totally ordered event sequence).
type Interner struct {
	ids   map[string]FileID
	paths []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]FileID)}
}

// Intern returns the FileID for path, assigning the next dense ID if the
// path has not been seen before.
func (in *Interner) Intern(path string) FileID {
	if id, ok := in.ids[path]; ok {
		return id
	}
	id := FileID(len(in.paths))
	in.ids[path] = id
	in.paths = append(in.paths, path)
	return id
}

// InternBytes is Intern for a path held in a byte slice. Looking up an
// already-known path allocates nothing (the map index with a string
// conversion compiles to an allocation-free lookup); only a first-time
// assignment materializes the string. The wire decoders use this to
// translate paths straight out of pooled frame buffers.
func (in *Interner) InternBytes(path []byte) FileID {
	if id, ok := in.ids[string(path)]; ok {
		return id
	}
	p := string(path)
	id := FileID(len(in.paths))
	in.ids[p] = id
	in.paths = append(in.paths, p)
	return id
}

// Lookup returns the FileID for path and whether it has been interned.
func (in *Interner) Lookup(path string) (FileID, bool) {
	id, ok := in.ids[path]
	return id, ok
}

// LookupBytes is Lookup for a path held in a byte slice; it never
// allocates.
func (in *Interner) LookupBytes(path []byte) (FileID, bool) {
	id, ok := in.ids[string(path)]
	return id, ok
}

// Path returns the path for id, or "" if id has not been assigned.
func (in *Interner) Path(id FileID) string {
	if int(id) >= len(in.paths) {
		return ""
	}
	return in.paths[id]
}

// Len returns the number of interned paths.
func (in *Interner) Len() int { return len(in.paths) }

// Clone returns an independent copy of the interner.
func (in *Interner) Clone() *Interner {
	out := &Interner{
		ids:   make(map[string]FileID, len(in.ids)),
		paths: make([]string, len(in.paths)),
	}
	for p, id := range in.ids {
		out.ids[p] = id
	}
	copy(out.paths, in.paths)
	return out
}
