package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestMergeOrdersByTime(t *testing.T) {
	a := NewTrace()
	a.Append(Event{Time: 10 * time.Microsecond, Client: 1, Op: OpOpen}, "/a1")
	a.Append(Event{Time: 30 * time.Microsecond, Client: 1, Op: OpOpen}, "/a2")
	b := NewTrace()
	b.Append(Event{Time: 20 * time.Microsecond, Client: 2, Op: OpOpen}, "/b1")
	b.Append(Event{Time: 40 * time.Microsecond, Client: 2, Op: OpOpen}, "/b2")

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range m.Events {
		got = append(got, m.Paths.Path(ev.File))
	}
	want := []string{"/a1", "/b1", "/a2", "/b2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged order = %v, want %v", got, want)
		}
	}
}

func TestMergeSharedPathsUnify(t *testing.T) {
	a := NewTrace()
	a.Append(Event{Time: 1, Op: OpOpen}, "/shared/sh")
	b := NewTrace()
	b.Append(Event{Time: 2, Op: OpOpen}, "/shared/sh")
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Paths.Len() != 1 {
		t.Errorf("merged paths = %d, want 1 (same path unified)", m.Paths.Len())
	}
	if m.Events[0].File != m.Events[1].File {
		t.Error("same path got different ids after merge")
	}
}

func TestMergeTieBreakByInputOrder(t *testing.T) {
	a := NewTrace()
	a.Append(Event{Time: 5, Op: OpOpen}, "/a")
	b := NewTrace()
	b.Append(Event{Time: 5, Op: OpOpen}, "/b")
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Paths.Path(m.Events[0].File) != "/a" {
		t.Error("tie not broken by input order")
	}
}

func TestMergeRejectsNil(t *testing.T) {
	if _, err := Merge(NewTrace(), nil); err == nil {
		t.Error("nil input accepted")
	}
}

func TestMergeEmpty(t *testing.T) {
	m, err := Merge()
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d", m.Len())
	}
	m, err = Merge(NewTrace(), NewTrace())
	if err != nil || m.Len() != 0 {
		t.Errorf("merge of empties: %v len %d", err, m.Len())
	}
}

// Property: merging preserves every event and each input's internal
// order, and the output is time-sorted.
func TestMergeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%4) + 1
		inputs := make([]*Trace, n)
		total := 0
		for i := range inputs {
			tr := NewTrace()
			now := time.Duration(0)
			for j := 0; j < rng.Intn(30); j++ {
				now += time.Duration(rng.Intn(100)) * time.Microsecond
				tr.Append(Event{Time: now, Client: uint16(i), Op: OpOpen},
					string(rune('a'+rng.Intn(8))))
				total++
			}
			inputs[i] = tr
		}
		m, err := Merge(inputs...)
		if err != nil || m.Len() != total {
			return false
		}
		for i := 1; i < len(m.Events); i++ {
			if m.Events[i].Time < m.Events[i-1].Time {
				return false
			}
		}
		// Per-client subsequence preservation.
		split := SplitByClient(m)
		for i, in := range inputs {
			sub, ok := split[uint16(i)]
			if !ok {
				if in.Len() == 0 {
					continue
				}
				return false
			}
			if sub.Len() != in.Len() {
				return false
			}
			for j := range in.Events {
				if in.Paths.Path(in.Events[j].File) != sub.Paths.Path(sub.Events[j].File) {
					return false
				}
				if in.Events[j].Time != sub.Events[j].Time {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitByClient(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Client: 1, Op: OpOpen}, "/a")
	tr.Append(Event{Client: 2, Op: OpOpen}, "/b")
	tr.Append(Event{Client: 1, Op: OpWrite}, "/a")
	split := SplitByClient(tr)
	if len(split) != 2 {
		t.Fatalf("split into %d, want 2", len(split))
	}
	if split[1].Len() != 2 || split[2].Len() != 1 {
		t.Errorf("split lens = %d, %d", split[1].Len(), split[2].Len())
	}
}
