package trace

import (
	"testing"
)

func mkEvents() []Event {
	return []Event{
		{Op: OpOpen, Client: 1, UID: 10, File: 0},
		{Op: OpWrite, Client: 2, UID: 10, File: 1},
		{Op: OpOpen, Client: 1, UID: 20, File: 2},
		{Op: OpStat, Client: 3, UID: 20, File: 0},
		{Op: OpOpen, Client: 2, UID: 10, File: 1},
	}
}

func TestByOp(t *testing.T) {
	evs := mkEvents()
	opens := ByOp(evs, OpOpen)
	if len(opens) != 3 {
		t.Fatalf("ByOp(open) len = %d, want 3", len(opens))
	}
	both := ByOp(evs, OpOpen, OpWrite)
	if len(both) != 4 {
		t.Fatalf("ByOp(open,write) len = %d, want 4", len(both))
	}
	if got := ByOp(nil, OpOpen); got != nil {
		t.Errorf("ByOp(nil) = %v, want nil", got)
	}
}

func TestByClient(t *testing.T) {
	evs := mkEvents()
	c1 := ByClient(evs, 1)
	if len(c1) != 2 {
		t.Fatalf("ByClient(1) len = %d, want 2", len(c1))
	}
	for _, ev := range c1 {
		if ev.Client != 1 {
			t.Errorf("ByClient returned client %d", ev.Client)
		}
	}
	if got := ByClient(evs, 99); len(got) != 0 {
		t.Errorf("ByClient(99) len = %d, want 0", len(got))
	}
}

func TestByUID(t *testing.T) {
	evs := mkEvents()
	if got := ByUID(evs, 10); len(got) != 3 {
		t.Errorf("ByUID(10) len = %d, want 3", len(got))
	}
	if got := ByUID(evs, 20); len(got) != 2 {
		t.Errorf("ByUID(20) len = %d, want 2", len(got))
	}
}

func TestHead(t *testing.T) {
	evs := mkEvents()
	tests := []struct {
		n, want int
	}{
		{0, 0}, {2, 2}, {5, 5}, {100, 5}, {-1, 0},
	}
	for _, tt := range tests {
		if got := Head(evs, tt.n); len(got) != tt.want {
			t.Errorf("Head(%d) len = %d, want %d", tt.n, len(got), tt.want)
		}
	}
	// Head must copy: mutating the result must not touch the input.
	h := Head(evs, 2)
	h[0].Client = 42
	if evs[0].Client == 42 {
		t.Error("Head aliases the input slice")
	}
}

func TestClients(t *testing.T) {
	got := Clients(mkEvents())
	want := []uint16{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Clients = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Clients = %v, want %v (first-appearance order)", got, want)
		}
	}
}

func TestIDs(t *testing.T) {
	got := IDs(mkEvents())
	want := []FileID{0, 1, 2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTrace()
	// Three opens of "a", one of "b", one write, one create.
	tr.Append(Event{Op: OpOpen, Client: 1}, "a")
	tr.Append(Event{Op: OpOpen, Client: 1}, "a")
	tr.Append(Event{Op: OpOpen, Client: 2}, "b")
	tr.Append(Event{Op: OpOpen, Client: 2}, "a")
	tr.Append(Event{Op: OpWrite, Client: 1}, "a")
	tr.Append(Event{Op: OpCreate, Client: 1}, "c")

	s := Summarize(tr)
	if s.Events != 6 || s.Opens != 4 || s.Writes != 1 {
		t.Errorf("counts = %+v", s)
	}
	if s.UniqueFiles != 3 {
		t.Errorf("UniqueFiles = %d, want 3", s.UniqueFiles)
	}
	if s.Clients != 2 {
		t.Errorf("Clients = %d, want 2", s.Clients)
	}
	// repeats: "a" opened 3 times -> 2 repeats; "b" once -> 0. 2/4.
	if s.RepeatFraction != 0.5 {
		t.Errorf("RepeatFraction = %v, want 0.5", s.RepeatFraction)
	}
	// mutating = write + create = 2 of 6 events.
	if want := 2.0 / 6.0; s.WriteFraction < want-1e-9 || s.WriteFraction > want+1e-9 {
		t.Errorf("WriteFraction = %v, want %v", s.WriteFraction, want)
	}
	if s.Top10Share <= 0 || s.Top10Share > 1 {
		t.Errorf("Top10Share = %v out of range", s.Top10Share)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewTrace())
	if s.Events != 0 || s.RepeatFraction != 0 || s.WriteFraction != 0 || s.Top10Share != 0 {
		t.Errorf("empty trace stats = %+v", s)
	}
}
