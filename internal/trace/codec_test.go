package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func randomTrace(t *testing.T, seed int64, n int) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := NewTrace()
	var now time.Duration
	paths := []string{"/bin/sh", "/usr/bin/make", "/src/main.c", "/src/util.c", "/tmp/out", "/home/u/.rc"}
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(5000)) * time.Microsecond
		tr.Append(Event{
			Time:   now,
			Client: uint16(rng.Intn(4)),
			PID:    uint32(rng.Intn(1 << 15)),
			UID:    uint32(rng.Intn(100)),
			Op:     Op(rng.Intn(int(OpStat)) + 1),
		}, paths[rng.Intn(len(paths))])
	}
	return tr
}

func tracesEqual(a, b *Trace) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
		if a.Paths.Path(a.Events[i].File) != b.Paths.Path(b.Events[i].File) {
			return false
		}
	}
	return true
}

func TestTextRoundTrip(t *testing.T) {
	tr := randomTrace(t, 1, 500)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Error("text round trip changed the trace")
	}
}

func TestTextRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "not a trace\n"},
		{"short line", textHeader + "\n1\t2\t3\n"},
		{"bad op", textHeader + "\n0\t0\t0\t0\tmmap\t/x\n"},
		{"bad time", textHeader + "\nxx\t0\t0\t0\topen\t/x\n"},
		{"bad client", textHeader + "\n0\t99999\t0\t0\topen\t/x\n"},
		{"empty path", textHeader + "\n0\t0\t0\t0\topen\t\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ReadText accepted %q", tt.in)
			}
		})
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := textHeader + "\n\n# a comment\n5\t1\t2\t3\topen\t/x\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	ev := tr.Events[0]
	if ev.Time != 5*time.Microsecond || ev.Client != 1 || ev.PID != 2 || ev.UID != 3 || ev.Op != OpOpen {
		t.Errorf("decoded event = %+v", ev)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 1000} {
		tr := randomTrace(t, int64(n)+7, n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("WriteBinary(n=%d): %v", n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary(n=%d): %v", n, err)
		}
		if !tracesEqual(tr, got) {
			t.Errorf("binary round trip changed the trace (n=%d)", n)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	_, err := ReadBinary(strings.NewReader("XXXXjunk"))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tr := randomTrace(t, 3, 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop at several offsets inside the record stream; all must error,
	// none may panic. (Cutting at exactly magic+version yields a valid
	// empty trace, so cuts start inside the first record.)
	for _, cut := range []int{6, 7, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d: decode succeeded", cut)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	tr := randomTrace(t, 9, 2000)
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	if bb.Len() >= tb.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bb.Len(), tb.Len())
	}
}

func TestWriteBinaryRejectsMalformedTraces(t *testing.T) {
	// Time going backwards.
	back := NewTrace()
	back.Append(Event{Op: OpOpen, Time: 5 * time.Microsecond}, "/a")
	back.Append(Event{Op: OpOpen, Time: 1 * time.Microsecond}, "/b")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, back); err == nil {
		t.Error("backwards time accepted")
	}

	// Event referencing an id the interner never assigned.
	bad := NewTrace()
	bad.Append(Event{Op: OpOpen}, "/a")
	bad.Events[0].File = 7 // skips ahead of interner order
	buf.Reset()
	if err := WriteBinary(&buf, bad); err == nil {
		t.Error("skip-ahead file id accepted")
	}

	// Same hole breaks the text writer's path lookup.
	buf.Reset()
	if err := WriteText(&buf, bad); err == nil {
		t.Error("unknown file id accepted by text writer")
	}
}
