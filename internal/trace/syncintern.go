package trace

import (
	"sync"
	"sync/atomic"
)

// SyncInterner is a concurrency-safe interner whose read path is
// lock-free: lookups of already-known paths — the overwhelmingly common
// case on a warm server — load an immutable snapshot through one atomic
// pointer and touch no lock at all. IDs remain dense and first-use
// ordered, exactly as with Interner.
//
// Mutations build the next epoch instead of locking readers out: a
// first-time assignment goes into a small mutex-guarded dirty overlay,
// and once the overlay has grown past a threshold it is promoted — merged
// into a freshly built snapshot that replaces the published one in a
// single atomic store. Readers therefore see either the old epoch or the
// new one, never a map mid-rehash, and the promotion cost is amortized
// O(1) per interned path.
type SyncInterner struct {
	// snap is the published epoch: an immutable path→ID index plus the
	// ID→path table for every path promoted so far. Never mutated after
	// the atomic store.
	snap atomic.Pointer[internSnap]

	// mu guards the dirty overlay holding paths interned since the last
	// promotion. Reads only take it after missing the snapshot.
	mu         sync.Mutex
	dirty      map[string]FileID
	dirtyPaths []string // overlay ID→path, offset by len(snap.paths)
}

// internSnap is one immutable epoch.
type internSnap struct {
	ids   map[string]FileID
	paths []string
}

// promoteThreshold returns how large the dirty overlay may grow before it
// is folded into the next snapshot. Scaling with the snapshot keeps the
// rebuild cost amortized constant per path while still promoting eagerly
// when the table is small (so the lock-free path warms up fast).
func promoteThreshold(snapLen int) int {
	if t := snapLen / 4; t > 64 {
		return t
	}
	return 64
}

// NewSyncInterner returns an empty concurrency-safe interner.
func NewSyncInterner() *SyncInterner {
	s := &SyncInterner{dirty: make(map[string]FileID)}
	s.snap.Store(&internSnap{ids: make(map[string]FileID)})
	return s
}

// WrapInterner builds a SyncInterner over the contents of an existing
// interner, taking ownership of it. The caller must not use in directly
// afterwards.
func WrapInterner(in *Interner) *SyncInterner {
	s := &SyncInterner{dirty: make(map[string]FileID)}
	s.snap.Store(&internSnap{ids: in.ids, paths: in.paths})
	return s
}

// Intern returns the FileID for path, assigning the next dense ID if the
// path has not been seen before. Known promoted paths never touch a lock.
func (s *SyncInterner) Intern(path string) FileID {
	snap := s.snap.Load()
	if id, ok := snap.ids[path]; ok {
		return id
	}
	return s.internSlow(snap, path, nil)
}

// InternBytes is Intern for a path held in a byte slice; the lock-free
// hit path allocates nothing, and the string is only materialized for a
// first-time assignment. Wire decoders use this to intern paths straight
// out of pooled frame buffers.
func (s *SyncInterner) InternBytes(path []byte) FileID {
	snap := s.snap.Load()
	if id, ok := snap.ids[string(path)]; ok {
		return id
	}
	return s.internSlow(snap, "", path)
}

// internSlow assigns an ID under mu for a path that missed the snapshot,
// re-checking both the (possibly advanced) snapshot and the overlay. The
// path arrives either as a string or as raw bytes; the bytes form is only
// converted once the path is known to be new.
func (s *SyncInterner) internSlow(seen *internSnap, path string, raw []byte) FileID {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.snap.Load()
	if snap != seen {
		// A promotion happened between the read and the lock; the path
		// may have been folded in.
		var id FileID
		var ok bool
		if raw != nil {
			id, ok = snap.ids[string(raw)]
		} else {
			id, ok = snap.ids[path]
		}
		if ok {
			return id
		}
	}
	if raw != nil {
		if id, ok := s.dirty[string(raw)]; ok {
			return id
		}
		path = string(raw)
	} else if id, ok := s.dirty[path]; ok {
		return id
	}
	id := FileID(len(snap.paths) + len(s.dirtyPaths))
	s.dirty[path] = id
	s.dirtyPaths = append(s.dirtyPaths, path)
	if len(s.dirtyPaths) >= promoteThreshold(len(snap.paths)) {
		s.promote(snap)
	}
	return id
}

// promote folds the dirty overlay into a fresh snapshot and publishes it.
// Called with mu held.
func (s *SyncInterner) promote(snap *internSnap) {
	next := &internSnap{
		ids:   make(map[string]FileID, len(snap.ids)+len(s.dirty)),
		paths: make([]string, 0, len(snap.paths)+len(s.dirtyPaths)),
	}
	for p, id := range snap.ids {
		next.ids[p] = id
	}
	next.paths = append(next.paths, snap.paths...)
	for _, p := range s.dirtyPaths {
		next.ids[p] = FileID(len(next.paths))
		next.paths = append(next.paths, p)
	}
	s.snap.Store(next)
	clear(s.dirty)
	s.dirtyPaths = s.dirtyPaths[:0]
}

// Lookup returns the FileID for path and whether it has been interned.
func (s *SyncInterner) Lookup(path string) (FileID, bool) {
	snap := s.snap.Load()
	if id, ok := snap.ids[path]; ok {
		return id, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-load under mu: a concurrent promotion may have drained the
	// overlay into a newer snapshot.
	if snap2 := s.snap.Load(); snap2 != snap {
		if id, ok := snap2.ids[path]; ok {
			return id, true
		}
	}
	id, ok := s.dirty[path]
	return id, ok
}

// Path returns the path for id, or "" if id has not been assigned.
func (s *SyncInterner) Path(id FileID) string {
	snap := s.snap.Load()
	if int(id) < len(snap.paths) {
		return snap.paths[id]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap = s.snap.Load()
	if int(id) < len(snap.paths) {
		return snap.paths[id]
	}
	if i := int(id) - len(snap.paths); i < len(s.dirtyPaths) {
		return s.dirtyPaths[i]
	}
	return ""
}

// Len returns the number of interned paths.
func (s *SyncInterner) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snap.Load().paths) + len(s.dirtyPaths)
}
