package trace

import "sync"

// SyncInterner is a concurrency-safe interner with a read-lock fast path:
// looking up an already-known path — the overwhelmingly common case on a
// warm server — takes only an RLock, and the write lock is taken just for
// first-time assignments. IDs remain dense and first-use ordered, exactly
// as with Interner.
type SyncInterner struct {
	mu  sync.RWMutex
	ids *Interner
}

// NewSyncInterner returns an empty concurrency-safe interner.
func NewSyncInterner() *SyncInterner {
	return &SyncInterner{ids: NewInterner()}
}

// WrapInterner wraps an existing interner, taking ownership of it. The
// caller must not use in directly afterwards.
func WrapInterner(in *Interner) *SyncInterner {
	return &SyncInterner{ids: in}
}

// Intern returns the FileID for path, assigning the next dense ID if the
// path has not been seen before. Known paths never contend on the write
// lock.
func (s *SyncInterner) Intern(path string) FileID {
	s.mu.RLock()
	id, ok := s.ids.Lookup(path)
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Another goroutine may have interned path between the two locks;
	// Interner.Intern is idempotent, so this is just the slow path.
	return s.ids.Intern(path)
}

// Lookup returns the FileID for path and whether it has been interned.
func (s *SyncInterner) Lookup(path string) (FileID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ids.Lookup(path)
}

// Path returns the path for id, or "" if id has not been assigned.
func (s *SyncInterner) Path(id FileID) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ids.Path(id)
}

// Len returns the number of interned paths.
func (s *SyncInterner) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ids.Len()
}
