package trace

import (
	"bytes"
	"testing"
)

func benchTrace(b *testing.B, n int) *Trace {
	b.Helper()
	return randomTraceForBench(n)
}

func randomTraceForBench(n int) *Trace {
	tr := NewTrace()
	paths := make([]string, 64)
	for i := range paths {
		paths[i] = "/bench/path/file" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	x := uint32(9)
	for i := 0; i < n; i++ {
		x = x*1664525 + 1013904223
		tr.Append(Event{Op: OpOpen, Client: uint16(x >> 28)}, paths[(x>>16)%64])
	}
	return tr
}

func BenchmarkWriteBinary(b *testing.B) {
	tr := benchTrace(b, 1<<15)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkReadBinary(b *testing.B) {
	tr := benchTrace(b, 1<<15)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteText(b *testing.B) {
	tr := benchTrace(b, 1<<15)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteText(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkReadText(b *testing.B) {
	tr := benchTrace(b, 1<<15)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadText(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
