package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestScannerMatchesInMemoryReaders(t *testing.T) {
	tr := randomTrace(t, 21, 800)
	var text, bin bytes.Buffer
	if err := WriteText(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}

	check := func(name string, s *Scanner) {
		t.Helper()
		i := 0
		for s.Scan() {
			if i >= tr.Len() {
				t.Fatalf("%s: scanner produced extra records", name)
			}
			want := tr.Events[i]
			if s.Event() != want {
				t.Fatalf("%s: record %d = %+v, want %+v", name, i, s.Event(), want)
			}
			if s.Path() != tr.Paths.Path(want.File) {
				t.Fatalf("%s: record %d path = %q", name, i, s.Path())
			}
			i++
		}
		if err := s.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if i != tr.Len() {
			t.Fatalf("%s: scanned %d of %d records", name, i, tr.Len())
		}
		if s.Paths().Len() != tr.Paths.Len() {
			t.Fatalf("%s: paths = %d, want %d", name, s.Paths().Len(), tr.Paths.Len())
		}
	}

	ts, err := NewTextScanner(&text)
	if err != nil {
		t.Fatal(err)
	}
	check("text", ts)

	bs, err := NewBinaryScanner(&bin)
	if err != nil {
		t.Fatal(err)
	}
	check("binary", bs)
}

func TestScannerHeaderValidation(t *testing.T) {
	if _, err := NewTextScanner(strings.NewReader("")); err == nil {
		t.Error("empty text input accepted")
	}
	if _, err := NewTextScanner(strings.NewReader("junk\n")); err == nil {
		t.Error("bad text header accepted")
	}
	if _, err := NewBinaryScanner(strings.NewReader("XXXX")); err != ErrBadMagic {
		t.Error("bad magic not detected")
	}
}

func TestScannerStopsOnCorruptRecord(t *testing.T) {
	in := textHeader + "\n0\t0\t0\t0\topen\t/ok\nbad line here\n"
	s, err := NewTextScanner(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Scan() {
		t.Fatal("first record not scanned")
	}
	if s.Scan() {
		t.Fatal("corrupt record scanned")
	}
	if s.Err() == nil {
		t.Error("corrupt record produced no error")
	}
	// Scanner stays stopped.
	if s.Scan() {
		t.Error("Scan after error returned true")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	tr := randomTrace(t, 33, 600)
	for _, format := range []string{"text", "binary"} {
		var buf bytes.Buffer
		var w *Writer
		var err error
		if format == "text" {
			w, err = NewTextWriter(&buf)
		} else {
			w, err = NewBinaryWriter(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range tr.Events {
			if err := w.Write(ev, tr.Paths.Path(ev.File)); err != nil {
				t.Fatalf("%s: %v", format, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		var got *Trace
		if format == "text" {
			got, err = ReadText(&buf)
		} else {
			got, err = ReadBinary(&buf)
		}
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !tracesEqual(tr, got) {
			t.Errorf("%s: streamed write did not round-trip", format)
		}
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Op: OpOpen}, ""); err == nil {
		t.Error("empty path accepted")
	}
	if err := w.Write(Event{Op: OpOpen, Time: 5 * time.Microsecond}, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Op: OpOpen, Time: time.Microsecond}, "/b"); err == nil {
		t.Error("time regression accepted by binary writer")
	}
}

// Streaming a trace through Writer then Scanner must preserve it exactly,
// including interleaved new/old paths.
func TestStreamPipeline(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{"/a", "/b", "/a", "/c", "/b", "/a"}
	for i, p := range paths {
		ev := Event{Op: OpOpen, Client: uint16(i)}
		if err := w.Write(ev, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := NewBinaryScanner(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for s.Scan() {
		got = append(got, s.Path())
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths) {
		t.Fatalf("scanned %d records, want %d", len(got), len(paths))
	}
	for i := range paths {
		if got[i] != paths[i] {
			t.Fatalf("record %d path = %q, want %q", i, got[i], paths[i])
		}
	}
}
