package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
	"time"
)

// Streaming I/O
//
// The in-memory codecs (ReadText/ReadBinary) are convenient for the
// simulator, but the paper's traces span up to a year; Scanner and Writer
// process the same two formats record-at-a-time so tools can filter or
// transform traces whose event list does not fit in memory. Only the
// path table (one entry per distinct file) is kept resident.

// Scanner reads trace records one at a time.
type Scanner struct {
	next  func() (Event, string, error)
	paths *Interner
	ev    Event
	path  string
	err   error
	done  bool
}

// NewTextScanner returns a Scanner over the text format; it consumes and
// validates the header immediately.
func NewTextScanner(r io.Reader) (*Scanner, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty input, want %q header", textHeader)
	}
	if got := strings.TrimRight(sc.Text(), "\r"); got != textHeader {
		return nil, fmt.Errorf("trace: bad header %q, want %q", got, textHeader)
	}
	line := 1
	next := func() (Event, string, error) {
		for sc.Scan() {
			line++
			raw := strings.TrimRight(sc.Text(), "\r")
			if raw == "" || strings.HasPrefix(raw, "#") {
				continue
			}
			ev, path, err := parseTextLine(raw)
			if err != nil {
				return Event{}, "", fmt.Errorf("trace: line %d: %w", line, err)
			}
			return ev, path, nil
		}
		if err := sc.Err(); err != nil {
			return Event{}, "", err
		}
		return Event{}, "", io.EOF
	}
	return &Scanner{next: next, paths: NewInterner()}, nil
}

// NewBinaryScanner returns a Scanner over the binary format; it consumes
// and validates the magic and version immediately.
func NewBinaryScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}

	s := &Scanner{paths: NewInterner()}
	var (
		prevUS int64
		rec    int
	)
	s.next = func() (Event, string, error) {
		dtime, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return Event{}, "", io.EOF
		}
		if err != nil {
			return Event{}, "", fmt.Errorf("trace: record %d: %w", rec, err)
		}
		client, err := binary.ReadUvarint(br)
		if err != nil || client > 0xffff {
			return Event{}, "", fmt.Errorf("trace: record %d client: %v", rec, err)
		}
		pid, err := binary.ReadUvarint(br)
		if err != nil {
			return Event{}, "", fmt.Errorf("trace: record %d pid: %w", rec, err)
		}
		uid, err := binary.ReadUvarint(br)
		if err != nil {
			return Event{}, "", fmt.Errorf("trace: record %d uid: %w", rec, err)
		}
		opByte, err := br.ReadByte()
		if err != nil {
			return Event{}, "", fmt.Errorf("trace: record %d op: %w", rec, err)
		}
		op := Op(opByte)
		if !op.Valid() {
			return Event{}, "", fmt.Errorf("trace: record %d invalid op %d", rec, opByte)
		}
		file, err := binary.ReadUvarint(br)
		if err != nil {
			return Event{}, "", fmt.Errorf("trace: record %d file: %w", rec, err)
		}
		seen := FileID(s.paths.Len())
		if file > uint64(seen) {
			return Event{}, "", fmt.Errorf("trace: record %d file id %d skips ahead", rec, file)
		}
		var path string
		if FileID(file) == seen {
			n, err := binary.ReadUvarint(br)
			if err != nil || n == 0 || n > maxPathLen {
				return Event{}, "", fmt.Errorf("trace: record %d path length: %v", rec, err)
			}
			raw := make([]byte, n)
			if _, err := io.ReadFull(br, raw); err != nil {
				return Event{}, "", fmt.Errorf("trace: record %d path: %w", rec, err)
			}
			path = string(raw)
		} else {
			path = s.paths.Path(FileID(file))
		}
		prevUS += int64(dtime)
		rec++
		return Event{
			Time:   time.Duration(prevUS) * time.Microsecond,
			Client: uint16(client),
			PID:    uint32(pid),
			UID:    uint32(uid),
			Op:     op,
		}, path, nil
	}
	return s, nil
}

// Scan advances to the next record, reporting whether one is available.
func (s *Scanner) Scan() bool {
	if s.done {
		return false
	}
	ev, path, err := s.next()
	if err != nil {
		s.done = true
		if err != io.EOF {
			s.err = err
		}
		return false
	}
	ev.File = s.paths.Intern(path)
	s.ev = ev
	s.path = path
	return true
}

// Event returns the current record.
func (s *Scanner) Event() Event { return s.ev }

// Path returns the current record's path.
func (s *Scanner) Path() string { return s.path }

// Paths returns the interner accumulated so far (dense ids in
// first-appearance order, matching the in-memory readers).
func (s *Scanner) Paths() *Interner { return s.paths }

// Err returns the first non-EOF error encountered.
func (s *Scanner) Err() error { return s.err }

// Writer emits trace records one at a time.
type Writer struct {
	emit  func(ev Event, path string) error
	flush func() error
	ids   *Interner
}

// NewTextWriter returns a Writer in the text format; the header is
// written immediately.
func NewTextWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, textHeader); err != nil {
		return nil, err
	}
	return &Writer{
		ids: NewInterner(),
		emit: func(ev Event, path string) error {
			_, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%s\t%s\n",
				ev.Time.Microseconds(), ev.Client, ev.PID, ev.UID, ev.Op, path)
			return err
		},
		flush: bw.Flush,
	}, nil
}

// NewBinaryWriter returns a Writer in the binary format; the magic and
// version are written immediately.
func NewBinaryWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := putUvarint(binaryVersion); err != nil {
		return nil, err
	}
	ids := NewInterner()
	var prevUS int64
	return &Writer{
		ids: ids,
		emit: func(ev Event, path string) error {
			us := ev.Time.Microseconds()
			if us < prevUS {
				return fmt.Errorf("trace: event time goes backwards")
			}
			known := ids.Len()
			id := ids.Intern(path)
			if err := putUvarint(uint64(us - prevUS)); err != nil {
				return err
			}
			prevUS = us
			if err := putUvarint(uint64(ev.Client)); err != nil {
				return err
			}
			if err := putUvarint(uint64(ev.PID)); err != nil {
				return err
			}
			if err := putUvarint(uint64(ev.UID)); err != nil {
				return err
			}
			if err := bw.WriteByte(byte(ev.Op)); err != nil {
				return err
			}
			if err := putUvarint(uint64(id)); err != nil {
				return err
			}
			if int(id) == known { // first use: append the path
				if err := putUvarint(uint64(len(path))); err != nil {
					return err
				}
				if _, err := bw.WriteString(path); err != nil {
					return err
				}
			}
			return nil
		},
		flush: bw.Flush,
	}, nil
}

// Write emits one record. The event's File field is ignored; identity
// comes from path.
func (w *Writer) Write(ev Event, path string) error {
	if path == "" || len(path) > maxPathLen {
		return fmt.Errorf("trace: invalid path %q", path)
	}
	return w.emit(ev, path)
}

// Flush forces buffered records out. Call it once after the last Write.
func (w *Writer) Flush() error { return w.flush() }
