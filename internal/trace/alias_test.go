package trace

import "testing"

// Aliasing audit: the memoized workload cache hands the same Trace to many
// goroutines, so the sharing contracts of the accessors below are
// load-bearing. These tests pin them.

// OpenIDs must return a freshly allocated slice each call — callers (the
// workload cache included) hand it to concurrent readers and must never
// discover it aliases Trace internals or a previous call's result.
func TestOpenIDsDoesNotAlias(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Op: OpOpen}, "/a")
	tr.Append(Event{Op: OpClose}, "/a")
	tr.Append(Event{Op: OpOpen}, "/b")

	first := tr.OpenIDs()
	second := tr.OpenIDs()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("OpenIDs lengths = %d, %d, want 2", len(first), len(second))
	}
	if &first[0] == &second[0] {
		t.Fatal("consecutive OpenIDs calls share a backing array")
	}

	// Mutating a returned slice must not leak into the trace or into
	// later calls.
	first[0] = 999
	if tr.Events[0].File == 999 {
		t.Error("OpenIDs result aliases Trace.Events")
	}
	if got := tr.OpenIDs(); got[0] == 999 {
		t.Error("OpenIDs result carries a previous caller's mutation")
	}
}

// Clone must produce a fully independent interner: interning into either
// side afterwards must not be visible through the other.
func TestInternerCloneIsIndependent(t *testing.T) {
	in := NewInterner()
	a := in.Intern("/a")
	b := in.Intern("/b")

	cl := in.Clone()
	if cl.Path(a) != "/a" || cl.Path(b) != "/b" {
		t.Fatal("clone lost existing paths")
	}
	if got := cl.Intern("/a"); got != a {
		t.Errorf("clone re-interned /a as %d, want %d", got, a)
	}

	// Diverge both sides.
	c1 := in.Intern("/only-original")
	c2 := cl.Intern("/only-clone")
	if c1 != c2 {
		t.Fatalf("divergent interns got different next ids: %d vs %d", c1, c2)
	}
	if cl.Path(c2) != "/only-clone" {
		t.Errorf("clone path(%d) = %q", c2, cl.Path(c2))
	}
	if in.Path(c1) != "/only-original" {
		t.Errorf("original path(%d) = %q; clone mutation leaked", c1, in.Path(c1))
	}
	if in.Len() != cl.Len() {
		t.Errorf("lengths diverged unexpectedly: %d vs %d", in.Len(), cl.Len())
	}
}
