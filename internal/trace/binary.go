package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary format
//
// A compact streaming encoding. Layout:
//
//	magic   "AGTR"            4 bytes
//	version uvarint           currently 1
//	records *
//
// Each record is:
//
//	dtime   uvarint   microsecond delta from the previous record
//	client  uvarint
//	pid     uvarint
//	uid     uvarint
//	op      1 byte
//	file    uvarint   interned FileID
//	[path]  uvarint length + bytes, present only when file equals the
//	        number of distinct files seen so far (i.e. the ID is new)
//
// Because the Interner assigns IDs densely in first-use order, the reader
// knows an ID is new exactly when it equals its running file count, so no
// separate string table or flag byte is needed.

var binaryMagic = [4]byte{'A', 'G', 'T', 'R'}

const (
	binaryVersion = 1
	maxPathLen    = 4096
)

// ErrBadMagic is returned by ReadBinary when the input does not start with
// the trace magic bytes.
var ErrBadMagic = errors.New("trace: bad magic, not a binary trace")

// WriteBinary encodes the trace in the binary format described above.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(binaryVersion); err != nil {
		return err
	}

	var prevUS int64
	seen := FileID(0)
	for i := range t.Events {
		ev := &t.Events[i]
		us := ev.Time.Microseconds()
		d := us - prevUS
		if d < 0 {
			return fmt.Errorf("trace: event %d time goes backwards", i)
		}
		prevUS = us
		if err := putUvarint(uint64(d)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Client)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.PID)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.UID)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(ev.Op)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.File)); err != nil {
			return err
		}
		if ev.File > seen {
			return fmt.Errorf("trace: event %d file id %d skips ahead of interner order (%d seen)", i, ev.File, seen)
		}
		if ev.File == seen {
			path := t.Paths.Path(ev.File)
			if path == "" {
				return fmt.Errorf("trace: event %d references unknown file id %d", i, ev.File)
			}
			if err := putUvarint(uint64(len(path))); err != nil {
				return err
			}
			if _, err := bw.WriteString(path); err != nil {
				return err
			}
			seen++
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace in the binary format produced by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}

	t := NewTrace()
	var (
		prevUS int64
		seen   FileID
		// pathBuf is the reused scratch for new-path bytes: one buffer
		// for the whole stream instead of one allocation per distinct
		// file (the unavoidable string conversion below is the only
		// per-path allocation left).
		pathBuf []byte
	)
	for rec := 0; ; rec++ {
		dtime, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", rec, err)
		}
		client, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d client: %w", rec, err)
		}
		if client > 0xffff {
			return nil, fmt.Errorf("trace: record %d client %d out of range", rec, client)
		}
		pid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pid: %w", rec, err)
		}
		uid, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d uid: %w", rec, err)
		}
		opByte, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d op: %w", rec, err)
		}
		op := Op(opByte)
		if !op.Valid() {
			return nil, fmt.Errorf("trace: record %d invalid op %d", rec, opByte)
		}
		file, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d file: %w", rec, err)
		}
		if file > uint64(seen) {
			return nil, fmt.Errorf("trace: record %d file id %d skips ahead (%d seen)", rec, file, seen)
		}
		var path string
		if FileID(file) == seen {
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d path len: %w", rec, err)
			}
			if n == 0 || n > maxPathLen {
				return nil, fmt.Errorf("trace: record %d path length %d out of range", rec, n)
			}
			if uint64(cap(pathBuf)) < n {
				pathBuf = make([]byte, n)
			}
			raw := pathBuf[:n]
			if _, err := io.ReadFull(br, raw); err != nil {
				return nil, fmt.Errorf("trace: record %d path: %w", rec, err)
			}
			path = string(raw)
			seen++
		} else {
			path = t.Paths.Path(FileID(file))
		}
		prevUS += int64(dtime)
		t.Append(Event{
			Time:   time.Duration(prevUS) * time.Microsecond,
			Client: uint16(client),
			PID:    uint32(pid),
			UID:    uint32(uid),
			Op:     op,
		}, path)
	}
}
