package trace

import (
	"testing"
	"time"
)

func TestOpString(t *testing.T) {
	tests := []struct {
		op   Op
		want string
	}{
		{OpOpen, "open"},
		{OpClose, "close"},
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpCreate, "create"},
		{OpUnlink, "unlink"},
		{OpStat, "stat"},
		{Op(0), "op(0)"},
		{Op(200), "op(200)"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("Op(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}

func TestParseOpRoundTrip(t *testing.T) {
	for op := OpOpen; op <= OpStat; op++ {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestParseOpUnknown(t *testing.T) {
	if _, err := ParseOp("mmap"); err == nil {
		t.Error("ParseOp(\"mmap\") succeeded, want error")
	}
	if _, err := ParseOp(""); err == nil {
		t.Error("ParseOp(\"\") succeeded, want error")
	}
}

func TestOpValid(t *testing.T) {
	if Op(0).Valid() {
		t.Error("Op(0).Valid() = true")
	}
	if !OpOpen.Valid() || !OpStat.Valid() {
		t.Error("defined ops reported invalid")
	}
	if Op(8).Valid() {
		t.Error("Op(8).Valid() = true")
	}
}

func TestTraceAppendInterns(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Op: OpOpen}, "/bin/sh")
	tr.Append(Event{Op: OpOpen}, "/bin/make")
	tr.Append(Event{Op: OpOpen}, "/bin/sh")

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Events[0].File != tr.Events[2].File {
		t.Error("same path interned to different ids")
	}
	if tr.Events[0].File == tr.Events[1].File {
		t.Error("different paths interned to same id")
	}
	if tr.Paths.Len() != 2 {
		t.Errorf("Paths.Len = %d, want 2", tr.Paths.Len())
	}
}

func TestTraceOpenIDs(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Op: OpOpen}, "a")
	tr.Append(Event{Op: OpWrite}, "a")
	tr.Append(Event{Op: OpOpen}, "b")
	tr.Append(Event{Op: OpClose}, "b")
	tr.Append(Event{Op: OpOpen}, "a")

	ids := tr.OpenIDs()
	want := []FileID{0, 1, 0}
	if len(ids) != len(want) {
		t.Fatalf("OpenIDs len = %d, want %d", len(ids), len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("OpenIDs[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestTraceOpens(t *testing.T) {
	tr := NewTrace()
	tr.Append(Event{Op: OpOpen, Time: time.Second}, "a")
	tr.Append(Event{Op: OpWrite}, "a")
	opens := tr.Opens()
	if len(opens) != 1 || opens[0].Time != time.Second {
		t.Fatalf("Opens = %+v, want single open at 1s", opens)
	}
}
