package trace

import (
	"container/heap"
	"fmt"
)

// Merge combines several traces into one, ordering events by time (ties
// broken by input order, preserving each input's internal order). Each
// input keeps its own path namespace — identical paths in different
// inputs refer to the same file in the output, which is what you want
// when merging per-client captures of one file system.
func Merge(traces ...*Trace) (*Trace, error) {
	for i, t := range traces {
		if t == nil {
			return nil, fmt.Errorf("trace: merge input %d is nil", i)
		}
	}
	out := NewTrace()
	h := make(mergeHeap, 0, len(traces))
	for i, t := range traces {
		if len(t.Events) > 0 {
			h = append(h, mergeCursor{src: i, trace: t})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		cur := &h[0]
		ev := cur.trace.Events[cur.pos]
		out.Append(ev, cur.trace.Paths.Path(ev.File))
		cur.pos++
		if cur.pos >= len(cur.trace.Events) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out, nil
}

type mergeCursor struct {
	src   int
	trace *Trace
	pos   int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }

func (h mergeHeap) Less(i, j int) bool {
	a := h[i].trace.Events[h[i].pos]
	b := h[j].trace.Events[h[j].pos]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return h[i].src < h[j].src
}

func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }

func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SplitByClient partitions a trace into one trace per client id, in order
// of first appearance. Each output shares path names (not FileIDs) with
// the input.
func SplitByClient(t *Trace) map[uint16]*Trace {
	out := make(map[uint16]*Trace)
	for _, ev := range t.Events {
		sub, ok := out[ev.Client]
		if !ok {
			sub = NewTrace()
			out[ev.Client] = sub
		}
		sub.Append(ev, t.Paths.Path(ev.File))
	}
	return out
}
