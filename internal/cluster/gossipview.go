package cluster

import (
	"errors"
	"fmt"
	"net"

	"aggcache/internal/fsnet"
)

// This file makes *Node an fsnet.ViewSource and gives the gossip tier
// (internal/gossip) its two verbs — pull a peer's view, push ours — on
// top of the node's existing peer clients and breakers. The transport
// never imports cluster; it sees only the ViewSource interface, and the
// gossiper drives ViewPullFrom/ViewPushTo from outside both packages.

var _ fsnet.ViewSource = (*Node)(nil)

// ErrPeerDown reports a view exchange refused locally because the target
// peer's breaker is open. Anti-entropy treats it like any other failed
// round: pick another peer next tick; the breaker's own probe schedule
// decides when this one is worth retrying.
var ErrPeerDown = errors.New("cluster: peer breaker open")

// ViewSnapshot implements fsnet.ViewSource: the installed epoch and
// member list from one view load, so the pair is always consistent.
func (n *Node) ViewSnapshot() (epoch uint64, members []string) {
	v := n.view.Load()
	return v.epoch, v.ring.Members()
}

// ApplyView implements fsnet.ViewSource by delegating to Update. A stale
// epoch is the normal outcome of symmetric gossip — both sides offer,
// the newer one wins — so it reports applied=false with a nil error;
// a non-nil error means the view itself was invalid.
func (n *Node) ApplyView(epoch uint64, members []string) (applied bool, err error) {
	switch err := n.Update(epoch, members); {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrStaleView):
		return false, nil
	default:
		return false, err
	}
}

// OnViewHint registers the callback invoked for every view-epoch hint
// the transport observes (piggybacked frames and pull/push replies).
// The gossiper registers itself here to turn hints into pulls. fn runs
// on connection reader goroutines: it must not block, and in particular
// must not dial — hand off to a background worker instead. At most one
// callback is active; a later registration replaces the earlier one.
func (n *Node) OnViewHint(fn func(addr string, epoch uint64)) {
	if fn == nil {
		n.viewHint.Store(nil)
		return
	}
	n.viewHint.Store(&fn)
}

// NoteViewEpoch implements fsnet.ViewSource by forwarding the hint to
// the registered OnViewHint callback, if any.
func (n *Node) NoteViewEpoch(addr string, epoch uint64) {
	if fn := n.viewHint.Load(); fn != nil {
		(*fn)(addr, epoch)
	}
}

// ViewPullFrom asks the peer at addr for its view and installs it if it
// is newer than ours. It reports whether a view was installed and the
// peer's (possibly older) epoch, which the caller uses to decide a
// push-back. Peers in the current view reuse their existing client and
// feed their breaker; an address outside the view (a hinted sender we
// do not list yet) gets a transient client, closed after the exchange.
func (n *Node) ViewPullFrom(addr string) (applied bool, remoteEpoch uint64, err error) {
	if addr == n.self {
		return false, n.Epoch(), nil
	}
	if p := n.view.Load().peers[addr]; p != nil {
		if !p.admit() {
			return false, 0, fmt.Errorf("%w: %s", ErrPeerDown, addr)
		}
		epoch, members, err := p.client.ViewPull()
		n.noteOutcome(p, err)
		if err != nil {
			return false, 0, err
		}
		return n.installPulled(epoch, members)
	}
	client, err := n.transientClient(addr)
	if err != nil {
		return false, 0, err
	}
	defer client.Close()
	epoch, members, err := client.ViewPull()
	if err != nil {
		return false, 0, err
	}
	return n.installPulled(epoch, members)
}

// installPulled is the tail of ViewPullFrom: a nil member list means the
// responder was not newer and answered with a bare epoch hint. Peers at
// our epoch reply with their full view (so divergent same-epoch views
// tiebreak on content hash); when the pulled view is byte-identical to
// ours — the steady state of every anti-entropy round — skip Update
// entirely rather than count a stale rejection per round.
func (n *Node) installPulled(epoch uint64, members []string) (bool, uint64, error) {
	if members == nil {
		return false, epoch, nil
	}
	if cur := n.view.Load(); epoch == cur.epoch && viewHash(members) == cur.hash {
		return false, epoch, nil
	}
	applied, err := n.ApplyView(epoch, members)
	return applied, epoch, err
}

// ViewPushTo offers the given view to the peer at addr and returns the
// epoch the peer reports holding afterwards (our epoch if it installed
// the push, a higher one if it was already newer). Breaker handling
// mirrors ViewPullFrom.
func (n *Node) ViewPushTo(addr string, epoch uint64, members []string) (remoteEpoch uint64, err error) {
	if addr == n.self {
		return n.Epoch(), nil
	}
	if p := n.view.Load().peers[addr]; p != nil {
		if !p.admit() {
			return 0, fmt.Errorf("%w: %s", ErrPeerDown, addr)
		}
		remoteEpoch, err = p.client.ViewPush(epoch, members)
		n.noteOutcome(p, err)
		if err != nil {
			return 0, err
		}
		return remoteEpoch, nil
	}
	client, err := n.transientClient(addr)
	if err != nil {
		return 0, err
	}
	defer client.Close()
	return client.ViewPush(epoch, members)
}

// noteOutcome resolves the breaker verdict an admit() demands: a
// transport failure feeds the breaker, while anything else — success or
// a typed server error — proves the peer alive. Leaving an admitted
// probe unresolved would wedge the breaker half-open and refuse every
// later exchange, so each exchange must end here.
func (n *Node) noteOutcome(p *peer, err error) {
	if errors.Is(err, fsnet.ErrConnBroken) {
		p.noteFailure()
		return
	}
	if p.noteSuccess() {
		go n.replayHints(p)
	}
}

// transientClient dials an address outside the current view for a
// one-shot exchange. The caller closes it.
func (n *Node) transientClient(addr string) (*fsnet.Client, error) {
	dial := n.cfg.Dialer
	return fsnet.NewClient(nil, fsnet.ClientConfig{
		Dialer:     func() (net.Conn, error) { return dial(addr) },
		Timeout:    n.cfg.PeerTimeout,
		MaxRetries: 0,
		Views:      n,
	})
}
