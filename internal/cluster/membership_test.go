package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aggcache/internal/fsnet"
)

// TestMembershipUpdateSwapsRing: installing a smaller view reassigns the
// removed node's paths to the survivors, atomically and on every node
// that applies the update, while opens keep succeeding throughout.
func TestMembershipUpdateSwapsRing(t *testing.T) {
	tc := startCluster(t, 3, nil)

	gone := tc.pathOwnedBy(t, 2, nil)
	for i := 0; i < 2; i++ {
		if err := tc.nodes[i].Update(2, tc.addrs[:2]); err != nil {
			t.Fatalf("node %d update: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		st := tc.nodes[i].Stats()
		if st.Epoch != 2 || st.Members != 2 {
			t.Errorf("node %d epoch=%d members=%d, want 2/2", i, st.Epoch, st.Members)
		}
		owner := tc.nodes[i].Owner(gone)
		if owner == tc.addrs[2] {
			t.Errorf("node %d still maps %s to the removed peer", i, gone)
		}
		if owner != tc.nodes[0].Owner(gone) {
			t.Errorf("survivors disagree on the new owner of %s", gone)
		}
	}

	// The shrunk ring still serves every path correctly end to end.
	client := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 4})
	for f := 0; f < testFiles; f++ {
		path := fmt.Sprintf("/data/f%03d", f)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("open %s after shrink: %v", path, err)
		}
		if string(data) != testContent(path) {
			t.Fatalf("open %s after shrink = %q", path, data)
		}
	}
}

// TestMembershipStaleEpochRejected: a view that does not advance the
// installed one — an older epoch, or the same epoch with an equal or
// lower content hash — must be refused, so a delayed or replayed update
// can never roll the ring backwards.
func TestMembershipStaleEpochRejected(t *testing.T) {
	tc := startCluster(t, 2, nil)
	n := tc.nodes[0]

	if err := n.Update(5, tc.addrs); err != nil {
		t.Fatal(err)
	}
	if err := n.Update(5, tc.addrs); !errors.Is(err, ErrStaleView) {
		t.Errorf("equal epoch with identical members accepted: %v", err)
	}
	if err := n.Update(3, tc.addrs[:1]); !errors.Is(err, ErrStaleView) {
		t.Errorf("older epoch accepted: %v", err)
	}
	if st := n.Stats(); st.Epoch != 5 || st.Members != 2 {
		t.Errorf("stale update changed the view: epoch=%d members=%d", st.Epoch, st.Members)
	}
	if err := n.Update(6, nil); err == nil {
		t.Error("empty membership accepted")
	}
}

// TestMembershipEqualEpochTiebreak pins the coordination-free resolution
// of two operators minting the same epoch with different member lists:
// between equal epochs the higher view-content hash wins, on every node,
// in whichever order the two updates arrive. Applying both candidate
// views to two nodes in opposite orders must converge them on the same
// member list, with the loser counted as stale.
func TestMembershipEqualEpochTiebreak(t *testing.T) {
	tc := startCluster(t, 3, nil)

	// The two racing epoch-2 views: one drops node 2, the other node 1.
	// Which one wins is decided by viewHash alone — compute the expected
	// winner the same way Update does.
	viewA := tc.addrs[:2]
	viewB := []string{tc.addrs[0], tc.addrs[2]}
	winner := viewA
	if viewHash(ringMembers(t, viewB)) > viewHash(ringMembers(t, viewA)) {
		winner = viewB
	}

	apply := func(n *Node, first, second []string) (firstErr, secondErr error) {
		return n.Update(2, first), n.Update(2, second)
	}
	errA1, errB1 := apply(tc.nodes[0], viewA, viewB)
	errB2, errA2 := apply(tc.nodes[1], viewB, viewA)

	// Exactly one of the two candidates loses, and it loses with
	// ErrStaleView on the node that saw it second.
	for _, tcase := range []struct {
		name       string
		errs       [2]error
		firstIsWin bool
	}{
		{"order A,B", [2]error{errA1, errB1}, sameMembers(winner, viewA)},
		{"order B,A", [2]error{errB2, errA2}, sameMembers(winner, viewB)},
	} {
		if tcase.errs[0] != nil {
			t.Errorf("%s: first update refused: %v", tcase.name, tcase.errs[0])
		}
		if tcase.firstIsWin {
			if !errors.Is(tcase.errs[1], ErrStaleView) {
				t.Errorf("%s: losing view accepted after winner: %v", tcase.name, tcase.errs[1])
			}
		} else if tcase.errs[1] != nil {
			t.Errorf("%s: winning view refused: %v", tcase.name, tcase.errs[1])
		}
	}

	// Both nodes converged on the winner regardless of arrival order.
	for i := 0; i < 2; i++ {
		got := tc.nodes[i].Members()
		if !sameMembers(got, winner) {
			t.Errorf("node %d members = %v, want %v", i, got, winner)
		}
		if e := tc.nodes[i].Epoch(); e != 2 {
			t.Errorf("node %d epoch = %d, want 2", i, e)
		}
	}
}

// ringMembers normalizes a member list through a ring, matching the
// sorted order viewHash is fed in Update.
func ringMembers(t *testing.T, addrs []string) []string {
	t.Helper()
	r := NewRing(0)
	r.Add(addrs...)
	return r.Members()
}

// sameMembers compares member lists irrespective of order.
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]bool, len(a))
	for _, m := range a {
		seen[m] = true
	}
	for _, m := range b {
		if !seen[m] {
			return false
		}
	}
	return true
}

// TestMembershipRemovedPeerGC is the regression test for the leak where
// a removed peer's breaker and mirror state lived forever: dropping a
// peer from the view must delete its breaker entry and purge its mirror
// groups, and re-adding it must start from a fresh, closed breaker.
func TestMembershipRemovedPeerGC(t *testing.T) {
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.FailureThreshold = 1
		cfg.DownDuration = time.Hour
		cfg.MirrorTTL = time.Hour
	})
	n := tc.nodes[0]
	victim := tc.addrs[2]
	path := tc.pathOwnedBy(t, 2, nil)

	// Populate mirror state owned by the victim, then trip its breaker.
	if _, handled, err := n.RouteOpen(path, nil); err != nil || !handled {
		t.Fatalf("warm forward: handled=%v err=%v", handled, err)
	}
	if n.Stats().MirrorGroups == 0 {
		t.Fatal("forward did not mirror the group")
	}
	tc.gates[victim].SetDown(true)
	second := tc.pathOwnedBy(t, 2, map[string]bool{path: true})
	// The failed forward degrades to the local replica (handled=false)
	// and, with threshold 1, trips the victim's breaker.
	if _, handled, err := n.RouteOpen(second, nil); err != nil || handled {
		t.Fatalf("tripping open: handled=%v err=%v", handled, err)
	}
	st := n.Stats()
	var found bool
	for _, p := range st.Peers {
		if p.Addr == victim {
			found = true
			if p.Failures == 0 && p.Trips == 0 {
				t.Errorf("victim breaker untouched before removal: %+v", p)
			}
		}
	}
	if !found {
		t.Fatal("victim missing from stats before removal")
	}

	// Remove the victim: breaker entry and mirror groups must go with it.
	if err := n.Update(2, tc.addrs[:2]); err != nil {
		t.Fatal(err)
	}
	st = n.Stats()
	for _, p := range st.Peers {
		if p.Addr == victim {
			t.Errorf("removed peer still in stats: %+v", p)
		}
	}
	if st.MirrorGroups != 0 {
		t.Errorf("removed peer left %d mirror groups behind", st.MirrorGroups)
	}

	// Re-add: the peer returns with a fresh closed breaker, not the
	// tripped one it left with.
	tc.gates[victim].SetDown(false)
	if err := n.Update(3, tc.addrs); err != nil {
		t.Fatal(err)
	}
	st = n.Stats()
	found = false
	for _, p := range st.Peers {
		if p.Addr == victim {
			found = true
			if !p.Up || p.Failures != 0 || p.Trips != 0 {
				t.Errorf("re-added peer inherited old breaker state: %+v", p)
			}
		}
	}
	if !found {
		t.Fatal("re-added peer missing from stats")
	}
	// And it forwards again immediately — no cooldown carried over.
	if _, handled, err := n.RouteOpen(path, nil); err != nil || !handled {
		t.Errorf("forward to re-added peer: handled=%v err=%v", handled, err)
	}
}

// TestMembershipRejoinClearsDraining: a drained node that appears in a
// later view containing itself is back in service and ready.
func TestMembershipRejoinClearsDraining(t *testing.T) {
	tc := startCluster(t, 2, nil)
	n := tc.nodes[0]
	if !n.Ready() {
		t.Fatal("healthy joined node not ready")
	}
	if _, err := n.Drain(nil); err != nil {
		t.Fatal(err)
	}
	if n.Ready() || !n.Draining() {
		t.Fatal("drain did not flip readiness")
	}
	if _, err := n.Drain(nil); !errors.Is(err, ErrDraining) {
		t.Errorf("second drain = %v, want ErrDraining", err)
	}
	if err := n.Update(2, tc.addrs); err != nil {
		t.Fatal(err)
	}
	if !n.Ready() || n.Draining() {
		t.Error("rejoin view did not clear draining")
	}
}

func TestParsePeersFile(t *testing.T) {
	epoch, peers, err := ParsePeersFile(strings.NewReader(
		"# fleet roster\nepoch 7\n\n10.0.0.1:7070\n  10.0.0.2:7070  # rack b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Errorf("epoch = %d, want 7", epoch)
	}
	if len(peers) != 2 || peers[0] != "10.0.0.1:7070" || peers[1] != "10.0.0.2:7070" {
		t.Errorf("peers = %v", peers)
	}

	// No directive: epoch 0 means "caller picks one past installed".
	epoch, peers, err = ParsePeersFile(strings.NewReader("10.0.0.1:7070\n"))
	if err != nil || epoch != 0 || len(peers) != 1 {
		t.Errorf("directive-less parse = %d, %v, %v", epoch, peers, err)
	}

	for name, in := range map[string]string{
		"empty":           "",
		"comments only":   "# nothing\n",
		"zero epoch":      "epoch 0\n10.0.0.1:1\n",
		"bad epoch":       "epoch x\n10.0.0.1:1\n",
		"double epoch":    "epoch 1\nepoch 2\n10.0.0.1:1\n",
		"embedded spaces": "10.0.0.1:1 10.0.0.2:1\n",
	} {
		if _, _, err := ParsePeersFile(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestHintTableBounds(t *testing.T) {
	h := newHintTable(3)
	q, d := h.add("a", []string{"/1", "/2"})
	if q != 2 || d != 0 {
		t.Fatalf("add = %d queued, %d dropped", q, d)
	}
	// Overflow sheds oldest-first: /1 goes, /3 and /4 stay.
	q, d = h.add("a", []string{"/3", "/4"})
	if q != 2 || d != 1 {
		t.Fatalf("overflow add = %d queued, %d dropped", q, d)
	}
	if got := h.depth(); got != 3 {
		t.Fatalf("depth = %d, want 3", got)
	}
	paths := h.take("a")
	if len(paths) != 3 || paths[0] != "/2" || paths[2] != "/4" {
		t.Fatalf("take = %v", paths)
	}
	if h.depth() != 0 || h.take("a") != nil {
		t.Error("take did not clear the queue")
	}

	// A batch larger than capacity keeps only the newest entries: all
	// five were staged, two had to be shed immediately.
	q, d = h.add("b", []string{"/1", "/2", "/3", "/4", "/5"})
	if q != 5 || d != 2 {
		t.Fatalf("oversize add = %d queued, %d dropped", q, d)
	}
	if paths := h.take("b"); paths[0] != "/3" || paths[2] != "/5" {
		t.Fatalf("oversize take = %v", paths)
	}

	h.add("c", []string{"/x"})
	h.drop("c")
	if h.depth() != 0 {
		t.Error("drop left entries behind")
	}

	// Disabled table is nil-safe everywhere.
	var off *hintTable
	if q, d := off.add("a", []string{"/1"}); q != 0 || d != 0 {
		t.Error("nil table queued")
	}
	if off.take("a") != nil || off.depth() != 0 {
		t.Error("nil table not empty")
	}
	off.drop("a")
}

// TestHintedHandoffReplay: while an owner is down past its breaker, the
// forwarding node stages the accesses it could not deliver; when the
// probe heals the peer, the queue replays so the owner's learned state
// catches up on what it missed.
func TestHintedHandoffReplay(t *testing.T) {
	tc := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1 // every open reaches the health gate
		cfg.FailureThreshold = 1
		cfg.DownDuration = time.Minute
	})
	n := tc.nodes[0]
	victim := tc.addrs[1]
	path := tc.pathOwnedBy(t, 1, nil)
	second := tc.pathOwnedBy(t, 1, map[string]bool{path: true})

	tc.gates[victim].SetDown(true)
	// First open eats the forward failure and trips the breaker (threshold
	// 1); it is served degraded from the local replica (handled=false).
	if _, handled, err := n.RouteOpen(path, nil); err != nil || handled {
		t.Fatalf("degraded open: handled=%v err=%v", handled, err)
	}
	// Subsequent opens short-circuit on the open breaker and stage hints,
	// including the piggybacked access history they carried.
	if _, _, err := n.RouteOpen(second, []string{path}); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.HintsQueued == 0 || st.HintDepth == 0 {
		t.Fatalf("no hints staged while owner down: %+v", st)
	}

	// Heal and lapse the cooldown; the next open probes, succeeds, and
	// kicks off the replay.
	tc.gates[victim].SetDown(false)
	tc.clk.Advance(2 * time.Minute)
	if _, handled, err := n.RouteOpen(path, nil); err != nil || !handled {
		t.Fatalf("probe open: handled=%v err=%v", handled, err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st = n.Stats()
		if st.HintsReplayed > 0 && st.HintDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hints never replayed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.HintsDropped != 0 {
		t.Errorf("healthy replay dropped %d hints", st.HintsDropped)
	}
}

// TestHintQueueDropsOldestWhenFull: a dead owner with a tiny hint budget
// sheds the oldest accesses and counts every drop.
func TestHintQueueDropsOldestWhenFull(t *testing.T) {
	tc := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1
		cfg.FailureThreshold = 1
		cfg.DownDuration = time.Hour
		cfg.HintCapacity = 2
	})
	n := tc.nodes[0]
	tc.gates[tc.addrs[1]].SetDown(true)

	var remote []string
	skip := map[string]bool{}
	for len(remote) < 4 {
		p := tc.pathOwnedBy(t, 1, skip)
		skip[p] = true
		remote = append(remote, p)
	}
	for _, p := range remote {
		if _, _, err := n.RouteOpen(p, nil); err != nil && !errors.Is(err, fsnet.ErrNotFound) {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.HintDepth != 2 {
		t.Errorf("hint depth = %d, want capacity 2", st.HintDepth)
	}
	if st.HintsDropped == 0 {
		t.Error("overflow dropped nothing")
	}
	if st.HintsQueued < st.HintsDropped {
		t.Errorf("queued %d < dropped %d", st.HintsQueued, st.HintsDropped)
	}
}

// TestClusterChurnKillRejoinDrain is the elastic-membership acceptance
// test: under a concurrent workload a node is killed, heals and rejoins,
// and then a *different* node is removed from the ring and drained — all
// without one client-visible error, with the drained node's group state
// landing warm on the new owners, and with the routing counter equation
// intact on every node afterwards. Runs under -race in `make churn`.
func TestClusterChurnKillRejoinDrain(t *testing.T) {
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1 // keep every open on the routing/health path
		cfg.FailureThreshold = 2
		cfg.DownDuration = time.Minute
		cfg.PeerTimeout = 2 * time.Second
	})
	const (
		victim  = 2 // killed and healed mid-workload
		drained = 1 // removed from the ring and drained at the end
	)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	var warmed sync.WaitGroup
	warmed.Add(2)
	killed := make(chan struct{})
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := fsnet.Dial(tc.addrs[i], fsnet.ClientConfig{CacheCapacity: 4})
			if err != nil {
				warmed.Done()
				errs <- err
				return
			}
			defer client.Close()
			for round := 0; round < 4; round++ {
				if round == 1 {
					warmed.Done()
					<-killed
				}
				for f := 0; f < testFiles; f++ {
					path := fmt.Sprintf("/data/f%03d", (f+13*i)%testFiles)
					data, err := client.Open(path)
					if err != nil {
						errs <- fmt.Errorf("node %d open %s: %w", i, path, err)
						return
					}
					if string(data) != testContent(path) {
						errs <- fmt.Errorf("node %d open %s = %q", i, path, data)
						return
					}
				}
			}
			errs <- nil
		}()
	}

	// Kill the victim while both workers are mid-round...
	warmed.Wait()
	tc.gates[tc.addrs[victim]].SetDown(true)
	close(killed)
	// ...give the survivors time to trip breakers and stage hints, then
	// heal it and lapse the cooldown so probes readmit it.
	time.Sleep(100 * time.Millisecond)
	tc.gates[tc.addrs[victim]].SetDown(false)
	tc.clk.Advance(2 * time.Minute)

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Rebalance: the survivors drop the drained node from their views and
	// it streams its owned group state to the new owners.
	rest := []string{tc.addrs[0], tc.addrs[victim]}
	for _, i := range []int{0, victim} {
		if err := tc.nodes[i].Update(2, rest); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := tc.nodes[drained].Drain(tc.servers[drained])
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupsExported == 0 {
		t.Fatal("drained node had no learned group state to export")
	}
	if rep.GroupsFailed != 0 {
		t.Errorf("drain failed %d groups against healthy receivers", rep.GroupsFailed)
	}
	// Acceptance bar: at least 95% of the exported state lands warm.
	if 100*rep.GroupsSent < 95*rep.GroupsExported {
		t.Errorf("drain delivered %d of %d groups, below the 95%% bar",
			rep.GroupsSent, rep.GroupsExported)
	}
	received := tc.servers[0].Stats().Handoffs + tc.servers[victim].Stats().Handoffs
	if received != uint64(rep.GroupsSent) {
		t.Errorf("receivers installed %d handoff groups, drain sent %d", received, rep.GroupsSent)
	}

	// After the full kill/rejoin/drain cycle the per-node counter
	// equation still holds: every remote open the server delegated is
	// accounted for by exactly one routing outcome.
	for i, n := range tc.nodes {
		st := n.Stats()
		answered := st.ForwardedOpens + st.MirrorHits + st.CoalescedForwards
		if srv := tc.servers[i].Stats(); srv.RemoteOpens != answered {
			t.Errorf("node %d: server RemoteOpens=%d != forwarded %d + mirror %d + coalesced %d",
				i, srv.RemoteOpens, st.ForwardedOpens, st.MirrorHits, st.CoalescedForwards)
		}
	}
	degraded := tc.nodes[0].Stats().DegradedOpens + tc.nodes[drained].Stats().DegradedOpens
	if degraded == 0 {
		t.Error("kill window produced no degraded opens; outage never landed")
	}

	// The shrunk ring still serves everything, warm state included.
	client := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 4})
	for f := 0; f < testFiles; f++ {
		path := fmt.Sprintf("/data/f%03d", f)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("open %s after rebalance: %v", path, err)
		}
		if string(data) != testContent(path) {
			t.Fatalf("open %s after rebalance = %q", path, data)
		}
	}
}
