package cluster

import (
	"fmt"
	"testing"
	"time"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs/otrace"
)

// collectTrace polls the given tracers until the union of their spans
// for trace (hi, lo) reaches at least want spans, or the deadline
// passes. Server-side spans are recorded after the reply is written, so
// a client that just got its answer can race the last Record by a few
// microseconds — polling, not sleeping, keeps the test fast and honest.
func collectTrace(t *testing.T, tracers []*otrace.Tracer, hi, lo uint64, want int) []otrace.Span {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var spans []otrace.Span
		for _, tr := range tracers {
			spans = append(spans, tr.TraceSpans(hi, lo)...)
		}
		if len(spans) >= want || time.Now().After(deadline) {
			return spans
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterForwardTracePropagation is the acceptance test for
// wire-propagated tracing: one forwarded open, sampling forced on, must
// yield a single trace whose spans cover the client, the entry node,
// and the owning peer — stitched only by trace ID, with every non-root
// span's parent resolving to another span of the same trace.
func TestClusterForwardTracePropagation(t *testing.T) {
	tracers := make([]*otrace.Tracer, 3)
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		tracers[i] = otrace.New(otrace.Config{Node: fmt.Sprintf("node%d", i), SampleRate: 1})
		cfg.Trace = tracers[i]
	})

	clientTrace := otrace.New(otrace.Config{Node: "client", SampleRate: 1})
	c := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 8, Trace: clientTrace})

	// A path owned by node 1, opened through node 0: the entry node must
	// forward, so the trace has to cross a process-shaped boundary (three
	// tracers standing in for three processes).
	path := tc.pathOwnedBy(t, 1, nil)
	data, err := c.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != testContent(path) {
		t.Fatalf("forwarded open returned %q", data)
	}

	// The client's root span identifies the trace.
	croots := clientTrace.Spans()
	if len(croots) != 1 || croots[0].Name != "client_open" || croots[0].Parent != 0 {
		t.Fatalf("client spans = %+v, want one client_open root", croots)
	}
	hi, lo := croots[0].Hi, croots[0].Lo

	// Expect at least: client_open (client), forward (node 0 server),
	// forward_rpc (node 0 router), hit or stage (node 1 server).
	all := collectTrace(t, append(tracers, clientTrace), hi, lo, 4)
	byName := map[string][]otrace.Span{}
	byID := map[uint64]otrace.Span{}
	for _, s := range all {
		if s.Hi != hi || s.Lo != lo {
			t.Fatalf("span from another trace leaked in: %+v", s)
		}
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.ID] = s
	}
	for _, want := range []string{"client_open", "forward", "forward_rpc"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace missing %q span; got %+v", want, byName)
		}
	}
	if len(byName["hit"])+len(byName["stage"]) == 0 {
		t.Fatalf("trace missing the owner's serving span; got %+v", byName)
	}

	// Node attribution: the entry hop recorded on node0, the serving hop
	// on node1, and the trace spans more than one node.
	if n := byName["forward"][0].Node; n != "node0" {
		t.Fatalf("forward span recorded on %q, want node0", n)
	}
	serving := append(byName["hit"], byName["stage"]...)
	if n := serving[0].Node; n != "node1" {
		t.Fatalf("serving span recorded on %q, want node1", n)
	}

	// Every non-root span's parent must be a span of this trace, and the
	// chain client_open -> forward -> forward_rpc -> serving must hold.
	roots := 0
	for _, s := range all {
		if s.Parent == 0 {
			roots++
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %+v has dangling parent %x", s, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("trace has %d roots, want exactly the client's", roots)
	}
	if p := byName["forward"][0].Parent; p != croots[0].ID {
		t.Fatalf("forward's parent = %x, want the client root %x", p, croots[0].ID)
	}
	if p := byName["forward_rpc"][0].Parent; p != byName["forward"][0].ID {
		t.Fatalf("forward_rpc's parent = %x, want the forward span %x", p, byName["forward"][0].ID)
	}
	if p := serving[0].Parent; p != byName["forward_rpc"][0].ID {
		t.Fatalf("serving span's parent = %x, want forward_rpc %x", p, byName["forward_rpc"][0].ID)
	}
}

// TestClusterLocalOpenSingleNodeTrace: an open the entry node serves
// itself stays a one-node trace — client root plus the local serving
// phase, no forward spans anywhere in the fleet.
func TestClusterLocalOpenSingleNodeTrace(t *testing.T) {
	tracers := make([]*otrace.Tracer, 2)
	tc := startCluster(t, 2, func(i int, cfg *Config) {
		tracers[i] = otrace.New(otrace.Config{Node: fmt.Sprintf("node%d", i), SampleRate: 1})
		cfg.Trace = tracers[i]
	})
	clientTrace := otrace.New(otrace.Config{Node: "client", SampleRate: 1})
	c := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 8, Trace: clientTrace})

	path := tc.pathOwnedBy(t, 0, nil)
	if _, err := c.Open(path); err != nil {
		t.Fatal(err)
	}
	croots := clientTrace.Spans()
	if len(croots) != 1 {
		t.Fatalf("client spans = %+v", croots)
	}
	hi, lo := croots[0].Hi, croots[0].Lo
	all := collectTrace(t, tracers, hi, lo, 1)
	for _, s := range all {
		if s.Name == "forward" || s.Name == "forward_rpc" {
			t.Fatalf("local open produced a forward span: %+v", s)
		}
		if s.Node != "node0" {
			t.Fatalf("local open recorded on %q: %+v", s.Node, s)
		}
	}
	if len(all) == 0 {
		t.Fatal("owner recorded no serving span for the traced open")
	}
}

// TestClusterUntracedStaysZero: with tracers wired but head sampling
// disabled, a normal open mints nothing and records nothing — the
// zero-alloc contract's behavioral half.
func TestClusterUntracedStaysZero(t *testing.T) {
	tracers := make([]*otrace.Tracer, 2)
	tc := startCluster(t, 2, func(i int, cfg *Config) {
		tracers[i] = otrace.New(otrace.Config{Node: fmt.Sprintf("node%d", i), SampleRate: -1})
		cfg.Trace = tracers[i]
	})
	clientTrace := otrace.New(otrace.Config{Node: "client", SampleRate: -1})
	c := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 8, Trace: clientTrace})

	for f := 0; f < 8; f++ {
		if _, err := c.Open(fmt.Sprintf("/data/f%03d", f)); err != nil {
			t.Fatal(err)
		}
	}
	for i, tr := range append(tracers, clientTrace) {
		if st := tr.Stats(); st.Recorded != 0 {
			t.Fatalf("tracer %d recorded %d spans with sampling off", i, st.Recorded)
		}
	}
}
