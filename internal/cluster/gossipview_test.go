package cluster

import (
	"errors"
	"testing"
	"time"
)

// TestApplyViewSemantics pins the ViewSource contract gossip depends
// on: stale views report (false, nil) — losing a race is not an error —
// while invalid views report a real error, and winners install.
func TestApplyViewSemantics(t *testing.T) {
	tc := startCluster(t, 2, nil)
	n := tc.nodes[0]

	if applied, err := n.ApplyView(1, tc.addrs); applied || err != nil {
		t.Errorf("stale ApplyView = (%v, %v), want (false, nil)", applied, err)
	}
	if n.Stats().Epoch != 1 {
		t.Fatalf("stale apply moved the epoch to %d", n.Epoch())
	}
	if applied, err := n.ApplyView(3, tc.addrs); !applied || err != nil {
		t.Fatalf("ApplyView(3) = (%v, %v), want installed", applied, err)
	}
	if n.Epoch() != 3 {
		t.Fatalf("epoch %d after apply, want 3", n.Epoch())
	}
	if applied, err := n.ApplyView(5, nil); applied || err == nil {
		t.Errorf("memberless ApplyView = (%v, %v), want a validation error", applied, err)
	}
}

// TestViewPullPushBetweenNodes exchanges views over the real wire in
// both directions, including the transient-client path for an address
// outside the caller's installed view.
func TestViewPullPushBetweenNodes(t *testing.T) {
	tc := startCluster(t, 3, nil)
	a, b := tc.nodes[0], tc.nodes[1]

	// b is newer; a pulls and installs.
	if err := b.Update(4, tc.addrs); err != nil {
		t.Fatal(err)
	}
	applied, remote, err := a.ViewPullFrom(tc.addrs[1])
	if err != nil || !applied || remote != 4 {
		t.Fatalf("ViewPullFrom(newer) = (%v, %d, %v), want (true, 4, nil)", applied, remote, err)
	}
	if a.Epoch() != 4 {
		t.Fatalf("a's epoch %d after pull, want 4", a.Epoch())
	}

	// Same epoch on both sides: the pull reports the peer's epoch and
	// installs nothing.
	applied, remote, err = a.ViewPullFrom(tc.addrs[1])
	if err != nil || applied || remote != 4 {
		t.Fatalf("ViewPullFrom(equal) = (%v, %d, %v), want (false, 4, nil)", applied, remote, err)
	}

	// a advances to a view that drops node 2, then pushes it to b.
	if err := a.Update(6, tc.addrs[:2]); err != nil {
		t.Fatal(err)
	}
	remoteEpoch, err := a.ViewPushTo(tc.addrs[1], 6, tc.addrs[:2])
	if err != nil || remoteEpoch != 6 {
		t.Fatalf("ViewPushTo = (%d, %v), want (6, nil)", remoteEpoch, err)
	}
	if b.Epoch() != 6 || len(b.Members()) != 2 {
		t.Fatalf("b after push: epoch %d members %v, want 6/%v", b.Epoch(), b.Members(), tc.addrs[:2])
	}

	// Node 2 is no longer in a's view, so this pull runs over a
	// transient client; node 2 still sits at epoch 1.
	applied, remote, err = a.ViewPullFrom(tc.addrs[2])
	if err != nil || applied || remote != 1 {
		t.Fatalf("transient ViewPullFrom = (%v, %d, %v), want (false, 1, nil)", applied, remote, err)
	}
	if a.Epoch() != 6 {
		t.Fatalf("transient pull moved a's epoch to %d", a.Epoch())
	}
}

// TestDrainGoodbyeConvergesSurvivors is the drain half of the gossip
// acceptance bar: one Drain call removes the departing node from every
// survivor's view with no operator reload anywhere.
func TestDrainGoodbyeConvergesSurvivors(t *testing.T) {
	tc := startCluster(t, 3, nil)
	rep, err := tc.nodes[2].Drain(tc.servers[2])
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoodbyeEpoch != 2 {
		t.Errorf("goodbye epoch %d, want installed+1 = 2", rep.GoodbyeEpoch)
	}
	if rep.GoodbyePushed != 2 || rep.GoodbyeFailed != 0 || rep.GoodbyeSkipped != 0 {
		t.Errorf("goodbye pushed/failed/skipped = %d/%d/%d, want 2/0/0",
			rep.GoodbyePushed, rep.GoodbyeFailed, rep.GoodbyeSkipped)
	}
	for i := 0; i < 2; i++ {
		n := tc.nodes[i]
		if n.Epoch() != 2 {
			t.Errorf("survivor %d epoch %d, want 2", i, n.Epoch())
		}
		for _, m := range n.Members() {
			if m == tc.addrs[2] {
				t.Errorf("survivor %d still lists the drained node", i)
			}
		}
		if len(n.Members()) != 2 {
			t.Errorf("survivor %d has %d members, want 2", i, len(n.Members()))
		}
	}
	// The drainer's own view stays intact (DESIGN.md §13): it keeps
	// serving what it still holds, and the shrunk ring reaches it only
	// if gossip echoes the goodbye back — which is harmless, but must
	// not have happened synchronously here.
	if tc.nodes[2].Epoch() != 1 || !tc.nodes[2].Draining() {
		t.Errorf("drainer epoch %d draining %v, want own view intact and draining",
			tc.nodes[2].Epoch(), tc.nodes[2].Draining())
	}
}

// TestViewHintHookDelivery: hints flow transport → Node → registered
// callback, and unregistering stops them.
func TestViewHintHookDelivery(t *testing.T) {
	tc := startCluster(t, 2, nil)
	type hint struct {
		addr  string
		epoch uint64
	}
	got := make(chan hint, 4)
	tc.nodes[0].OnViewHint(func(addr string, epoch uint64) {
		got <- hint{addr, epoch}
	})
	tc.nodes[0].NoteViewEpoch("peer:9", 7)
	select {
	case h := <-got:
		if h.addr != "peer:9" || h.epoch != 7 {
			t.Errorf("hook got %+v, want peer:9/7", h)
		}
	default:
		t.Fatal("hook not invoked synchronously")
	}
	tc.nodes[0].OnViewHint(nil)
	tc.nodes[0].NoteViewEpoch("peer:9", 8)
	select {
	case h := <-got:
		t.Errorf("unregistered hook still invoked: %+v", h)
	default:
	}
}

// TestViewExchangeRespectsBreaker: a peer in cooldown refuses the
// exchange locally with ErrPeerDown instead of burning a dial.
func TestViewExchangeRespectsBreaker(t *testing.T) {
	tc := startCluster(t, 2, nil)
	n := tc.nodes[0]
	tc.gates[tc.addrs[1]].SetDown(true)
	// Trip the breaker with failing pulls.
	for i := 0; i < defaultFailureThreshold; i++ {
		if _, _, err := n.ViewPullFrom(tc.addrs[1]); err == nil {
			t.Fatal("pull through a down gate succeeded")
		}
	}
	if _, _, err := n.ViewPullFrom(tc.addrs[1]); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("pull with tripped breaker = %v, want ErrPeerDown", err)
	}
	// Heal and lapse the cooldown on the fake clock; the next exchange
	// is the probe and it closes the breaker.
	tc.gates[tc.addrs[1]].SetDown(false)
	tc.clk.Advance(defaultDownDuration + time.Second)
	if _, _, err := n.ViewPullFrom(tc.addrs[1]); err != nil {
		t.Fatalf("post-heal probe pull: %v", err)
	}
}
