// Package cluster shards the aggregating cache across a static set of
// fsnet servers. Each node owns the paths that consistent-hash to it
// (see Ring) and serves them from its own aggregating server; opens that
// land on a non-owner are forwarded to the owner over the pipelined
// fsnet client, and the owner's whole group reply comes back in that one
// hop. Placement is therefore group-affine without any extra machinery:
// a group's anchor path and its learned successors hash together only in
// the owner's metadata, and the single OpenGroup round trip moves the
// entire group to the requesting node, which mirrors it (see mirror) so
// follow-on member opens are local.
//
// A Node plugs into an fsnet.Server as its OpenRouter: the server
// consults RouteOpen before its own cache and store, and everything the
// node declines — paths it owns, and paths whose owner is down — falls
// through to the local aggregating serving path. With replicated backing
// stores that fallback is always correct, so a dead peer degrades
// throughput, never availability: no open errors because a peer died.
//
// Peer health is a consecutive-failure circuit breaker fed only by
// transport errors (fsnet.ErrConnBroken). A tripped breaker short-
// circuits forwarding for DownDuration, then admits exactly one probe;
// the probe's outcome either heals the peer or re-arms the cooldown.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
	"aggcache/internal/singleflight"
)

// Health and forwarding defaults.
const (
	defaultFailureThreshold = 3
	defaultDownDuration     = 2 * time.Second
	defaultPeerTimeout      = 2 * time.Second
)

// Config describes one node's view of the cluster. The peer list is
// static: every node must be constructed with the same Peers set (order
// irrelevant — ring ownership is build-order independent), which is what
// lets each node compute identical placement with no coordination.
type Config struct {
	// Self is this node's own entry in Peers (its advertised address).
	Self string
	// Peers lists every member's address, Self included.
	Peers []string
	// Replicas is the consistent-hash virtual-node count per member
	// (0 selects the ring default).
	Replicas int

	// FailureThreshold is how many consecutive transport failures mark
	// a peer down (default 3; negative is rejected).
	FailureThreshold int
	// DownDuration is how long a tripped peer stays down before one
	// probe is admitted (default 2s).
	DownDuration time.Duration
	// PeerTimeout bounds each forwarded round trip (default 2s). A
	// forward must never hang longer than a degraded local fetch would.
	PeerTimeout time.Duration

	// MirrorCapacity bounds the hot-group mirror in whole groups
	// (0 selects the default of 128, negative disables the mirror).
	MirrorCapacity int
	// MirrorTTL ages mirrored groups so owner-side learning propagates
	// (0 selects the default of 5s, negative never expires).
	MirrorTTL time.Duration

	// Dialer opens a connection to a peer address; nil selects TCP.
	// Tests use it to interpose faultnet gates and latency.
	Dialer func(addr string) (net.Conn, error)
	// Now is the clock for mirror TTLs and breaker cooldowns; nil
	// selects time.Now. Tests substitute a fake clock.
	Now func() time.Time
	// Obs, when set, registers the node's routing counters, a per-peer
	// breaker-state gauge (0 closed, 1 open, 2 half-open), per-peer
	// failure/trip gauges, and a mirror-residency gauge with the given
	// registry, and records breaker transitions to its event log.
	// NodeStats works either way, fed from the same counters.
	Obs *obs.Registry
}

func (cfg Config) withDefaults() Config {
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	if cfg.DownDuration == 0 {
		cfg.DownDuration = defaultDownDuration
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = defaultPeerTimeout
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Node is one member of the peer tier. It implements fsnet.OpenRouter;
// wire it into the co-located server via ServerConfig.Router. All
// methods are safe for concurrent use.
type Node struct {
	cfg   Config
	self  string
	ring  *Ring
	peers map[string]*peer // owner address -> peer, Self excluded

	mirMu  sync.Mutex
	mirror *mirror

	flights singleflight.Group[forward]

	// Routing counters (obs.Counter wraps one atomic each). With cfg.Obs
	// these are the series /metrics exposes, so NodeStats cannot drift.
	localOpens     *obs.Counter
	forwardedOpens *obs.Counter
	mirrorHits     *obs.Counter
	coalesced      *obs.Counter
	degradedOpens  *obs.Counter
	notFound       *obs.Counter
}

// forward is one owner fetch's outcome, shared across coalesced opens.
type forward struct {
	files []fsnet.GroupFile
	err   error
}

// NewNode validates cfg and builds the ring and one lazy-dialing fsnet
// client per remote peer. No connection is opened until the first
// forward, so nodes of a cluster can start in any order.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self must be set")
	}
	if cfg.FailureThreshold < 0 {
		return nil, fmt.Errorf("cluster: negative FailureThreshold %d", cfg.FailureThreshold)
	}
	ring := NewRing(cfg.Replicas)
	ring.Add(cfg.Peers...)
	if _, ok := ring.members[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, cfg.Peers)
	}
	n := &Node{
		cfg:    cfg,
		self:   cfg.Self,
		ring:   ring,
		peers:  make(map[string]*peer),
		mirror: newMirror(cfg.MirrorCapacity, cfg.MirrorTTL, cfg.Now),
	}
	n.wireMetrics(cfg.Obs)
	for _, addr := range ring.Members() {
		if addr == cfg.Self {
			continue
		}
		addr := addr
		client, err := fsnet.NewClient(nil, fsnet.ClientConfig{
			Dialer:  func() (net.Conn, error) { return cfg.Dialer(addr) },
			Timeout: cfg.PeerTimeout,
			// Fail fast: retries would only delay the breaker's verdict,
			// and the degraded local path is always available.
			MaxRetries: 0,
		})
		if err != nil {
			return nil, err
		}
		p := &peer{
			addr:      addr,
			client:    client,
			threshold: uint64(cfg.FailureThreshold),
			downFor:   cfg.DownDuration,
			now:       cfg.Now,
		}
		p.wireMetrics(cfg.Obs)
		n.peers[addr] = p
	}
	return n, nil
}

// wireMetrics initializes the routing counters — standalone atomics with
// no registry, registered series otherwise — plus the pull-style mirror
// residency gauge.
func (n *Node) wireMetrics(reg *obs.Registry) {
	if reg == nil {
		n.localOpens = obs.NewCounter()
		n.forwardedOpens = obs.NewCounter()
		n.mirrorHits = obs.NewCounter()
		n.coalesced = obs.NewCounter()
		n.degradedOpens = obs.NewCounter()
		n.notFound = obs.NewCounter()
		return
	}
	n.localOpens = reg.Counter("cluster_local_opens_total", "opens this node owned, declined to the local serving path")
	n.forwardedOpens = reg.Counter("cluster_forwarded_opens_total", "opens answered by an owner fetch (successful peer hops)")
	n.mirrorHits = reg.Counter("cluster_mirror_hits_total", "opens answered from the hot-group mirror without a peer hop")
	n.coalesced = reg.Counter("cluster_coalesced_forwards_total", "opens that shared another open's in-flight owner fetch")
	n.degradedOpens = reg.Counter("cluster_degraded_opens_total", "opens declined to the local path because the owner was down or the forward failed")
	n.notFound = reg.Counter("cluster_not_found_total", "owner replies that the path does not exist")
	reg.GaugeFunc("cluster_mirror_groups", "groups currently resident in the hot-group mirror", func() float64 {
		n.mirMu.Lock()
		defer n.mirMu.Unlock()
		return float64(n.mirror.groups())
	})
}

// Owner returns the peer address that owns path.
func (n *Node) Owner(path string) string { return n.ring.Owner(path) }

// Self returns this node's own address.
func (n *Node) Self() string { return n.self }

// RouteOpen implements fsnet.OpenRouter. Paths this node owns — and
// paths whose owner is unreachable — are declined so the embedding
// server serves them from its own aggregating cache and store; everything
// else is answered from the mirror or by one OpenGroup hop to the owner,
// with the downstream client's piggybacked history relayed so the
// owner's successor metadata stays as complete as a direct client's.
func (n *Node) RouteOpen(path string, accessed []string) ([]fsnet.GroupFile, bool, error) {
	owner := n.ring.Owner(path)
	if owner == n.self || owner == "" {
		n.localOpens.Add(1)
		return nil, false, nil
	}
	p := n.peers[owner]

	// Mirror first: a mirrored group answers even while its owner is
	// down, and relays the history so it rides the next forward fetch.
	n.mirMu.Lock()
	files, ok := n.mirror.get(path)
	n.mirMu.Unlock()
	if ok {
		n.mirrorHits.Add(1)
		p.client.NoteAccess(accessed...)
		p.client.NoteAccess(path)
		return files, true, nil
	}

	if !p.admit() {
		n.degradedOpens.Add(1)
		return nil, false, nil
	}

	// Coalesce concurrent forwards of the same path: one OpenGroup
	// serves every open that arrived while it was in flight.
	res, _, coalesced := n.flights.Do(path, func() (forward, bool) {
		p.client.NoteAccess(accessed...)
		files, err := p.client.OpenGroup(path)
		switch {
		case err == nil:
			p.noteSuccess()
			n.mirMu.Lock()
			n.mirror.put(files)
			n.mirMu.Unlock()
		case errors.Is(err, fsnet.ErrConnBroken):
			p.noteFailure()
		case errors.Is(err, fsnet.ErrNotFound):
			p.noteSuccess() // the owner answered; not-found is healthy
		}
		return forward{files: files, err: err}, true
	})
	switch {
	case res.err == nil:
		if coalesced {
			n.coalesced.Add(1)
		} else {
			n.forwardedOpens.Add(1)
		}
		return res.files, true, nil
	case errors.Is(res.err, fsnet.ErrNotFound):
		// The owner is authoritative and the stores are replicas: a
		// local re-check cannot succeed, so answer not-found directly.
		n.notFound.Add(1)
		return nil, true, res.err
	default:
		// Transport or server failure: degrade to the local store. The
		// open still succeeds, just without the owner's group metadata.
		n.degradedOpens.Add(1)
		return nil, false, nil
	}
}

// Close shuts down every peer client. In-flight forwards fail over to
// the degraded local path like any other transport failure.
func (n *Node) Close() error {
	var first error
	for _, p := range n.peers {
		if err := p.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PeerStatus is one remote peer's health snapshot.
type PeerStatus struct {
	Addr string
	// Up reports whether forwards are currently admitted (a peer in
	// cooldown reports false; one admitting its probe reports true).
	Up bool
	// Failures is the consecutive transport-failure count (resets on
	// any successful round trip).
	Failures uint64
	// Trips counts how many times the breaker opened.
	Trips uint64
}

// NodeStats is a snapshot of the node's routing activity, shaped for
// JSON export by the aggserve stats endpoint.
type NodeStats struct {
	Self    string
	Members int
	// LocalOpens counts opens this node owned (declined to the local
	// serving path); ForwardedOpens counts opens answered by an owner
	// fetch this open itself performed (coalesced followers are counted
	// under CoalescedForwards instead, so ForwardedOpens is also the
	// number of successful peer hops).
	LocalOpens     uint64
	ForwardedOpens uint64
	// MirrorHits were answered from the hot-group mirror without a peer
	// hop; MirrorGroups is its current residency.
	MirrorHits   uint64
	MirrorGroups int
	// CoalescedForwards counts opens that shared another open's
	// in-flight owner fetch.
	CoalescedForwards uint64
	// DegradedOpens were declined to the local path because the owner
	// was down or the forward failed.
	DegradedOpens uint64
	// NotFound counts owner replies that the path does not exist.
	NotFound uint64
	Peers    []PeerStatus
}

// Stats returns a point-in-time snapshot.
func (n *Node) Stats() NodeStats {
	st := NodeStats{
		Self:              n.self,
		Members:           n.ring.Len(),
		LocalOpens:        n.localOpens.Load(),
		ForwardedOpens:    n.forwardedOpens.Load(),
		MirrorHits:        n.mirrorHits.Load(),
		CoalescedForwards: n.coalesced.Load(),
		DegradedOpens:     n.degradedOpens.Load(),
		NotFound:          n.notFound.Load(),
	}
	n.mirMu.Lock()
	st.MirrorGroups = n.mirror.groups()
	n.mirMu.Unlock()
	for _, p := range n.peers {
		st.Peers = append(st.Peers, PeerStatus{
			Addr:     p.addr,
			Up:       p.up(),
			Failures: p.fails.Load(),
			Trips:    p.trips.Load(),
		})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Addr < st.Peers[j].Addr })
	return st
}

// peer couples a lazy fsnet client with a consecutive-failure circuit
// breaker. Only transport failures (ErrConnBroken) feed the breaker:
// typed server errors prove the peer is alive.
type peer struct {
	addr      string
	client    *fsnet.Client
	threshold uint64
	downFor   time.Duration
	now       func() time.Time

	fails     atomic.Uint64 // consecutive transport failures
	trips     atomic.Uint64
	downUntil atomic.Int64 // unixnano; 0 = up
	probe     atomic.Bool  // half-open: one probe admitted post-cooldown

	// state mirrors the breaker into a gauge (0 closed, 1 open, 2
	// half-open) and events records the transitions; both nil without a
	// registry, so the breaker itself pays nothing extra.
	state  *obs.Gauge
	events *obs.EventLog
}

// Breaker gauge values exported as cluster_peer_state.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// wireMetrics registers the peer's breaker-state gauge plus pull-style
// failure and trip gauges, labelled by peer address.
func (p *peer) wireMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.state = reg.Gauge("cluster_peer_state", "peer breaker state: 0 closed, 1 open, 2 half-open", obs.L("peer", p.addr))
	p.events = reg.Events()
	reg.GaugeFunc("cluster_peer_failures", "consecutive transport failures to the peer", func() float64 {
		return float64(p.fails.Load())
	}, obs.L("peer", p.addr))
	reg.GaugeFunc("cluster_peer_trips", "times the peer's breaker opened", func() float64 {
		return float64(p.trips.Load())
	}, obs.L("peer", p.addr))
}

// admit reports whether a forward may proceed. While the cooldown runs
// every forward is refused; once it lapses exactly one caller wins the
// probe slot and the rest stay refused until the probe's outcome lands.
func (p *peer) admit() bool {
	du := p.downUntil.Load()
	if du == 0 {
		return true
	}
	if p.now().UnixNano() < du {
		return false
	}
	if !p.probe.CompareAndSwap(false, true) {
		return false
	}
	// Exactly one caller gets here per cooldown lapse: the half-open
	// transition, observed once.
	p.state.Set(breakerHalfOpen)
	p.events.Record("breaker_half_open", obs.F("peer", p.addr))
	return true
}

// up reports the breaker state for stats (true once cooldown lapsed,
// even before a probe has confirmed recovery).
func (p *peer) up() bool {
	du := p.downUntil.Load()
	return du == 0 || p.now().UnixNano() >= du
}

func (p *peer) noteSuccess() {
	p.fails.Store(0)
	// Swap detects the actual transition so concurrent successes emit
	// one breaker_close, and steady-state successes emit none.
	prev := p.downUntil.Swap(0)
	p.probe.Store(false)
	if prev != 0 {
		p.state.Set(breakerClosed)
		p.events.Record("breaker_close", obs.F("peer", p.addr))
	}
}

func (p *peer) noteFailure() {
	fails := p.fails.Add(1)
	if fails < p.threshold {
		return
	}
	prev := p.downUntil.Swap(p.now().Add(p.downFor).UnixNano())
	p.probe.Store(false)
	p.trips.Add(1)
	// Emit only on a real transition: closed→open (prev zero) or a
	// failed probe re-opening (prev lapsed). Failures landing while the
	// cooldown still runs just extend it silently.
	if prev == 0 || p.now().UnixNano() >= prev {
		p.state.Set(breakerOpen)
		p.events.Record("breaker_open",
			obs.F("peer", p.addr),
			obs.F("fails", strconv.FormatUint(fails, 10)))
	}
}
