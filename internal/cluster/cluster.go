// Package cluster shards the aggregating cache across a set of fsnet
// servers. Each node owns the paths that consistent-hash to it (see
// Ring) and serves them from its own aggregating server; opens that
// land on a non-owner are forwarded to the owner over the pipelined
// fsnet client, and the owner's whole group reply comes back in that one
// hop. Placement is therefore group-affine without any extra machinery:
// a group's anchor path and its learned successors hash together only in
// the owner's metadata, and the single OpenGroup round trip moves the
// entire group to the requesting node, which mirrors it (see mirror) so
// follow-on member opens are local.
//
// A Node plugs into an fsnet.Server as its OpenRouter: the server
// consults RouteOpen before its own cache and store, and everything the
// node declines — paths it owns, and paths whose owner is down — falls
// through to the local aggregating serving path. With replicated backing
// stores that fallback is always correct, so a dead peer degrades
// throughput, never availability: no open errors because a peer died.
//
// Membership is dynamic: the ring and peer set live in an immutable,
// epoch-numbered view swapped atomically by Update (see membership.go),
// so nodes join and leave a running cluster without a restart. Graceful
// departure is Drain (drain.go): the leaving node streams each owned
// group's learned state to its new owner. While a peer is down past its
// breaker, accesses bound for it are staged in a bounded hint queue and
// replayed when the peer heals (hints.go).
//
// Peer health is a consecutive-failure circuit breaker fed only by
// transport errors (fsnet.ErrConnBroken). A tripped breaker short-
// circuits forwarding for DownDuration, then admits exactly one probe;
// the probe's outcome either heals the peer or re-arms the cooldown.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
	"aggcache/internal/obs/otrace"
	"aggcache/internal/singleflight"
)

// Health and forwarding defaults.
const (
	defaultFailureThreshold = 3
	defaultDownDuration     = 2 * time.Second
	defaultPeerTimeout      = 2 * time.Second
	defaultHintCapacity     = 512
)

// Config describes one node's view of the cluster. Peers is only the
// initial membership (epoch 1): every node must start from the same
// Peers set (order irrelevant — ring ownership is build-order
// independent), which is what lets each node compute identical placement
// with no coordination, and later views are installed with Update using
// the same agreed list on every node.
type Config struct {
	// Self is this node's own entry in Peers (its advertised address).
	Self string
	// Peers lists every member's address, Self included.
	Peers []string
	// Replicas is the consistent-hash virtual-node count per member
	// (0 selects the ring default).
	Replicas int

	// FailureThreshold is how many consecutive transport failures mark
	// a peer down (default 3; negative is rejected).
	FailureThreshold int
	// DownDuration is how long a tripped peer stays down before one
	// probe is admitted (default 2s).
	DownDuration time.Duration
	// PeerTimeout bounds each forwarded round trip (default 2s). A
	// forward must never hang longer than a degraded local fetch would.
	PeerTimeout time.Duration

	// MirrorCapacity bounds the hot-group mirror in whole groups
	// (0 selects the default of 128, negative disables the mirror).
	MirrorCapacity int
	// MirrorTTL ages mirrored groups so owner-side learning propagates
	// (0 selects the default of 5s, negative never expires).
	MirrorTTL time.Duration

	// HintCapacity bounds the per-dead-peer hinted-handoff queue in
	// staged access paths (0 selects the default of 512, negative
	// disables hinting). Overflow drops oldest-first and is counted.
	HintCapacity int

	// Dialer opens a connection to a peer address; nil selects TCP.
	// Tests use it to interpose faultnet gates and latency.
	Dialer func(addr string) (net.Conn, error)
	// Now is the clock for mirror TTLs and breaker cooldowns; nil
	// selects time.Now. Tests substitute a fake clock.
	Now func() time.Time
	// Obs, when set, registers the node's routing counters, a per-peer
	// breaker-state gauge (0 closed, 1 open, 2 half-open), per-peer
	// failure/trip gauges, membership/drain/hint counters, and a mirror-
	// residency gauge with the given registry, and records breaker and
	// membership transitions to its event log. NodeStats works either
	// way, fed from the same counters.
	Obs *obs.Registry
	// Trace, when set, records routing spans — mirror hits, coalesced
	// waits, forwarded RPCs, hint replays — as children of the request's
	// inbound trace context, and propagates the context to the owning
	// peer on forwarded opens (fsnet msgTraceCtx). Nil keeps routing
	// span-free; untraced requests cost nothing either way.
	Trace *otrace.Tracer
}

func (cfg Config) withDefaults() Config {
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	if cfg.DownDuration == 0 {
		cfg.DownDuration = defaultDownDuration
	}
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = defaultPeerTimeout
	}
	if cfg.HintCapacity == 0 {
		cfg.HintCapacity = defaultHintCapacity
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return cfg
}

// Node is one member of the peer tier. It implements fsnet.OpenRouter;
// wire it into the co-located server via ServerConfig.Router. All
// methods are safe for concurrent use.
type Node struct {
	cfg  Config
	self string

	// view is the current membership (see membership.go). Readers load
	// the pointer once and work against that immutable view to
	// completion; mutators (Update, Drain, Close) serialize on viewMu.
	viewMu sync.Mutex
	view   atomic.Pointer[view]
	closed bool

	draining atomic.Bool

	// viewHint is the registered gossip hint callback (see OnViewHint in
	// gossipview.go); nil until a gossiper subscribes.
	viewHint atomic.Pointer[func(addr string, epoch uint64)]

	mirMu  sync.Mutex
	mirror *mirror

	hints *hintTable

	flights singleflight.Group[forward]

	// Routing counters (obs.Counter wraps one atomic each). With cfg.Obs
	// these are the series /metrics exposes, so NodeStats cannot drift.
	localOpens     *obs.Counter
	forwardedOpens *obs.Counter
	mirrorHits     *obs.Counter
	coalesced      *obs.Counter
	degradedOpens  *obs.Counter
	notFound       *obs.Counter

	// Membership, hint, and drain accounting.
	updates       *obs.Counter
	staleUpdates  *obs.Counter
	hintsQueued   *obs.Counter
	hintsReplayed *obs.Counter
	hintsDropped  *obs.Counter
	drainSent     *obs.Counter
	drainFailed   *obs.Counter

	events *obs.EventLog
}

// forward is one owner fetch's outcome, shared across coalesced opens.
type forward struct {
	files []fsnet.GroupFile
	err   error
}

var _ fsnet.TracedRouter = (*Node)(nil)

// NewNode validates cfg and installs the epoch-1 view: the ring over
// cfg.Peers plus one lazy-dialing fsnet client per remote peer. No
// connection is opened until the first forward, so nodes of a cluster
// can start in any order.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, errors.New("cluster: Self must be set")
	}
	if cfg.FailureThreshold < 0 {
		return nil, fmt.Errorf("cluster: negative FailureThreshold %d", cfg.FailureThreshold)
	}
	ring := NewRing(cfg.Replicas)
	ring.Add(cfg.Peers...)
	if !ring.Has(cfg.Self) {
		return nil, fmt.Errorf("cluster: Self %q not in Peers %v", cfg.Self, cfg.Peers)
	}
	n := &Node{
		cfg:    cfg,
		self:   cfg.Self,
		mirror: newMirror(cfg.MirrorCapacity, cfg.MirrorTTL, cfg.Now),
		hints:  newHintTable(cfg.HintCapacity),
	}
	n.wireMetrics(cfg.Obs)
	v := &view{epoch: 1, ring: ring, peers: make(map[string]*peer), hash: viewHash(ring.Members())}
	for _, addr := range ring.Members() {
		if addr == cfg.Self {
			continue
		}
		p, err := n.newPeer(addr)
		if err != nil {
			return nil, err
		}
		v.peers[addr] = p
	}
	n.view.Store(v)
	return n, nil
}

// newPeer builds one remote peer: a lazy fsnet client plus a fresh
// breaker, wired to the registry. Called at construction and on every
// membership update that introduces a member.
func (n *Node) newPeer(addr string) (*peer, error) {
	dial := n.cfg.Dialer
	client, err := fsnet.NewClient(nil, fsnet.ClientConfig{
		Dialer:  func() (net.Conn, error) { return dial(addr) },
		Timeout: n.cfg.PeerTimeout,
		// Fail fast: retries would only delay the breaker's verdict,
		// and the degraded local path is always available.
		MaxRetries: 0,
		// Piggyback this node's view epoch on every forward so peers
		// learn of membership changes without a dedicated exchange.
		Views: n,
	})
	if err != nil {
		return nil, err
	}
	p := &peer{
		addr:      addr,
		client:    client,
		threshold: uint64(n.cfg.FailureThreshold),
		downFor:   n.cfg.DownDuration,
		now:       n.cfg.Now,
	}
	p.wireMetrics(n.cfg.Obs)
	return p, nil
}

// wireMetrics initializes the routing counters — standalone atomics with
// no registry, registered series otherwise — plus the pull-style mirror
// residency, membership-epoch, drain, and hint-depth gauges.
func (n *Node) wireMetrics(reg *obs.Registry) {
	if reg == nil {
		n.localOpens = obs.NewCounter()
		n.forwardedOpens = obs.NewCounter()
		n.mirrorHits = obs.NewCounter()
		n.coalesced = obs.NewCounter()
		n.degradedOpens = obs.NewCounter()
		n.notFound = obs.NewCounter()
		n.updates = obs.NewCounter()
		n.staleUpdates = obs.NewCounter()
		n.hintsQueued = obs.NewCounter()
		n.hintsReplayed = obs.NewCounter()
		n.hintsDropped = obs.NewCounter()
		n.drainSent = obs.NewCounter()
		n.drainFailed = obs.NewCounter()
		return
	}
	n.localOpens = reg.Counter("cluster_local_opens_total", "opens this node owned, declined to the local serving path")
	n.forwardedOpens = reg.Counter("cluster_forwarded_opens_total", "opens answered by an owner fetch (successful peer hops)")
	n.mirrorHits = reg.Counter("cluster_mirror_hits_total", "opens answered from the hot-group mirror without a peer hop")
	n.coalesced = reg.Counter("cluster_coalesced_forwards_total", "opens that shared another open's in-flight owner fetch")
	n.degradedOpens = reg.Counter("cluster_degraded_opens_total", "opens declined to the local path because the owner was down or the forward failed")
	n.notFound = reg.Counter("cluster_not_found_total", "owner replies that the path does not exist")
	n.updates = reg.Counter("cluster_membership_updates_total", "membership views installed by Update")
	n.staleUpdates = reg.Counter("cluster_membership_stale_total", "membership updates rejected for a stale epoch")
	n.hintsQueued = reg.Counter("cluster_hints_queued_total", "access paths staged for a down peer")
	n.hintsReplayed = reg.Counter("cluster_hints_replayed_total", "staged access paths delivered to a healed peer")
	n.hintsDropped = reg.Counter("cluster_hints_dropped_total", "staged access paths dropped: queue overflow (oldest first) or peer removed")
	n.drainSent = reg.Counter("cluster_drain_groups_sent_total", "groups handed off to their new owners by Drain")
	n.drainFailed = reg.Counter("cluster_drain_groups_failed_total", "groups Drain could not deliver to their new owners")
	n.events = reg.Events()
	reg.GaugeFunc("cluster_mirror_groups", "groups currently resident in the hot-group mirror", func() float64 {
		n.mirMu.Lock()
		defer n.mirMu.Unlock()
		return float64(n.mirror.groups())
	})
	reg.GaugeFunc("cluster_membership_epoch", "epoch of the installed membership view", func() float64 {
		return float64(n.Epoch())
	})
	reg.GaugeFunc("cluster_draining", "1 while the node is draining (readiness false)", func() float64 {
		if n.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("cluster_hint_depth", "access paths currently staged across all hint queues", func() float64 {
		return float64(n.hints.depth())
	})
}

// Owner returns the peer address that owns path in the current view.
func (n *Node) Owner(path string) string { return n.view.Load().ring.Owner(path) }

// Self returns this node's own address.
func (n *Node) Self() string { return n.self }

// RouteOpen implements fsnet.OpenRouter. Paths this node owns — and
// paths whose owner is unreachable — are declined so the embedding
// server serves them from its own aggregating cache and store; everything
// else is answered from the mirror or by one OpenGroup hop to the owner,
// with the downstream client's piggybacked history relayed so the
// owner's successor metadata stays as complete as a direct client's.
//
// The membership view is loaded once per call: an open that raced a
// ring swap completes against the view it started with.
func (n *Node) RouteOpen(path string, accessed []string) ([]fsnet.GroupFile, bool, error) {
	return n.RouteOpenTraced(path, accessed, otrace.Ctx{})
}

// RouteOpenTraced implements fsnet.TracedRouter: RouteOpen carrying the
// request's trace context. A sampled context gets child spans for the
// routing outcome — "mirror", "coalesced_wait", or "forward_rpc" — and
// rides the forwarded OpenGroup to the owner, whose server records its
// own spans under the same trace ID; the fleet scraper stitches the two
// nodes' rings back into one tree.
func (n *Node) RouteOpenTraced(path string, accessed []string, tctx otrace.Ctx) ([]fsnet.GroupFile, bool, error) {
	v := n.view.Load()
	owner := v.ring.Owner(path)
	if owner == n.self || owner == "" {
		n.localOpens.Add(1)
		return nil, false, nil
	}
	p := v.peers[owner]

	tr := n.cfg.Trace
	var tstart time.Time
	if tctx.Sampled {
		tstart = n.cfg.Now()
	}

	// Mirror first: a mirrored group answers even while its owner is
	// down, and relays the history so it rides the next forward fetch.
	n.mirMu.Lock()
	files, ok := n.mirror.get(path)
	n.mirMu.Unlock()
	if ok {
		n.mirrorHits.Add(1)
		p.client.NoteAccess(accessed...)
		p.client.NoteAccess(path)
		if tctx.Sampled {
			tr.Record(tr.Child(tctx), "mirror", path, tstart, n.cfg.Now().Sub(tstart))
		}
		return files, true, nil
	}

	if !p.admit() {
		// Hinted handoff: the owner is down, so stage the access history
		// locally and replay it when the probe heals the peer. The open
		// itself degrades to the local path as before.
		n.stageHints(p.addr, path, accessed)
		n.degradedOpens.Add(1)
		return nil, false, nil
	}

	// Coalesce concurrent forwards of the same path: one OpenGroup
	// serves every open that arrived while it was in flight. Only the
	// leader's context travels downstream; a sampled follower records
	// just its local wait below.
	res, _, coalesced := n.flights.Do(path, func() (forward, bool) {
		p.client.NoteAccess(accessed...)
		fctx := tr.Child(tctx)
		var fstart time.Time
		if fctx.Sampled {
			fstart = n.cfg.Now()
		}
		files, err := p.client.OpenGroupCtx(path, fctx)
		if fctx.Sampled {
			tr.Record(fctx, "forward_rpc", path, fstart, n.cfg.Now().Sub(fstart))
		}
		switch {
		case err == nil:
			if p.noteSuccess() {
				go n.replayHints(p)
			}
			n.mirMu.Lock()
			n.mirror.put(files, p.addr)
			n.mirMu.Unlock()
		case errors.Is(err, fsnet.ErrConnBroken):
			p.noteFailure()
		case errors.Is(err, fsnet.ErrNotFound):
			// The owner answered; not-found is healthy.
			if p.noteSuccess() {
				go n.replayHints(p)
			}
		}
		return forward{files: files, err: err}, true
	})
	switch {
	case res.err == nil:
		if coalesced {
			n.coalesced.Add(1)
			if tctx.Sampled {
				tr.Record(tr.Child(tctx), "coalesced_wait", path, tstart, n.cfg.Now().Sub(tstart))
			}
		} else {
			n.forwardedOpens.Add(1)
		}
		return res.files, true, nil
	case errors.Is(res.err, fsnet.ErrNotFound):
		// The owner is authoritative and the stores are replicas: a
		// local re-check cannot succeed, so answer not-found directly.
		n.notFound.Add(1)
		return nil, true, res.err
	default:
		// Transport or server failure: degrade to the local store. The
		// open still succeeds, just without the owner's group metadata.
		n.degradedOpens.Add(1)
		return nil, false, nil
	}
}

// Close shuts down every peer client of the current view. In-flight
// forwards fail over to the degraded local path like any other
// transport failure.
func (n *Node) Close() error {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	var first error
	for _, p := range n.view.Load().peers {
		if err := p.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PeerStatus is one remote peer's health snapshot.
type PeerStatus struct {
	Addr string
	// Up reports whether forwards are currently admitted (a peer in
	// cooldown reports false; one admitting its probe reports true).
	Up bool
	// Failures is the consecutive transport-failure count (resets on
	// any successful round trip).
	Failures uint64
	// Trips counts how many times the breaker opened.
	Trips uint64
}

// NodeStats is a snapshot of the node's routing activity, shaped for
// JSON export by the aggserve stats endpoint.
type NodeStats struct {
	Self    string
	Members int
	// Epoch numbers the installed membership view; Draining reports
	// whether the node has begun its graceful departure.
	Epoch    uint64
	Draining bool
	// LocalOpens counts opens this node owned (declined to the local
	// serving path); ForwardedOpens counts opens answered by an owner
	// fetch this open itself performed (coalesced followers are counted
	// under CoalescedForwards instead, so ForwardedOpens is also the
	// number of successful peer hops).
	LocalOpens     uint64
	ForwardedOpens uint64
	// MirrorHits were answered from the hot-group mirror without a peer
	// hop; MirrorGroups is its current residency.
	MirrorHits   uint64
	MirrorGroups int
	// CoalescedForwards counts opens that shared another open's
	// in-flight owner fetch.
	CoalescedForwards uint64
	// DegradedOpens were declined to the local path because the owner
	// was down or the forward failed.
	DegradedOpens uint64
	// NotFound counts owner replies that the path does not exist.
	NotFound uint64
	// Hint queue accounting: paths staged for down peers, paths
	// replayed after a heal, paths dropped (overflow or peer removal),
	// and the current staged depth across all queues.
	HintsQueued   uint64
	HintsReplayed uint64
	HintsDropped  uint64
	HintDepth     int
	// Drain accounting: groups handed off to their new owners, and
	// groups the drain could not deliver.
	DrainGroupsSent   uint64
	DrainGroupsFailed uint64
	Peers             []PeerStatus
}

// Stats returns a point-in-time snapshot against the current view.
func (n *Node) Stats() NodeStats {
	v := n.view.Load()
	st := NodeStats{
		Self:              n.self,
		Members:           v.ring.Len(),
		Epoch:             v.epoch,
		Draining:          n.draining.Load(),
		LocalOpens:        n.localOpens.Load(),
		ForwardedOpens:    n.forwardedOpens.Load(),
		MirrorHits:        n.mirrorHits.Load(),
		CoalescedForwards: n.coalesced.Load(),
		DegradedOpens:     n.degradedOpens.Load(),
		NotFound:          n.notFound.Load(),
		HintsQueued:       n.hintsQueued.Load(),
		HintsReplayed:     n.hintsReplayed.Load(),
		HintsDropped:      n.hintsDropped.Load(),
		HintDepth:         n.hints.depth(),
		DrainGroupsSent:   n.drainSent.Load(),
		DrainGroupsFailed: n.drainFailed.Load(),
	}
	n.mirMu.Lock()
	st.MirrorGroups = n.mirror.groups()
	n.mirMu.Unlock()
	for _, p := range v.peers {
		st.Peers = append(st.Peers, PeerStatus{
			Addr:     p.addr,
			Up:       p.up(),
			Failures: p.fails.Load(),
			Trips:    p.trips.Load(),
		})
	}
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].Addr < st.Peers[j].Addr })
	return st
}

// peer couples a lazy fsnet client with a consecutive-failure circuit
// breaker. Only transport failures (ErrConnBroken) feed the breaker:
// typed server errors prove the peer is alive.
type peer struct {
	addr      string
	client    *fsnet.Client
	threshold uint64
	downFor   time.Duration
	now       func() time.Time

	fails     atomic.Uint64 // consecutive transport failures
	trips     atomic.Uint64
	downUntil atomic.Int64 // unixnano; 0 = up
	probe     atomic.Bool  // half-open: one probe admitted post-cooldown

	// state mirrors the breaker into a gauge (0 closed, 1 open, 2
	// half-open) and events records the transitions; both nil without a
	// registry, so the breaker itself pays nothing extra.
	state  *obs.Gauge
	events *obs.EventLog
}

// Breaker gauge values exported as cluster_peer_state.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

// wireMetrics registers the peer's breaker-state gauge plus pull-style
// failure and trip gauges, labelled by peer address. Registration is
// idempotent, so a peer removed and later re-added reuses the same
// series; the GaugeFunc callbacks are replaced to read the new peer's
// (fresh) breaker state.
func (p *peer) wireMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.state = reg.Gauge("cluster_peer_state", "peer breaker state: 0 closed, 1 open, 2 half-open", obs.L("peer", p.addr))
	p.state.Set(breakerClosed)
	p.events = reg.Events()
	reg.GaugeFunc("cluster_peer_failures", "consecutive transport failures to the peer", func() float64 {
		return float64(p.fails.Load())
	}, obs.L("peer", p.addr))
	reg.GaugeFunc("cluster_peer_trips", "times the peer's breaker opened", func() float64 {
		return float64(p.trips.Load())
	}, obs.L("peer", p.addr))
}

// admit reports whether a forward may proceed. While the cooldown runs
// every forward is refused; once it lapses exactly one caller wins the
// probe slot and the rest stay refused until the probe's outcome lands.
func (p *peer) admit() bool {
	du := p.downUntil.Load()
	if du == 0 {
		return true
	}
	if p.now().UnixNano() < du {
		return false
	}
	if !p.probe.CompareAndSwap(false, true) {
		return false
	}
	// Exactly one caller gets here per cooldown lapse: the half-open
	// transition, observed once.
	p.state.Set(breakerHalfOpen)
	p.events.Record("breaker_half_open", obs.F("peer", p.addr))
	return true
}

// up reports the breaker state for stats (true once cooldown lapsed,
// even before a probe has confirmed recovery).
func (p *peer) up() bool {
	du := p.downUntil.Load()
	return du == 0 || p.now().UnixNano() >= du
}

// noteSuccess resets the breaker and reports whether this success healed
// a down peer — the edge on which staged hints are replayed.
func (p *peer) noteSuccess() (healed bool) {
	p.fails.Store(0)
	// Swap detects the actual transition so concurrent successes emit
	// one breaker_close, and steady-state successes emit none.
	prev := p.downUntil.Swap(0)
	p.probe.Store(false)
	if prev != 0 {
		p.state.Set(breakerClosed)
		p.events.Record("breaker_close", obs.F("peer", p.addr))
		return true
	}
	return false
}

func (p *peer) noteFailure() {
	fails := p.fails.Add(1)
	if fails < p.threshold {
		return
	}
	prev := p.downUntil.Swap(p.now().Add(p.downFor).UnixNano())
	p.probe.Store(false)
	p.trips.Add(1)
	// Emit only on a real transition: closed→open (prev zero) or a
	// failed probe re-opening (prev lapsed). Failures landing while the
	// cooldown still runs just extend it silently.
	if prev == 0 || p.now().UnixNano() >= prev {
		p.state.Set(breakerOpen)
		p.events.Record("breaker_open",
			obs.F("peer", p.addr),
			obs.F("fails", strconv.FormatUint(fails, 10)))
	}
}
