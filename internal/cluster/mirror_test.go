package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"aggcache/internal/fsnet"
)

// tick is a fake clock for mirror TTL and breaker cooldown tests.
type tick struct {
	mu sync.Mutex
	t  time.Time
}

func newTick() *tick { return &tick{t: time.Unix(1000, 0)} }

func (c *tick) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *tick) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mkGroup(paths ...string) []fsnet.GroupFile {
	out := make([]fsnet.GroupFile, len(paths))
	for i, p := range paths {
		out[i] = fsnet.GroupFile{Path: p, Data: []byte("data " + p)}
	}
	return out
}

func TestMirrorIndexesEveryMember(t *testing.T) {
	clk := newTick()
	m := newMirror(4, time.Minute, clk.Now)
	m.put(mkGroup("/a", "/b", "/c"), "peer")

	// Anchor lookup returns the group as stored.
	files, ok := m.get("/a")
	if !ok || len(files) != 3 || files[0].Path != "/a" {
		t.Fatalf("get(/a) = %v, %v", files, ok)
	}
	// Member lookup reorders: demanded path leads, rest keep order.
	files, ok = m.get("/c")
	if !ok || len(files) != 3 {
		t.Fatalf("get(/c) = %v, %v", files, ok)
	}
	if files[0].Path != "/c" || files[1].Path != "/a" || files[2].Path != "/b" {
		t.Errorf("member get order = %q %q %q", files[0].Path, files[1].Path, files[2].Path)
	}
	if string(files[0].Data) != "data /c" {
		t.Errorf("member data = %q", files[0].Data)
	}
	if _, ok := m.get("/missing"); ok {
		t.Error("get(/missing) hit")
	}
	if m.hits != 2 || m.misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", m.hits, m.misses)
	}
}

func TestMirrorTTLExpiry(t *testing.T) {
	clk := newTick()
	m := newMirror(4, time.Second, clk.Now)
	m.put(mkGroup("/a", "/b"), "peer")
	if _, ok := m.get("/a"); !ok {
		t.Fatal("fresh entry missed")
	}
	clk.Advance(1500 * time.Millisecond)
	if _, ok := m.get("/a"); ok {
		t.Error("expired entry still served")
	}
	// Expiry evicts the whole group, every index included.
	if _, ok := m.get("/b"); ok {
		t.Error("expired group still served via member")
	}
	if m.groups() != 0 {
		t.Errorf("groups = %d after expiry, want 0", m.groups())
	}
	if m.expired != 1 {
		t.Errorf("expired = %d, want 1", m.expired)
	}
}

func TestMirrorNeverExpires(t *testing.T) {
	clk := newTick()
	m := newMirror(4, -1, clk.Now)
	m.put(mkGroup("/a"), "peer")
	clk.Advance(1000 * time.Hour)
	if _, ok := m.get("/a"); !ok {
		t.Error("negative TTL entry expired")
	}
}

func TestMirrorLRUEviction(t *testing.T) {
	clk := newTick()
	m := newMirror(2, time.Minute, clk.Now)
	m.put(mkGroup("/g1", "/g1.m"), "peer")
	m.put(mkGroup("/g2"), "peer")
	m.get("/g1") // touch: g2 is now LRU
	m.put(mkGroup("/g3"), "peer")
	if _, ok := m.get("/g2"); ok {
		t.Error("LRU group survived eviction")
	}
	if _, ok := m.get("/g1"); !ok {
		t.Error("recently used group evicted")
	}
	if _, ok := m.get("/g3"); !ok {
		t.Error("fresh group evicted")
	}
	if m.evicted != 1 {
		t.Errorf("evicted = %d, want 1", m.evicted)
	}
}

func TestMirrorNewerGroupWinsSharedMember(t *testing.T) {
	clk := newTick()
	m := newMirror(4, time.Minute, clk.Now)
	m.put(mkGroup("/a", "/shared"), "peer")
	m.put(mkGroup("/b", "/shared"), "peer")
	files, ok := m.get("/shared")
	if !ok || files[1].Path != "/b" {
		t.Fatalf("shared member resolves to %v, want /b's group", files)
	}
	// /a's group is still reachable through its anchor.
	if files, ok := m.get("/a"); !ok || len(files) != 2 {
		t.Errorf("get(/a) = %v, %v after member re-point", files, ok)
	}
}

func TestMirrorSingleMemberOverlapDropsOldGroup(t *testing.T) {
	clk := newTick()
	m := newMirror(4, time.Minute, clk.Now)
	m.put(mkGroup("/solo"), "peer")
	m.put(mkGroup("/other", "/solo"), "peer")
	if m.groups() != 1 {
		t.Errorf("groups = %d, want 1 (old single-member group unreachable)", m.groups())
	}
	files, ok := m.get("/solo")
	if !ok || files[1].Path != "/other" {
		t.Errorf("get(/solo) = %v, %v", files, ok)
	}
}

func TestMirrorDisabledIsNilSafe(t *testing.T) {
	m := newMirror(-1, 0, newTick().Now)
	if m != nil {
		t.Fatal("capacity < 0 should disable the mirror")
	}
	m.put(mkGroup("/a"), "peer")
	if _, ok := m.get("/a"); ok {
		t.Error("disabled mirror served a hit")
	}
	if m.groups() != 0 {
		t.Error("disabled mirror reports residency")
	}
}

func TestMirrorManyGroups(t *testing.T) {
	clk := newTick()
	m := newMirror(8, time.Minute, clk.Now)
	for i := 0; i < 32; i++ {
		anchor := fmt.Sprintf("/g%02d", i)
		m.put(mkGroup(anchor, anchor+".m1", anchor+".m2"), "peer")
	}
	if m.groups() != 8 {
		t.Errorf("groups = %d, want capacity 8", m.groups())
	}
	// Index size tracks residency: 3 paths per resident group.
	if len(m.entries) != 24 {
		t.Errorf("index size = %d, want 24", len(m.entries))
	}
	// The newest 8 survive.
	for i := 24; i < 32; i++ {
		if _, ok := m.get(fmt.Sprintf("/g%02d.m2", i)); !ok {
			t.Errorf("recent group g%02d evicted", i)
		}
	}
}
