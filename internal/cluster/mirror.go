package cluster

import (
	"container/list"
	"time"

	"aggcache/internal/fsnet"
)

// Mirror cache defaults: capacity in whole groups, TTL per group.
const (
	defaultMirrorCapacity = 128
	defaultMirrorTTL      = 5 * time.Second
)

// mirror is the node-level hot-group cache. It stores whole peer-fetched
// groups, indexed under every member path, so an open of any file in an
// already-mirrored group is a local answer — the group-affinity payoff a
// per-file cache would forfeit. Entries expire after a TTL because
// groups evolve as the owner keeps learning; a mirror that never aged
// would pin a remote group's first observed shape forever.
//
// Hotspot motivation: consistent hashing places each path on exactly one
// owner, so a skewed workload concentrates on one peer. The mirror
// absorbs repeat opens of hot groups at the requesting node, turning a
// per-open peer hop into one hop per group per TTL window.
type mirror struct {
	capacity int
	ttl      time.Duration // <0 means entries never expire
	now      func() time.Time

	entries map[string]*list.Element // member path -> LRU element
	order   *list.List               // of *mirrorEntry, front = most recent

	hits, misses, expired, evicted uint64
}

type mirrorEntry struct {
	files  []fsnet.GroupFile
	stored time.Time
	// owner is the peer the group was fetched from, so a membership
	// change that removes the peer can purge its groups (the new owner
	// may build the group differently; serving the departed peer's
	// shape until TTL would hide the rebalance).
	owner string
}

// newMirror returns a mirror with cfg-normalized knobs, or nil when the
// mirror is disabled (capacity < 0). A nil *mirror is a valid receiver
// for get/put/stats: every operation is a no-op miss.
func newMirror(capacity int, ttl time.Duration, now func() time.Time) *mirror {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultMirrorCapacity
	}
	if ttl == 0 {
		ttl = defaultMirrorTTL
	}
	return &mirror{
		capacity: capacity,
		ttl:      ttl,
		now:      now,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// get returns the mirrored group containing path — reordered so path
// leads, as the open reply demands — or ok=false on miss/expiry. The
// returned files share data slices with the mirror; callers treat them
// as read-only (the serving path only serializes them).
//
// Callers hold the node mutex; the mirror has no lock of its own.
func (m *mirror) get(path string) ([]fsnet.GroupFile, bool) {
	if m == nil {
		return nil, false
	}
	el, ok := m.entries[path]
	if !ok {
		m.misses++
		return nil, false
	}
	ent := el.Value.(*mirrorEntry)
	if m.ttl >= 0 && m.now().Sub(ent.stored) > m.ttl {
		m.removeEntry(el)
		m.expired++
		m.misses++
		return nil, false
	}
	m.order.MoveToFront(el)
	m.hits++
	if ent.files[0].Path == path {
		return ent.files, true
	}
	// A member open: lead with the demanded file, keep the rest in
	// arrival order.
	out := make([]fsnet.GroupFile, 0, len(ent.files))
	for _, f := range ent.files {
		if f.Path == path {
			out = append(out, f)
		}
	}
	for _, f := range ent.files {
		if f.Path != path {
			out = append(out, f)
		}
	}
	return out, true
}

// put mirrors a freshly fetched group under all its member paths,
// evicting least-recently-used groups beyond capacity. A member path
// already indexed for another group is re-pointed here — newest group
// wins, mirroring how the owner's own group evolves. owner records the
// peer the group came from, for purgeOwner.
func (m *mirror) put(files []fsnet.GroupFile, owner string) {
	if m == nil || len(files) == 0 {
		return
	}
	ent := &mirrorEntry{files: files, stored: m.now(), owner: owner}
	el := m.order.PushFront(ent)
	for _, f := range files {
		if old, ok := m.entries[f.Path]; ok && old != el {
			m.unindex(old, f.Path)
		}
		m.entries[f.Path] = el
	}
	for m.order.Len() > m.capacity {
		m.evicted++
		m.removeEntry(m.order.Back())
	}
}

// unindex drops one path's index entry for el, removing the whole group
// once no member still points at it.
func (m *mirror) unindex(el *list.Element, path string) {
	delete(m.entries, path)
	ent := el.Value.(*mirrorEntry)
	for _, f := range ent.files {
		if f.Path != path && m.entries[f.Path] == el {
			return // still reachable through another member
		}
	}
	m.order.Remove(el)
}

// removeEntry drops a group and every member index pointing at it.
func (m *mirror) removeEntry(el *list.Element) {
	ent := el.Value.(*mirrorEntry)
	for _, f := range ent.files {
		if m.entries[f.Path] == el {
			delete(m.entries, f.Path)
		}
	}
	m.order.Remove(el)
}

// purgeOwner drops every group fetched from owner — called when a
// membership change removes the peer, so its groups don't outlive it.
func (m *mirror) purgeOwner(owner string) {
	if m == nil {
		return
	}
	var el *list.Element
	for e := m.order.Front(); e != nil; e = el {
		el = e.Next()
		if e.Value.(*mirrorEntry).owner == owner {
			m.removeEntry(e)
		}
	}
}

// groups returns how many distinct groups are resident.
func (m *mirror) groups() int {
	if m == nil {
		return 0
	}
	return m.order.Len()
}
