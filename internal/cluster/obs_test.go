package cluster

import (
	"strings"
	"testing"
	"time"

	"aggcache/internal/obs"
)

// gaugeValue scrapes the registry and returns the named gauge for peer.
func gaugeValue(t *testing.T, reg *obs.Registry, name, peerAddr string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	s, ok := parsed.Find(name, map[string]string{"peer": peerAddr})
	if !ok {
		t.Fatalf("gauge %s{peer=%q} not exported", name, peerAddr)
	}
	return s.Value
}

// eventKinds returns the recorded breaker event kinds in order.
func eventKinds(reg *obs.Registry) []string {
	var kinds []string
	for _, ev := range reg.Events().Events() {
		if strings.HasPrefix(ev.Kind, "breaker_") {
			kinds = append(kinds, ev.Kind)
		}
	}
	return kinds
}

// TestBreakerGaugeTransitions walks one peer breaker through
// closed → open → half-open → closed under a fake clock and asserts the
// exact exported gauge values and event-log entries at each step, plus
// the failed-probe re-open.
func TestBreakerGaugeTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	clk := newTick()
	const addr = "127.0.0.1:7001"
	p := &peer{
		addr:      addr,
		threshold: 3,
		downFor:   2 * time.Second,
		now:       clk.Now,
	}
	p.wireMetrics(reg)
	reg.Events().SetClock(clk.Now)

	// Closed: failures below the threshold move the failure gauge only.
	if !p.admit() {
		t.Fatal("fresh breaker must admit")
	}
	p.noteFailure()
	p.noteFailure()
	if got := gaugeValue(t, reg, "cluster_peer_state", addr); got != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want %d (closed)", got, breakerClosed)
	}
	if got := gaugeValue(t, reg, "cluster_peer_failures", addr); got != 2 {
		t.Fatalf("failures gauge = %v, want 2", got)
	}
	if kinds := eventKinds(reg); len(kinds) != 0 {
		t.Fatalf("events before the trip: %v", kinds)
	}

	// Third failure trips: closed → open.
	p.noteFailure()
	if got := gaugeValue(t, reg, "cluster_peer_state", addr); got != breakerOpen {
		t.Fatalf("state after trip = %v, want %d (open)", got, breakerOpen)
	}
	if got := gaugeValue(t, reg, "cluster_peer_trips", addr); got != 1 {
		t.Fatalf("trips gauge = %v, want 1", got)
	}
	if p.admit() {
		t.Fatal("open breaker admitted a forward")
	}
	// A failure landing during the cooldown extends it silently.
	p.noteFailure()
	if kinds := eventKinds(reg); len(kinds) != 1 || kinds[0] != "breaker_open" {
		t.Fatalf("events after trip = %v, want exactly [breaker_open]", kinds)
	}

	// Cooldown lapses: exactly one probe is admitted — half-open.
	clk.Advance(3 * time.Second)
	if !p.admit() {
		t.Fatal("lapsed breaker must admit one probe")
	}
	if p.admit() {
		t.Fatal("second probe admitted while half-open")
	}
	if got := gaugeValue(t, reg, "cluster_peer_state", addr); got != breakerHalfOpen {
		t.Fatalf("state half-open = %v, want %d", got, breakerHalfOpen)
	}

	// Probe succeeds: half-open → closed, failure gauge resets.
	p.noteSuccess()
	if got := gaugeValue(t, reg, "cluster_peer_state", addr); got != breakerClosed {
		t.Fatalf("state after close = %v, want %d (closed)", got, breakerClosed)
	}
	if got := gaugeValue(t, reg, "cluster_peer_failures", addr); got != 0 {
		t.Fatalf("failures gauge after close = %v, want 0", got)
	}
	// A steady-state success emits no extra breaker_close.
	p.noteSuccess()
	want := []string{"breaker_open", "breaker_half_open", "breaker_close"}
	if got := eventKinds(reg); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", got, want)
	}

	// Failed probe: trip again, lapse, probe fails → half-open → open.
	p.noteFailure()
	p.noteFailure()
	p.noteFailure()
	clk.Advance(3 * time.Second)
	if !p.admit() {
		t.Fatal("second cooldown lapse must admit a probe")
	}
	p.noteFailure() // the probe's failure re-opens immediately (threshold met: fails never reset)
	if got := gaugeValue(t, reg, "cluster_peer_state", addr); got != breakerOpen {
		t.Fatalf("state after failed probe = %v, want %d (open)", got, breakerOpen)
	}
	want = append(want, "breaker_open", "breaker_half_open", "breaker_open")
	if got := eventKinds(reg); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", got, want)
	}
	// Event timestamps come from the injected fake clock.
	for _, ev := range reg.Events().Events() {
		if ev.Time.Before(time.Unix(1000, 0)) || ev.Time.After(time.Unix(1010, 0)) {
			t.Fatalf("event %s timestamp %v not from the fake clock", ev.Kind, ev.Time)
		}
	}
}

// TestNodeMetricsRegistered checks that constructing an instrumented
// node exports the full routing-counter catalogue plus per-peer series.
func TestNodeMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	n, err := NewNode(Config{
		Self:  "127.0.0.1:7001",
		Peers: []string{"127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"},
		Obs:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	for _, name := range []string{
		"cluster_local_opens_total",
		"cluster_forwarded_opens_total",
		"cluster_mirror_hits_total",
		"cluster_coalesced_forwards_total",
		"cluster_degraded_opens_total",
		"cluster_not_found_total",
		"cluster_mirror_groups",
	} {
		if _, ok := parsed.Find(name, nil); !ok {
			t.Errorf("metric %s not exported", name)
		}
	}
	for _, addr := range []string{"127.0.0.1:7002", "127.0.0.1:7003"} {
		for _, name := range []string{"cluster_peer_state", "cluster_peer_failures", "cluster_peer_trips"} {
			if _, ok := parsed.Find(name, map[string]string{"peer": addr}); !ok {
				t.Errorf("metric %s{peer=%q} not exported", name, addr)
			}
		}
	}
	// NodeStats reads the same counters the exposition shows.
	n.localOpens.Add(2)
	if st := n.Stats(); st.LocalOpens != 2 {
		t.Fatalf("NodeStats.LocalOpens = %d, want 2", st.LocalOpens)
	}
}
