package cluster

import (
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per member. 128 points per
// member keeps the largest ownership share within a few tens of percent
// of the mean for small clusters while ring lookups stay a binary search
// over a few hundred points.
const defaultReplicas = 128

// Ring is a consistent-hash ring with virtual nodes. Every member
// contributes `replicas` points; a key is owned by the member whose
// point follows the key's hash clockwise. The construction guarantees
// minimal key movement on membership change: adding a member moves keys
// only onto it, removing a member moves only the keys it owned — in
// expectation K/N keys either way.
//
// Ownership is a pure function of the member set: build order does not
// matter (points sort by hash with owner name as the tie-break), so
// every node of a cluster computes identical placement from the same
// peer list. That view agreement is what makes one forwarding hop
// sufficient — an owner never re-forwards a path it owns.
//
// A Ring is not safe for concurrent mutation; the cluster tier builds
// one per membership view and only reads it once installed (views are
// immutable — membership change builds a new ring, never edits one).
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, owner)
	members  map[string]struct{}
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (0 selects the default of 128).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]struct{})}
}

// Add inserts members into the ring. Empty names and names already
// present are ignored.
func (r *Ring) Add(names ...string) {
	for _, name := range names {
		if name == "" {
			continue
		}
		if _, dup := r.members[name]; dup {
			continue
		}
		r.members[name] = struct{}{}
		for i := 0; i < r.replicas; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(name, i), owner: name})
		}
	}
	r.sortPoints()
}

// Remove deletes a member and its points; unknown names are a no-op.
// Keys the member owned fall to their next clockwise point, everything
// else keeps its owner.
func (r *Ring) Remove(name string) {
	if _, ok := r.members[name]; !ok {
		return
	}
	delete(r.members, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

func (r *Ring) sortPoints() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].owner < r.points[j].owner
	})
}

// Owner returns the member that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0 // wrapped past the last point
	}
	return r.points[idx].owner
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// Has reports whether name is a member.
func (r *Ring) Has(name string) bool {
	_, ok := r.members[name]
	return ok
}

// FNV-1a, 64 bit, finished with the splitmix64 mixer. Inlined rather
// than hash/fnv so the per-open Owner lookup allocates nothing; the
// finalizer matters because raw FNV of short, similar strings (vnode
// labels differ in a digit or two) leaves points clustered enough to
// skew ownership badly.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func keyHash(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// vnodeHash hashes the i-th virtual node of a member. The ordinal is
// folded in as a decimal prefix plus separator, so member names cannot
// collide with each other's vnode labels.
func vnodeHash(name string, i int) uint64 {
	label := strconv.Itoa(i) + "|" + name
	return keyHash(label)
}
