package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/data/d%02d/f%06d", rng.Intn(64), i)
	}
	return keys
}

// TestRingOwnershipDeterministic: ownership is a pure function of the
// member set — build order and interleaved removals do not matter.
func TestRingOwnershipDeterministic(t *testing.T) {
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	forward := NewRing(64)
	forward.Add(members...)

	backward := NewRing(64)
	for i := len(members) - 1; i >= 0; i-- {
		backward.Add(members[i])
	}

	churned := NewRing(64)
	churned.Add("n2", "zombie", "n0")
	churned.Add("n4", "n1")
	churned.Remove("zombie")
	churned.Add("n3")

	for _, key := range ringKeys(5000, 1) {
		want := forward.Owner(key)
		if got := backward.Owner(key); got != want {
			t.Fatalf("Owner(%q) = %q reversed, %q forward", key, got, want)
		}
		if got := churned.Owner(key); got != want {
			t.Fatalf("Owner(%q) = %q churned, %q forward", key, got, want)
		}
	}
}

// TestRingMinimalMovementOnAdd: growing the ring moves keys only onto
// the new member, and no more than K/N plus slack of them.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const numKeys = 10000
	keys := ringKeys(numKeys, 2)
	r := NewRing(0) // default replicas
	r.Add("n0", "n1", "n2", "n3", "n4")

	before := make(map[string]string, numKeys)
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	r.Add("n5")
	moved := 0
	for _, k := range keys {
		owner := r.Owner(k)
		if owner != before[k] {
			moved++
			if owner != "n5" {
				t.Fatalf("key %q moved %q -> %q, not to the new member", k, before[k], owner)
			}
		}
	}
	// Expected movement is K/N with N = 6 members after the add; allow
	// an extra 10% of K for vnode placement variance (the acceptance
	// bound: moved <= K/N + 10%).
	bound := numKeys/r.Len() + numKeys/10
	if moved > bound {
		t.Errorf("add moved %d of %d keys, want <= %d", moved, numKeys, bound)
	}
	if moved == 0 {
		t.Error("add moved no keys; new member owns nothing")
	}
}

// TestRingMinimalMovementOnRemove: shrinking the ring moves only the
// dead member's keys, and every survivor keeps its ownership.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const numKeys = 10000
	keys := ringKeys(numKeys, 3)
	r := NewRing(0)
	r.Add("n0", "n1", "n2", "n3", "n4")

	before := make(map[string]string, numKeys)
	orphans := 0
	for _, k := range keys {
		before[k] = r.Owner(k)
		if before[k] == "n2" {
			orphans++
		}
	}

	r.Remove("n2")
	moved := 0
	for _, k := range keys {
		owner := r.Owner(k)
		if owner == "n2" {
			t.Fatalf("key %q still owned by removed member", k)
		}
		if owner != before[k] {
			moved++
			if before[k] != "n2" {
				t.Fatalf("key %q moved %q -> %q though its owner survived", k, before[k], owner)
			}
		}
	}
	if moved != orphans {
		t.Errorf("remove moved %d keys, want exactly the %d the dead member owned", moved, orphans)
	}
	bound := numKeys/(r.Len()+1) + numKeys/10
	if moved > bound {
		t.Errorf("remove moved %d of %d keys, want <= %d", moved, numKeys, bound)
	}
}

// TestRingBalance: with default replicas no member's share strays past
// 2x the mean (deterministic for the fixed hash, so safe to pin).
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := []string{"n0", "n1", "n2", "n3", "n4"}
	r.Add(members...)
	counts := make(map[string]int)
	keys := ringKeys(20000, 4)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	mean := len(keys) / len(members)
	for _, m := range members {
		if counts[m] == 0 {
			t.Errorf("member %s owns nothing", m)
		}
		if counts[m] > 2*mean {
			t.Errorf("member %s owns %d keys, > 2x mean %d", m, counts[m], mean)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8)
	if got := r.Owner("/anything"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	r.Add("", "solo", "solo") // empty and duplicate names ignored
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if got := r.Owner("/anything"); got != "solo" {
		t.Errorf("single-member Owner = %q, want solo", got)
	}
	r.Remove("ghost") // unknown member is a no-op
	r.Remove("solo")
	if got := r.Owner("/anything"); got != "" {
		t.Errorf("emptied ring Owner = %q, want \"\"", got)
	}
	if got := len(NewRing(0).Members()); got != 0 {
		t.Errorf("fresh ring has %d members", got)
	}
}

// FuzzRingOwner: for arbitrary keys, ownership is deterministic across
// build orders and always lands on a live member.
func FuzzRingOwner(f *testing.F) {
	f.Add("")
	f.Add("/data/f000001")
	f.Add("sch\xf6n/\x00weird")
	members := []string{"peer-a", "peer-b", "peer-c"}
	fwd := NewRing(32)
	fwd.Add(members...)
	rev := NewRing(32)
	rev.Add(members[2], members[1], members[0])
	valid := map[string]bool{}
	for _, m := range members {
		valid[m] = true
	}
	f.Fuzz(func(t *testing.T, key string) {
		got := fwd.Owner(key)
		if !valid[got] {
			t.Fatalf("Owner(%q) = %q, not a member", key, got)
		}
		if again := fwd.Owner(key); again != got {
			t.Fatalf("Owner(%q) unstable: %q then %q", key, got, again)
		}
		if other := rev.Owner(key); other != got {
			t.Fatalf("Owner(%q) build-order dependent: %q vs %q", key, got, other)
		}
	})
}
