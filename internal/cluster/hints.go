package cluster

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
)

// hintTable stages access paths bound for down peers — the hinted half
// of hinted handoff. While a peer's breaker is open, every open the node
// would have forwarded to it instead records its path (and the
// downstream client's piggybacked history) here, keyed by the dead
// peer's address; when the peer heals, the whole queue is replayed so
// the owner's successor metadata catches up on the outage it missed.
//
// Each queue is bounded: overflow drops the oldest entries first (the
// newest transitions are the ones the owner's successor lists would
// keep anyway), and the caller counts every drop.
type hintTable struct {
	mu       sync.Mutex
	capacity int // per-peer; <0 disables the table entirely
	queues   map[string][]string
}

// newHintTable returns a table with the given per-peer bound, or nil
// when hinting is disabled (capacity < 0). A nil *hintTable is a valid
// receiver: every operation no-ops.
func newHintTable(capacity int) *hintTable {
	if capacity < 0 {
		return nil
	}
	if capacity == 0 {
		capacity = defaultHintCapacity
	}
	return &hintTable{capacity: capacity, queues: make(map[string][]string)}
}

// add stages paths for addr, oldest first, reporting how many were
// queued and how many existing entries were dropped to make room.
func (t *hintTable) add(addr string, paths []string) (queued, dropped int) {
	if t == nil || len(paths) == 0 {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.queues[addr]
	if len(paths) >= t.capacity {
		// The new batch alone fills the queue: everything staged so far
		// drops, and only the newest capacity entries of the batch stay.
		dropped = len(q) + len(paths) - t.capacity
		t.queues[addr] = append(q[:0:0], paths[len(paths)-t.capacity:]...)
		return len(paths), dropped
	}
	if over := len(q) + len(paths) - t.capacity; over > 0 {
		dropped = over
		q = append(q[:0:0], q[over:]...) // copy: shed the dead prefix's capacity
	}
	t.queues[addr] = append(q, paths...)
	return len(paths), dropped
}

// take removes and returns addr's whole queue.
func (t *hintTable) take(addr string) []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	q := t.queues[addr]
	delete(t.queues, addr)
	return q
}

// drop discards addr's queue (the peer left the membership), reporting
// how many staged paths were lost.
func (t *hintTable) drop(addr string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.queues[addr])
	delete(t.queues, addr)
	return n
}

// depth returns the staged path count across all queues.
func (t *hintTable) depth() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, q := range t.queues {
		n += len(q)
	}
	return n
}

// stageHints records one degraded open against its down owner: the
// relayed client history first, then the demanded path, preserving the
// true access order the owner would have learned.
func (n *Node) stageHints(addr, path string, accessed []string) {
	if n.hints == nil {
		return
	}
	paths := make([]string, 0, len(accessed)+1)
	paths = append(paths, accessed...)
	paths = append(paths, path)
	queued, dropped := n.hints.add(addr, paths)
	n.hintsQueued.Add(uint64(queued))
	if dropped > 0 {
		n.hintsDropped.Add(uint64(dropped))
	}
}

// replayHints delivers a healed peer's staged access history. The whole
// queue rides as piggyback on one OpenGroup of the newest staged path:
// the owner learns every transition in order, and the group reply
// re-warms the mirror. Runs in its own goroutine off the heal edge, so
// the open that probed the peer is never delayed.
//
// On a transport failure the fsnet client restores the un-delivered
// history to its own pending backlog, so the hints still reach the
// owner with the next successful forward — nothing is lost, it is just
// not counted as replayed.
func (n *Node) replayHints(p *peer) {
	if n.hints == nil {
		return
	}
	paths := n.hints.take(p.addr)
	if len(paths) == 0 {
		return
	}
	// A replay is its own trace root (there is no inbound request to
	// parent it); the head sampler decides, same as any entry point.
	tr := n.cfg.Trace
	tctx := tr.Root()
	var tstart time.Time
	if tctx.Sampled {
		tstart = n.cfg.Now()
		defer func() {
			tr.Record(tctx, "handoff_replay", paths[len(paths)-1], tstart, n.cfg.Now().Sub(tstart))
		}()
	}
	p.client.NoteAccess(paths...)
	files, err := p.client.OpenGroupCtx(paths[len(paths)-1], tr.Child(tctx))
	switch {
	case err == nil:
		n.mirMu.Lock()
		n.mirror.put(files, p.addr)
		n.mirMu.Unlock()
	case errors.Is(err, fsnet.ErrConnBroken):
		p.noteFailure()
		return
	case errors.Is(err, fsnet.ErrNotFound):
		// The owner answered, so it learned the piggybacked history; the
		// newest staged path just no longer exists.
	default:
		return
	}
	n.hintsReplayed.Add(uint64(len(paths)))
	n.events.Record("hints_replayed",
		obs.F("peer", p.addr),
		obs.F("count", strconv.Itoa(len(paths))))
}
