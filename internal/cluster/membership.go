package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"aggcache/internal/obs"
)

// ErrStaleView rejects a membership update that does not advance the
// installed view. Concurrent operators (a SIGHUP racing an HTTP reload,
// two config pushes crossing) resolve deterministically: the higher
// epoch wins, and between two views minting the *same* epoch — two
// operators racing the same epoch+1 with different member lists — the
// higher view-content hash wins, so every node converges on one of the
// two without coordination. The losing update is refused and counted.
var ErrStaleView = errors.New("cluster: stale membership view")

// view is one immutable membership generation: an epoch number, the
// consistent-hash ring it induces, the live peer set (Self excluded),
// and the member list's content hash (the equal-epoch tiebreak). Node
// readers load the current view once and use it to completion, so a
// ring swap is atomic — in-flight opens finish against the view they
// started with, and the next open sees the new one.
type view struct {
	epoch uint64
	ring  *Ring
	peers map[string]*peer
	hash  uint64
}

// viewHash fingerprints a member list with FNV-1a over the sorted
// addresses (Ring.Members order), a NUL separating entries. Identical
// member sets hash identically on every node — addresses contain no
// NUL — which is what makes the equal-epoch tiebreak coordination-free.
func viewHash(members []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, m := range members {
		for i := 0; i < len(m); i++ {
			h ^= uint64(m[i])
			h *= prime64
		}
		h *= prime64 // NUL separator: XOR with 0 is a no-op, the multiply is not
	}
	return h
}

// Epoch returns the installed view's epoch (1 at construction).
func (n *Node) Epoch() uint64 { return n.view.Load().epoch }

// Members returns the installed view's member addresses, sorted.
func (n *Node) Members() []string { return n.view.Load().ring.Members() }

// Ready reports readiness for traffic: the node is in the installed
// ring and not draining. Surfaced as /readyz by aggserve so a load
// balancer rotates a draining node out before its process exits.
func (n *Node) Ready() bool {
	return !n.draining.Load() && n.view.Load().ring.Has(n.self)
}

// Draining reports whether a graceful drain has begun.
func (n *Node) Draining() bool { return n.draining.Load() }

// Update installs a new membership view. The update must advance the
// installed view — a higher epoch, or the same epoch with a higher
// member-list hash — or it is refused with ErrStaleView. Version
// numbering is what lets racing reloads land in any order with a
// deterministic winner, and the content-hash tiebreak extends that to
// two operators racing the *same* epoch mint: whichever list hashes
// higher wins on every node, so the fleet converges without any
// coordination. peers is the complete new member list; Self need not be
// in it (a node that has been drained out keeps running and forwards
// everything it no longer owns).
//
// Surviving peers keep their breaker state and client connections;
// joining peers get fresh ones. Removed peers are garbage-collected:
// their clients are closed (an in-flight forward to one degrades to the
// local path, like any transport failure), their breaker entries are
// dropped, their mirrored groups are purged, and their staged hints are
// discarded and counted as dropped.
//
// An update whose member list includes Self ends a drain: the operator
// has explicitly put this node back in the ring, so it becomes ready
// again (the rejoin half of a rolling restart).
func (n *Node) Update(epoch uint64, peers []string) error {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	if n.closed {
		return errors.New("cluster: node closed")
	}
	cur := n.view.Load()
	if epoch < cur.epoch {
		n.staleUpdates.Add(1)
		return fmt.Errorf("%w: epoch %d < installed %d", ErrStaleView, epoch, cur.epoch)
	}
	ring := NewRing(n.cfg.Replicas)
	ring.Add(peers...)
	if ring.Len() == 0 {
		return errors.New("cluster: membership view has no members")
	}
	hash := viewHash(ring.Members())
	if epoch == cur.epoch && hash <= cur.hash {
		n.staleUpdates.Add(1)
		return fmt.Errorf("%w: epoch %d content hash %016x does not beat installed %016x",
			ErrStaleView, epoch, hash, cur.hash)
	}
	next := &view{epoch: epoch, ring: ring, peers: make(map[string]*peer), hash: hash}
	for _, addr := range ring.Members() {
		if addr == n.self {
			continue
		}
		if p := cur.peers[addr]; p != nil {
			next.peers[addr] = p
			continue
		}
		p, err := n.newPeer(addr)
		if err != nil {
			return err
		}
		next.peers[addr] = p
	}
	n.view.Store(next)

	// GC everything owned by departed peers. This runs after the swap so
	// no new open can pick a removed peer, and closing its client fails
	// the (bounded) in-flight forwards over to the degraded local path.
	for addr, p := range cur.peers {
		if next.peers[addr] != nil {
			continue
		}
		_ = p.client.Close()
		n.mirMu.Lock()
		n.mirror.purgeOwner(addr)
		n.mirMu.Unlock()
		if dropped := n.hints.drop(addr); dropped > 0 {
			n.hintsDropped.Add(uint64(dropped))
		}
	}

	if ring.Has(n.self) && n.draining.CompareAndSwap(true, false) {
		n.events.Record("cluster_rejoin",
			obs.F("self", n.self),
			obs.F("epoch", strconv.FormatUint(epoch, 10)))
	}
	n.updates.Add(1)
	n.events.Record("membership_update",
		obs.F("epoch", strconv.FormatUint(epoch, 10)),
		obs.F("members", strconv.Itoa(ring.Len())))
	return nil
}

// ParsePeersFile reads a peers file: one member address per line, blank
// lines and '#' comments ignored, plus an optional "epoch N" directive
// line. A file without an epoch directive parses as epoch 0, meaning
// "auto": the caller installs it with the current epoch + 1.
//
//	# rolling out node 4
//	epoch 7
//	10.0.0.1:7070
//	10.0.0.2:7070
func ParsePeersFile(r io.Reader) (epoch uint64, peers []string, err error) {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "epoch "); ok {
			e, perr := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if perr != nil {
				return 0, nil, fmt.Errorf("cluster: peers file line %d: bad epoch %q", line, rest)
			}
			if epoch != 0 {
				return 0, nil, fmt.Errorf("cluster: peers file line %d: duplicate epoch directive", line)
			}
			if e == 0 {
				return 0, nil, fmt.Errorf("cluster: peers file line %d: epoch must be >= 1", line)
			}
			epoch = e
			continue
		}
		if strings.ContainsAny(text, " \t") {
			return 0, nil, fmt.Errorf("cluster: peers file line %d: malformed member %q", line, text)
		}
		peers = append(peers, text)
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if len(peers) == 0 {
		return 0, nil, errors.New("cluster: peers file lists no members")
	}
	return epoch, peers, nil
}
