package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"aggcache/internal/faultnet"
	"aggcache/internal/fsnet"
)

// testCluster is an in-process N-node cluster: every node runs a real
// fsnet server over a real TCP loopback listener with a Node wired in as
// its router, each node's backing store holds identical replicated
// content, and every peer connection passes through a per-target
// faultnet gate so tests can kill a peer at an exact instant.
type testCluster struct {
	addrs   []string
	nodes   []*Node
	servers []*fsnet.Server
	stores  []*fsnet.Store
	gates   map[string]*faultnet.Gate
	clk     *tick
}

const testFiles = 80

func testContent(path string) string { return "contents of " + path }

func startCluster(t *testing.T, numNodes int, mut func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{gates: make(map[string]*faultnet.Gate), clk: newTick()}

	listeners := make([]net.Listener, numNodes)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		tc.addrs = append(tc.addrs, l.Addr().String())
		tc.gates[l.Addr().String()] = &faultnet.Gate{}
	}

	dial := func(addr string) (net.Conn, error) {
		gate := tc.gates[addr]
		if gate.Down() {
			return nil, fmt.Errorf("%w: gate down: dial %s", faultnet.ErrInjected, addr)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return faultnet.Wrap(conn, faultnet.Faults{Gate: gate}, nil), nil
	}

	for i := 0; i < numNodes; i++ {
		store := fsnet.NewStore()
		for f := 0; f < testFiles; f++ {
			path := fmt.Sprintf("/data/f%03d", f)
			if err := store.Put(path, []byte(testContent(path))); err != nil {
				t.Fatal(err)
			}
		}
		tc.stores = append(tc.stores, store)

		cfg := Config{
			Self:        tc.addrs[i],
			Peers:       tc.addrs,
			PeerTimeout: 2 * time.Second,
			Dialer:      dial,
			Now:         tc.clk.Now,
		}
		if mut != nil {
			mut(i, &cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes = append(tc.nodes, node)

		srv, err := fsnet.NewServer(store, fsnet.ServerConfig{
			GroupSize:         3,
			SuccessorCapacity: 2,
			Router:            node,
			Views:             node,
			// The node and its server share one tracer, mirroring aggserve:
			// a mut that wires cfg.Trace gets inbound-context decoding on
			// the serving side for free.
			Trace: cfg.Trace,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.servers = append(tc.servers, srv)
		l := listeners[i]
		go func() { _ = srv.Serve(l) }()
	}

	t.Cleanup(func() {
		for _, n := range tc.nodes {
			_ = n.Close()
		}
		for _, s := range tc.servers {
			_ = s.Close()
		}
	})
	return tc
}

// client dials a plain workload client against node i's server.
func (tc *testCluster) client(t *testing.T, i int, cfg fsnet.ClientConfig) *fsnet.Client {
	t.Helper()
	c, err := fsnet.Dial(tc.addrs[i], cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// pathOwnedBy returns a test path owned by node owner, skipping paths in
// skip. Ownership is hash-determined, so it scans the seeded namespace.
func (tc *testCluster) pathOwnedBy(t *testing.T, owner int, skip map[string]bool) string {
	t.Helper()
	for f := 0; f < testFiles; f++ {
		path := fmt.Sprintf("/data/f%03d", f)
		if !skip[path] && tc.nodes[0].Owner(path) == tc.addrs[owner] {
			return path
		}
	}
	t.Fatalf("no test path owned by node %d", owner)
	return ""
}

// TestClusterPlacementAgreement: every node computes the same owner for
// every path, and each node owns a non-empty share — the no-coordination
// invariant the one-hop forwarding design rests on.
func TestClusterPlacementAgreement(t *testing.T) {
	tc := startCluster(t, 3, nil)
	owned := make(map[string]int)
	for f := 0; f < testFiles; f++ {
		path := fmt.Sprintf("/data/f%03d", f)
		owner := tc.nodes[0].Owner(path)
		for _, n := range tc.nodes[1:] {
			if got := n.Owner(path); got != owner {
				t.Fatalf("nodes disagree on owner of %s: %s vs %s", path, owner, got)
			}
		}
		owned[owner]++
	}
	for _, addr := range tc.addrs {
		if owned[addr] == 0 {
			t.Errorf("node %s owns no test paths", addr)
		}
	}
}

// TestClusterEveryOpenCorrect is the acceptance workload: concurrent
// clients against all three nodes open every file repeatedly; every open
// must return the right bytes no matter which node served it or where
// the path lives. Runs under -race in `make cluster`.
func TestClusterEveryOpenCorrect(t *testing.T) {
	tc := startCluster(t, 3, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Small cache so opens keep reaching the server and exercise
			// the forwarding path rather than the client cache.
			client, err := fsnet.Dial(tc.addrs[i], fsnet.ClientConfig{CacheCapacity: 4})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for round := 0; round < 3; round++ {
				for f := 0; f < testFiles; f++ {
					path := fmt.Sprintf("/data/f%03d", (f+17*i)%testFiles)
					data, err := client.Open(path)
					if err != nil {
						errs <- fmt.Errorf("node %d open %s: %w", i, path, err)
						return
					}
					if string(data) != testContent(path) {
						errs <- fmt.Errorf("node %d open %s = %q", i, path, data)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var local, forwarded, mirrored uint64
	for i, n := range tc.nodes {
		st := n.Stats()
		local += st.LocalOpens
		forwarded += st.ForwardedOpens
		mirrored += st.MirrorHits
		if st.DegradedOpens != 0 {
			t.Errorf("node %d: %d degraded opens with all peers up", i, st.DegradedOpens)
		}
		for _, p := range st.Peers {
			if !p.Up {
				t.Errorf("node %d reports peer %s down", i, p.Addr)
			}
		}
		answered := st.ForwardedOpens + st.MirrorHits + st.CoalescedForwards
		if srv := tc.servers[i].Stats(); srv.RemoteOpens != answered {
			t.Errorf("node %d: server RemoteOpens=%d, node answered %d", i, srv.RemoteOpens, answered)
		}
	}
	if local == 0 || forwarded == 0 {
		t.Errorf("workload exercised local=%d forwarded=%d opens; want both > 0", local, forwarded)
	}
	if mirrored == 0 {
		t.Errorf("repeated opens produced no mirror hits")
	}
}

// TestClusterNotFoundComesFromOwner: a path that exists nowhere gets a
// typed ErrNotFound through the forwarding path, not a transport error,
// and does not trip the owner's breaker.
func TestClusterNotFound(t *testing.T) {
	tc := startCluster(t, 3, nil)
	// Find a requesting node that does not own the bogus path.
	missing := "/nope/missing"
	via := 0
	if tc.nodes[0].Owner(missing) == tc.addrs[0] {
		via = 1
	}
	client := tc.client(t, via, fsnet.ClientConfig{})
	if _, err := client.Open(missing); !errors.Is(err, fsnet.ErrNotFound) {
		t.Fatalf("open of missing path: %v, want ErrNotFound", err)
	}
	st := tc.nodes[via].Stats()
	if st.NotFound != 1 {
		t.Errorf("NotFound = %d, want 1", st.NotFound)
	}
	for _, p := range st.Peers {
		if p.Failures != 0 {
			t.Errorf("not-found counted as failure against %s", p.Addr)
		}
	}
}

// TestClusterGroupAffinity: the owner learns successor transitions from
// relayed piggyback history, and one forwarded hop then delivers the
// whole learned group to a client of a *different* node.
func TestClusterGroupAffinity(t *testing.T) {
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1 // always forward: the owner's view, not a mirror
	})

	// anchor is owned by node 0; the workload runs against node 1.
	anchor := tc.pathOwnedBy(t, 0, nil)
	follow := tc.pathOwnedBy(t, 0, map[string]bool{anchor: true})

	client := tc.client(t, 1, fsnet.ClientConfig{})
	// Train: open anchor then follow repeatedly. Cache hits accumulate
	// in the client's piggyback backlog; OpenGroup drains it through
	// node 1, which relays it to the owner on the forwarded fetch.
	for round := 0; round < 6; round++ {
		if _, err := client.Open(anchor); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Open(follow); err != nil {
			t.Fatal(err)
		}
		if _, err := client.OpenGroup(anchor); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh client of node 1 opens only the anchor; the owner's group
	// must bring the learned successor along in the same hop.
	probe := tc.client(t, 1, fsnet.ClientConfig{})
	group, err := probe.OpenGroup(anchor)
	if err != nil {
		t.Fatal(err)
	}
	if group[0].Path != anchor || string(group[0].Data) != testContent(anchor) {
		t.Fatalf("group head = %q (%q)", group[0].Path, group[0].Data)
	}
	found := false
	for _, f := range group[1:] {
		if f.Path == follow {
			found = true
			if string(f.Data) != testContent(follow) {
				t.Errorf("prefetched member data = %q", f.Data)
			}
		}
	}
	if !found {
		paths := make([]string, len(group))
		for i, f := range group {
			paths[i] = f.Path
		}
		t.Fatalf("learned successor %s missing from forwarded group %v", follow, paths)
	}
	if st := tc.nodes[1].Stats(); st.ForwardedOpens == 0 {
		t.Error("affinity workload never forwarded")
	}
}

// TestClusterPeerDeathDegrades is the failover acceptance test: killing
// a peer mid-workload must not fail a single open. Forwards to the dead
// owner fall back to the local replica, the breaker trips after the
// failure threshold, and a healed peer is readmitted after cooldown via
// a single probe.
func TestClusterPeerDeathDegrades(t *testing.T) {
	const threshold = 2
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1 // force every open through the health gate
		cfg.FailureThreshold = threshold
		cfg.DownDuration = time.Minute // lapses only via the fake clock
		cfg.PeerTimeout = 2 * time.Second
	})

	victim := 2
	path := tc.pathOwnedBy(t, victim, nil)
	client := tc.client(t, 0, fsnet.ClientConfig{CacheCapacity: 2})

	open := func() {
		t.Helper()
		data, err := client.OpenGroup(path)
		if err != nil {
			t.Fatalf("open during failover: %v", err)
		}
		if string(data[0].Data) != testContent(path) {
			t.Fatalf("open during failover = %q", data[0].Data)
		}
	}

	open() // healthy forward
	if st := tc.nodes[0].Stats(); st.ForwardedOpens != 1 {
		t.Fatalf("ForwardedOpens = %d before kill, want 1", st.ForwardedOpens)
	}

	// Kill the owner: dials are refused and live conns fail instantly.
	tc.gates[tc.addrs[victim]].SetDown(true)

	// Every open keeps succeeding. The first `threshold` opens fail
	// their forward and degrade; after that the breaker short-circuits.
	for i := 0; i < threshold+3; i++ {
		open()
	}
	st := tc.nodes[0].Stats()
	if st.DegradedOpens != uint64(threshold+3) {
		t.Errorf("DegradedOpens = %d, want %d", st.DegradedOpens, threshold+3)
	}
	var victimStatus PeerStatus
	for _, p := range st.Peers {
		if p.Addr == tc.addrs[victim] {
			victimStatus = p
		}
	}
	if victimStatus.Up {
		t.Error("victim still reported up after breaker tripped")
	}
	if victimStatus.Trips == 0 {
		t.Error("breaker never tripped")
	}
	// The local replica actually served the degraded opens.
	if srv := tc.servers[0].Stats(); srv.Cache.Misses == 0 {
		t.Error("degraded opens never staged from the local store")
	}

	// Heal the peer but not the clock: still refused (cooldown).
	tc.gates[tc.addrs[victim]].SetDown(false)
	open()
	if got := tc.nodes[0].Stats().ForwardedOpens; got != 1 {
		t.Errorf("ForwardedOpens = %d during cooldown, want still 1", got)
	}

	// Cooldown lapses: exactly one probe goes through and heals.
	tc.clk.Advance(time.Minute + time.Second)
	open()
	st = tc.nodes[0].Stats()
	if st.ForwardedOpens != 2 {
		t.Errorf("ForwardedOpens = %d after heal, want 2", st.ForwardedOpens)
	}
	for _, p := range st.Peers {
		if p.Addr == tc.addrs[victim] && (!p.Up || p.Failures != 0) {
			t.Errorf("healed peer status = %+v", p)
		}
	}
}

// TestClusterKillDuringConcurrentWorkload: the no-request-errors
// guarantee holds when the peer dies in the middle of a concurrent
// workload, not between requests.
func TestClusterKillDuringConcurrentWorkload(t *testing.T) {
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.MirrorCapacity = -1 // don't let round-0 mirrors absorb the outage
		cfg.FailureThreshold = 2
		cfg.DownDuration = time.Minute
		cfg.PeerTimeout = 2 * time.Second
	})
	victim := 2

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	// Workers run one warm-up round, rendezvous so the kill lands while
	// both are mid-workload, then keep going against the dead owner.
	var warmed sync.WaitGroup
	warmed.Add(2)
	killed := make(chan struct{})
	for i := 0; i < 2; i++ { // workloads only against the survivors
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := fsnet.Dial(tc.addrs[i], fsnet.ClientConfig{CacheCapacity: 4})
			if err != nil {
				warmed.Done()
				errs <- err
				return
			}
			defer client.Close()
			for round := 0; round < 4; round++ {
				if round == 1 {
					warmed.Done()
					<-killed
				}
				for f := 0; f < testFiles; f++ {
					path := fmt.Sprintf("/data/f%03d", f)
					data, err := client.Open(path)
					if err != nil {
						errs <- fmt.Errorf("node %d open %s: %w", i, path, err)
						return
					}
					if string(data) != testContent(path) {
						errs <- fmt.Errorf("node %d open %s = %q", i, path, data)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	warmed.Wait()
	tc.gates[tc.addrs[victim]].SetDown(true)
	close(killed)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	degraded := tc.nodes[0].Stats().DegradedOpens + tc.nodes[1].Stats().DegradedOpens
	if degraded == 0 {
		t.Error("kill mid-workload caused no degraded opens; gate flipped too late?")
	}
}

// TestClusterMirrorAbsorbsHotGroup: repeat opens of a remote group are
// answered from the mirror — one peer hop per TTL window, not per open —
// and the TTL refetches so owner-side learning propagates.
func TestClusterMirrorAbsorbsHotGroup(t *testing.T) {
	tc := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.MirrorTTL = time.Minute
	})
	path := tc.pathOwnedBy(t, 1, nil)
	client := tc.client(t, 0, fsnet.ClientConfig{})

	const rounds = 5
	for i := 0; i < rounds; i++ {
		// OpenGroup bypasses the workload client's cache, so every round
		// reaches node 0's router — the hotspot shape.
		group, err := client.OpenGroup(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(group[0].Data) != testContent(path) {
			t.Fatalf("round %d data = %q", i, group[0].Data)
		}
	}
	st := tc.nodes[0].Stats()
	if st.ForwardedOpens != 1 {
		t.Errorf("ForwardedOpens = %d, want 1 (mirror absorbs the rest)", st.ForwardedOpens)
	}
	if st.MirrorHits != rounds-1 {
		t.Errorf("MirrorHits = %d, want %d", st.MirrorHits, rounds-1)
	}

	// Past the TTL the mirror refetches: the owner's current group state
	// is re-observed once per window.
	tc.clk.Advance(2 * time.Minute)
	if _, err := client.OpenGroup(path); err != nil {
		t.Fatal(err)
	}
	if got := tc.nodes[0].Stats().ForwardedOpens; got != 2 {
		t.Errorf("ForwardedOpens = %d after TTL, want 2", got)
	}
}

// TestClusterForwardCoalescing: concurrent opens of the same remote path
// share one owner fetch. The dialer stalls the first connection long
// enough for the herd to pile up, then every open resolves from the one
// flight (or the mirror it filled).
func TestClusterForwardCoalescing(t *testing.T) {
	const herd = 8
	release := make(chan struct{})
	var stallOnce sync.Once
	tc := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.MirrorTTL = time.Hour
		base := cfg.Dialer
		cfg.Dialer = func(addr string) (net.Conn, error) {
			stallOnce.Do(func() { <-release })
			return base(addr)
		}
	})
	path := tc.pathOwnedBy(t, 1, nil)

	var wg sync.WaitGroup
	errs := make(chan error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			files, handled, err := tc.nodes[0].RouteOpen(path, nil)
			if err != nil || !handled {
				errs <- fmt.Errorf("RouteOpen handled=%v err=%v", handled, err)
				return
			}
			if string(files[0].Data) != testContent(path) {
				errs <- fmt.Errorf("coalesced open = %q", files[0].Data)
				return
			}
			errs <- nil
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the herd queue behind the stalled dial
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := tc.nodes[0].Stats()
	if total := st.ForwardedOpens + st.CoalescedForwards + st.MirrorHits; total != herd {
		t.Errorf("forwarded %d + coalesced %d + mirrored %d != herd %d",
			st.ForwardedOpens, st.CoalescedForwards, st.MirrorHits, herd)
	}
	if st.ForwardedOpens != 1 {
		t.Errorf("ForwardedOpens = %d, want 1 (single flight)", st.ForwardedOpens)
	}
	if st.CoalescedForwards == 0 {
		t.Error("no opens coalesced behind the stalled flight")
	}
}

// TestClusterNodeConfigValidation pins constructor error handling.
func TestClusterNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(Config{Peers: []string{"a"}}); err == nil {
		t.Error("empty Self accepted")
	}
	if _, err := NewNode(Config{Self: "x", Peers: []string{"a", "b"}}); err == nil {
		t.Error("Self outside Peers accepted")
	}
	if _, err := NewNode(Config{Self: "a", Peers: []string{"a"}, FailureThreshold: -1}); err == nil {
		t.Error("negative FailureThreshold accepted")
	}
	// A single-node cluster owns everything and never forwards.
	n, err := NewNode(Config{Self: "a", Peers: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, handled, err := n.RouteOpen("/any", nil); handled || err != nil {
		t.Errorf("single-node RouteOpen handled=%v err=%v, want local", handled, err)
	}
	if st := n.Stats(); st.LocalOpens != 1 || len(st.Peers) != 0 {
		t.Errorf("single-node stats = %+v", st)
	}
}
