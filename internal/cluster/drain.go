package cluster

import (
	"errors"
	"strconv"

	"aggcache/internal/fsnet"
	"aggcache/internal/obs"
)

// ErrDraining reports that a drain has already begun; Drain runs at
// most once per node lifetime (a rejoin arrives as a new Update whose
// member list includes Self, which clears the draining flag — but the
// handed-off state is gone either way, so a second drain is an error,
// not a retry).
var ErrDraining = errors.New("cluster: node already draining")

// GroupSource exports a server's learned group state for a drain.
// *fsnet.Server implements it.
type GroupSource interface {
	// ExportGroups returns every group anchored at a path accepted by
	// owned, each as its anchor plus learned members in group order.
	ExportGroups(owned func(path string) bool) []fsnet.HandoffGroup
}

// DrainReport summarizes one graceful drain.
type DrainReport struct {
	// Epoch is the view the drain ran against.
	Epoch uint64
	// GroupsExported is how many owned groups had learned state to move.
	GroupsExported int
	// GroupsSent reached their new owners; GroupsFailed hit a transport
	// or server error; GroupsSkipped had no reachable new owner (the
	// target peer's breaker was open, or the ring was empty without us).
	GroupsSent    int
	GroupsFailed  int
	GroupsSkipped int
	// PerPeer counts delivered groups by receiving peer address.
	PerPeer map[string]int
	// Goodbye accounting: the self-less view's epoch, and how many peers
	// it was pushed to, failed to reach, or was skipped for (breaker open
	// or a pre-v3 peer). Survivors that miss the goodbye still converge
	// by gossip from the peers that got it.
	GoodbyeEpoch   uint64
	GoodbyePushed  int
	GoodbyeFailed  int
	GoodbyeSkipped int
}

// Drain begins this node's graceful departure: the node stops reporting
// ready (so a load balancer rotates it out — that is how it stops
// accepting new ownership), exports every group it owns from src, and
// streams each — anchor plus learned successor members — to the peer
// that owns it once this node is gone, so the new owners serve the
// moved paths warm the moment the fleet's membership updates land.
//
// Drain deliberately leaves this node's own view intact: it keeps
// serving the paths it still owns locally, which is always correct, and
// avoids the forwarding ping-pong that a unilaterally shrunk view would
// cause against peers still holding the old one (one-hop forwarding
// relies on view agreement; correctness never does). Peers exclude the
// drained node on their own schedule via their next Update. Callers
// typically trigger Drain from SIGTERM or an HTTP /drain endpoint, wait
// for it to return, and then shut the process down.
func (n *Node) Drain(src GroupSource) (DrainReport, error) {
	if !n.draining.CompareAndSwap(false, true) {
		return DrainReport{}, ErrDraining
	}
	v := n.view.Load()
	rep := DrainReport{Epoch: v.epoch, PerPeer: make(map[string]int)}
	n.events.Record("drain_start",
		obs.F("self", n.self),
		obs.F("epoch", strconv.FormatUint(v.epoch, 10)))

	// The ring as it will be without us decides where each group goes.
	rest := NewRing(n.cfg.Replicas)
	for _, m := range v.ring.Members() {
		if m != n.self {
			rest.Add(m)
		}
	}

	// Goodbye push: offer every reachable peer the view without us, one
	// epoch ahead of the view we drained against, so the fleet converges
	// on our departure with no operator reload. This runs before the
	// handoffs: a survivor that installs the goodbye early serves the
	// moved paths cold until its handoff lands, which is correct either
	// way. Our own view deliberately stays intact (see above); gossip
	// echoing the self-less view back at us is harmless — we keep
	// serving locally whatever the shrunk ring no longer sends us.
	if rest.Len() > 0 {
		rep.GoodbyeEpoch = v.epoch + 1
		goodbye := rest.Members()
		for _, target := range goodbye {
			p := v.peers[target]
			if p == nil || !p.admit() {
				rep.GoodbyeSkipped++
				continue
			}
			_, err := p.client.ViewPush(rep.GoodbyeEpoch, goodbye)
			n.noteOutcome(p, err)
			if err != nil {
				if errors.Is(err, fsnet.ErrViewUnsupported) {
					rep.GoodbyeSkipped++
				} else {
					rep.GoodbyeFailed++
				}
				continue
			}
			rep.GoodbyePushed++
		}
		n.events.Record("drain_goodbye",
			obs.F("self", n.self),
			obs.F("epoch", strconv.FormatUint(rep.GoodbyeEpoch, 10)),
			obs.F("pushed", strconv.Itoa(rep.GoodbyePushed)))
	}

	if rest.Len() > 0 && src != nil {
		groups := src.ExportGroups(func(path string) bool {
			return v.ring.Owner(path) == n.self
		})
		rep.GroupsExported = len(groups)
		for _, g := range groups {
			target := rest.Owner(g.Anchor)
			p := v.peers[target]
			if p == nil || !p.admit() {
				rep.GroupsSkipped++
				continue
			}
			if err := p.client.Handoff(g.Anchor, g.Members); err != nil {
				if errors.Is(err, fsnet.ErrConnBroken) {
					p.noteFailure()
				}
				rep.GroupsFailed++
				n.drainFailed.Add(1)
				continue
			}
			p.noteSuccess()
			rep.GroupsSent++
			rep.PerPeer[target]++
			n.drainSent.Add(1)
		}
	}

	n.events.Record("drain_done",
		obs.F("self", n.self),
		obs.F("sent", strconv.Itoa(rep.GroupsSent)),
		obs.F("failed", strconv.Itoa(rep.GroupsFailed)),
		obs.F("skipped", strconv.Itoa(rep.GroupsSkipped)))
	return rep, nil
}
