package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/group"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

func TestSequentialFirstAppearanceOrder(t *testing.T) {
	l := Sequential([]trace.FileID{5, 3, 5, 9, 3})
	for i, id := range []trace.FileID{5, 3, 9} {
		if p, ok := l.Position(id); !ok || p != i {
			t.Errorf("Position(%d) = %d,%v want %d", id, p, ok, i)
		}
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d, want 3", l.Len())
	}
	if _, ok := l.Position(99); ok {
		t.Error("unplaced file reported placed")
	}
}

func TestOrganPipeHottestCentred(t *testing.T) {
	// 1 hottest, then 2, then 3, then 4.
	var seq []trace.FileID
	for i, n := range []int{8, 4, 2, 1} {
		for j := 0; j < n; j++ {
			seq = append(seq, trace.FileID(i+1))
		}
	}
	l := OrganPipe(seq)
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	// The hottest file sits strictly closer to the centre than the
	// coldest.
	centre := float64(l.Len()-1) / 2
	dist := func(id trace.FileID) float64 {
		p, ok := l.Position(id)
		if !ok {
			t.Fatalf("file %d unplaced", id)
		}
		d := float64(p) - centre
		if d < 0 {
			d = -d
		}
		return d
	}
	if dist(1) >= dist(4) {
		t.Errorf("hottest file (dist %.1f) not more central than coldest (dist %.1f)", dist(1), dist(4))
	}
	// All slots distinct and within range.
	used := make(map[int]bool)
	for _, id := range []trace.FileID{1, 2, 3, 4} {
		p, _ := l.Position(id)
		if p < 0 || p >= 4 || used[p] {
			t.Fatalf("bad slot %d for file %d", p, id)
		}
		used[p] = true
	}
}

// Property: OrganPipe always produces a permutation of 0..n-1.
func TestOrganPipePermutationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		seq := make([]trace.FileID, len(raw))
		for i, r := range raw {
			seq[i] = trace.FileID(r % 30)
		}
		l := OrganPipe(seq)
		used := make(map[int]bool, l.Len())
		for _, id := range seq {
			p, ok := l.Position(id)
			if !ok || p < 0 || p >= l.Len() {
				return false
			}
			used[p] = true
		}
		return len(used) == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupedCollocatesGroups(t *testing.T) {
	// Two repeating tasks.
	var seq []trace.FileID
	for i := 0; i < 20; i++ {
		seq = append(seq, 1, 2, 3)
		seq = append(seq, 10, 11, 12)
	}
	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll(seq)
	b, err := group.NewBuilder(tr, 3, group.StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	cover := group.BuildCover(tr, b, seq)
	l := Grouped(cover, seq)

	// Files of the same task must be adjacent (span <= group size).
	span := func(ids ...trace.FileID) int {
		min, max := 1<<30, -1
		for _, id := range ids {
			p, ok := l.Position(id)
			if !ok {
				t.Fatalf("file %d unplaced", id)
			}
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return max - min
	}
	if s := span(1, 2, 3); s > 3 {
		t.Errorf("task A span = %d, want <= 3", s)
	}
	if s := span(10, 11, 12); s > 3 {
		t.Errorf("task B span = %d, want <= 3", s)
	}
}

func TestSeekCost(t *testing.T) {
	l := Sequential([]trace.FileID{1, 2, 3})
	c, err := SeekCost(l, []trace.FileID{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Seeks: 1->3 distance 2, 3->2 distance 1.
	if c.Seeks != 2 || c.Total != 3 {
		t.Errorf("cost = %+v, want 2 seeks total 3", c)
	}
	if c.Mean() != 1.5 {
		t.Errorf("Mean = %v, want 1.5", c.Mean())
	}
	if _, err := SeekCost(nil, nil); err == nil {
		t.Error("nil layout accepted")
	}
}

func TestSeekCostUnplaced(t *testing.T) {
	l := Sequential([]trace.FileID{1})
	c, err := SeekCost(l, []trace.FileID{1, 99})
	if err != nil {
		t.Fatal(err)
	}
	if c.Unplaced != 1 {
		t.Errorf("Unplaced = %d, want 1", c.Unplaced)
	}
	if c.Total == 0 {
		t.Error("unplaced access cost nothing")
	}
}

func TestSeekCostEmpty(t *testing.T) {
	c, err := SeekCost(NewLayout(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mean() != 0 || c.Seeks != 0 {
		t.Errorf("empty cost = %+v", c)
	}
}

// The paper's placement argument: on a workload with inter-file
// correlation, group-aware placement beats the frequency-only organ pipe,
// which is optimal only under independent accesses.
func TestGroupedBeatsOrganPipeOnCorrelatedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// 30 tasks of 6 files each, executed in runs.
	var tasks [][]trace.FileID
	id := trace.FileID(0)
	for i := 0; i < 30; i++ {
		var task []trace.FileID
		for j := 0; j < 6; j++ {
			task = append(task, id)
			id++
		}
		tasks = append(tasks, task)
	}
	var seq []trace.FileID
	for i := 0; i < 600; i++ {
		seq = append(seq, tasks[rng.Intn(len(tasks))]...)
	}

	tr, err := successor.NewTracker(successor.PolicyLRU, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.ObserveAll(seq)
	b, err := group.NewBuilder(tr, 6, group.StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	cover := group.BuildCover(tr, b, seq)

	grouped, err := SeekCost(Grouped(cover, seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	organ, err := SeekCost(OrganPipe(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := SeekCost(Sequential(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean seek: grouped=%.1f organ-pipe=%.1f sequential=%.1f",
		grouped.Mean(), organ.Mean(), sequential.Mean())
	if grouped.Mean() >= organ.Mean() {
		t.Errorf("grouped mean seek %.2f >= organ pipe %.2f", grouped.Mean(), organ.Mean())
	}
	if grouped.Unplaced != 0 {
		t.Errorf("grouped layout left %d accesses unplaced", grouped.Unplaced)
	}
}
