// Package placement applies grouping to *data placement*, the second use
// the paper's §2.1 develops and its §6 names as the next target: lay
// files out on a one-dimensional device (a disk's logical block space, a
// tape) so that files accessed together sit together, and measure the
// seek cost of replaying a trace against the layout.
//
// Three layouts are provided:
//
//   - Sequential: files in first-access order (the creation-order
//     baseline a naive file system approximates).
//   - OrganPipe: hottest files in the middle, alternating outward — the
//     classic frequency-only optimum for *independent* accesses (Wong
//     1980; the Staelin & Garcia-Molina line of work the paper cites).
//   - Grouped: the covering-set groups of §2.1 collocated contiguously,
//     hottest group first; because the cover is allowed to overlap, a
//     shared file is placed with its most important group (its other
//     appearances cost nothing extra, unlike a disjoint partition which
//     would have to split working sets).
//
// On workloads with inter-file correlation, Grouped beats OrganPipe even
// though OrganPipe is optimal under the independence assumption — the
// paper's core argument for relationship-aware placement.
package placement

import (
	"fmt"
	"sort"

	"aggcache/internal/group"
	"aggcache/internal/trace"
)

// Layout assigns each file a slot on a one-dimensional device.
type Layout struct {
	pos  map[trace.FileID]int
	next int
}

// NewLayout returns an empty layout.
func NewLayout() *Layout {
	return &Layout{pos: make(map[trace.FileID]int)}
}

// place appends id at the next free slot if it has no slot yet.
func (l *Layout) place(id trace.FileID) {
	if _, ok := l.pos[id]; ok {
		return
	}
	l.pos[id] = l.next
	l.next++
}

// Position returns id's slot and whether it is placed.
func (l *Layout) Position(id trace.FileID) (int, bool) {
	p, ok := l.pos[id]
	return p, ok
}

// Len returns the number of placed files.
func (l *Layout) Len() int { return len(l.pos) }

// Sequential lays files out in first-appearance order of seq.
func Sequential(seq []trace.FileID) *Layout {
	l := NewLayout()
	for _, id := range seq {
		l.place(id)
	}
	return l
}

// OrganPipe lays files out by decreasing access frequency, alternating
// around the device centre: the hottest file in the middle, the next two
// flanking it, and so on. Optimal when accesses are independent.
func OrganPipe(seq []trace.FileID) *Layout {
	counts := make(map[trace.FileID]int)
	var order []trace.FileID
	for _, id := range seq {
		if counts[id] == 0 {
			order = append(order, id)
		}
		counts[id]++
	}
	// Sort by count desc, first-appearance asc for determinism.
	first := make(map[trace.FileID]int, len(order))
	for i, id := range order {
		first[id] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return first[a] < first[b]
	})

	// Rank slots by distance from the device centre and give the i-th
	// hottest file the i-th most central slot.
	n := len(order)
	slots := make([]int, n)
	for i := range slots {
		slots[i] = i
	}
	centre := float64(n-1) / 2
	sort.SliceStable(slots, func(i, j int) bool {
		di := float64(slots[i]) - centre
		if di < 0 {
			di = -di
		}
		dj := float64(slots[j]) - centre
		if dj < 0 {
			dj = -dj
		}
		return di < dj
	})

	l := NewLayout()
	l.pos = make(map[trace.FileID]int, n)
	l.next = n
	for i, id := range order {
		l.pos[id] = slots[i]
	}
	return l
}

// Grouped lays out the covering-set groups contiguously. Groups are
// ordered by the total access count of their members (hottest first);
// within a group, files keep the group's own order (seed, then predicted
// successors). A file already placed by an earlier (hotter) group is not
// moved — that is where overlap pays.
func Grouped(cover *group.Cover, seq []trace.FileID) *Layout {
	counts := make(map[trace.FileID]int)
	for _, id := range seq {
		counts[id]++
	}
	type scored struct {
		idx  int
		heat int
	}
	scores := make([]scored, len(cover.Groups))
	for i, g := range cover.Groups {
		s := scored{idx: i}
		for _, id := range g {
			s.heat += counts[id]
		}
		scores[i] = s
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].heat != scores[j].heat {
			return scores[i].heat > scores[j].heat
		}
		return scores[i].idx < scores[j].idx
	})

	l := NewLayout()
	for _, s := range scores {
		for _, id := range cover.Groups[s.idx] {
			l.place(id)
		}
	}
	// Stragglers (files never grouped) go at the end in trace order.
	for _, id := range seq {
		l.place(id)
	}
	return l
}

// Cost is the outcome of replaying a trace against a layout.
type Cost struct {
	// Seeks is the number of head movements (accesses after the first).
	Seeks uint64
	// Total is the summed seek distance in slots.
	Total uint64
	// Unplaced counts accesses to files absent from the layout; they are
	// charged the device length as a worst-case seek.
	Unplaced uint64
}

// Mean returns the average seek distance.
func (c Cost) Mean() float64 {
	if c.Seeks == 0 {
		return 0
	}
	return float64(c.Total) / float64(c.Seeks)
}

// SeekCost replays seq against the layout, modelling cost(a, b) =
// |pos(a) - pos(b)| — the standard single-head seek model of the
// placement literature the paper builds on.
func SeekCost(l *Layout, seq []trace.FileID) (Cost, error) {
	if l == nil {
		return Cost{}, fmt.Errorf("placement: layout must not be nil")
	}
	var c Cost
	devLen := l.Len()
	havePrev := false
	prev := 0
	for _, id := range seq {
		pos, ok := l.Position(id)
		if !ok {
			c.Unplaced++
			pos = devLen // park at the end; worst case
		}
		if havePrev {
			c.Seeks++
			d := pos - prev
			if d < 0 {
				d = -d
			}
			c.Total += uint64(d)
		}
		prev = pos
		havePrev = true
	}
	return c, nil
}
