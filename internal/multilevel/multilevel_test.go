package multilevel

import (
	"testing"
	"time"

	"aggcache/internal/trace"
	"aggcache/internal/workload"
)

func ids(t *testing.T, opens int) []trace.FileID {
	t.Helper()
	tr, err := workload.Standard(workload.ProfileWorkstation, 1, opens)
	if err != nil {
		t.Fatal(err)
	}
	return tr.OpenIDs()
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{}); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := Run(nil, Config{Levels: []Level{{Name: "x", Capacity: 10, Scheme: "arc"}}}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := Run(nil, Config{Levels: []Level{{Name: "x", Capacity: 0, Scheme: SchemeLRU}}}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestRunSingleLevelMatchesPlainCache(t *testing.T) {
	seq := []trace.FileID{1, 2, 1, 2, 3, 1}
	res, err := Run(seq, Config{
		Levels:         []Level{{Name: "only", Capacity: 2, Scheme: SchemeLRU, HitLatency: time.Millisecond}},
		BackendLatency: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// LRU(2) over 1,2,1,2,3,1: misses 1,2, hits 1,2, miss 3, miss 1.
	if res.Levels[0].Hits != 2 {
		t.Errorf("hits = %d, want 2", res.Levels[0].Hits)
	}
	if res.BackendFetches != 4 {
		t.Errorf("backend = %d, want 4", res.BackendFetches)
	}
	want := 2*time.Millisecond + 4*10*time.Millisecond
	if res.TotalLatency != want {
		t.Errorf("TotalLatency = %v, want %v", res.TotalLatency, want)
	}
}

func TestRunRequestsCascade(t *testing.T) {
	seq := ids(t, 8000)
	res, err := Run(seq, Config{
		Levels: []Level{
			{Name: "client", Capacity: 100, Scheme: SchemeLRU, HitLatency: 100 * time.Microsecond},
			{Name: "server", Capacity: 300, Scheme: SchemeLRU, HitLatency: 2 * time.Millisecond},
		},
		BackendLatency: 12 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, s := res.Levels[0], res.Levels[1]
	if c.Requests != res.Accesses {
		t.Errorf("client requests %d != accesses %d", c.Requests, res.Accesses)
	}
	if s.Requests != c.Requests-c.Hits {
		t.Errorf("server requests %d != client misses %d", s.Requests, c.Requests-c.Hits)
	}
	if res.BackendFetches != s.Requests-s.Hits {
		t.Errorf("backend %d != server misses %d", res.BackendFetches, s.Requests-s.Hits)
	}
	if res.MeanLatency() <= 0 {
		t.Error("mean latency not positive")
	}
}

// The latency version of Figure 4's story: swapping the server level from
// LRU to aggregating cuts mean open latency.
func TestAggregatingServerLevelCutsLatency(t *testing.T) {
	seq := ids(t, 20000)
	base := Config{
		Levels: []Level{
			{Name: "client", Capacity: 300, Scheme: SchemeLRU, HitLatency: 100 * time.Microsecond},
			{Name: "server", Capacity: 300, Scheme: SchemeLRU, HitLatency: 2 * time.Millisecond},
		},
		BackendLatency: 12 * time.Millisecond,
	}
	lru, err := Run(seq, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Levels[1].Scheme = SchemeAggregating
	base.Levels[1].GroupSize = 5
	agg, err := Run(seq, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean open latency: lru-server=%v agg-server=%v", lru.MeanLatency(), agg.MeanLatency())
	if agg.MeanLatency() >= lru.MeanLatency() {
		t.Errorf("aggregating server latency %v >= lru %v", agg.MeanLatency(), lru.MeanLatency())
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	seq := ids(t, 15000)
	res, err := Run(seq, Config{
		Levels: []Level{
			{Name: "ram", Capacity: 50, Scheme: SchemeLRU, HitLatency: 10 * time.Microsecond},
			{Name: "ssd", Capacity: 200, Scheme: SchemeAggregating, GroupSize: 5, HitLatency: 500 * time.Microsecond},
			{Name: "remote", Capacity: 800, Scheme: SchemeAggregating, GroupSize: 5, HitLatency: 5 * time.Millisecond},
		},
		BackendLatency: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 3 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	// Sanity: deeper levels see fewer requests.
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Requests > res.Levels[i-1].Requests {
			t.Errorf("level %d requests %d > level %d requests %d",
				i, res.Levels[i].Requests, i-1, res.Levels[i-1].Requests)
		}
	}
	for _, l := range res.Levels {
		if hr := l.HitRate(); hr < 0 || hr > 1 {
			t.Errorf("%s hit rate %v", l.Name, hr)
		}
	}
}

func TestEmptySequence(t *testing.T) {
	res, err := Run(nil, Config{
		Levels: []Level{{Name: "l", Capacity: 4, Scheme: SchemeLFU}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanLatency() != 0 || res.Accesses != 0 {
		t.Errorf("empty run = %+v", res)
	}
	if res.Levels[0].HitRate() != 0 {
		t.Error("idle hit rate != 0")
	}
}
