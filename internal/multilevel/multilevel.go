// Package multilevel simulates cache hierarchies of arbitrary depth with
// a latency model, generalizing the two-level client/server scenario of
// the paper's §4.3 (and the second-level-cache setting of Zhou et al.,
// which the paper cites). Each level may run LRU, LFU, or the aggregating
// cache; a demand access probes levels in order, the first hit pays that
// level's latency, and a miss everywhere pays the backend latency. Every
// level inserts on its misses (fill on the way back), exactly like the
// paper's simulations.
package multilevel

import (
	"fmt"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/core"
	"aggcache/internal/trace"
)

// Scheme selects a level's cache policy.
type Scheme string

// Level cache schemes.
const (
	SchemeLRU         Scheme = "lru"
	SchemeLFU         Scheme = "lfu"
	SchemeAggregating Scheme = "agg"
)

// Level describes one tier of the hierarchy, nearest first.
type Level struct {
	// Name labels the level in results ("client", "server", ...).
	Name string
	// Capacity is the level's size in whole files.
	Capacity int
	// Scheme is the level's policy.
	Scheme Scheme
	// GroupSize applies to SchemeAggregating (default 5).
	GroupSize int
	// HitLatency is the total cost of an access served by this level
	// (cumulative: it should include the cost of probing the levels
	// above it).
	HitLatency time.Duration
}

// Config describes a hierarchy run.
type Config struct {
	Levels []Level
	// BackendLatency is the cost of an access that misses every level.
	BackendLatency time.Duration
}

// LevelStats is one level's activity.
type LevelStats struct {
	Name string
	// Requests is how many accesses reached this level.
	Requests uint64
	// Hits is how many of those it served.
	Hits uint64
}

// HitRate is hits over requests at this level.
func (s LevelStats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// Result is the outcome of a hierarchy run.
type Result struct {
	Levels []LevelStats
	// Accesses is the number of demand accesses replayed.
	Accesses uint64
	// BackendFetches is how many accesses missed everywhere.
	BackendFetches uint64
	// TotalLatency is the summed cost of all accesses.
	TotalLatency time.Duration
}

// MeanLatency is the average cost per access.
func (r Result) MeanLatency() time.Duration {
	if r.Accesses == 0 {
		return 0
	}
	return r.TotalLatency / time.Duration(r.Accesses)
}

// level is the runtime form of a Level.
type level struct {
	spec  Level
	plain cache.Cache
	agg   *core.AggregatingCache
	stats LevelStats
}

// access probes the level, learning and filling per its scheme.
func (l *level) access(id trace.FileID) bool {
	l.stats.Requests++
	var hit bool
	if l.agg != nil {
		l.agg.Learn(id)
		hit = l.agg.Serve(id)
	} else {
		hit = l.plain.Access(id)
	}
	if hit {
		l.stats.Hits++
	}
	return hit
}

// Run replays the open sequence through the hierarchy.
func Run(ids []trace.FileID, cfg Config) (Result, error) {
	if len(cfg.Levels) == 0 {
		return Result{}, fmt.Errorf("multilevel: at least one level required")
	}
	levels := make([]*level, len(cfg.Levels))
	for i, spec := range cfg.Levels {
		l := &level{spec: spec}
		l.stats.Name = spec.Name
		switch spec.Scheme {
		case SchemeLRU, SchemeLFU:
			c, err := cache.New(cache.Policy(spec.Scheme), spec.Capacity)
			if err != nil {
				return Result{}, fmt.Errorf("multilevel: level %q: %w", spec.Name, err)
			}
			l.plain = c
		case SchemeAggregating:
			g := spec.GroupSize
			if g == 0 {
				g = 5
			}
			a, err := core.New(core.Config{Capacity: spec.Capacity, GroupSize: g})
			if err != nil {
				return Result{}, fmt.Errorf("multilevel: level %q: %w", spec.Name, err)
			}
			l.agg = a
		default:
			return Result{}, fmt.Errorf("multilevel: level %q: unknown scheme %q", spec.Name, spec.Scheme)
		}
		levels[i] = l
	}

	var res Result
	for _, id := range ids {
		res.Accesses++
		served := false
		for _, l := range levels {
			if l.access(id) {
				res.TotalLatency += l.spec.HitLatency
				served = true
				break
			}
		}
		if !served {
			res.BackendFetches++
			res.TotalLatency += cfg.BackendLatency
		}
	}
	for _, l := range levels {
		res.Levels = append(res.Levels, l.stats)
	}
	return res, nil
}
