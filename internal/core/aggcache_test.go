package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aggcache/internal/cache"
	"aggcache/internal/group"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *AggregatingCache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{}},
		{"negative capacity", Config{Capacity: -3}},
		{"negative group", Config{Capacity: 10, GroupSize: -1}},
		{"bad successor policy", Config{Capacity: 10, SuccessorPolicy: "bogus"}},
		{"bad placement", Config{Capacity: 10, Placement: Placement(9)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Errorf("New(%+v) succeeded", tt.cfg)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	c := mustNew(t, Config{Capacity: 10})
	if c.GroupSize() != 5 {
		t.Errorf("default GroupSize = %d, want 5", c.GroupSize())
	}
	if c.Cap() != 10 {
		t.Errorf("Cap = %d, want 10", c.Cap())
	}
}

func TestGroupSize1IsPlainLRU(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4, GroupSize: 1})
	lru, _ := cache.NewLRU(4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		id := trace.FileID(rng.Intn(12))
		if agg.Access(id) != lru.Access(id) {
			t.Fatalf("divergence from plain LRU at access %d", i)
		}
	}
	if agg.Stats().DemandFetches() != lru.Stats().Misses {
		t.Errorf("agg fetches %d != lru misses %d",
			agg.Stats().DemandFetches(), lru.Stats().Misses)
	}
}

func TestImplicitPrefetchServesChain(t *testing.T) {
	// Two deterministic working sets that evict each other (capacity
	// holds only one): entering a set misses on its first file, and the
	// group fetch pre-loads the rest — those accesses are prefetch hits.
	agg := mustNew(t, Config{Capacity: 5, GroupSize: 5, SuccessorCapacity: 2})
	taskA := []trace.FileID{1, 2, 3, 4, 5}
	taskB := []trace.FileID{10, 11, 12, 13, 14}
	var accesses int
	for round := 0; round < 30; round++ {
		for _, id := range taskA {
			agg.Access(id)
			accesses++
		}
		for _, id := range taskB {
			agg.Access(id)
			accesses++
		}
	}
	s := agg.Stats()
	if s.PrefetchHits == 0 {
		t.Error("no prefetch hits on deterministic alternating chains")
	}
	// With groups the fetch count must be well below one per access.
	if s.DemandFetches() >= uint64(accesses)/2 {
		t.Errorf("fetches = %d of %d accesses, not reduced", s.DemandFetches(), accesses)
	}
}

func TestGroupingBeatsLRUOnCyclicPattern(t *testing.T) {
	// The loop of N+1 distinct files over a cache of N is LRU's worst
	// case (0 hits). Grouping learns the cycle and prefetches ahead.
	const universe = 8
	var seq []trace.FileID
	for round := 0; round < 200; round++ {
		for id := trace.FileID(0); id < universe; id++ {
			seq = append(seq, id)
		}
	}
	lru, _ := cache.NewLRU(universe - 1)
	for _, id := range seq {
		lru.Access(id)
	}
	agg := mustNew(t, Config{Capacity: universe - 1, GroupSize: 5})
	for _, id := range seq {
		agg.Access(id)
	}
	if lruHits := lru.Stats().Hits; lruHits != 0 {
		t.Fatalf("LRU hits = %d, want 0 (pathological loop)", lruHits)
	}
	if hits := agg.Stats().Hits; hits == 0 {
		t.Error("aggregating cache hits = 0 on loop, want > 0")
	}
	if f := agg.Stats().DemandFetches(); f >= uint64(len(seq)) {
		t.Errorf("fetches = %d of %d accesses, no reduction", f, len(seq))
	}
}

func TestDemandedFileAtHeadMembersAtTail(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 6, GroupSize: 3, SuccessorCapacity: 2})
	// Teach 1 -> 2 -> 3.
	for i := 0; i < 3; i++ {
		agg.Access(1)
		agg.Access(2)
		agg.Access(3)
	}
	// Fill recency with other files, evicting 1,2,3.
	agg.Access(10)
	agg.Access(11)
	agg.Access(12)
	agg.Access(13)
	agg.Access(14)
	agg.Access(15)
	if agg.Contains(1) {
		t.Skip("1 still resident; capacity assumptions changed")
	}
	// Miss on 1 fetches {1,2,3}: 1 at head, 3 at the very tail.
	agg.Access(1)
	if !agg.Contains(2) || !agg.Contains(3) {
		t.Fatal("group members not resident after group fetch")
	}
}

func TestServeWithoutLearn(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4, GroupSize: 2})
	// Learn a relationship only via Learn.
	agg.Learn(1)
	agg.Learn(2)
	agg.Learn(1)
	agg.Learn(2)
	// Serve must not have counted any accesses yet.
	if s := agg.Stats(); s.Hits+s.Misses != 0 {
		t.Fatalf("Learn affected demand stats: %+v", s)
	}
	agg.Serve(1)
	if !agg.Contains(2) {
		t.Error("Serve(1) did not fetch learned successor 2")
	}
}

func TestStatsAccounting(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4, GroupSize: 2, SuccessorCapacity: 1})
	agg.Access(1) // miss, group {1}
	agg.Access(2) // miss, group {2} (no successor of 2 yet)
	agg.Access(1) // hit
	agg.Access(2) // hit (2 resident)
	s := agg.Stats()
	if s.Misses != 2 || s.Hits != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.GroupFetches != s.Misses {
		t.Errorf("GroupFetches = %d != Misses = %d", s.GroupFetches, s.Misses)
	}
	if s.FilesFetched < s.GroupFetches {
		t.Errorf("FilesFetched = %d < GroupFetches = %d", s.FilesFetched, s.GroupFetches)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", s.HitRate())
	}
}

func TestPrefetchAccuracyBounds(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 8, GroupSize: 4})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		agg.Access(trace.FileID(rng.Intn(30)))
	}
	acc := agg.Stats().PrefetchAccuracy()
	if acc < 0 || acc > 1 {
		t.Errorf("PrefetchAccuracy = %v out of [0,1]", acc)
	}
}

func TestPrefetchAccuracyIdle(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 8})
	if got := agg.Stats().PrefetchAccuracy(); got != 0 {
		t.Errorf("idle PrefetchAccuracy = %v, want 0", got)
	}
}

func TestPlacementHeadVariant(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4, GroupSize: 3, Placement: PlacementHead})
	for i := 0; i < 5; i++ {
		agg.Access(1)
		agg.Access(2)
		agg.Access(3)
	}
	if s := agg.Stats(); s.Hits == 0 {
		t.Errorf("head placement produced no hits: %+v", s)
	}
}

func TestBuildGroupDoesNotTouchState(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4, GroupSize: 3})
	agg.Access(1)
	agg.Access(2)
	agg.Access(1)
	before := agg.Stats()
	g := agg.BuildGroup(1)
	if len(g) == 0 || g[0] != 1 {
		t.Errorf("BuildGroup = %v", g)
	}
	if agg.Stats() != before {
		t.Error("BuildGroup changed stats")
	}
}

func TestTrackerExposed(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 4})
	agg.Access(7)
	agg.Access(8)
	if f, ok := agg.Tracker().First(7); !ok || f != 8 {
		t.Errorf("Tracker().First(7) = %d,%v want 8,true", f, ok)
	}
}

// Property: occupancy never exceeds capacity, a served file is always
// resident afterwards, and fetch counters stay consistent, across random
// configurations and access strings.
func TestAggregatingCacheInvariants(t *testing.T) {
	f := func(seed int64, capRaw, gRaw, succRaw uint8, headPlacement bool) bool {
		capacity := int(capRaw%30) + 2
		g := int(gRaw%10) + 1
		succCap := int(succRaw%5) + 1
		placement := PlacementTail
		if headPlacement {
			placement = PlacementHead
		}
		agg, err := New(Config{
			Capacity:          capacity,
			GroupSize:         g,
			SuccessorCapacity: succCap,
			Placement:         placement,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 800; i++ {
			id := trace.FileID(rng.Intn(capacity * 2))
			agg.Access(id)
			if agg.Len() > agg.Cap() {
				return false
			}
			if !agg.Contains(id) {
				return false
			}
		}
		s := agg.Stats()
		return s.GroupFetches == s.Misses &&
			s.FilesFetched >= s.GroupFetches &&
			s.FilesFetched <= s.GroupFetches*uint64(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Ablation guard: on a predictable chain workload the paper's chain
// strategy must not lose to doing nothing (g=1).
func TestChainStrategyHelpsOnPredictableWorkload(t *testing.T) {
	run := func(g int, strat group.Strategy) uint64 {
		agg, err := New(Config{Capacity: 10, GroupSize: g, Strategy: strat,
			SuccessorPolicy: successor.PolicyLRU})
		if err != nil {
			t.Fatal(err)
		}
		// Three interleaved deterministic tasks.
		tasks := [][]trace.FileID{
			{1, 2, 3, 4, 5},
			{20, 21, 22, 23, 24},
			{40, 41, 42, 43, 44},
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 400; i++ {
			task := tasks[rng.Intn(len(tasks))]
			for _, id := range task {
				agg.Access(id)
			}
		}
		return agg.Stats().DemandFetches()
	}
	lruFetches := run(1, group.StrategyChain)
	g5Fetches := run(5, group.StrategyChain)
	if g5Fetches >= lruFetches {
		t.Errorf("g5 fetches %d >= LRU fetches %d; grouping did not help", g5Fetches, lruFetches)
	}
}
