package core

import (
	"math/rand"
	"testing"

	"aggcache/internal/trace"
)

func TestAdaptiveValidation(t *testing.T) {
	bad := []Config{
		{Capacity: 10, GroupSize: 5, Adaptive: true, MinGroupSize: 6, MaxGroupSize: 10},
		{Capacity: 10, GroupSize: 5, Adaptive: true, MinGroupSize: 2, MaxGroupSize: 4},
		{Capacity: 10, GroupSize: 5, Adaptive: true, MinGroupSize: -1, MaxGroupSize: 10},
		{Capacity: 10, GroupSize: 5, Adaptive: true, MinGroupSize: 8, MaxGroupSize: 6},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded", cfg)
		}
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	c := mustNew(t, Config{Capacity: 20, GroupSize: 5, Adaptive: true})
	if c.cfg.MinGroupSize != 1 || c.cfg.MaxGroupSize != 10 {
		t.Errorf("adaptive bounds = [%d,%d], want [1,10]", c.cfg.MinGroupSize, c.cfg.MaxGroupSize)
	}
	if c.CurrentGroupSize() != 5 {
		t.Errorf("CurrentGroupSize = %d, want starting 5", c.CurrentGroupSize())
	}
}

func TestAdaptiveGrowsOnPredictableWorkload(t *testing.T) {
	agg := mustNew(t, Config{
		Capacity:  20,
		GroupSize: 2,
		Adaptive:  true,
	})
	// Two long deterministic chains that evict each other: speculative
	// members are always used, so g should climb.
	taskA := make([]trace.FileID, 15)
	taskB := make([]trace.FileID, 15)
	for i := range taskA {
		taskA[i] = trace.FileID(i)
		taskB[i] = trace.FileID(100 + i)
	}
	for round := 0; round < 400; round++ {
		for _, id := range taskA {
			agg.Access(id)
		}
		for _, id := range taskB {
			agg.Access(id)
		}
	}
	if g := agg.CurrentGroupSize(); g <= 2 {
		t.Errorf("group size = %d after predictable workload, want growth", g)
	}
}

func TestAdaptiveShrinksOnRandomWorkload(t *testing.T) {
	agg := mustNew(t, Config{
		Capacity:     50,
		GroupSize:    8,
		Adaptive:     true,
		MinGroupSize: 1,
		MaxGroupSize: 10,
	})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		agg.Access(trace.FileID(rng.Intn(5000)))
	}
	if g := agg.CurrentGroupSize(); g > 3 {
		t.Errorf("group size = %d after random workload, want shrink toward 1", g)
	}
}

func TestAdaptiveStaysWithinBounds(t *testing.T) {
	agg := mustNew(t, Config{
		Capacity:     30,
		GroupSize:    3,
		Adaptive:     true,
		MinGroupSize: 2,
		MaxGroupSize: 5,
	})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		// Mixed: half predictable chain, half noise.
		var id trace.FileID
		if i%2 == 0 {
			id = trace.FileID(i % 40)
		} else {
			id = trace.FileID(rng.Intn(2000))
		}
		agg.Access(id)
		if g := agg.CurrentGroupSize(); g < 2 || g > 5 {
			t.Fatalf("group size %d escaped bounds [2,5]", g)
		}
	}
}

func TestNonAdaptiveGroupSizeFixed(t *testing.T) {
	agg := mustNew(t, Config{Capacity: 20, GroupSize: 4})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		agg.Access(trace.FileID(rng.Intn(100)))
	}
	if g := agg.CurrentGroupSize(); g != 4 {
		t.Errorf("static group size changed to %d", g)
	}
}

// Adaptive sizing should approach the better static configuration on each
// extreme workload: close to g-max fetch counts when predictable, close
// to plain LRU waste when random.
func TestAdaptiveApproachesBestStatic(t *testing.T) {
	predictable := func() []trace.FileID {
		var seq []trace.FileID
		for round := 0; round < 300; round++ {
			for i := 0; i < 15; i++ {
				seq = append(seq, trace.FileID(i))
			}
			for i := 0; i < 15; i++ {
				seq = append(seq, trace.FileID(100+i))
			}
		}
		return seq
	}()

	run := func(cfg Config) Stats {
		agg := mustNew(t, cfg)
		for _, id := range predictable {
			agg.Access(id)
		}
		return agg.Stats()
	}
	adaptive := run(Config{Capacity: 20, GroupSize: 2, Adaptive: true, MinGroupSize: 1, MaxGroupSize: 10})
	static2 := run(Config{Capacity: 20, GroupSize: 2})
	static10 := run(Config{Capacity: 20, GroupSize: 10})

	if adaptive.DemandFetches() >= static2.DemandFetches() {
		t.Errorf("adaptive fetches %d >= static g2 %d; adaptation did not help",
			adaptive.DemandFetches(), static2.DemandFetches())
	}
	// Within 2x of the best static configuration.
	if adaptive.DemandFetches() > 2*static10.DemandFetches() {
		t.Errorf("adaptive fetches %d far above static g10 %d",
			adaptive.DemandFetches(), static10.DemandFetches())
	}
}
