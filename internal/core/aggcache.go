// Package core implements the paper's primary contribution: the
// aggregating cache (§3). On every demand miss it fetches a *group* of
// files — the demanded file plus a best-effort chain of its most-likely
// transitive successors — and places the demanded file at the head of an
// LRU list with the remaining group members appended at the tail, so
// unconfirmed successors never outrank confirmed residents. Successor
// metadata is learned online from the access sequence the cache observes
// (or, in the piggybacked server deployment, from a stream the client
// forwards).
package core

import (
	"fmt"
	"io"

	"aggcache/internal/cache"
	"aggcache/internal/group"
	"aggcache/internal/obs"
	"aggcache/internal/successor"
	"aggcache/internal/trace"
)

// Placement says where non-demanded group members enter the LRU list.
type Placement int

// Group-member placements.
const (
	// PlacementTail appends fetched members at the LRU tail — the
	// paper's design: an unconfirmed successor is the next victim.
	PlacementTail Placement = iota + 1
	// PlacementHead inserts members at the MRU head, the aggressive
	// variant the paper argues against; kept for the ablation bench.
	PlacementHead
)

// Config parameterizes an aggregating cache.
type Config struct {
	// Capacity is the cache size in whole files.
	Capacity int
	// GroupSize is g, the best-effort retrieval group size. 1 degrades
	// to plain LRU.
	GroupSize int
	// SuccessorPolicy manages the per-file successor lists. The paper
	// uses and recommends LRU (§4.4).
	SuccessorPolicy successor.Policy
	// SuccessorCapacity bounds each per-file list. The paper shows a
	// handful of entries suffices; default 3.
	SuccessorCapacity int
	// Strategy selects group construction; default transitive chaining.
	Strategy group.Strategy
	// Placement selects member placement; default tail.
	Placement Placement
	// Adaptive lets the cache tune the group size online between
	// MinGroupSize and MaxGroupSize: when recent speculative fetches
	// are mostly used, g grows; when they are mostly wasted, g shrinks.
	// GroupSize is the starting point. This implements the paper's §6
	// future work on group construction ("forming groups of arbitrary
	// size").
	Adaptive bool
	// MinGroupSize and MaxGroupSize bound adaptation (defaults 1 and
	// 2x GroupSize).
	MinGroupSize int
	MaxGroupSize int
	// Obs, when set, registers hit/miss/prefetch/eviction counters and a
	// group-size distribution histogram with the given registry,
	// incremented alongside Stats. Nil (the simulator default) leaves the
	// access path with nothing but nil-check branches, preserving the
	// allocation-free hot path (DESIGN.md §9).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.GroupSize == 0 {
		c.GroupSize = 5
	}
	if c.SuccessorPolicy == "" {
		c.SuccessorPolicy = successor.PolicyLRU
	}
	if c.SuccessorCapacity == 0 {
		c.SuccessorCapacity = 3
	}
	if c.Strategy == 0 {
		c.Strategy = group.StrategyChain
	}
	if c.Placement == 0 {
		c.Placement = PlacementTail
	}
	if c.Adaptive {
		if c.MinGroupSize == 0 {
			c.MinGroupSize = 1
		}
		if c.MaxGroupSize == 0 {
			c.MaxGroupSize = 2 * c.GroupSize
		}
	}
	return c
}

func (c Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity must be positive, got %d", c.Capacity)
	}
	if c.GroupSize < 1 {
		return fmt.Errorf("core: group size must be >= 1, got %d", c.GroupSize)
	}
	if c.Placement != PlacementTail && c.Placement != PlacementHead {
		return fmt.Errorf("core: unknown placement %d", c.Placement)
	}
	if c.Adaptive {
		if c.MinGroupSize < 1 || c.MaxGroupSize < c.MinGroupSize {
			return fmt.Errorf("core: adaptive bounds [%d,%d] invalid", c.MinGroupSize, c.MaxGroupSize)
		}
		if c.GroupSize < c.MinGroupSize || c.GroupSize > c.MaxGroupSize {
			return fmt.Errorf("core: group size %d outside adaptive bounds [%d,%d]",
				c.GroupSize, c.MinGroupSize, c.MaxGroupSize)
		}
	}
	return nil
}

// Stats counts aggregating-cache activity. Demand fetches equal Misses:
// every miss triggers exactly one (group) request to the remote store, so
// the fetch count the paper plots in Figure 3 is the miss count.
type Stats struct {
	// Hits and Misses count demand accesses.
	Hits   uint64
	Misses uint64
	// GroupFetches counts remote retrieval operations (== Misses).
	GroupFetches uint64
	// FilesFetched is the total number of files transferred, demanded
	// plus opportunistic members.
	FilesFetched uint64
	// PrefetchHits counts demand hits served by a file that entered the
	// cache as a non-demanded group member and had not been demanded
	// since — the grouping win.
	PrefetchHits uint64
	// PrefetchedEvicted counts group members evicted without ever being
	// demanded — the pollution cost.
	PrefetchedEvicted uint64
	// Evictions counts all capacity evictions.
	Evictions uint64
}

// DemandFetches is the paper's Figure-3 metric: requests sent to the
// remote server.
func (s Stats) DemandFetches() uint64 { return s.Misses }

// HitRate returns demand hits over demand accesses.
func (s Stats) HitRate() float64 {
	if n := s.Hits + s.Misses; n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d group-fetches=%d files-fetched=%d prefetch-hits=%d hit-rate=%.3f",
		s.Hits, s.Misses, s.GroupFetches, s.FilesFetched, s.PrefetchHits, s.HitRate())
}

// PrefetchAccuracy is PrefetchHits over all opportunistically fetched
// files: how often a speculative group member was actually used.
func (s Stats) PrefetchAccuracy() float64 {
	speculative := s.FilesFetched - s.GroupFetches // exclude demanded files
	if speculative == 0 {
		return 0
	}
	return float64(s.PrefetchHits) / float64(speculative)
}

// AggregatingCache is the paper's grouping cache. It is not safe for
// concurrent use; network deployments (fsnet) serialize access.
type AggregatingCache struct {
	cfg     Config
	lru     *cache.LRU
	tracker *successor.Tracker
	builder *group.Builder
	// prefetched is a dense per-file flag table indexed by FileID
	// (interned ids are dense): true means the file is resident because
	// of a speculative group fetch and has not been demanded since. A
	// slice beats a map here — the flag is read on every hit and cleared
	// on every miss.
	prefetched []bool
	stats      Stats
	m          coreMetrics

	// groupBuf is the reused per-miss group scratch: fetchGroup builds
	// into it via Builder.AppendBuild and consumes it immediately, so
	// the miss path performs no group allocation.
	groupBuf []trace.FileID

	// Adaptive group sizing state: stats snapshots at the last window
	// boundary.
	lastSpeculative uint64
	lastUsed        uint64
}

// Adaptation constants: every adaptWindow group fetches, the recent
// speculative-fetch accuracy decides whether g grows (above growAbove) or
// shrinks (below shrinkBelow).
const (
	adaptWindow = 64
	growAbove   = 0.55
	shrinkBelow = 0.25
)

// New builds an aggregating cache from cfg, applying documented defaults
// for zero-valued fields.
func New(cfg Config) (*AggregatingCache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lru, err := cache.NewLRU(cfg.Capacity)
	if err != nil {
		return nil, err
	}
	tracker, err := successor.NewTracker(cfg.SuccessorPolicy, cfg.SuccessorCapacity)
	if err != nil {
		return nil, err
	}
	builder, err := group.NewBuilder(tracker, cfg.GroupSize, cfg.Strategy)
	if err != nil {
		return nil, err
	}
	c := &AggregatingCache{
		cfg:     cfg,
		lru:     lru,
		tracker: tracker,
		builder: builder,
		m:       newCoreMetrics(cfg.Obs),
	}
	lru.OnEvict(c.evicted)
	return c, nil
}

// coreMetrics mirrors the cache counters into an obs registry. All nil
// without a registry, so the uninstrumented access path pays only
// nil-check branches and stays allocation-free.
type coreMetrics struct {
	hits         *obs.Counter
	misses       *obs.Counter
	prefetchHits *obs.Counter
	evictions    *obs.Counter
	groupSize    *obs.Histogram
}

func newCoreMetrics(reg *obs.Registry) coreMetrics {
	if reg == nil {
		return coreMetrics{}
	}
	return coreMetrics{
		hits:         reg.Counter("core_cache_hits_total", "demand accesses served from the cache"),
		misses:       reg.Counter("core_cache_misses_total", "demand accesses that triggered a group fetch"),
		prefetchHits: reg.Counter("core_cache_prefetch_hits_total", "demand hits on files that arrived as non-demanded group members"),
		evictions:    reg.Counter("core_cache_evictions_total", "capacity evictions"),
		groupSize:    reg.Histogram("core_group_size", "files per fetched group, demanded file included"),
	}
}

// Access processes a demand open for id: metadata learns the access, then
// the cache serves it, fetching a group on a miss. Reports hit.
func (c *AggregatingCache) Access(id trace.FileID) bool {
	c.Learn(id)
	return c.Serve(id)
}

// Learn feeds one access into the successor metadata without touching the
// cache. Server deployments call this with the piggybacked client stream
// (§3) and Serve with the misses that reach the server.
func (c *AggregatingCache) Learn(id trace.FileID) {
	c.tracker.Observe(id)
}

// LearnFrom feeds one access attributed to a source context (e.g. a
// client connection) so transitions are only recorded within that
// source's own stream. See successor.Tracker.ObserveFrom.
func (c *AggregatingCache) LearnFrom(src uint64, id trace.FileID) {
	c.tracker.ObserveFrom(src, id)
}

// Serve performs the caching half of an access: hit bookkeeping or a group
// fetch. Callers that also Learn the same stream should use Access.
func (c *AggregatingCache) Serve(id trace.FileID) bool {
	if c.lru.Contains(id) {
		c.stats.Hits++
		c.m.hits.Inc()
		if c.isPrefetched(id) {
			c.stats.PrefetchHits++
			c.m.prefetchHits.Inc()
			c.prefetched[id] = false
		}
		c.lru.Touch(id)
		return true
	}
	c.stats.Misses++
	c.m.misses.Inc()
	c.fetchGroup(id)
	return false
}

// fetchGroup retrieves the group for id and installs it. The whole group
// transfers (the server makes a best-effort retrieval of g files); the
// demanded file goes to the head, non-resident members are placed per
// cfg.Placement, resident members keep their current (earned) position.
// Crucially, making room never evicts a file belonging to the incoming
// group: grouping's second benefit in §2 is precisely the increased
// retention priority of soon-to-be-accessed group members.
func (c *AggregatingCache) fetchGroup(id trace.FileID) {
	c.groupBuf = c.builder.AppendBuild(c.groupBuf[:0], id)
	g := c.groupBuf
	c.stats.GroupFetches++
	c.stats.FilesFetched += uint64(len(g))
	c.m.groupSize.Observe(uint64(len(g)))

	// The group itself is the protected set: making room never evicts a
	// file belonging to the incoming group (a linear scan over the small
	// g beats building a map per miss). The demanded file always enters,
	// evicting a protected resident only when everything resident
	// belongs to the group (tiny caches).
	for c.lru.Len() >= c.cfg.Capacity {
		if _, ok := c.lru.EvictVictimExceptIDs(g); ok {
			continue
		}
		if _, ok := c.lru.EvictVictim(); !ok {
			break
		}
	}
	c.lru.InsertHead(id)
	c.clearPrefetched(id)

	// Members in rank order; when no unprotected victim remains the
	// least likely members are dropped, mirroring tail truncation.
	for _, m := range g[1:] {
		if c.lru.Contains(m) {
			continue
		}
		if c.lru.Len() >= c.cfg.Capacity {
			if _, ok := c.lru.EvictVictimExceptIDs(g); !ok {
				break
			}
		}
		if c.cfg.Placement == PlacementHead {
			c.lru.InsertHead(m)
		} else {
			c.lru.InsertTail(m)
		}
		c.setPrefetched(m)
	}
	c.stats.Evictions = c.lru.Stats().Evictions
	if c.cfg.Adaptive && c.stats.GroupFetches%adaptWindow == 0 {
		c.adapt()
	}
}

// adapt tunes the group size from the last window's speculative-fetch
// accuracy.
func (c *AggregatingCache) adapt() {
	speculative := c.stats.FilesFetched - c.stats.GroupFetches
	used := c.stats.PrefetchHits
	dSpec := speculative - c.lastSpeculative
	dUsed := used - c.lastUsed
	c.lastSpeculative = speculative
	c.lastUsed = used
	if dSpec == 0 {
		// Nothing speculative happened (g == 1 or no metadata yet):
		// probe upward so a predictable workload can escape g == 1.
		c.growGroup()
		return
	}
	accuracy := float64(dUsed) / float64(dSpec)
	switch {
	case accuracy > growAbove:
		c.growGroup()
	case accuracy < shrinkBelow:
		c.shrinkGroup()
	}
}

func (c *AggregatingCache) growGroup() {
	if g := c.builder.Size(); g < c.cfg.MaxGroupSize {
		// SetSize cannot fail for g+1 >= 2.
		_ = c.builder.SetSize(g + 1)
	}
}

func (c *AggregatingCache) shrinkGroup() {
	if g := c.builder.Size(); g > c.cfg.MinGroupSize {
		_ = c.builder.SetSize(g - 1)
	}
}

// CurrentGroupSize returns the group size in effect (== GroupSize unless
// Adaptive).
func (c *AggregatingCache) CurrentGroupSize() int { return c.builder.Size() }

// evicted is the LRU eviction hook: it retires prefetch bookkeeping and
// counts wasted speculation.
func (c *AggregatingCache) evicted(id trace.FileID) {
	c.m.evictions.Inc()
	if c.isPrefetched(id) {
		c.stats.PrefetchedEvicted++
		c.prefetched[id] = false
	}
}

func (c *AggregatingCache) isPrefetched(id trace.FileID) bool {
	return int(id) < len(c.prefetched) && c.prefetched[id]
}

func (c *AggregatingCache) setPrefetched(id trace.FileID) {
	if int(id) >= len(c.prefetched) {
		grown := make([]bool, int(id)+1+len(c.prefetched)/2)
		copy(grown, c.prefetched)
		c.prefetched = grown
	}
	c.prefetched[id] = true
}

func (c *AggregatingCache) clearPrefetched(id trace.FileID) {
	if int(id) < len(c.prefetched) {
		c.prefetched[id] = false
	}
}

// Contains reports residency without changing any state.
func (c *AggregatingCache) Contains(id trace.FileID) bool { return c.lru.Contains(id) }

// Len returns the number of resident files.
func (c *AggregatingCache) Len() int { return c.lru.Len() }

// Cap returns the capacity in files.
func (c *AggregatingCache) Cap() int { return c.cfg.Capacity }

// GroupSize returns the configured g.
func (c *AggregatingCache) GroupSize() int { return c.cfg.GroupSize }

// Stats returns a copy of the statistics, with Evictions refreshed from
// the underlying list.
func (c *AggregatingCache) Stats() Stats {
	s := c.stats
	s.Evictions = c.lru.Stats().Evictions
	return s
}

// Tracker exposes the successor metadata (read-mostly: building graphs,
// inspecting predictions). The tracker is live; do not mutate concurrently
// with Access.
func (c *AggregatingCache) Tracker() *successor.Tracker { return c.tracker }

// BuildGroup returns the group that a demand miss on id would fetch right
// now, without touching cache state. Network servers use this to answer
// group retrievals.
func (c *AggregatingCache) BuildGroup(id trace.FileID) []trace.FileID {
	return c.builder.Build(id)
}

// AppendBuildGroup is BuildGroup into caller-owned storage: the group is
// appended to dst and the extended slice returned, so the server's open
// hot path reuses one scratch slice per request instead of allocating a
// group per miss.
func (c *AggregatingCache) AppendBuildGroup(dst []trace.FileID, id trace.FileID) []trace.FileID {
	return c.builder.AppendBuild(dst, id)
}

// SaveMetadata persists the successor metadata (the paper keeps the
// server's relationship information non-volatile; §5). Cache contents and
// statistics are deliberately not saved — they are cheap to rebuild.
func (c *AggregatingCache) SaveMetadata(w io.Writer) error {
	return c.tracker.Save(w)
}

// LoadMetadata replaces the successor metadata with a snapshot written by
// SaveMetadata. The snapshot's successor policy and capacity supersede
// the configured ones; the group size in effect is kept.
func (c *AggregatingCache) LoadMetadata(r io.Reader) error {
	t, err := successor.LoadTracker(r)
	if err != nil {
		return err
	}
	b, err := group.NewBuilder(t, c.builder.Size(), c.cfg.Strategy)
	if err != nil {
		return err
	}
	c.tracker = t
	c.builder = b
	return nil
}
