package core

import (
	"strings"
	"testing"

	"aggcache/internal/obs"
	"aggcache/internal/trace"
)

// TestObsCountersMirrorStats drives an instrumented cache through hits,
// misses, prefetch hits, and evictions and checks that the exported
// counters agree with Stats and the group-size histogram fills.
func TestObsCountersMirrorStats(t *testing.T) {
	reg := obs.NewRegistry()
	c := mustNew(t, Config{Capacity: 3, GroupSize: 2, Obs: reg})

	// Teach 1 → 2, flush the cache with cold misses (evictions), then a
	// miss on 1 prefetches 2 and the following access is a prefetch hit.
	for i := 0; i < 4; i++ {
		c.Access(trace.FileID(1))
		c.Access(trace.FileID(2))
	}
	for id := trace.FileID(10); id < 16; id++ {
		c.Access(id)
	}
	c.Access(trace.FileID(1)) // miss: stages group {1, 2}
	c.Access(trace.FileID(2)) // prefetch hit

	st := c.Stats()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	counters := map[string]uint64{
		"core_cache_hits_total":          st.Hits,
		"core_cache_misses_total":        st.Misses,
		"core_cache_prefetch_hits_total": st.PrefetchHits,
		"core_cache_evictions_total":     st.Evictions,
	}
	for name, want := range counters {
		s, ok := parsed.Find(name, nil)
		if !ok || uint64(s.Value) != want {
			t.Errorf("%s = %+v (found %v), want %d", name, s, ok, want)
		}
	}
	if st.PrefetchHits == 0 || st.Evictions == 0 {
		t.Fatalf("workload did not exercise prefetch hits / evictions: %+v", st)
	}
	if s, ok := parsed.Find("core_group_size_count", nil); !ok || uint64(s.Value) != st.GroupFetches {
		t.Fatalf("group-size histogram count = %+v (found %v), want %d", s, ok, st.GroupFetches)
	}
	if s, ok := parsed.Find("core_group_size_sum", nil); !ok || uint64(s.Value) != st.FilesFetched {
		t.Fatalf("group-size histogram sum = %+v (found %v), want %d", s, ok, st.FilesFetched)
	}
}

// TestNoRegistryNoMetrics makes sure the uninstrumented cache works
// exactly as before (nil instruments no-op).
func TestNoRegistryNoMetrics(t *testing.T) {
	c := mustNew(t, Config{Capacity: 4, GroupSize: 2})
	c.Access(trace.FileID(1))
	c.Access(trace.FileID(1))
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats without registry = %+v", st)
	}
}
