package entropy

import (
	"math"
	"math/rand"
	"testing"

	"aggcache/internal/trace"
)

func TestSuccessorEntropyValidation(t *testing.T) {
	if _, err := SuccessorEntropy(nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SuccessorEntropy(nil, -2); err == nil {
		t.Error("k=-2 accepted")
	}
}

func TestDeterministicSequenceHasZeroEntropy(t *testing.T) {
	// A B C A B C ... : every file has exactly one successor.
	var seq []trace.FileID
	for i := 0; i < 60; i++ {
		seq = append(seq, trace.FileID(i%3))
	}
	for _, k := range []int{1, 2, 5} {
		r, err := SuccessorEntropy(seq, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bits != 0 {
			t.Errorf("k=%d: Bits = %v, want 0 for deterministic cycle", k, r.Bits)
		}
		if r.Files != 3 {
			t.Errorf("k=%d: Files = %d, want 3", k, r.Files)
		}
	}
}

func TestAlternatingSuccessorsGiveOneBit(t *testing.T) {
	// A's successor alternates uniformly between B and C:
	// A B A C A B A C ... -> H(A) = 1 bit. B and C always return to A
	// -> 0 bits. Weighted: A has half the qualifying occurrences.
	var seq []trace.FileID
	for i := 0; i < 100; i++ {
		seq = append(seq, 0) // A
		if i%2 == 0 {
			seq = append(seq, 1) // B
		} else {
			seq = append(seq, 2) // C
		}
	}
	r, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Bits-0.5) > 0.02 {
		t.Errorf("Bits = %v, want ~0.5 (A contributes 1 bit at weight 1/2)", r.Bits)
	}
}

func TestSingleOccurrenceFilesExcluded(t *testing.T) {
	// Non-repeating sequence: no file qualifies, entropy reported as 0
	// with zero files — NOT falsely "perfectly predictable" with files
	// counted.
	seq := []trace.FileID{1, 2, 3, 4, 5, 6}
	r, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Files != 0 || r.Occurrences != 0 {
		t.Errorf("non-repeating sequence: Files=%d Occurrences=%d, want 0,0", r.Files, r.Occurrences)
	}
}

func TestSingletonSuccessorsRaisePredecessorEntropy(t *testing.T) {
	// A is followed by a fresh unique file every time: A's conditional
	// entropy is log2(occurrences of A); the singletons themselves are
	// excluded from the outer average.
	var seq []trace.FileID
	next := trace.FileID(100)
	for i := 0; i < 16; i++ {
		seq = append(seq, 0, next)
		next++
	}
	r, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only file 0 qualifies; its 16 successors are all distinct ->
	// H = log2(16) = 4 bits... but the final occurrence of 0 has a
	// complete window too, so occ = 16.
	if r.Files != 1 {
		t.Fatalf("Files = %d, want 1", r.Files)
	}
	if math.Abs(r.Bits-4.0) > 1e-9 {
		t.Errorf("Bits = %v, want 4.0", r.Bits)
	}
}

func TestEntropyMonotoneInSymbolLength(t *testing.T) {
	// Empirical joint entropy over a fixed occurrence set is monotone in
	// k; window truncation at the tail perturbs it only slightly. Use a
	// noisy but repetitive sequence and allow a tiny tolerance.
	rng := rand.New(rand.NewSource(3))
	var seq []trace.FileID
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.8 {
			seq = append(seq, trace.FileID(i%7))
		} else {
			seq = append(seq, trace.FileID(rng.Intn(30)))
		}
	}
	ks := []int{1, 2, 4, 8, 12, 16, 20}
	results, err := Sweep(seq, ks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Bits < results[i-1].Bits-0.05 {
			t.Errorf("entropy dropped from %.3f (k=%d) to %.3f (k=%d)",
				results[i-1].Bits, ks[i-1], results[i].Bits, ks[i])
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seq := make([]trace.FileID, 3000)
	const universe = 64
	for i := range seq {
		seq[i] = trace.FileID(rng.Intn(universe))
	}
	r, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits < 0 {
		t.Errorf("Bits = %v < 0", r.Bits)
	}
	if max := math.Log2(universe); r.Bits > max {
		t.Errorf("Bits = %v > log2(universe) = %v", r.Bits, max)
	}
	// A uniformly random sequence must look nearly maximally
	// unpredictable.
	if r.Bits < 0.8*math.Log2(universe) {
		t.Errorf("Bits = %v, want near log2(%d)=%v for random sequence",
			r.Bits, universe, math.Log2(universe))
	}
}

func TestPredictableBeatsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var predictable, random []trace.FileID
	for i := 0; i < 4000; i++ {
		predictable = append(predictable, trace.FileID(i%10))
		random = append(random, trace.FileID(rng.Intn(10)))
	}
	rp, err := SuccessorEntropy(predictable, 1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SuccessorEntropy(random, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Bits >= rr.Bits {
		t.Errorf("predictable %.3f >= random %.3f", rp.Bits, rr.Bits)
	}
}

func TestShortSequences(t *testing.T) {
	for _, seq := range [][]trace.FileID{nil, {1}, {1, 2}} {
		r, err := SuccessorEntropy(seq, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Bits != 0 {
			t.Errorf("seq %v: Bits = %v, want 0", seq, r.Bits)
		}
	}
	// k longer than the sequence: no complete windows.
	r, err := SuccessorEntropy([]trace.FileID{1, 2, 1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Occurrences != 0 {
		t.Errorf("Occurrences = %d, want 0 when k exceeds sequence", r.Occurrences)
	}
}

func TestDistribution(t *testing.T) {
	if got := Distribution(nil); got != 0 {
		t.Errorf("Distribution(nil) = %v, want 0", got)
	}
	uniform := map[trace.FileID]int{1: 5, 2: 5, 3: 5, 4: 5}
	if got := Distribution(uniform); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("uniform over 4 = %v, want 2 bits", got)
	}
	skewed := map[trace.FileID]int{1: 100, 2: 1}
	if got := Distribution(skewed); got >= 1 || got <= 0 {
		t.Errorf("skewed = %v, want in (0,1)", got)
	}
	withZero := map[trace.FileID]int{1: 4, 2: 0, 3: 4}
	if got := Distribution(withZero); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("zero-count entry mishandled: %v, want 1 bit", got)
	}
}

func TestConditionalEntropyValidation(t *testing.T) {
	if _, err := ConditionalEntropy(nil, 0, 1); err == nil {
		t.Error("ctxLen 0 accepted")
	}
	if _, err := ConditionalEntropy(nil, 1, 0); err == nil {
		t.Error("symbolLen 0 accepted")
	}
}

func TestConditionalEntropyOrder1MatchesSuccessorEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := make([]trace.FileID, 3000)
	for i := range seq {
		if rng.Float64() < 0.7 {
			seq[i] = trace.FileID(i % 9)
		} else {
			seq[i] = trace.FileID(rng.Intn(40))
		}
	}
	a, err := SuccessorEntropy(seq, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConditionalEntropy(seq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Bits-b.Bits) > 1e-9 {
		t.Errorf("order-1 conditional %.6f != successor entropy %.6f", b.Bits, a.Bits)
	}
}

func TestLongerContextMorePredictable(t *testing.T) {
	// The Figure-6 scenario: C appears in two patterns, X C D and Y C A.
	// Order-1 cannot separate them; order-2 can.
	var seq []trace.FileID
	for i := 0; i < 200; i++ {
		seq = append(seq, 10, 3, 4, 99)
		seq = append(seq, 20, 3, 5, 99)
	}
	o1, err := ConditionalEntropy(seq, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := ConditionalEntropy(seq, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("conditional entropy: order1=%.3f order2=%.3f", o1.Bits, o2.Bits)
	if o2.Bits >= o1.Bits {
		t.Errorf("order-2 entropy %.3f not below order-1 %.3f", o2.Bits, o1.Bits)
	}
	if o2.Bits > 1e-9 {
		t.Errorf("order-2 entropy %.3f, want 0 (fully determined)", o2.Bits)
	}
}
