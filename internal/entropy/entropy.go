// Package entropy implements the paper's predictability metric: successor
// entropy (§4.5, Equation 2). The successor entropy of an access sequence
// is the access-weighted conditional entropy of each file's immediate
// successors — or, for symbol length k > 1, of the length-k successor
// sequences that follow each occurrence of the file (Figure 6). Files that
// appear only once are excluded: an online predictor cannot be expected to
// predict a symbol it has never seen, and counting such files would make a
// non-repeating workload look deceptively predictable.
package entropy

import (
	"encoding/binary"
	"fmt"
	"math"

	"aggcache/internal/trace"
)

// Result carries a successor-entropy computation with the bookkeeping the
// experiments report.
type Result struct {
	// Bits is H_S: 0 means perfectly predictable successors; higher is
	// less predictable.
	Bits float64
	// SymbolLength is k, the successor-sequence length.
	SymbolLength int
	// Files is how many distinct files qualified (appeared more than
	// once with a complete successor window).
	Files int
	// Occurrences is the total number of qualifying occurrences.
	Occurrences int
}

// SuccessorEntropy computes H_S over seq for successor symbols of length
// k >= 1. Probabilities are relative frequency counts conditioned on the
// current file; the outer average weights each qualifying file by its
// share of qualifying access events, per Equation 2.
//
// For each occurrence of file f at position p, the successor symbol is
// seq[p+1 .. p+k]. Occurrences too close to the end have no complete
// symbol and are skipped, exactly like an online tracker that never got
// to see the full follow-up.
func SuccessorEntropy(seq []trace.FileID, k int) (Result, error) {
	rs, err := Sweep(seq, []int{k})
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// Sweep computes SuccessorEntropy for each symbol length in ks, in order —
// the x-axis of Figures 7 and 8.
//
// This is the hottest computation in the experiment suite, so it avoids
// the obvious per-(position, k) string keys. Length-j successor symbols
// are assigned dense integer ids by refining the length-(j-1) ids one
// step at a time — symbol(p, j) = (symbol(p, j-1), seq[p+j]) — so a
// whole sweep up to max(ks) costs O(len(seq)) integer map work per
// length instead of O(len(seq)·k) string hashing per length. Identical
// symbols get identical ids by construction, so the per-file frequency
// distributions (and therefore the entropy) match the direct
// computation exactly.
func Sweep(seq []trace.FileID, ks []int) ([]Result, error) {
	out := make([]Result, len(ks))
	maxK := 0
	want := make(map[int][]int, len(ks))
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("entropy: symbol length must be >= 1, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
		want[k] = append(want[k], i)
	}
	if maxK == 0 {
		return out, nil
	}

	n := len(seq)
	ev := newSweepEvaluator(seq)
	// syms[p] is the dense id of the length-j symbol starting after p.
	// It begins as the length-0 ids (all zero: every empty symbol is the
	// same symbol) and is refined in place one length per iteration.
	// Positions past the valid range keep stale ids but are never read:
	// the valid range only shrinks as j grows.
	syms := make([]uint32, n)
	pair := make(map[uint64]uint32, n)
	for j := 1; j <= maxK; j++ {
		clear(pair)
		var nextID uint32
		for p := 0; p+j < n; p++ {
			key := uint64(syms[p])<<32 | uint64(seq[p+j])
			id, ok := pair[key]
			if !ok {
				id = nextID
				nextID++
				pair[key] = id
			}
			syms[p] = id
		}
		idxs := want[j]
		if len(idxs) == 0 {
			continue
		}
		r := ev.evaluate(syms, j, int(nextID))
		for _, i := range idxs {
			out[i] = r
		}
	}
	return out, nil
}

// sweepEvaluator computes the access-weighted conditional entropy of a
// symbol-id assignment. It is built once per sweep: per-file occurrence
// positions are gathered a single time, and the symbol counters use a
// sparse-reset dense array so evaluating one length allocates nothing
// beyond one-time growth.
type sweepEvaluator struct {
	seq []trace.FileID
	// occStart/occPos is a CSR-style layout of each file's occurrence
	// positions in ascending order: file f's positions are
	// occPos[occStart[f]:occStart[f+1]]. FileIDs are dense, so slices
	// beat maps here.
	occStart []int
	occPos   []int32
	// count is indexed by symbol id; touched records which ids a file
	// incremented so they can be reset in O(occurrences).
	count   []int32
	touched []uint32
}

func newSweepEvaluator(seq []trace.FileID) *sweepEvaluator {
	maxID := -1
	for _, f := range seq {
		if int(f) > maxID {
			maxID = int(f)
		}
	}
	occStart := make([]int, maxID+2)
	for _, f := range seq {
		occStart[int(f)+1]++
	}
	for i := 1; i < len(occStart); i++ {
		occStart[i] += occStart[i-1]
	}
	occPos := make([]int32, len(seq))
	fill := make([]int, maxID+1)
	for p, f := range seq {
		occPos[occStart[f]+fill[f]] = int32(p)
		fill[f]++
	}
	return &sweepEvaluator{seq: seq, occStart: occStart, occPos: occPos}
}

// evaluate computes the Equation-2 weighted entropy for symbol length k,
// where syms[p] identifies the symbol at position p and ids < numIDs.
// Files are visited in dense-id order and each file's symbols in
// first-occurrence order, so the floating-point summation order — and
// therefore the result — is deterministic.
func (e *sweepEvaluator) evaluate(syms []uint32, k, numIDs int) Result {
	res := Result{SymbolLength: k}
	if numIDs > len(e.count) {
		e.count = make([]int32, numIDs)
	}
	limit := int32(len(e.seq) - k) // positions with a complete symbol

	// First pass: total qualifying occurrences over files with occ > 1.
	var totalOcc int
	nFiles := len(e.occStart) - 1
	for f := 0; f < nFiles; f++ {
		occ := e.qualifying(f, limit)
		if occ > 1 {
			totalOcc += occ
		}
	}
	if totalOcc == 0 {
		return res
	}

	var h float64
	ftot := float64(totalOcc)
	for f := 0; f < nFiles; f++ {
		pos := e.positions(f, limit)
		if len(pos) <= 1 {
			continue
		}
		e.touched = e.touched[:0]
		for _, p := range pos {
			id := syms[p]
			if e.count[id] == 0 {
				e.touched = append(e.touched, id)
			}
			e.count[id]++
		}
		var hf float64
		focc := float64(len(pos))
		for _, id := range e.touched {
			p := float64(e.count[id]) / focc
			hf -= p * math.Log2(p)
			e.count[id] = 0
		}
		h += focc / ftot * hf
		res.Files++
		res.Occurrences += len(pos)
	}
	res.Bits = h
	return res
}

// positions returns file f's occurrence positions that still have a
// complete symbol (strictly below limit). Positions are ascending, so
// the qualifying prefix is found by scan-or-binary-search.
func (e *sweepEvaluator) positions(f int, limit int32) []int32 {
	pos := e.occPos[e.occStart[f]:e.occStart[f+1]]
	// Binary search for the first position >= limit.
	lo, hi := 0, len(pos)
	for lo < hi {
		mid := (lo + hi) / 2
		if pos[mid] < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return pos[:lo]
}

func (e *sweepEvaluator) qualifying(f int, limit int32) int {
	return len(e.positions(f, limit))
}

// conditionalEntropy computes -sum p log2 p over the symbol counts.
func conditionalEntropy(symbols map[string]int, total int) float64 {
	var h float64
	ft := float64(total)
	for _, n := range symbols {
		p := float64(n) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// Distribution computes the plain Shannon entropy (bits) of an arbitrary
// integer-keyed count distribution. Exposed for tools that want to report
// unconditioned access entropy next to successor entropy.
func Distribution(counts map[trace.FileID]int) float64 {
	var total int
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, n := range counts {
		if n == 0 {
			continue
		}
		p := float64(n) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// ConditionalEntropy generalizes SuccessorEntropy to higher-order
// conditioning: the condition C is the last ctxLen files (ctxLen = 1 is
// Equation 2 exactly), and the predicted symbol is the next symbolLen
// files. Comparing ctxLen 1 vs 2 quantifies how much predictability the
// context-modeling predictors of §5 (PPM and the compression-based
// schemes) can exploit beyond per-file successor lists — at the price of
// state that grows with the number of distinct contexts rather than the
// number of files.
func ConditionalEntropy(seq []trace.FileID, ctxLen, symbolLen int) (Result, error) {
	if ctxLen < 1 {
		return Result{}, fmt.Errorf("entropy: context length must be >= 1, got %d", ctxLen)
	}
	if symbolLen < 1 {
		return Result{}, fmt.Errorf("entropy: symbol length must be >= 1, got %d", symbolLen)
	}
	res := Result{SymbolLength: symbolLen}

	type dist struct {
		occ     int
		symbols map[string]int
	}
	dists := make(map[string]*dist)
	encode := func(ids []trace.FileID) string {
		buf := make([]byte, 0, len(ids)*binary.MaxVarintLen32)
		var tmp [binary.MaxVarintLen32]byte
		for _, id := range ids {
			n := binary.PutUvarint(tmp[:], uint64(id))
			buf = append(buf, tmp[:n]...)
		}
		return string(buf)
	}
	for p := ctxLen - 1; p+symbolLen < len(seq); p++ {
		ctx := encode(seq[p-ctxLen+1 : p+1])
		sym := encode(seq[p+1 : p+1+symbolLen])
		d, ok := dists[ctx]
		if !ok {
			d = &dist{symbols: make(map[string]int, 2)}
			dists[ctx] = d
		}
		d.occ++
		d.symbols[sym]++
	}

	var totalOcc int
	for _, d := range dists {
		if d.occ > 1 {
			totalOcc += d.occ
		}
	}
	if totalOcc == 0 {
		return res, nil
	}
	var h float64
	for _, d := range dists {
		if d.occ <= 1 {
			continue
		}
		h += float64(d.occ) / float64(totalOcc) * conditionalEntropy(d.symbols, d.occ)
		res.Files++
		res.Occurrences += d.occ
	}
	res.Bits = h
	return res, nil
}
