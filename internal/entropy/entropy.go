// Package entropy implements the paper's predictability metric: successor
// entropy (§4.5, Equation 2). The successor entropy of an access sequence
// is the access-weighted conditional entropy of each file's immediate
// successors — or, for symbol length k > 1, of the length-k successor
// sequences that follow each occurrence of the file (Figure 6). Files that
// appear only once are excluded: an online predictor cannot be expected to
// predict a symbol it has never seen, and counting such files would make a
// non-repeating workload look deceptively predictable.
package entropy

import (
	"encoding/binary"
	"fmt"
	"math"

	"aggcache/internal/trace"
)

// Result carries a successor-entropy computation with the bookkeeping the
// experiments report.
type Result struct {
	// Bits is H_S: 0 means perfectly predictable successors; higher is
	// less predictable.
	Bits float64
	// SymbolLength is k, the successor-sequence length.
	SymbolLength int
	// Files is how many distinct files qualified (appeared more than
	// once with a complete successor window).
	Files int
	// Occurrences is the total number of qualifying occurrences.
	Occurrences int
}

// SuccessorEntropy computes H_S over seq for successor symbols of length
// k >= 1. Probabilities are relative frequency counts conditioned on the
// current file; the outer average weights each qualifying file by its
// share of qualifying access events, per Equation 2.
func SuccessorEntropy(seq []trace.FileID, k int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("entropy: symbol length must be >= 1, got %d", k)
	}
	res := Result{SymbolLength: k}

	// For each occurrence of file f at position p, the successor symbol
	// is seq[p+1 .. p+k]. Occurrences too close to the end have no
	// complete symbol and are skipped, exactly like an online tracker
	// that never got to see the full follow-up.
	type dist struct {
		occ     int
		symbols map[string]int
	}
	dists := make(map[trace.FileID]*dist)
	buf := make([]byte, 0, k*binary.MaxVarintLen32)
	var tmp [binary.MaxVarintLen32]byte
	for p := 0; p+k < len(seq); p++ {
		f := seq[p]
		buf = buf[:0]
		for j := 1; j <= k; j++ {
			n := binary.PutUvarint(tmp[:], uint64(seq[p+j]))
			buf = append(buf, tmp[:n]...)
		}
		d, ok := dists[f]
		if !ok {
			d = &dist{symbols: make(map[string]int, 2)}
			dists[f] = d
		}
		d.occ++
		d.symbols[string(buf)]++
	}

	// Weighted average over files occurring more than once.
	var totalOcc int
	for _, d := range dists {
		if d.occ > 1 {
			totalOcc += d.occ
		}
	}
	if totalOcc == 0 {
		return res, nil
	}
	var h float64
	for _, d := range dists {
		if d.occ <= 1 {
			continue
		}
		h += float64(d.occ) / float64(totalOcc) * conditionalEntropy(d.symbols, d.occ)
		res.Files++
		res.Occurrences += d.occ
	}
	res.Bits = h
	return res, nil
}

// conditionalEntropy computes -sum p log2 p over the symbol counts.
func conditionalEntropy(symbols map[string]int, total int) float64 {
	var h float64
	ft := float64(total)
	for _, n := range symbols {
		p := float64(n) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// Sweep computes SuccessorEntropy for each symbol length in ks, in order —
// the x-axis of Figures 7 and 8.
func Sweep(seq []trace.FileID, ks []int) ([]Result, error) {
	out := make([]Result, len(ks))
	for i, k := range ks {
		r, err := SuccessorEntropy(seq, k)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// Distribution computes the plain Shannon entropy (bits) of an arbitrary
// integer-keyed count distribution. Exposed for tools that want to report
// unconditioned access entropy next to successor entropy.
func Distribution(counts map[trace.FileID]int) float64 {
	var total int
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, n := range counts {
		if n == 0 {
			continue
		}
		p := float64(n) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// ConditionalEntropy generalizes SuccessorEntropy to higher-order
// conditioning: the condition C is the last ctxLen files (ctxLen = 1 is
// Equation 2 exactly), and the predicted symbol is the next symbolLen
// files. Comparing ctxLen 1 vs 2 quantifies how much predictability the
// context-modeling predictors of §5 (PPM and the compression-based
// schemes) can exploit beyond per-file successor lists — at the price of
// state that grows with the number of distinct contexts rather than the
// number of files.
func ConditionalEntropy(seq []trace.FileID, ctxLen, symbolLen int) (Result, error) {
	if ctxLen < 1 {
		return Result{}, fmt.Errorf("entropy: context length must be >= 1, got %d", ctxLen)
	}
	if symbolLen < 1 {
		return Result{}, fmt.Errorf("entropy: symbol length must be >= 1, got %d", symbolLen)
	}
	res := Result{SymbolLength: symbolLen}

	type dist struct {
		occ     int
		symbols map[string]int
	}
	dists := make(map[string]*dist)
	encode := func(ids []trace.FileID) string {
		buf := make([]byte, 0, len(ids)*binary.MaxVarintLen32)
		var tmp [binary.MaxVarintLen32]byte
		for _, id := range ids {
			n := binary.PutUvarint(tmp[:], uint64(id))
			buf = append(buf, tmp[:n]...)
		}
		return string(buf)
	}
	for p := ctxLen - 1; p+symbolLen < len(seq); p++ {
		ctx := encode(seq[p-ctxLen+1 : p+1])
		sym := encode(seq[p+1 : p+1+symbolLen])
		d, ok := dists[ctx]
		if !ok {
			d = &dist{symbols: make(map[string]int, 2)}
			dists[ctx] = d
		}
		d.occ++
		d.symbols[sym]++
	}

	var totalOcc int
	for _, d := range dists {
		if d.occ > 1 {
			totalOcc += d.occ
		}
	}
	if totalOcc == 0 {
		return res, nil
	}
	var h float64
	for _, d := range dists {
		if d.occ <= 1 {
			continue
		}
		h += float64(d.occ) / float64(totalOcc) * conditionalEntropy(d.symbols, d.occ)
		res.Files++
		res.Occurrences += d.occ
	}
	res.Bits = h
	return res, nil
}
