package fsnet

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"strings"
	"testing"

	"aggcache/internal/core"
)

// The sequential-behaviour pin: a scripted, strictly sequential legacy
// (v1) client session must produce byte-identical group replies and an
// identical ServerStats snapshot across refactors of the serving path.
// The constants below were captured from the pre-concurrency server; any
// change to them is a semantic regression, not a perf improvement.

// pinStep is one scripted request: an open with an explicit piggybacked
// history, or a whole-file write.
type pinStep struct {
	write    bool
	path     string
	accessed []string
	data     string
}

func pinStore(t testing.TB) *Store {
	t.Helper()
	store := NewStore()
	for i := 0; i < 16; i++ {
		path := fmt.Sprintf("/pin/f%02d", i)
		content := fmt.Sprintf("pin-data-%02d:%s", i, strings.Repeat("ab", i))
		if err := store.Put(path, []byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func pinScript() []pinStep {
	f := func(i int) string { return fmt.Sprintf("/pin/f%02d", i) }
	return []pinStep{
		{path: f(0)},
		{path: f(1), accessed: []string{f(0)}},
		{path: f(2), accessed: []string{f(1)}},
		{path: f(0)},
		{path: f(1), accessed: []string{f(0)}},
		{path: f(2), accessed: []string{f(1)}},
		{path: f(10)},
		{path: f(11), accessed: []string{f(10)}},
		{path: f(0), accessed: []string{f(11)}},
		{path: f(1)},
		{path: f(2), accessed: []string{f(1)}},
		{path: "/pin/missing"},
		{write: true, path: f(3), data: "updated-f03"},
		{path: f(3)},
		{path: f(12), accessed: []string{f(3)}},
		{path: f(13), accessed: []string{f(12)}},
		{path: f(0), accessed: []string{f(13)}},
		{path: f(1)},
	}
}

// runPinScript replays the script over one raw legacy connection and
// returns the SHA-256 over every reply frame (type byte || payload),
// oldest first.
func runPinScript(t *testing.T, addr string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	h := sha256.New()
	for i, step := range pinScript() {
		var sendErr error
		if step.write {
			sendErr = writeFrame(w, msgWrite, encodeWriteRequest(writeRequest{Path: step.path, Data: []byte(step.data)}))
		} else {
			sendErr = writeFrame(w, msgOpen, encodeOpenRequest(openRequest{Path: step.path, Accessed: step.accessed}))
		}
		if sendErr != nil {
			t.Fatalf("step %d send: %v", i, sendErr)
		}
		typ, payload, err := readFrame(r)
		if err != nil {
			t.Fatalf("step %d reply: %v", i, err)
		}
		h.Write([]byte{typ})
		h.Write(payload)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Captured from the pre-concurrency (serialized) server. Do not update
// these without a deliberate, documented semantic change.
const pinWantHash = "b2f73518b0d58cfae86056e6b82f56e0465a3b581df6a75d97c883bf8fd62bf4"

var pinWantStats = ServerStats{
	Requests:  18,
	Errors:    1,
	FilesSent: 32,
	Cache: core.Stats{
		Hits:         8,
		Misses:       8,
		GroupFetches: 8,
		FilesFetched: 8,
		Evictions:    2,
	},
}

func TestSequentialServerPinnedBehaviour(t *testing.T) {
	store := pinStore(t)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 3, CacheCapacity: 6, SuccessorCapacity: 2})
	gotHash := runPinScript(t, addr)
	gotStats := srv.Stats()
	if gotHash != pinWantHash {
		t.Errorf("reply hash = %s, want %s", gotHash, pinWantHash)
	}
	if gotStats != pinWantStats {
		t.Errorf("server stats = %+v, want %+v", gotStats, pinWantStats)
	}
}
