// Package fsnet realizes the paper's Figure-2 architecture as a real
// networked system: a file server that maintains relationship metadata and
// answers every open request with a *group* of files, and a client-side
// cache manager that installs the group per the aggregating-cache rules
// and piggybacks its access statistics onto subsequent requests (§3).
//
// The wire protocol is a simple length-prefixed binary framing over TCP,
// built only on the standard library.
package fsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Message types.
const (
	// msgOpen is a client->server open request: the demanded path plus
	// the piggybacked list of paths the client accessed (hit or miss)
	// since its previous request, in order.
	msgOpen = uint8(iota + 1)
	// msgGroup is the server->client reply: the demanded file first,
	// then the opportunistically fetched group members.
	msgGroup
	// msgError is the server->client failure reply.
	msgError
	// msgWrite is a client->server whole-file write (write-through).
	msgWrite
	// msgWriteOK acknowledges a write.
	msgWriteOK
	// msgHello is the client's protocol-version offer, sent as the very
	// first frame of a connection by version-2-capable clients. Legacy
	// servers answer it with msgError ("unknown message type") and close,
	// which the client detects and downgrades to lock-step version 1.
	msgHello
	// msgHelloOK is the server's handshake reply carrying the negotiated
	// version: min(client offer, server maximum). At version >= 2 every
	// subsequent frame on the connection carries a request ID and replies
	// may return out of order.
	msgHelloOK
	// msgHandoff is a peer->peer drain transfer: one group a departing
	// cluster node owned — the anchor path plus its learned members in
	// group order — for the receiver to install into its successor
	// metadata and cache, so it serves the moved paths warm.
	msgHandoff
	// msgHandoffOK acknowledges a handoff install.
	msgHandoffOK
	// msgMemberChunk is one member of a streamed (version-3) group reply:
	// the path plus contents of a single file. The demanded file is always
	// the first chunk of its request ID; chunks of different requests may
	// interleave on the wire, but chunks of one request arrive in group
	// order.
	msgMemberChunk
	// msgGroupEnd terminates a streamed group reply, carrying the member
	// count so the client can verify it saw the whole group.
	msgGroupEnd
	// msgViewHint is an advisory membership-epoch announcement: the
	// sender's advertised cluster address plus its installed view epoch.
	// It piggybacks on version-3 connections — unsolicited under request
	// ID 0, deduplicated per epoch per connection — and also serves as
	// the "not newer than you" reply to msgViewPull and the ack to
	// msgViewPush. Advisory only: a receiver without a view source
	// ignores it, and it is never sent on a pre-v3 connection.
	msgViewHint
	// msgViewPull asks the receiver for its membership view. The payload
	// carries the puller's own address and epoch so the responder can
	// pull back symmetrically if the puller is the newer side. Answered
	// with msgViewPush (responder newer) or msgViewHint (responder not
	// newer).
	msgViewPull
	// msgViewPush carries a full membership view — epoch, sender address,
	// and the peer list — for the receiver to validate and install.
	// Acked with msgViewHint carrying the receiver's resulting epoch.
	msgViewPush
	// msgTraceCtx is the distributed-tracing piggyback: an unsolicited
	// frame under request ID 0 announcing the trace context (128-bit
	// trace ID, parent span ID, flags) of the request frame that follows
	// it in the same batch, matched by the annotated request ID it
	// carries. Sent only for head-sampled requests and only on version-3
	// connections (negotiated away like view frames, see traces.go); a
	// receiver without a tracer skips it.
	msgTraceCtx
)

// Protocol versions. Version 1 is the original lock-step protocol (no
// handshake, one request in flight per connection); version 2 adds the
// hello exchange and request-ID framing for pipelining; version 3 keeps
// version 2's framing but streams each group reply as per-member
// msgMemberChunk frames closed by msgGroupEnd, so the client starts
// consuming member 1 while the server is still writing member g and the
// server never assembles a group into one contiguous reply buffer.
const (
	protocolV1     = 1
	protocolV2     = 2
	protocolV3     = 3
	protocolLatest = protocolV3
)

// Protocol limits; violations terminate the connection.
const (
	maxFrame     = 16 << 20
	maxPath      = 4096
	maxStatPaths = 1024
	maxGroup     = 64
	maxFileSize  = 8 << 20
)

// connBufSize sizes the per-connection bufio reader and writer on both
// ends. A convoy reply for a whole group runs tens of KB; with the
// 4 KiB bufio default that is a dozen read/write syscalls per fetch,
// and syscall time dominates the loopback CPU profile. 64 KiB moves a
// convoy in one or two.
const connBufSize = 64 << 10

// Error codes carried by msgError.
const (
	// CodeNotFound reports that the demanded path does not exist.
	CodeNotFound = uint32(iota + 1)
	// CodeBadRequest reports a malformed or limit-violating request.
	CodeBadRequest
	// CodeBusy reports that the server is at its connection limit; the
	// connection is closed after this reply. Clients with retry
	// configured back off and redial.
	CodeBusy
	// CodeInternal reports a handler failure (recovered panic); the
	// connection is closed after this reply.
	CodeInternal
)

// ErrNotFound is returned by Client.Open for missing files.
var ErrNotFound = errors.New("fsnet: file not found")

// openRequest is the payload of msgOpen.
type openRequest struct {
	// Path is the demanded file.
	Path string
	// Accessed is the piggybacked access history since the last
	// request, oldest first. It excludes the demanded Path itself,
	// which the server appends to the learned stream on arrival.
	Accessed []string
}

// fileData is one file in a group reply.
type fileData struct {
	Path string
	Data []byte
}

// GroupFile is one file of a group, as exposed to code embedding the
// client or server — the cluster peer tier (internal/cluster) routes
// whole groups of these between nodes. The demanded file always leads a
// group; the rest are its opportunistically fetched members.
type GroupFile struct {
	Path string
	Data []byte
}

// groupResponse is the payload of msgGroup.
type groupResponse struct {
	Files []fileData
}

// HandoffGroup is one group being drained from a departing cluster node
// to the peer that owns it next: the anchor path plus its learned
// members in group order, metadata only — the stores are replicated, so
// the bytes are already at the receiver.
type HandoffGroup struct {
	Anchor  string
	Members []string
}

// errorResponse is the payload of msgError.
type errorResponse struct {
	Code    uint32
	Message string
}

// writeFrame emits one frame: u32 length (type+payload), u8 type, payload.
func writeFrame(w *bufio.Writer, typ uint8, payload []byte) error {
	if err := putFrame(w, typ, payload); err != nil {
		return err
	}
	return w.Flush()
}

// putFrame buffers one v1 frame without flushing, so batches of frames
// can share a single flush (and, typically, a single syscall).
func putFrame(w *bufio.Writer, typ uint8, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("fsnet: frame of %d bytes exceeds limit", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, returning its type and payload. The header
// is read separately from the payload so the returned payload slice spans
// its pooled buffer from offset zero: recycling it preserves the buffer's
// full capacity. (Slicing the type byte off a combined read would shave a
// byte of capacity per cycle until every buffer cap-missed.)
// peekN returns n buffered bytes without consuming them, with
// io.ReadFull's error semantics (ErrUnexpectedEOF on a partial header).
// Peeking instead of reading into a local array keeps the header bytes
// inside bufio's buffer: a stack array handed to io.ReadFull escapes
// through the io.Reader interface and costs a heap allocation per frame.
func peekN(r *bufio.Reader, n int) ([]byte, error) {
	b, err := r.Peek(n)
	if err != nil {
		if len(b) > 0 && err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return b, nil
}

func readFrame(r *bufio.Reader) (uint8, []byte, error) {
	hdr, err := peekN(r, 4)
	if err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n == 0 || n > maxFrame {
		// Validated before the type byte is demanded: a hostile
		// zero-length header must error now, not block waiting for bytes
		// the peer never promised.
		return 0, nil, fmt.Errorf("fsnet: frame length %d out of range", n)
	}
	_, _ = r.Discard(4)
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("fsnet: short frame: %w", err)
	}
	payload := getFrameBuf(int(n) - 1)
	if _, err := io.ReadFull(r, payload); err != nil {
		putFrameBuf(payload)
		return 0, nil, fmt.Errorf("fsnet: short frame: %w", err)
	}
	return typ, payload, nil
}

// Version-2 framing: u32 length (type + id + payload), u8 type, u64
// request ID, payload. The request ID ties a reply to its request so a
// pipelined connection may return replies out of order.
const v2HdrLen = 1 + 8 // type + request ID, inside the length prefix

// putFrameID buffers one v2 frame without flushing.
func putFrameID(w *bufio.Writer, typ uint8, id uint64, payload []byte) error {
	if len(payload)+v2HdrLen > maxFrame {
		return fmt.Errorf("fsnet: frame of %d bytes exceeds limit", len(payload)+v2HdrLen)
	}
	var hdr [4 + v2HdrLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+v2HdrLen))
	hdr[4] = typ
	binary.BigEndian.PutUint64(hdr[5:], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrameID reads one v2 frame, returning its type, request ID, and
// payload. The payload aliases a pooled buffer; hand it back via
// putFrameBuf once fully decoded. As in readFrame, the frame header is
// read separately so the recycled payload keeps its full capacity.
func readFrameID(r *bufio.Reader) (uint8, uint64, []byte, error) {
	lenb, err := peekN(r, 4)
	if err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenb)
	if n < v2HdrLen || n > maxFrame {
		// As in readFrame: reject the length before demanding the inner
		// header, so a runt frame errors instead of blocking.
		return 0, 0, nil, fmt.Errorf("fsnet: frame length %d out of range", n)
	}
	_, _ = r.Discard(4)
	hdr, err := peekN(r, v2HdrLen)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("fsnet: short frame: %w", err)
	}
	typ, id := hdr[0], binary.BigEndian.Uint64(hdr[1:])
	_, _ = r.Discard(v2HdrLen)
	payload := getFrameBuf(int(n) - v2HdrLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		putFrameBuf(payload)
		return 0, 0, nil, fmt.Errorf("fsnet: short frame: %w", err)
	}
	return typ, id, payload, nil
}

// frameBufPool recycles frame bodies across requests. Decoders copy every
// string and blob they keep, so a frame buffer is free for reuse as soon
// as its payload has been decoded; the hot open path then performs no
// per-frame allocation beyond the decoded file contents themselves.
//
// The pool stores *[]byte, not []byte: putting a bare slice into a
// sync.Pool boxes its header on every Put (one hidden allocation per
// recycled frame — measured as a top allocator before this change). The
// pointer boxes themselves cycle through boxPool, so steady-state
// get/put pairs allocate nothing at all.
var frameBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

// boxPool recycles the empty *[]byte headers frameBufPool threads its
// buffers through.
var boxPool = sync.Pool{New: func() interface{} { return new([]byte) }}

func getFrameBuf(n int) []byte {
	bp := frameBufPool.Get().(*[]byte)
	b := *bp
	*bp = nil
	boxPool.Put(bp)
	if cap(b) < n {
		putFrameBuf(b) // keep the small one for small frames
		return make([]byte, n)
	}
	return b[:n]
}

// putFrameBuf returns a frame payload (or body) to the pool. Accepts the
// payload sub-slice handed out by readFrame/readFrameID; the lost header
// bytes of capacity are irrelevant to reuse.
func putFrameBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxFrame {
		return
	}
	bp := boxPool.Get().(*[]byte)
	*bp = b[:0]
	frameBufPool.Put(bp)
}

// getEncodeBuf returns a zero-length pooled buffer for append-style
// encoding; hand the grown result back via putFrameBuf once written.
func getEncodeBuf() []byte {
	return getFrameBuf(0)
}

// helloRequest is the payload of msgHello and msgHelloOK: just a protocol
// version.
func encodeHello(version int) []byte {
	return appendUvarint(nil, uint64(version))
}

// writeHello frames a hello/helloOK through a pooled scratch buffer, so
// handshakes allocate nothing.
func writeHello(w *bufio.Writer, typ uint8, version int) error {
	b := appendUvarint(getEncodeBuf(), uint64(version))
	err := writeFrame(w, typ, b)
	putFrameBuf(b)
	return err
}

func decodeHello(payload []byte) (int, error) {
	d := decoder{buf: payload}
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v == 0 || v > 1<<16 {
		return 0, fmt.Errorf("fsnet: protocol version %d out of range", v)
	}
	if err := d.done(); err != nil {
		return 0, err
	}
	return int(v), nil
}

// Payload encoding helpers: strings and byte blobs are uvarint length +
// bytes; counts are uvarints.

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, data []byte) []byte {
	b = appendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// decoder consumes a payload buffer.
type decoder struct {
	buf []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errors.New("fsnet: truncated varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) str(limit int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) {
		return "", fmt.Errorf("fsnet: string of %d bytes exceeds limit %d", n, limit)
	}
	if uint64(len(d.buf)) < n {
		return "", errors.New("fsnet: truncated string")
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// view returns the next length-prefixed byte string as a view aliasing
// the payload buffer — no copy; valid only while the buffer is.
func (d *decoder) view(limit int) ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(limit) {
		return nil, fmt.Errorf("fsnet: string of %d bytes exceeds limit %d", n, limit)
	}
	if uint64(len(d.buf)) < n {
		return nil, errors.New("fsnet: truncated string")
	}
	v := d.buf[:n]
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) bytes(limit int) ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(limit) {
		return nil, fmt.Errorf("fsnet: blob of %d bytes exceeds limit %d", n, limit)
	}
	if uint64(len(d.buf)) < n {
		return nil, errors.New("fsnet: truncated blob")
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *decoder) done() error {
	if len(d.buf) != 0 {
		return fmt.Errorf("fsnet: %d trailing payload bytes", len(d.buf))
	}
	return nil
}

func encodeOpenRequest(req openRequest) []byte {
	return appendOpenRequest(nil, req.Path, req.Accessed)
}

// appendOpenRequest appends an open-request payload to dst; the pipelined
// writer encodes into a reused scratch buffer through this.
func appendOpenRequest(dst []byte, path string, accessed []string) []byte {
	dst = appendString(dst, path)
	dst = appendUvarint(dst, uint64(len(accessed)))
	for _, p := range accessed {
		dst = appendString(dst, p)
	}
	return dst
}

func decodeOpenRequest(payload []byte) (openRequest, error) {
	d := decoder{buf: payload}
	var req openRequest
	var err error
	if req.Path, err = d.str(maxPath); err != nil {
		return req, err
	}
	if req.Path == "" {
		return req, errors.New("fsnet: empty path")
	}
	n, err := d.uvarint()
	if err != nil {
		return req, err
	}
	if n > maxStatPaths {
		return req, fmt.Errorf("fsnet: %d piggybacked paths exceed limit %d", n, maxStatPaths)
	}
	req.Accessed = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		p, err := d.str(maxPath)
		if err != nil {
			return req, err
		}
		req.Accessed = append(req.Accessed, p)
	}
	if err := d.done(); err != nil {
		return req, err
	}
	return req, nil
}

// handoffRequest is the payload of msgHandoff: one drained group's
// anchor path plus learned members, successor order preserved.
type handoffRequest struct {
	Anchor  string
	Members []string
}

func encodeHandoffRequest(req handoffRequest) []byte {
	b := appendString(nil, req.Anchor)
	b = appendUvarint(b, uint64(len(req.Members)))
	for _, p := range req.Members {
		b = appendString(b, p)
	}
	return b
}

func decodeHandoffRequest(payload []byte) (handoffRequest, error) {
	d := decoder{buf: payload}
	var req handoffRequest
	var err error
	if req.Anchor, err = d.str(maxPath); err != nil {
		return req, err
	}
	if req.Anchor == "" {
		return req, errors.New("fsnet: empty anchor path")
	}
	n, err := d.uvarint()
	if err != nil {
		return req, err
	}
	if n == 0 || n > maxGroup {
		return req, fmt.Errorf("fsnet: handoff of %d members out of range", n)
	}
	req.Members = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		p, err := d.str(maxPath)
		if err != nil {
			return req, err
		}
		if p == "" {
			return req, errors.New("fsnet: empty handoff member path")
		}
		req.Members = append(req.Members, p)
	}
	if err := d.done(); err != nil {
		return req, err
	}
	return req, nil
}

// writeRequest is the payload of msgWrite.
type writeRequest struct {
	Path string
	Data []byte
}

func encodeWriteRequest(req writeRequest) []byte {
	b := appendString(nil, req.Path)
	return appendBytes(b, req.Data)
}

func decodeWriteRequest(payload []byte) (writeRequest, error) {
	d := decoder{buf: payload}
	var req writeRequest
	var err error
	if req.Path, err = d.str(maxPath); err != nil {
		return req, err
	}
	if req.Path == "" {
		return req, errors.New("fsnet: empty path")
	}
	if req.Data, err = d.bytes(maxFileSize); err != nil {
		return req, err
	}
	if err := d.done(); err != nil {
		return req, err
	}
	return req, nil
}

func encodeGroupResponse(resp groupResponse) []byte {
	return appendGroupResponse(nil, resp.Files)
}

// appendGroupResponse appends a contiguous (version ≤ 2) group-reply
// payload to dst; the reply writer encodes into pooled buffers through
// this.
func appendGroupResponse(dst []byte, files []fileData) []byte {
	dst = appendUvarint(dst, uint64(len(files)))
	for _, f := range files {
		dst = appendString(dst, f.Path)
		dst = appendBytes(dst, f.Data)
	}
	return dst
}

func decodeGroupResponse(payload []byte) (groupResponse, error) {
	d := decoder{buf: payload}
	var resp groupResponse
	n, err := d.uvarint()
	if err != nil {
		return resp, err
	}
	if n == 0 || n > maxGroup {
		return resp, fmt.Errorf("fsnet: group of %d files out of range", n)
	}
	resp.Files = make([]fileData, 0, n)
	for i := uint64(0); i < n; i++ {
		var f fileData
		if f.Path, err = d.str(maxPath); err != nil {
			return resp, err
		}
		if f.Data, err = d.bytes(maxFileSize); err != nil {
			return resp, err
		}
		resp.Files = append(resp.Files, f)
	}
	if err := d.done(); err != nil {
		return resp, err
	}
	return resp, nil
}

func encodeErrorResponse(resp errorResponse) []byte {
	return appendErrorResponse(nil, resp)
}

func appendErrorResponse(dst []byte, resp errorResponse) []byte {
	dst = appendUvarint(dst, uint64(resp.Code))
	return appendString(dst, resp.Message)
}

func decodeErrorResponse(payload []byte) (errorResponse, error) {
	d := decoder{buf: payload}
	var resp errorResponse
	code, err := d.uvarint()
	if err != nil {
		return resp, err
	}
	resp.Code = uint32(code)
	if resp.Message, err = d.str(maxPath); err != nil {
		return resp, err
	}
	if err := d.done(); err != nil {
		return resp, err
	}
	return resp, nil
}

// Version-3 streamed group replies. A group reply is n msgMemberChunk
// frames — each carrying one file's path and contents — closed by one
// msgGroupEnd frame carrying the member count. All frames reuse the
// version-2 framing (length, type, request ID), so chunks of different
// pipelined requests may interleave; within one request ID, chunks arrive
// in group order with the demanded file first.
//
// The server never materializes a chunk frame as one contiguous buffer:
// appendMemberChunkHdr builds everything up to the file contents in a
// pooled scratch slice, and the contents ride as their own element of a
// net.Buffers scatter-gather write, straight from the store's slice.

// appendMemberChunkHdr appends a member chunk's frame header and metadata
// to dst: u32 length, type, request ID, uvarint path length, path bytes,
// uvarint data length. The file contents (dataLen bytes) must follow on
// the wire immediately after.
func appendMemberChunkHdr(dst []byte, id uint64, path string, dataLen int) []byte {
	meta := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	dst = append(dst, msgMemberChunk)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = appendString(dst, path)
	dst = appendUvarint(dst, uint64(dataLen))
	payloadLen := len(dst) - meta - 4 + dataLen
	binary.BigEndian.PutUint32(dst[meta:meta+4], uint32(payloadLen))
	return dst
}

// appendFrameID appends one complete v2-framed message (header plus
// payload) to dst; the scatter-gather reply path uses it for the small
// frames (group end, write/handoff acks, errors) that share a batch with
// streamed chunks.
func appendFrameID(dst []byte, typ uint8, id uint64, payload []byte) []byte {
	dst = append(dst, 0, 0, 0, 0)
	binary.BigEndian.PutUint32(dst[len(dst)-4:], uint32(len(payload)+v2HdrLen))
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint64(dst, id)
	return append(dst, payload...)
}

// memberChunkView decodes a msgMemberChunk payload into views aliasing
// the payload buffer — no copies; the caller owns the buffer until it is
// done with both views.
func memberChunkView(payload []byte) (path, data []byte, err error) {
	d := decoder{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if n == 0 || n > maxPath {
		return nil, nil, fmt.Errorf("fsnet: chunk path of %d bytes out of range", n)
	}
	if uint64(len(d.buf)) < n {
		return nil, nil, errors.New("fsnet: truncated chunk path")
	}
	path, d.buf = d.buf[:n], d.buf[n:]
	n, err = d.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if n > maxFileSize {
		return nil, nil, fmt.Errorf("fsnet: chunk of %d bytes exceeds limit %d", n, maxFileSize)
	}
	if uint64(len(d.buf)) != n {
		return nil, nil, fmt.Errorf("fsnet: chunk data length %d, frame carries %d", n, len(d.buf))
	}
	return path, d.buf, nil
}

// appendGroupEnd appends a msgGroupEnd payload (the member count) to dst.
func appendGroupEnd(dst []byte, count int) []byte {
	return appendUvarint(dst, uint64(count))
}

func decodeGroupEnd(payload []byte) (int, error) {
	d := decoder{buf: payload}
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n == 0 || n > maxGroup {
		return 0, fmt.Errorf("fsnet: group of %d files out of range", n)
	}
	if err := d.done(); err != nil {
		return 0, err
	}
	return int(n), nil
}
