// Package fsnet realizes the paper's Figure-2 architecture as a real
// networked system: a file server that maintains relationship metadata and
// answers every open request with a *group* of files, and a client-side
// cache manager that installs the group per the aggregating-cache rules
// and piggybacks its access statistics onto subsequent requests (§3).
//
// The wire protocol is a simple length-prefixed binary framing over TCP,
// built only on the standard library.
package fsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types.
const (
	// msgOpen is a client->server open request: the demanded path plus
	// the piggybacked list of paths the client accessed (hit or miss)
	// since its previous request, in order.
	msgOpen = uint8(iota + 1)
	// msgGroup is the server->client reply: the demanded file first,
	// then the opportunistically fetched group members.
	msgGroup
	// msgError is the server->client failure reply.
	msgError
	// msgWrite is a client->server whole-file write (write-through).
	msgWrite
	// msgWriteOK acknowledges a write.
	msgWriteOK
)

// Protocol limits; violations terminate the connection.
const (
	maxFrame     = 16 << 20
	maxPath      = 4096
	maxStatPaths = 1024
	maxGroup     = 64
	maxFileSize  = 8 << 20
)

// Error codes carried by msgError.
const (
	// CodeNotFound reports that the demanded path does not exist.
	CodeNotFound = uint32(iota + 1)
	// CodeBadRequest reports a malformed or limit-violating request.
	CodeBadRequest
	// CodeBusy reports that the server is at its connection limit; the
	// connection is closed after this reply. Clients with retry
	// configured back off and redial.
	CodeBusy
	// CodeInternal reports a handler failure (recovered panic); the
	// connection is closed after this reply.
	CodeInternal
)

// ErrNotFound is returned by Client.Open for missing files.
var ErrNotFound = errors.New("fsnet: file not found")

// openRequest is the payload of msgOpen.
type openRequest struct {
	// Path is the demanded file.
	Path string
	// Accessed is the piggybacked access history since the last
	// request, oldest first. It excludes the demanded Path itself,
	// which the server appends to the learned stream on arrival.
	Accessed []string
}

// fileData is one file in a group reply.
type fileData struct {
	Path string
	Data []byte
}

// groupResponse is the payload of msgGroup.
type groupResponse struct {
	Files []fileData
}

// errorResponse is the payload of msgError.
type errorResponse struct {
	Code    uint32
	Message string
}

// writeFrame emits one frame: u32 length (type+payload), u8 type, payload.
func writeFrame(w *bufio.Writer, typ uint8, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("fsnet: frame of %d bytes exceeds limit", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, returning its type and payload.
func readFrame(r *bufio.Reader) (uint8, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("fsnet: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("fsnet: short frame: %w", err)
	}
	return body[0], body[1:], nil
}

// Payload encoding helpers: strings and byte blobs are uvarint length +
// bytes; counts are uvarints.

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, data []byte) []byte {
	b = appendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// decoder consumes a payload buffer.
type decoder struct {
	buf []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errors.New("fsnet: truncated varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) str(limit int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) {
		return "", fmt.Errorf("fsnet: string of %d bytes exceeds limit %d", n, limit)
	}
	if uint64(len(d.buf)) < n {
		return "", errors.New("fsnet: truncated string")
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *decoder) bytes(limit int) ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(limit) {
		return nil, fmt.Errorf("fsnet: blob of %d bytes exceeds limit %d", n, limit)
	}
	if uint64(len(d.buf)) < n {
		return nil, errors.New("fsnet: truncated blob")
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

func (d *decoder) done() error {
	if len(d.buf) != 0 {
		return fmt.Errorf("fsnet: %d trailing payload bytes", len(d.buf))
	}
	return nil
}

func encodeOpenRequest(req openRequest) []byte {
	b := appendString(nil, req.Path)
	b = appendUvarint(b, uint64(len(req.Accessed)))
	for _, p := range req.Accessed {
		b = appendString(b, p)
	}
	return b
}

func decodeOpenRequest(payload []byte) (openRequest, error) {
	d := decoder{buf: payload}
	var req openRequest
	var err error
	if req.Path, err = d.str(maxPath); err != nil {
		return req, err
	}
	if req.Path == "" {
		return req, errors.New("fsnet: empty path")
	}
	n, err := d.uvarint()
	if err != nil {
		return req, err
	}
	if n > maxStatPaths {
		return req, fmt.Errorf("fsnet: %d piggybacked paths exceed limit %d", n, maxStatPaths)
	}
	req.Accessed = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		p, err := d.str(maxPath)
		if err != nil {
			return req, err
		}
		req.Accessed = append(req.Accessed, p)
	}
	if err := d.done(); err != nil {
		return req, err
	}
	return req, nil
}

// writeRequest is the payload of msgWrite.
type writeRequest struct {
	Path string
	Data []byte
}

func encodeWriteRequest(req writeRequest) []byte {
	b := appendString(nil, req.Path)
	return appendBytes(b, req.Data)
}

func decodeWriteRequest(payload []byte) (writeRequest, error) {
	d := decoder{buf: payload}
	var req writeRequest
	var err error
	if req.Path, err = d.str(maxPath); err != nil {
		return req, err
	}
	if req.Path == "" {
		return req, errors.New("fsnet: empty path")
	}
	if req.Data, err = d.bytes(maxFileSize); err != nil {
		return req, err
	}
	if err := d.done(); err != nil {
		return req, err
	}
	return req, nil
}

func encodeGroupResponse(resp groupResponse) []byte {
	b := appendUvarint(nil, uint64(len(resp.Files)))
	for _, f := range resp.Files {
		b = appendString(b, f.Path)
		b = appendBytes(b, f.Data)
	}
	return b
}

func decodeGroupResponse(payload []byte) (groupResponse, error) {
	d := decoder{buf: payload}
	var resp groupResponse
	n, err := d.uvarint()
	if err != nil {
		return resp, err
	}
	if n == 0 || n > maxGroup {
		return resp, fmt.Errorf("fsnet: group of %d files out of range", n)
	}
	resp.Files = make([]fileData, 0, n)
	for i := uint64(0); i < n; i++ {
		var f fileData
		if f.Path, err = d.str(maxPath); err != nil {
			return resp, err
		}
		if f.Data, err = d.bytes(maxFileSize); err != nil {
			return resp, err
		}
		resp.Files = append(resp.Files, f)
	}
	if err := d.done(); err != nil {
		return resp, err
	}
	return resp, nil
}

func encodeErrorResponse(resp errorResponse) []byte {
	b := appendUvarint(nil, uint64(resp.Code))
	return appendString(b, resp.Message)
}

func decodeErrorResponse(payload []byte) (errorResponse, error) {
	d := decoder{buf: payload}
	var resp errorResponse
	code, err := d.uvarint()
	if err != nil {
		return resp, err
	}
	resp.Code = uint32(code)
	if resp.Message, err = d.str(maxPath); err != nil {
		return resp, err
	}
	if err := d.done(); err != nil {
		return resp, err
	}
	return resp, nil
}
