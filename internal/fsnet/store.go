package fsnet

import (
	"fmt"
	"sort"
	"sync"
)

// Store is the server file store of Figure 2: a concurrency-safe
// in-memory path -> contents map standing in for the storage server's
// disk.
type Store struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{files: make(map[string][]byte)}
}

// Put stores contents under path, copying the data so later caller
// mutations cannot corrupt the store.
func (s *Store) Put(path string, data []byte) error {
	if path == "" || len(path) > maxPath {
		return fmt.Errorf("fsnet: invalid path %q", path)
	}
	if len(data) > maxFileSize {
		return fmt.Errorf("fsnet: file %q of %d bytes exceeds limit %d", path, len(data), maxFileSize)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = cp
	return nil
}

// Get returns a copy of the contents of path.
func (s *Store) Get(path string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[path]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, true
}

// GetRef returns the stored contents of path without copying. The
// returned slice is read-only and remains valid forever: Put replaces a
// path's slice wholesale (it never mutates in place) and Delete only
// drops the store's reference, so concurrent writers cannot corrupt a
// reader's view. The zero-copy serving path hands these refs straight to
// the socket writer.
func (s *Store) GetRef(path string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.files[path]
	return data, ok
}

// Contains reports whether path exists without copying its contents.
func (s *Store) Contains(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[path]
	return ok
}

// containsBytes is Contains for a path still sitting in a frame buffer;
// the string-conversion map index never allocates.
func (s *Store) containsBytes(path []byte) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[string(path)]
	return ok
}

// Delete removes path, reporting whether it existed.
func (s *Store) Delete(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return false
	}
	delete(s.files, path)
	return true
}

// Len returns the number of stored files.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// Paths returns the stored paths in sorted order.
func (s *Store) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
