package fsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// Adversarial server tests: hostile or broken peers must get a typed
// msgError or a clean departure — with ServerStats.Errors advancing —
// and must never disturb service to healthy clients.

// rawDial opens an unmanaged connection for crafting hostile frames.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

// waitServerErrors polls until the server error counter reaches want (or
// times out), absorbing handler-goroutine scheduling delay.
func waitServerErrors(t *testing.T, srv *Server, want uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := srv.Stats().Errors; got >= want || time.Now().After(deadline) {
			return got
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertHealthy proves the server still serves a well-behaved client.
func assertHealthy(t *testing.T, addr string) {
	t.Helper()
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("healthy dial: %v", err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Errorf("healthy client failed: %v", err)
	}
}

func TestAdversarialOversizedFrame(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	conn := rawDial(t, addr)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = msgOpen
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if got := waitServerErrors(t, srv, 1); got == 0 {
		t.Error("oversized frame did not advance ServerStats.Errors")
	}
	// The connection is gone: the next read sees EOF/reset.
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("server kept the connection after an oversized frame")
	}
	assertHealthy(t, addr)
}

func TestAdversarialZeroLengthFrame(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	conn := rawDial(t, addr)
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if got := waitServerErrors(t, srv, 1); got == 0 {
		t.Error("zero-length frame did not advance ServerStats.Errors")
	}
	assertHealthy(t, addr)
}

func TestAdversarialTruncatedFrameMidPayload(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	conn := rawDial(t, addr)
	// Header promises 100 payload bytes; send 10 and hang up mid-frame.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 101)
	hdr[4] = msgOpen
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if got := waitServerErrors(t, srv, 1); got == 0 {
		t.Error("truncated frame did not advance ServerStats.Errors")
	}
	assertHealthy(t, addr)
}

func TestAdversarialUnknownMessageType(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	conn := rawDial(t, addr)
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], 1)
	hdr[4] = 0x7f // no such message type
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must reply with a typed msgError before departing.
	r := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, payload, err := readFrame(r)
	if err != nil {
		t.Fatalf("no reply to unknown message type: %v", err)
	}
	if typ != msgError {
		t.Fatalf("reply type = %d, want msgError", typ)
	}
	e, err := decodeErrorResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBadRequest {
		t.Errorf("error code = %d, want CodeBadRequest", e.Code)
	}
	if got := waitServerErrors(t, srv, 1); got == 0 {
		t.Error("unknown message type did not advance ServerStats.Errors")
	}
	// And then the connection closes.
	if _, _, err := readFrame(r); err == nil {
		t.Error("server kept the connection after an unknown message type")
	}
	assertHealthy(t, addr)
}

func TestAdversarialMalformedOpenPayload(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	conn := rawDial(t, addr)
	// A syntactically framed msgOpen whose payload is garbage.
	payload := []byte{0xff, 0xff, 0xff, 0xff, 0xff}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = msgOpen
	if _, err := conn.Write(append(hdr[:], payload...)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, body, err := readFrame(r)
	if err != nil {
		t.Fatalf("no reply to malformed open: %v", err)
	}
	if typ != msgError {
		t.Fatalf("reply type = %d, want msgError", typ)
	}
	e, err := decodeErrorResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBadRequest {
		t.Errorf("error code = %d, want CodeBadRequest", e.Code)
	}
	if got := waitServerErrors(t, srv, 1); got == 0 {
		t.Error("malformed open did not advance ServerStats.Errors")
	}
	assertHealthy(t, addr)
}

// TestAdversarialSilentClientDepartsCleanly: a connection that never
// writes must be dropped by the IdleTimeout path without counting as a
// protocol error.
func TestAdversarialSilentClientDepartsCleanly(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{IdleTimeout: 60 * time.Millisecond})
	conn := rawDial(t, addr)
	// Never write; wait for the idle deadline to fire.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); !errors.Is(err, io.EOF) {
		// The server closes without writing, so EOF is the clean signal.
		t.Fatalf("idle departure read = %v, want EOF", err)
	}
	if got := srv.Stats().Errors; got != 0 {
		t.Errorf("idle departure advanced Errors to %d; want clean departure", got)
	}
	assertHealthy(t, addr)
}

// TestServerMaxConnsRejectsGracefully: the accept limit turns excess
// connections away with CodeBusy instead of hanging or crashing them.
func TestServerMaxConnsRejectsGracefully(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 4), ServerConfig{MaxConns: 2})
	// Two live clients occupy both slots.
	c1, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Open("/data/f001"); err != nil {
		t.Fatal(err)
	}

	// The third connection gets a CodeBusy error frame, then close.
	conn := rawDial(t, addr)
	r := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	typ, payload, err := readFrame(r)
	if err != nil {
		t.Fatalf("no rejection frame: %v", err)
	}
	if typ != msgError {
		t.Fatalf("rejection type = %d, want msgError", typ)
	}
	e, err := decodeErrorResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBusy {
		t.Errorf("rejection code = %d, want CodeBusy", e.Code)
	}
	if got := srv.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	// Both admitted clients still work.
	if _, err := c1.Open("/data/f002"); err != nil {
		t.Errorf("admitted client failed after rejection: %v", err)
	}

	// Freeing a slot readmits new connections.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := Dial(addr, ClientConfig{})
		if err == nil {
			_, err = c3.Open("/data/f003")
			_ = c3.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after client close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerWriteTimeoutUnwedgesStalledReader: a peer that requests a
// large group and then never reads must not pin its handler forever; the
// write deadline fires and the connection is dropped (Disconnects
// advances).
func TestServerWriteTimeoutUnwedgesStalledReader(t *testing.T) {
	store := NewStore()
	// One big file so the reply overwhelms kernel socket buffers.
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := store.Put("/big", big); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, store, ServerConfig{WriteTimeout: 150 * time.Millisecond})

	conn := rawDial(t, addr)
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, msgOpen, encodeOpenRequest(openRequest{Path: "/big"})); err != nil {
		t.Fatal(err)
	}
	// Never read the multi-megabyte reply. The handler must give up on
	// its own (not because we closed).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Disconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled reader never disconnected; handler wedged")
		}
		time.Sleep(20 * time.Millisecond)
	}
	assertHealthyPath(t, addr, "/big", big)
}

// assertHealthyPath checks a full round trip for an explicit path.
func assertHealthyPath(t *testing.T, addr, path string, want []byte) {
	t.Helper()
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatalf("healthy dial: %v", err)
	}
	defer client.Close()
	data, err := client.Open(path)
	if err != nil {
		t.Fatalf("healthy open: %v", err)
	}
	if len(data) != len(want) {
		t.Errorf("healthy open returned %d bytes, want %d", len(data), len(want))
	}
}

// TestServerPanicRecovery: a handler panic must be converted into a
// msgError (CodeInternal) reply, counted, and must not take the process
// or the accept loop down.
func TestServerPanicRecovery(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	// Drive handleConn directly over a pipe whose second Read panics,
	// simulating a request whose handling blows up mid-connection.
	srvConn, clientConn := net.Pipe()
	defer clientConn.Close()
	go srv.handleConn(&panicConn{Conn: srvConn, panicAt: 2}, 999)

	w := bufio.NewWriter(clientConn)
	if err := writeFrame(w, msgOpen, encodeOpenRequest(openRequest{Path: "/data/f000"})); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(clientConn)
	_ = clientConn.SetReadDeadline(time.Now().Add(2 * time.Second))
	// First reply is the normal group/error reply.
	if _, _, err := readFrame(r); err != nil {
		t.Fatalf("first reply: %v", err)
	}
	// The second request hits the injected panic; the handler must
	// recover and reply CodeInternal.
	if err := writeFrame(w, msgOpen, encodeOpenRequest(openRequest{Path: "/data/f001"})); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(r)
	if err != nil {
		t.Fatalf("no panic-recovery reply: %v", err)
	}
	if typ != msgError {
		t.Fatalf("recovery reply type = %d, want msgError", typ)
	}
	e, err := decodeErrorResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeInternal {
		t.Errorf("recovery code = %d, want CodeInternal", e.Code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Panics == 0 && !time.Now().After(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Stats().Panics == 0 {
		t.Error("panic not counted")
	}
	// The server proper is unharmed.
	assertHealthy(t, addr)
}

// panicConn panics on the panicAt-th Read call, simulating a request
// whose handling blows up mid-connection. With net.Pipe and a buffered
// writer flushing whole frames, each request arrives as exactly one Read.
type panicConn struct {
	net.Conn
	reads   int
	panicAt int
}

func (p *panicConn) Read(b []byte) (int, error) {
	n, err := p.Conn.Read(b)
	p.reads++
	if p.reads == p.panicAt {
		// Consume the request first (net.Pipe writes block until read),
		// then blow up while "handling" it.
		panic("injected handler panic")
	}
	return n, err
}
