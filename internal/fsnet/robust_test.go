package fsnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"aggcache/internal/faultnet"
)

// Unit tests for the client fault-tolerance layer: request deadlines,
// connection poisoning, retry/backoff, piggyback retention across failed
// round trips, and the lock split that keeps introspection off the wire.

// TestClientTimeoutBoundsStalledRequest: with a blackholed connection and
// a configured Timeout, Open fails within the deadline instead of
// hanging forever.
func TestClientTimeoutBoundsStalledRequest(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := faultnet.Wrap(raw, faultnet.Faults{Seed: 1, BlackholeProb: 1}, nil)
	client, err := NewClient(conn, ClientConfig{Timeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Open("/data/f000")
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("stalled open took %v; deadline did not bound it", elapsed)
	}
	if st := client.Stats(); st.BrokenConns != 1 {
		t.Errorf("BrokenConns = %d, want 1", st.BrokenConns)
	}
}

// TestClientPoisonsConnAfterIOError: after any I/O failure the connection
// is never reused — without a Dialer the client stays degraded.
func TestClientPoisonsConnAfterIOError(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := faultnet.Wrap(raw, faultnet.Faults{Seed: 2, WriteErrProb: 1}, nil)
	client, err := NewClient(conn, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("first open err = %v, want ErrConnBroken", err)
	}
	if client.Connected() {
		t.Error("poisoned connection still installed")
	}
	// Subsequent misses fail fast on the poisoned slot.
	if _, err := client.Open("/data/f001"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("second open err = %v, want ErrConnBroken", err)
	}
}

// TestClientRetriesOverFreshConnection: MaxRetries with a Dialer turns a
// one-shot transport failure into a successful request, observable in
// Retries and Reconnects.
func TestClientRetriesOverFreshConnection(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	// First dialed conn always fails writes; later conns are clean.
	dials := 0
	cfg := ClientConfig{
		MaxRetries: 3,
		Backoff:    Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Dialer: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 1 {
				return faultnet.Wrap(raw, faultnet.Faults{Seed: 3, WriteErrProb: 1}, nil), nil
			}
			return raw, nil
		},
	}
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	data, err := client.Open("/data/f000")
	if err != nil {
		t.Fatalf("open with retry: %v", err)
	}
	if string(data) != "contents of /data/f000" {
		t.Errorf("data = %q", data)
	}
	st := client.Stats()
	if st.Retries == 0 || st.Reconnects == 0 || st.BrokenConns == 0 {
		t.Errorf("retry not observable: %+v", st)
	}
}

// TestClientRetryExhaustionFails: when every attempt fails, Open returns
// ErrConnBroken after MaxRetries+1 attempts, not an infinite loop.
func TestClientRetryExhaustionFails(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	dials := 0
	cfg := ClientConfig{
		MaxRetries: 2,
		Backoff:    Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		Dialer: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			return faultnet.Wrap(raw, faultnet.Faults{Seed: int64(dials), WriteErrProb: 1}, nil), nil
		},
	}
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("err = %v, want ErrConnBroken", err)
	}
	if st := client.Stats(); st.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (MaxRetries)", st.Retries)
	}
}

// TestPiggybackRetainedAcrossFailedRoundTrip is the regression test for
// the lost-metadata bug: a failed round trip must NOT drop the
// piggybacked access history. The server must still learn the hit-path
// transitions from the next successful request.
func TestPiggybackRetainedAcrossFailedRoundTrip(t *testing.T) {
	store := seededStore(t, 10)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2})

	// A dialer whose second connection (used for the failing request)
	// dies on write; all others are clean.
	dials := 0
	cfg := ClientConfig{
		CacheCapacity: 32,
		MaxRetries:    0, // fail fast: the round trip must fail outright
		Dialer: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 2 {
				return faultnet.Wrap(raw, faultnet.Faults{Seed: 4, WriteErrProb: 1}, nil), nil
			}
			return raw, nil
		},
	}
	conn, err := cfg.Dialer()
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Misses for f000 and f001 (learned), then hits that only exist in
	// the piggyback history.
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open("/data/f001"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open("/data/f000"); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := client.Open("/data/f001"); err != nil { // hit
		t.Fatal(err)
	}
	// Poison the healthy conn so the next miss redials onto the faulty
	// second connection and the round trip fails, carrying the history.
	client.poisonCurrent()
	if _, err := client.Open("/data/f005"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("expected failed round trip, got %v", err)
	}

	before := func() uint64 {
		srv.aggMu.Lock()
		defer srv.aggMu.Unlock()
		return srv.agg.Tracker().Observed()
	}()

	// The next request (clean third connection) must deliver the
	// retained history: 2 hit records + the failed demanded open + this
	// open itself.
	if _, err := client.Open("/data/f006"); err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	after := func() uint64 {
		srv.aggMu.Lock()
		defer srv.aggMu.Unlock()
		return srv.agg.Tracker().Observed()
	}()
	// f000,f001 hits + f005 (failed demanded, re-sent as history) +
	// f006 demanded = 4 newly observed accesses.
	if after-before != 4 {
		t.Errorf("server observed %d accesses after recovery, want 4 (history retained)", after-before)
	}
	// And the hit-path transition f000 -> f001 was learned.
	srv.aggMu.Lock()
	id0, ok0 := srv.ids.Lookup("/data/f000")
	id1, ok1 := srv.ids.Lookup("/data/f001")
	var learned bool
	if ok0 && ok1 {
		for _, sid := range srv.agg.Tracker().Successors(id0) {
			if sid == id1 {
				learned = true
			}
		}
	}
	srv.aggMu.Unlock()
	if !learned {
		t.Error("server did not learn the piggybacked f000 -> f001 transition")
	}
}

// TestIntrospectionNeverWaitsOnTheWire is the regression test for the
// coarse-lock bug: Stats, Contains, and Close must return promptly while
// an Open is stalled on a dead wire.
func TestIntrospectionNeverWaitsOnTheWire(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 4), ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Blackholed, no timeout: the Open below blocks indefinitely.
	conn := faultnet.Wrap(raw, faultnet.Faults{Seed: 5, BlackholeProb: 1}, nil)
	client, err := NewClient(conn, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	opened := make(chan error, 1)
	go func() {
		_, err := client.Open("/data/f000")
		opened <- err
	}()
	// Give the Open a moment to reach the wire.
	time.Sleep(50 * time.Millisecond)

	probe := make(chan struct{})
	go func() {
		_ = client.Stats()
		_ = client.Contains("/data/f000")
		close(probe)
	}()
	select {
	case <-probe:
	case <-time.After(2 * time.Second):
		t.Fatal("Stats/Contains blocked behind a stalled request")
	}

	// Close must also return promptly — and it aborts the stalled Open.
	closed := make(chan error, 1)
	go func() { closed <- client.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked behind a stalled request")
	}
	select {
	case err := <-opened:
		if err == nil {
			t.Error("stalled open reported success after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled open never unblocked after Close")
	}
}

// TestBackoffSchedule pins the backoff math: exponential growth, Max cap,
// jitter bounded, deterministic for a fixed seed.
func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}.withDefaults()
	wants := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, want := range wants {
		if got := b.delay(i, nil); got != want {
			t.Errorf("delay(%d) = %v, want %v", i, got, want)
		}
	}
	// Jitter stays within its fraction and is deterministic per seed.
	bj := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
	c1, err := NewClient(nil, ClientConfig{Seed: 7, Backoff: bj})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(nil, ClientConfig{Seed: 7, Backoff: bj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d1 := c1.cfg.Backoff.delay(i, c1.rng)
		d2 := c2.cfg.Backoff.delay(i, c2.rng)
		if d1 != d2 {
			t.Errorf("jittered delay(%d) diverges across equal seeds: %v vs %v", i, d1, d2)
		}
		base := c1.cfg.Backoff
		pure := Backoff{Base: base.Base, Max: base.Max, Multiplier: base.Multiplier, Jitter: 0}.delay(i, nil)
		if d1 < pure || d1 > pure+pure/2 {
			t.Errorf("delay(%d) = %v outside [%v, %v]", i, d1, pure, pure+pure/2)
		}
	}
}

// TestBusyRejectionIsRetried: a client bounced by MaxConns retries and
// gets in once a slot frees.
func TestBusyRejectionIsRetried(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 4), ServerConfig{MaxConns: 1})
	// Occupy the only slot...
	hog, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hog.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	// ...and free it shortly after the second client starts retrying.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = hog.Close()
	}()

	client, err := Dial(addr, ClientConfig{
		MaxRetries: 10,
		Backoff:    Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		Timeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	data, err := client.Open("/data/f001")
	if err != nil {
		t.Fatalf("open through busy rejection: %v", err)
	}
	if string(data) != "contents of /data/f001" {
		t.Errorf("data = %q", data)
	}
}
