package fsnet

import (
	"testing"

	"aggcache/internal/obs/otrace"
)

func TestTraceCtxRoundTrip(t *testing.T) {
	cases := []struct {
		id  uint64
		ctx otrace.Ctx
	}{
		{1, otrace.Ctx{Hi: 0xdeadbeef, Lo: 0x0badc0de, Span: 7, Sampled: true}},
		{1 << 40, otrace.Ctx{Hi: ^uint64(0), Lo: 1, Span: ^uint64(0), Sampled: true}},
		{42, otrace.Ctx{Hi: 3, Lo: 4, Span: 5}}, // unsampled bit preserved
	}
	for _, tc := range cases {
		wire := appendTraceCtx(nil, tc.id, tc.ctx)
		id, ctx, err := decodeTraceCtx(wire)
		if err != nil {
			t.Fatalf("decode(%x): %v", wire, err)
		}
		if id != tc.id {
			t.Fatalf("id = %d, want %d", id, tc.id)
		}
		// Parent never travels: the receiver derives its own span and the
		// sender's Span becomes the parent via Tracer.Child.
		want := tc.ctx
		want.Parent = 0
		if ctx != want {
			t.Fatalf("ctx = %+v, want %+v", ctx, want)
		}
	}
}

func TestTraceCtxDecodeRejectsTruncation(t *testing.T) {
	full := appendTraceCtx(nil, 9, otrace.Ctx{Hi: 1 << 40, Lo: 2, Span: 3, Sampled: true})
	for n := 0; n < len(full); n++ {
		if _, _, err := decodeTraceCtx(full[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte prefix of %d-byte frame", n, len(full))
		}
	}
	// Trailing garbage is as corrupt as a missing tail.
	if _, _, err := decodeTraceCtx(append(full, 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}
