package fsnet

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, msgOpen, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgOpen || string(payload) != "hello" {
		t.Errorf("frame = %d %q", typ, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, msgError, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgError || len(payload) != 0 {
		t.Errorf("frame = %d %q", typ, payload)
	}
}

func TestReadFrameRejectsBadLengths(t *testing.T) {
	// Zero length.
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Oversized length.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Error("oversized frame accepted")
	}
	// Truncated body.
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 5, 1, 2}))); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestOpenRequestRoundTrip(t *testing.T) {
	req := openRequest{
		Path:     "/bin/sh",
		Accessed: []string{"/a", "/b", "/c"},
	}
	got, err := decodeOpenRequest(encodeOpenRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Path != req.Path || len(got.Accessed) != 3 || got.Accessed[1] != "/b" {
		t.Errorf("decoded = %+v", got)
	}
}

func TestOpenRequestRoundTripProperty(t *testing.T) {
	f := func(path string, accessed []string) bool {
		if path == "" || len(path) > maxPath {
			return true // out of contract
		}
		if len(accessed) > maxStatPaths {
			accessed = accessed[:maxStatPaths]
		}
		for _, a := range accessed {
			if len(a) > maxPath {
				return true
			}
		}
		req := openRequest{Path: path, Accessed: accessed}
		got, err := decodeOpenRequest(encodeOpenRequest(req))
		if err != nil {
			return false
		}
		if got.Path != path || len(got.Accessed) != len(accessed) {
			return false
		}
		for i := range accessed {
			if got.Accessed[i] != accessed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeOpenRequestRejects(t *testing.T) {
	// Empty path.
	if _, err := decodeOpenRequest(encodeOpenRequest(openRequest{Path: ""})); err == nil {
		t.Error("empty path accepted")
	}
	// Truncated payload.
	full := encodeOpenRequest(openRequest{Path: "/x", Accessed: []string{"/y"}})
	if _, err := decodeOpenRequest(full[:len(full)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	// Trailing garbage.
	if _, err := decodeOpenRequest(append(full, 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Path over limit.
	long := openRequest{Path: strings.Repeat("p", maxPath+1)}
	if _, err := decodeOpenRequest(encodeOpenRequest(long)); err == nil {
		t.Error("oversized path accepted")
	}
}

func TestGroupResponseRoundTrip(t *testing.T) {
	resp := groupResponse{Files: []fileData{
		{Path: "/a", Data: []byte("alpha")},
		{Path: "/b", Data: nil},
		{Path: "/c", Data: []byte{0, 1, 2, 255}},
	}}
	got, err := decodeGroupResponse(encodeGroupResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 3 {
		t.Fatalf("files = %d", len(got.Files))
	}
	if got.Files[0].Path != "/a" || string(got.Files[0].Data) != "alpha" {
		t.Errorf("file 0 = %+v", got.Files[0])
	}
	if len(got.Files[1].Data) != 0 {
		t.Errorf("file 1 data = %v, want empty", got.Files[1].Data)
	}
	if !bytes.Equal(got.Files[2].Data, []byte{0, 1, 2, 255}) {
		t.Errorf("file 2 data = %v", got.Files[2].Data)
	}
}

func TestDecodeGroupResponseRejects(t *testing.T) {
	// Empty group.
	if _, err := decodeGroupResponse(encodeGroupResponse(groupResponse{})); err == nil {
		t.Error("empty group accepted")
	}
	// Too many files.
	big := groupResponse{Files: make([]fileData, maxGroup+1)}
	for i := range big.Files {
		big.Files[i] = fileData{Path: "/f"}
	}
	if _, err := decodeGroupResponse(encodeGroupResponse(big)); err == nil {
		t.Error("oversized group accepted")
	}
	// Truncated.
	full := encodeGroupResponse(groupResponse{Files: []fileData{{Path: "/a", Data: []byte("zz")}}})
	if _, err := decodeGroupResponse(full[:len(full)-1]); err == nil {
		t.Error("truncated group accepted")
	}
}

func TestErrorResponseRoundTrip(t *testing.T) {
	resp := errorResponse{Code: CodeNotFound, Message: "/missing"}
	got, err := decodeErrorResponse(encodeErrorResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Errorf("decoded = %+v, want %+v", got, resp)
	}
	if _, err := decodeErrorResponse([]byte{0xff}); err == nil {
		t.Error("garbage error payload accepted")
	}
}
