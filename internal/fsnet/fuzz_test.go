package fsnet

import (
	"bytes"
	"testing"
)

// Fuzz targets: the protocol decoders must never panic on arbitrary
// input; they either parse or return an error. (Seeds below double as
// regular unit cases under plain `go test`.)

func FuzzDecodeOpenRequest(f *testing.F) {
	f.Add(encodeOpenRequest(openRequest{Path: "/x", Accessed: []string{"/a", "/b"}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeOpenRequest(data)
		if err == nil {
			// A successful parse must round-trip.
			again, err2 := decodeOpenRequest(encodeOpenRequest(req))
			if err2 != nil {
				t.Fatalf("re-decode failed: %v", err2)
			}
			if again.Path != req.Path || len(again.Accessed) != len(req.Accessed) {
				t.Fatal("round-trip mismatch")
			}
		}
	})
}

func FuzzDecodeGroupResponse(f *testing.F) {
	f.Add(encodeGroupResponse(groupResponse{Files: []fileData{{Path: "/x", Data: []byte("d")}}}))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := decodeGroupResponse(data)
		if err == nil {
			again, err2 := decodeGroupResponse(encodeGroupResponse(resp))
			if err2 != nil {
				t.Fatalf("re-decode failed: %v", err2)
			}
			if len(again.Files) != len(resp.Files) {
				t.Fatal("round-trip mismatch")
			}
		}
	})
}

func FuzzDecodeWriteRequest(f *testing.F) {
	f.Add(encodeWriteRequest(writeRequest{Path: "/x", Data: []byte("abc")}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeWriteRequest(data)
		if err == nil {
			if !bytes.Equal(encodeWriteRequest(req)[:0], []byte{}) {
				// no-op; ensure encode does not panic
				_ = encodeWriteRequest(req)
			}
		}
	})
}

func FuzzDecodeErrorResponse(f *testing.F) {
	f.Add(encodeErrorResponse(errorResponse{Code: CodeNotFound, Message: "x"}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeErrorResponse(data)
	})
}
