package fsnet

import (
	"fmt"
	"net"
	"testing"
)

// BenchmarkOpenLoopback measures end-to-end opens per second through the
// full protocol stack on a loopback socket, cycling through a working set
// larger than the client cache so misses and group replies are exercised.
func BenchmarkOpenLoopback(b *testing.B) {
	store := NewStore()
	const files = 512
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/bench/f%04d", i)
		if err := store.Put(path, make([]byte, 512)); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(store, ServerConfig{GroupSize: 5, CacheCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	client, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 128})
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Open(fmt.Sprintf("/bench/f%04d", i%files)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := client.Stats()
	if s.Opens > 0 {
		b.ReportMetric(100*float64(s.Hits)/float64(s.Opens), "local_hit_%")
	}
}
