package fsnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
)

const benchFiles = 512

// benchPair stands up a loopback server plus one client (clientMax caps
// the client's protocol version: 1 forces the lock-step baseline).
func benchPair(b *testing.B, clientMax int) *Client {
	b.Helper()
	store := NewStore()
	for i := 0; i < benchFiles; i++ {
		path := fmt.Sprintf("/bench/f%04d", i)
		if err := store.Put(path, make([]byte, 512)); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := NewServer(store, ServerConfig{GroupSize: 5, CacheCapacity: 256})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	b.Cleanup(func() { _ = srv.Close() })

	client, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 128, MaxProtocol: clientMax})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = client.Close() })
	return client
}

func reportHitRate(b *testing.B, client *Client) {
	b.Helper()
	s := client.Stats()
	if s.Opens > 0 {
		b.ReportMetric(100*float64(s.Hits)/float64(s.Opens), "local_hit_%")
	}
}

// benchPaths precomputes the working-set paths so the timed loops measure
// the protocol stack, not fmt.Sprintf.
var benchPaths = func() [benchFiles]string {
	var paths [benchFiles]string
	for i := range paths {
		paths[i] = fmt.Sprintf("/bench/f%04d", i)
	}
	return paths
}()

// BenchmarkOpenLoopback measures end-to-end opens per second through the
// full protocol stack on a loopback socket, cycling through a working set
// larger than the client cache so misses and group replies are exercised.
func BenchmarkOpenLoopback(b *testing.B) {
	client := benchPair(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Open(benchPaths[i%benchFiles]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHitRate(b, client)
}

// BenchmarkOpenLoopbackSerial is the same sequential workload forced onto
// the lock-step version-1 protocol: the serialized baseline the pipelined
// transport is measured against.
func BenchmarkOpenLoopbackSerial(b *testing.B) {
	client := benchPair(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Open(benchPaths[i%benchFiles]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHitRate(b, client)
}

// BenchmarkOpenPipelined shares one client — one connection — across 8
// goroutines, exercising the multiplexed transport and the server's
// concurrent serving path end to end.
func BenchmarkOpenPipelined(b *testing.B) {
	client := benchPair(b, 0)
	const workers = 8
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				if _, err := client.Open(benchPaths[(int(i)*7+w)%benchFiles]); err != nil {
					failed.Store(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	if err, ok := failed.Load().(error); ok {
		b.Fatal(err)
	}
	reportHitRate(b, client)
}
