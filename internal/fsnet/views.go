package fsnet

import (
	"errors"
	"fmt"
)

// ViewSource exposes a node's membership view to the transport so view
// dissemination can ride the fsnet protocol (internal/gossip). The
// cluster tier implements it; fsnet only ever calls through this
// interface, keeping the import direction cluster → fsnet.
//
// Implementations must be safe for concurrent use: Epoch is read on the
// connection writer goroutines (once per batch), and NoteViewEpoch is
// called from reader goroutines — it must not block on network I/O.
type ViewSource interface {
	// Self is this node's advertised cluster address, identifying the
	// sender in view frames (an inbound TCP connection's remote address
	// is an ephemeral port, not a ring address).
	Self() string
	// Epoch is the installed view's epoch.
	Epoch() uint64
	// ViewSnapshot returns the installed epoch and member list,
	// consistently (one view, not two loads).
	ViewSnapshot() (epoch uint64, members []string)
	// ApplyView validates and installs a remote view. A stale epoch is
	// not an error — the receiver is simply newer — so it reports
	// applied=false with a nil error; err is reserved for invalid views.
	ApplyView(epoch uint64, members []string) (applied bool, err error)
	// NoteViewEpoch records that the peer at addr advertises epoch.
	// Called on transport reader goroutines for every hint seen; it must
	// return quickly (hand off to a background puller, never dial here).
	NoteViewEpoch(addr string, epoch uint64)
}

// ErrViewUnsupported reports a view exchange attempted over a connection
// whose negotiated protocol predates version 3. The caller's peer cannot
// speak view frames; there is nothing to retry.
var ErrViewUnsupported = errors.New("fsnet: peer protocol has no view frames")

// maxViewMembers bounds the peer list of a msgViewPush. Matches the
// piggyback-history bound: far beyond any plausible ring, small enough
// that a hostile frame cannot balloon decode work.
const maxViewMembers = 1024

// isViewMsg reports whether typ is a gossip view frame — the request
// types a client must never emit toward a pre-v3 peer.
func isViewMsg(typ uint8) bool {
	return typ == msgViewHint || typ == msgViewPull || typ == msgViewPush
}

// viewMsg — the payload of msgViewHint and msgViewPull — is
// uvarint epoch, then the sender's advertised address.

func appendViewMsg(dst []byte, epoch uint64, sender string) []byte {
	dst = appendUvarint(dst, epoch)
	return appendString(dst, sender)
}

func decodeViewMsg(payload []byte) (epoch uint64, sender string, err error) {
	d := decoder{buf: payload}
	if epoch, err = d.uvarint(); err != nil {
		return 0, "", err
	}
	if sender, err = d.str(maxPath); err != nil {
		return 0, "", err
	}
	if err = d.done(); err != nil {
		return 0, "", err
	}
	return epoch, sender, nil
}

// viewPush — the payload of msgViewPush — extends viewMsg with the
// member list: uvarint epoch, sender address, uvarint count, members.
// An empty member list is legal: a drained node's goodbye view excludes
// itself, and a one-node ring shrinking to zero is representable.

func appendViewPush(dst []byte, epoch uint64, sender string, members []string) []byte {
	dst = appendUvarint(dst, epoch)
	dst = appendString(dst, sender)
	dst = appendUvarint(dst, uint64(len(members)))
	for _, m := range members {
		dst = appendString(dst, m)
	}
	return dst
}

func decodeViewPush(payload []byte) (epoch uint64, sender string, members []string, err error) {
	d := decoder{buf: payload}
	if epoch, err = d.uvarint(); err != nil {
		return 0, "", nil, err
	}
	if sender, err = d.str(maxPath); err != nil {
		return 0, "", nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, "", nil, err
	}
	if n > maxViewMembers {
		return 0, "", nil, fmt.Errorf("fsnet: view of %d members exceeds limit %d", n, maxViewMembers)
	}
	members = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		m, err := d.str(maxPath)
		if err != nil {
			return 0, "", nil, err
		}
		if m == "" {
			return 0, "", nil, errors.New("fsnet: empty view member address")
		}
		members = append(members, m)
	}
	if err = d.done(); err != nil {
		return 0, "", nil, err
	}
	return epoch, sender, members, nil
}
