package fsnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aggcache/internal/obs"
)

// routePrefix is handled by the stub router in these tests.
const routePrefix = "/remote/"

// stubRouter handles routePrefix paths with a synthetic one-file group
// and declines everything else, standing in for the cluster tier.
type stubRouter struct{}

func (stubRouter) RouteOpen(path string, accessed []string) ([]GroupFile, bool, error) {
	if !strings.HasPrefix(path, routePrefix) {
		return nil, false, nil
	}
	return []GroupFile{{Path: path, Data: []byte("remote " + path)}}, true, nil
}

// TestServerMetricsExposition drives a registry-instrumented server and
// client and checks the scraped exposition end to end: counters move,
// per-phase latency histograms fill, the connection gauge reads, and the
// whole document parses under the strict exposition parser.
func TestServerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	store := seededStore(t, 8)
	srv, addr := startServer(t, store, ServerConfig{
		GroupSize: 2,
		Obs:       reg,
		Router:    stubRouter{},
	})
	c, err := Dial(addr, ClientConfig{Obs: reg, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two fetches of the same path: the first stages, the second is a
	// server cache hit (OpenGroup never answers from the local cache).
	for i := 0; i < 2; i++ {
		if _, err := c.OpenGroup("/data/f000"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.OpenGroup(routePrefix + "a"); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	if s, ok := parsed.Find("fsnet_server_requests_total", nil); !ok || s.Value != 3 {
		t.Fatalf("requests_total = %+v, %v", s, ok)
	}
	if s, ok := parsed.Find("fsnet_server_remote_opens_total", nil); !ok || s.Value != 1 {
		t.Fatalf("remote_opens_total = %+v, %v", s, ok)
	}
	for phase, want := range map[string]float64{"hit": 1, "stage": 1, "forward": 1} {
		s, ok := parsed.Find("fsnet_server_request_latency_ns_count", map[string]string{"phase": phase})
		if !ok || s.Value != want {
			t.Fatalf("latency count phase=%s = %+v, %v (want %v)", phase, s, ok, want)
		}
	}
	if s, ok := parsed.Find("fsnet_server_open_conns", nil); !ok || s.Value < 1 {
		t.Fatalf("open_conns gauge = %+v, %v", s, ok)
	}
	// Client-side series registered on the same registry.
	if _, ok := parsed.Find("fsnet_client_call_latency_ns_count", nil); !ok {
		t.Fatal("client call latency histogram missing")
	}
	if s, ok := parsed.Find("fsnet_client_inflight", nil); !ok || s.Value != 0 {
		t.Fatalf("inflight gauge = %+v, %v (want 0 at rest)", s, ok)
	}
	// ServerStats reads the very same atomics the exposition showed.
	if st := srv.Stats(); st.Requests != 3 || st.RemoteOpens != 1 {
		t.Fatalf("Stats disagrees with exposition: %+v", st)
	}
}

// TestServerSlowRequestEvents sets a threshold every request crosses and
// expects a structured slow_request event per open.
func TestServerSlowRequestEvents(t *testing.T) {
	reg := obs.NewRegistry()
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{Obs: reg, SlowRequest: time.Nanosecond})
	c, err := Dial(addr, ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	var slow []obs.Event
	for _, ev := range reg.Events().Events() {
		if ev.Kind == "slow_request" {
			slow = append(slow, ev)
		}
	}
	if len(slow) != 1 {
		t.Fatalf("slow_request events = %d, want 1 (%+v)", len(slow), slow)
	}
	fields := map[string]string{}
	for _, f := range slow[0].Fields {
		fields[f.Key] = f.Value
	}
	if fields["path"] != "/data/f000" || fields["phase"] != "stage" {
		t.Fatalf("slow_request fields = %v", fields)
	}
}

// TestClientReconnectMetrics poisons the live connection and verifies
// the redial shows up as a counter and a structured reconnect event.
func TestClientReconnectMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store := seededStore(t, 4)
	_, addr := startServer(t, store, ServerConfig{})
	c, err := Dial(addr, ClientConfig{Obs: reg, Timeout: 5 * time.Second, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	c.poisonCurrent()
	if _, err := c.Open("/data/f001"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := parsed.Find("fsnet_client_reconnects_total", nil); !ok || s.Value != 1 {
		t.Fatalf("reconnects_total = %+v, %v", s, ok)
	}
	if s, ok := parsed.Find("fsnet_client_broken_conns_total", nil); !ok || s.Value != 1 {
		t.Fatalf("broken_conns_total = %+v, %v", s, ok)
	}
	kinds := map[string]int{}
	for _, ev := range reg.Events().Events() {
		kinds[ev.Kind]++
	}
	if kinds["conn_broken"] != 1 || kinds["reconnect"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

// TestClientDegradedHitMetrics takes the server away and verifies the
// degraded cache hit is counted and logged.
func TestClientDegradedHitMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	store := seededStore(t, 4)
	srv, addr := startServer(t, store, ServerConfig{})
	c, err := Dial(addr, ClientConfig{Obs: reg, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No reconnection: drop the automatic dialer so the outage sticks.
	c.cfg.Dialer = nil
	if _, err := c.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Force the client to notice the dead transport (uncached path).
	if _, err := c.Open("/data/f001"); err == nil {
		t.Fatal("open of uncached path succeeded against a closed server")
	}
	if _, err := c.Open("/data/f000"); err != nil {
		t.Fatalf("degraded hit failed: %v", err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := parsed.Find("fsnet_client_degraded_hits_total", nil); !ok || s.Value != 1 {
		t.Fatalf("degraded_hits_total = %+v, %v", s, ok)
	}
	found := false
	for _, ev := range reg.Events().Events() {
		if ev.Kind == "degraded_hit" {
			found = true
		}
	}
	if !found {
		t.Fatal("no degraded_hit event recorded")
	}
}

// TestConcurrentStatsSnapshot hammers the server with concurrent opens —
// local hits, store stages, and router forwards — while a snapshotter
// reads Stats() throughout, enforcing the documented relaxed-consistency
// contract: mid-flight every snapshot satisfies
//
//	Requests >= Cache.Hits + Cache.GroupFetches + RemoteOpens
//
// and at quiescence the inequality closes to equality. Run with -race
// (the race-par make target matches this test by name).
func TestConcurrentStatsSnapshot(t *testing.T) {
	store := seededStore(t, 32)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2, Router: stubRouter{}})

	const workers = 8
	const opensPerWorker = 150
	stop := make(chan struct{})
	var snapErr error
	var snapOnce sync.Once
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Stats()
			if sum := st.Cache.Hits + st.Cache.GroupFetches + st.RemoteOpens; st.Requests < sum {
				snapOnce.Do(func() {
					snapErr = fmt.Errorf("snapshot tearing: Requests=%d < Hits+GroupFetches+RemoteOpens=%d (%+v)",
						st.Requests, sum, st)
				})
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr, ClientConfig{Timeout: 10 * time.Second})
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < opensPerWorker; i++ {
				var path string
				switch i % 3 {
				case 0:
					path = fmt.Sprintf("/data/f%03d", i%32) // shared: hits after first stage
				case 1:
					path = fmt.Sprintf("/data/f%03d", (i*7+w)%32)
				default:
					path = fmt.Sprintf("%sr%d", routePrefix, i%5)
				}
				// OpenGroup never answers from the local cache, so every
				// iteration exercises the server.
				if _, err := c.OpenGroup(path); err != nil && !errors.Is(err, errClientClosed) {
					t.Errorf("open %s: %v", path, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	// Quiescent: opens-only, error-free workload closes the equation.
	st := srv.Stats()
	if sum := st.Cache.Hits + st.Cache.GroupFetches + st.RemoteOpens; st.Requests != sum {
		t.Fatalf("at quiescence Requests=%d != Hits+GroupFetches+RemoteOpens=%d (%+v)", st.Requests, sum, st)
	}
	if st.Requests != workers*opensPerWorker {
		t.Fatalf("Requests = %d, want %d", st.Requests, workers*opensPerWorker)
	}
}
