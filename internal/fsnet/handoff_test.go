package fsnet

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestHandoffRequestCodec(t *testing.T) {
	req := handoffRequest{
		Anchor:  "/data/f000",
		Members: []string{"/data/f001", "/data/f002"},
	}
	got, err := decodeHandoffRequest(encodeHandoffRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("round trip = %+v, want %+v", got, req)
	}

	bad := []handoffRequest{
		{Anchor: "", Members: []string{"/x"}},
		{Anchor: "/x", Members: nil},
		{Anchor: "/x", Members: []string{""}},
		{Anchor: strings.Repeat("p", maxPath+1), Members: []string{"/x"}},
	}
	for _, r := range bad {
		if _, err := decodeHandoffRequest(encodeHandoffRequest(r)); err == nil {
			t.Errorf("invalid request %+v decoded", r)
		}
	}

	full := encodeHandoffRequest(req)
	if _, err := decodeHandoffRequest(full[:len(full)-1]); err == nil {
		t.Error("truncated payload decoded")
	}
	if _, err := decodeHandoffRequest(append(append([]byte{}, full...), 0xff)); err == nil {
		t.Error("trailing garbage decoded")
	}

	// Member count is bounded by the group ceiling.
	over := handoffRequest{Anchor: "/x"}
	for i := 0; i <= maxGroup; i++ {
		over.Members = append(over.Members, fmt.Sprintf("/m%03d", i))
	}
	if _, err := decodeHandoffRequest(encodeHandoffRequest(over)); err == nil {
		t.Error("oversized member list decoded")
	}
}

// TestHandoffInstallsGroup: a handed-off group becomes the receiver's own
// learned state — a later OpenGroup of the anchor delivers the members in
// one round trip, with the documented stats contract intact.
func TestHandoffInstallsGroup(t *testing.T) {
	for _, proto := range []struct {
		name string
		cfg  ClientConfig
	}{
		{"v2", ClientConfig{}},
		{"v1", ClientConfig{MaxProtocol: 1}},
	} {
		t.Run(proto.name, func(t *testing.T) {
			srv, addr := startServer(t, seededStore(t, 5), ServerConfig{GroupSize: 4})
			c, err := Dial(addr, proto.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			anchor := "/data/f000"
			members := []string{"/data/f001", "/data/f002"}
			if err := c.Handoff(anchor, members); err != nil {
				t.Fatalf("handoff: %v", err)
			}
			st := srv.Stats()
			if st.Handoffs != 1 {
				t.Errorf("Handoffs = %d, want 1", st.Handoffs)
			}
			if st.Requests < st.Cache.Hits+st.Cache.GroupFetches+st.RemoteOpens {
				t.Errorf("stats contract violated after handoff: %+v", st)
			}

			group, err := c.OpenGroup(anchor)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]bool{}
			for _, f := range group {
				got[f.Path] = true
			}
			for _, m := range append([]string{anchor}, members...) {
				if !got[m] {
					t.Errorf("%s missing from post-handoff group %v", m, group)
				}
			}
		})
	}
}

// TestHandoffValidation: client-side argument checking and server-side
// tolerance for members the receiving store does not hold.
func TestHandoffValidation(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 2), ServerConfig{GroupSize: 3})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Handoff("", []string{"/x"}); err == nil {
		t.Error("empty anchor accepted")
	}
	if err := c.Handoff("/x", nil); err == nil {
		t.Error("empty member list accepted")
	}
	var over []string
	for i := 0; i <= maxGroup; i++ {
		over = append(over, fmt.Sprintf("/m%03d", i))
	}
	if err := c.Handoff("/x", over); err == nil {
		t.Error("oversized member list accepted")
	}

	// Handoff is metadata-only: members absent from this store are legal
	// (the group builder simply cannot serve their bytes).
	if err := c.Handoff("/data/f000", []string{"/data/f001", "/elsewhere/gone"}); err != nil {
		t.Fatalf("handoff with absent member: %v", err)
	}
	if st := srv.Stats(); st.Handoffs != 1 {
		t.Errorf("Handoffs = %d, want 1", st.Handoffs)
	}
}

// TestExportGroups: only owned anchors with learned members export, and
// the export is exactly what BuildGroup would serve.
func TestExportGroups(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 6), ServerConfig{GroupSize: 3, SuccessorCapacity: 2})
	c, err := Dial(addr, ClientConfig{CacheCapacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Teach the server two chains: f000->f001 and f003->f004.
	for round := 0; round < 3; round++ {
		for _, p := range []string{"/data/f000", "/data/f001", "/data/f003", "/data/f004"} {
			if _, err := c.Open(p); err != nil {
				t.Fatal(err)
			}
		}
	}

	all := srv.ExportGroups(func(string) bool { return true })
	if len(all) == 0 {
		t.Fatal("no groups exported after training")
	}
	byAnchor := map[string][]string{}
	for _, g := range all {
		if g.Anchor == "" || len(g.Members) == 0 {
			t.Errorf("degenerate export %+v", g)
		}
		byAnchor[g.Anchor] = g.Members
	}
	if ms, ok := byAnchor["/data/f000"]; !ok {
		t.Errorf("trained anchor /data/f000 not exported: %v", byAnchor)
	} else {
		found := false
		for _, m := range ms {
			if m == "/data/f001" {
				found = true
			}
		}
		if !found {
			t.Errorf("learned successor missing from export: %v", ms)
		}
	}

	// The owned predicate filters: exporting nothing is valid.
	if got := srv.ExportGroups(func(string) bool { return false }); len(got) != 0 {
		t.Errorf("unowned export returned %v", got)
	}
	only := srv.ExportGroups(func(p string) bool { return p == "/data/f000" })
	for _, g := range only {
		if g.Anchor != "/data/f000" {
			t.Errorf("filter leaked anchor %s", g.Anchor)
		}
	}
	if len(only) != 1 {
		t.Errorf("filtered export = %+v, want exactly the owned anchor", only)
	}
}
