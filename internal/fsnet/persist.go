package fsnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"aggcache/internal/trace"
)

// Server metadata persistence: the interner's path table plus the
// aggregating cache's successor metadata, so a restarted server resumes
// with everything it learned about inter-file relationships.

var metaMagic = [4]byte{'A', 'G', 'F', 'S'}

const metaVersion = 1

// ErrBadServerMetadata is returned by LoadMetadata for foreign input.
var ErrBadServerMetadata = errors.New("fsnet: bad server metadata snapshot")

// SaveMetadata writes the server's learned state. Safe to call while
// serving; it briefly blocks request processing.
func (s *Server) SaveMetadata(w io.Writer) error {
	// aggMu freezes the successor metadata; the interner can still grow
	// concurrently (opens intern outside aggMu), but IDs are dense and
	// append-only, so snapshotting Len() up front yields a consistent
	// prefix — and any ID the frozen agg metadata references was interned
	// before its LearnFrom, hence before this lock, hence within Len().
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	n := s.ids.Len()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(metaMagic[:]); err != nil {
		return err
	}
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		_, err := bw.Write(tmp[:n])
		return err
	}
	if err := put(metaVersion); err != nil {
		return err
	}
	if err := put(uint64(n)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		path := s.ids.Path(trace.FileID(i))
		if err := put(uint64(len(path))); err != nil {
			return err
		}
		if _, err := bw.WriteString(path); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return s.agg.SaveMetadata(w)
}

// LoadMetadata restores a snapshot written by SaveMetadata. Call it
// before serving traffic.
func (s *Server) LoadMetadata(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("fsnet: read metadata magic: %w", err)
	}
	if magic != metaMagic {
		return ErrBadServerMetadata
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if version != metaVersion {
		return fmt.Errorf("fsnet: unsupported metadata version %d", version)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	ids := trace.NewInterner()
	for i := uint64(0); i < n; i++ {
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if plen == 0 || plen > maxPath {
			return fmt.Errorf("fsnet: metadata path length %d out of range", plen)
		}
		buf := make([]byte, plen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		ids.Intern(string(buf))
	}

	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	if err := s.agg.LoadMetadata(br); err != nil {
		return err
	}
	s.ids = trace.WrapInterner(ids)
	return nil
}
