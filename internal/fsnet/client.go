package fsnet

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/obs"
	"aggcache/internal/obs/otrace"
	"aggcache/internal/trace"
)

// ErrConnBroken marks a connection poisoned by an I/O or protocol error.
// A frame-level failure may leave the stream desynchronized, so a broken
// connection is closed and never reused; the next request redials when a
// Dialer is configured, otherwise it fails with this error. On a
// pipelined (version-2) connection every in-flight call fails fast with
// this error when the connection is poisoned.
var ErrConnBroken = errors.New("fsnet: connection broken")

var errClientClosed = errors.New("fsnet: client closed")

// errLegacyServer reports that the peer answered the protocol handshake
// with "unknown message type": it predates version 2, so the client
// downgrades to lock-step version 1 and redials.
var errLegacyServer = errors.New("fsnet: legacy server (no handshake)")

// Backoff is an exponential backoff schedule with jitter, governing the
// delay before each retry of a failed round trip.
type Backoff struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps the grown delay (default 1s).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter adds a uniform random fraction of the delay in [0, Jitter)
	// to avoid synchronized retry storms. The zero-value Backoff gets
	// 0.2; an explicitly configured schedule with Jitter 0 stays
	// jitter-free (deterministic retries for tests).
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b == (Backoff{}) {
		b.Jitter = 0.2
	}
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// delay returns the sleep before retry attempt (0-based), jittered.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d += d * b.Jitter * rng.Float64()
	}
	if d > float64(b.Max)*(1+b.Jitter) {
		d = float64(b.Max) * (1 + b.Jitter)
	}
	return time.Duration(d)
}

// ClientConfig parameterizes a client cache manager.
type ClientConfig struct {
	// CacheCapacity is the local whole-file cache size (default 128).
	CacheCapacity int
	// DisablePiggyback stops the client from forwarding its access
	// history (hits included) to the server with each request. By
	// default the history is piggybacked, giving the server unfiltered
	// metadata (§3); disabling it models the uncooperative client of
	// §4.3.
	DisablePiggyback bool
	// Timeout bounds each request round trip. Zero means no deadline: a
	// stalled server can block a request indefinitely. On a pipelined
	// connection a timeout poisons the whole connection (the stream
	// position is unknown), failing every in-flight call.
	Timeout time.Duration
	// Dialer re-establishes the connection after a failure. Dial
	// installs a TCP dialer for its address automatically; NewClient
	// leaves it nil (no reconnection) unless the caller provides one.
	Dialer func() (net.Conn, error)
	// MaxRetries is how many additional attempts a failed round trip
	// gets over a fresh connection (0 = fail fast). Retries apply to
	// transport failures and server-busy rejections, never to
	// application errors like ErrNotFound.
	MaxRetries int
	// Backoff shapes the delay between retries; zero values take the
	// defaults documented on the Backoff type.
	Backoff Backoff
	// Seed makes retry jitter deterministic; zero selects a fixed
	// default so behaviour is reproducible unless varied explicitly.
	Seed int64
	// MaxProtocol caps the protocol version offered at handshake. Zero
	// offers the latest. Setting 1 skips the handshake entirely and
	// speaks the original lock-step protocol — useful against ancient
	// servers and as the serialized baseline in benchmarks.
	MaxProtocol int
	// Obs, when set, registers client-side counters (reconnects, broken
	// connections, retries, degraded hits), an in-flight gauge, and a
	// round-trip latency histogram with the given registry, and records
	// reconnect/downgrade/conn_broken/degraded_hit events to its event
	// log. ClientStats stays authoritative either way.
	Obs *obs.Registry
	// Views, when set, wires membership-view dissemination into the
	// transport (internal/gossip): version-3 connections piggyback the
	// local epoch as a msgViewHint ahead of each request batch, inbound
	// hints are forwarded to Views.NoteViewEpoch, and ViewPull/ViewPush
	// become usable. Nil keeps the wire byte-identical to a pre-gossip
	// client.
	Views ViewSource
	// Trace, when set, mints a trace context at every Open/OpenGroup
	// entry (head-sampled per the tracer's rate) and records the client
	// span into the tracer's ring. Sampled contexts ride version-3
	// connections as msgTraceCtx piggybacks so downstream servers join
	// the same trace; unsampled requests pay one atomic add and send
	// nothing. Nil disables tracing entirely.
	Trace *otrace.Tracer
}

// maxProto normalizes MaxProtocol to a usable version number.
func (cfg ClientConfig) maxProto() int {
	if cfg.MaxProtocol <= 0 || cfg.MaxProtocol > protocolLatest {
		return protocolLatest
	}
	return cfg.MaxProtocol
}

// ClientStats is a snapshot of client cache activity.
type ClientStats struct {
	// Opens counts Open calls that succeeded.
	Opens uint64
	// Hits counts opens served from the local cache; Fetches counts
	// requests sent to the server (== Opens - Hits).
	Hits    uint64
	Fetches uint64
	// FilesReceived and BytesReceived count everything delivered in
	// group replies, demanded and opportunistic.
	FilesReceived uint64
	BytesReceived uint64
	// PrefetchHits counts opens served by a file that arrived as a
	// non-demanded group member and had not been demanded since.
	PrefetchHits uint64
	// Writes counts successful Write calls.
	Writes uint64
	// BrokenConns counts connections poisoned after an I/O or protocol
	// error (each is closed and never reused).
	BrokenConns uint64
	// Reconnects counts successful redials after a broken connection.
	Reconnects uint64
	// Retries counts round-trip attempts beyond each request's first.
	Retries uint64
	// DegradedHits counts cache hits served while the client had no
	// live connection — the degraded mode that keeps local data
	// available through a server outage.
	DegradedHits uint64
}

// clientConn bundles one live connection with its buffered framing. The
// bundle is replaced wholesale on redial so a poisoned stream's buffers
// can never leak stale bytes into a fresh connection.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Client is the client-side cache manager of Figure 2. It is safe for
// concurrent use by multiple goroutines. After the version handshake the
// connection is multiplexed: concurrent opens are pipelined over one
// connection and replies are matched by request ID, so N goroutines
// proceed without serializing on the wire. Against a legacy (version-1)
// server the client falls back to lock-step request/reply. Broken
// connections are redialed with exponential backoff when a Dialer is
// configured.
//
// Locking (see DESIGN.md §10): mu guards the cache state, stats, pending
// history, and the transport slots, and is never held across network I/O
// — Stats, Contains, Close, and cache hits always return promptly even
// while requests are stalled on the wire. connMu serializes connection
// establishment (dial + handshake). reqMu serializes round trips on the
// legacy lock-step path only. rngMu guards the retry-jitter source.
// Order: reqMu / connMu → mux.mu → mu; rngMu is a leaf.
type Client struct {
	cfg ClientConfig
	m   clientMetrics

	mu         sync.Mutex
	conn       *clientConn // v1 or not-yet-negotiated connection; nil while disconnected
	mux        *muxConn    // pipelined (v2/v3) transport; nil while disconnected
	proto      int         // 0 until negotiated, then protocolV1..protocolV3
	ids        *trace.Interner
	lru        *cache.LRU
	data       [][]byte // file contents, indexed by interned FileID
	prefetched []bool   // arrived as non-demanded group member, indexed by FileID
	pending    []string // access history awaiting piggybacking
	// pendingFree is the storage of the last successfully delivered
	// claim, handed back so the backlog regrows without reallocating
	// after every sweep.
	pendingFree []string
	gidScratch  []trace.FileID
	// freeData recycles the backing arrays of evicted cache entries so
	// a steady churn of installs stops allocating once the working set
	// is warm. Entries are exclusively cache-owned (Open/OpenGroup hand
	// out copies), so an evicted backing can be reused immediately.
	freeData [][]byte
	stats    ClientStats
	closed   bool

	// pendingN mirrors len(pending) so claimPending can skip the lock
	// when there is nothing to claim — the common case once a batch's
	// first open has swept the backlog.
	pendingN atomic.Int64

	// Scrap storage recycled across mux connections: the in-flight call
	// map and the poison orphan scratch of a cut connection seed the next
	// one, so a flaky link does not reallocate them per cut.
	scrapMu      sync.Mutex
	scrapCalls   map[uint64]*muxCall
	scrapOrphans []*muxCall

	connMu sync.Mutex // serializes dial + handshake
	reqMu  sync.Mutex // serializes lock-step (v1) round trips

	rngMu sync.Mutex
	rng   *rand.Rand // retry jitter; guarded by rngMu
}

// Dial connects a new client to the server at addr and installs a TCP
// dialer for that address so broken connections can be re-established
// (when cfg.MaxRetries > 0 or on the request after a failure).
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Dialer == nil {
		cfg.Dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := cfg.Dialer()
	if err != nil {
		return nil, fmt.Errorf("fsnet: dial %s: %w", addr, err)
	}
	return NewClient(conn, cfg)
}

// NewClient wraps an established connection (useful for tests and custom
// transports). The protocol handshake runs lazily on the first request.
// Without a cfg.Dialer the client cannot reconnect: the first broken
// connection leaves it permanently degraded.
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 128
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	lru, err := cache.NewLRU(cfg.CacheCapacity)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		cfg: cfg,
		m:   newClientMetrics(cfg.Obs),
		ids: trace.NewInterner(),
		lru: lru,
		rng: rand.New(rand.NewSource(seed)),
	}
	if conn != nil {
		c.conn = &clientConn{conn: conn, r: bufio.NewReaderSize(conn, connBufSize), w: bufio.NewWriterSize(conn, connBufSize)}
	}
	if cfg.maxProto() == protocolV1 {
		c.proto = protocolV1 // no handshake: pure legacy lock-step
	}
	lru.OnEvict(func(id trace.FileID) {
		if d := c.data[id]; cap(d) > 0 && len(c.freeData) < 256 {
			c.freeData = append(c.freeData, d[:0])
		}
		c.data[id] = nil
		c.prefetched[id] = false
	})
	return c, nil
}

// Close shuts the connection down. Open fails afterwards. Close never
// waits on in-flight requests: it closes the live connection, which
// aborts any blocked I/O and fails every pipelined in-flight call.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cc, m := c.conn, c.mux
	c.conn, c.mux = nil, nil
	c.mu.Unlock()
	var err error
	if cc != nil {
		err = cc.conn.Close()
	}
	if m != nil {
		// The reader notices the close and fails all in-flight calls.
		if cerr := m.conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats returns a snapshot of client activity.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Contains reports whether path is in the local cache.
func (c *Client) Contains(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ids.Lookup(path)
	return ok && c.lru.Contains(id)
}

// Connected reports whether the client currently holds a live (not
// poisoned) connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil || c.mux != nil
}

// ProtocolVersion returns the negotiated protocol version: 0 before the
// first handshake, then 1 (lock-step), 2 (pipelined), or 3 (pipelined
// with streamed group replies).
func (c *Client) ProtocolVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proto
}

// ensureDense grows the FileID-indexed data/prefetched slices to cover id.
// Interned IDs are dense and small, so these stay proportional to the
// number of distinct paths seen, and indexing them replaces two map
// lookups on the open hot path. Called with mu held.
func (c *Client) ensureDense(id trace.FileID) {
	for int(id) >= len(c.data) {
		c.data = append(c.data, nil)
		c.prefetched = append(c.prefetched, false)
	}
}

// Open returns the contents of path, from the local cache when possible,
// otherwise via a group fetch from the server. Cache hits never touch the
// network, so they keep succeeding while the server is unreachable.
func (c *Client) Open(path string) ([]byte, error) {
	return c.OpenInto(path, nil)
}

// OpenInto is Open with a caller-supplied destination buffer: the result
// is appended to buf[:0] and the (possibly regrown) slice returned. A
// caller that reuses the same buffer across opens amortizes the per-open
// copy allocation away entirely once the buffer has grown to the largest
// file it sees. Passing nil behaves exactly like Open.
func (c *Client) OpenInto(path string, buf []byte) ([]byte, error) {
	if path == "" || len(path) > maxPath {
		return nil, fmt.Errorf("fsnet: invalid path %q", path)
	}
	// Trace entry point: one atomic add when a tracer is wired, nothing
	// at all otherwise. The clock is read only for sampled requests, so
	// the unsampled hot path stays identical to the untraced one.
	tctx := c.cfg.Trace.Root()
	var tstart time.Time
	if tctx.Sampled {
		tstart = time.Now()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	id := c.ids.Intern(path)
	c.ensureDense(id)
	if !c.cfg.DisablePiggyback && len(c.pending) < maxStatPaths {
		c.appendPending(path)
	}
	if c.lru.Contains(id) {
		c.stats.Opens++
		c.stats.Hits++
		degraded := c.conn == nil && c.mux == nil
		if degraded {
			c.stats.DegradedHits++
		}
		if c.prefetched[id] {
			c.stats.PrefetchHits++
			c.prefetched[id] = false
		}
		c.lru.Touch(id)
		out := append(buf[:0], c.data[id]...)
		c.mu.Unlock()
		if degraded {
			c.m.degradedHits.Inc()
			c.m.events.Record("degraded_hit", obs.F("path", path))
		}
		if tctx.Sampled {
			c.cfg.Trace.Record(tctx, "client_hit", path, tstart, time.Since(tstart))
		}
		return out, nil
	}
	c.mu.Unlock()

	resp, g, err := c.fetch(path, tctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.stats.Opens++
	c.stats.Fetches++
	if g != nil {
		c.installViews(id, g)
	} else {
		c.install(id, resp)
	}
	out := append(buf[:0], c.data[id]...)
	c.mu.Unlock()
	if g != nil {
		g.recycle()
	}
	if tctx.Sampled {
		c.cfg.Trace.Record(tctx, "client_open", path, tstart, time.Since(tstart))
	}
	return out, nil
}

// OpenGroup fetches path from the server and returns the entire group
// reply — the demanded file first, then its opportunistically fetched
// members — installing the group into the local cache exactly like Open.
// Unlike Open it never answers from the local cache: the cluster tier
// uses it to stage a whole remote group in one peer hop, and it must see
// the owner's current group, not a stale local copy. The returned slices
// are the caller's to keep.
func (c *Client) OpenGroup(path string) ([]GroupFile, error) {
	return c.OpenGroupCtx(path, c.cfg.Trace.Root())
}

// OpenGroupCtx is OpenGroup under a caller-supplied trace context: the
// cluster tier threads the server-side context of the open it is
// forwarding, so the downstream owner's spans join the original trace
// instead of starting a new one. A zero context traces nothing.
func (c *Client) OpenGroupCtx(path string, tctx otrace.Ctx) ([]GroupFile, error) {
	if path == "" || len(path) > maxPath {
		return nil, fmt.Errorf("fsnet: invalid path %q", path)
	}
	var tstart time.Time
	if tctx.Sampled {
		tstart = time.Now()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	id := c.ids.Intern(path)
	c.ensureDense(id)
	if !c.cfg.DisablePiggyback && len(c.pending) < maxStatPaths {
		c.appendPending(path)
	}
	c.mu.Unlock()

	resp, g, err := c.fetch(path, tctx)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.stats.Opens++
	c.stats.Fetches++
	if g != nil {
		ids := c.installViews(id, g)
		out := make([]GroupFile, len(ids))
		for i, mid := range ids {
			data := make([]byte, len(g.datas[i]))
			copy(data, g.datas[i])
			// The interner owns the path string, so no per-member
			// allocation here.
			out[i] = GroupFile{Path: c.ids.Path(mid), Data: data}
		}
		c.mu.Unlock()
		g.recycle()
		if tctx.Sampled {
			c.cfg.Trace.Record(tctx, "client_open_group", path, tstart, time.Since(tstart))
		}
		return out, nil
	}
	c.install(id, resp)
	out := make([]GroupFile, len(resp.Files))
	for i, f := range resp.Files {
		// The cache owns resp's slices after install; hand the caller
		// copies so neither side can corrupt the other.
		data := make([]byte, len(f.Data))
		copy(data, f.Data)
		out[i] = GroupFile{Path: f.Path, Data: data}
	}
	c.mu.Unlock()
	if tctx.Sampled {
		c.cfg.Trace.Record(tctx, "client_open_group", path, tstart, time.Since(tstart))
	}
	return out, nil
}

// NoteAccess appends externally observed opens — e.g. a cluster node
// relaying a downstream client's piggybacked history — to the history
// this client piggybacks on its next fetch, preserving order. Entries
// beyond the protocol limit are dropped (the next claim also trims
// oldest-first), so a flood cannot grow the backlog without bound.
func (c *Client) NoteAccess(paths ...string) {
	if c.cfg.DisablePiggyback {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range paths {
		if p == "" || len(p) > maxPath {
			continue
		}
		if len(c.pending) >= maxStatPaths {
			return
		}
		c.appendPending(p)
	}
}

// Handoff streams one drained group to the server: the anchor path plus
// its learned members, which the server installs into its successor
// metadata and stages into its cache — the graceful-drain transfer of
// the cluster tier (a departing owner calls this once per owned group,
// addressed to the group's next owner). Handoffs are idempotent
// metadata installs, so transport failures are retried like opens.
func (c *Client) Handoff(anchor string, members []string) error {
	if anchor == "" || len(anchor) > maxPath {
		return fmt.Errorf("fsnet: invalid path %q", anchor)
	}
	if len(members) == 0 || len(members) > maxGroup {
		return fmt.Errorf("fsnet: handoff of %d members out of range [1,%d]", len(members), maxGroup)
	}
	for _, p := range members {
		if p == "" || len(p) > maxPath {
			return fmt.Errorf("fsnet: invalid path %q", p)
		}
	}
	payload := encodeHandoffRequest(handoffRequest{Anchor: anchor, Members: members})
	typ, body, _, err := c.roundTrip(msgHandoff, "", payload, otrace.Ctx{})
	if err != nil {
		return err
	}
	defer putFrameBuf(body)
	switch typ {
	case msgHandoffOK:
		return nil
	case msgError:
		e, derr := decodeErrorResponse(body)
		if derr != nil {
			c.poisonCurrent()
			return fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		return fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		c.poisonCurrent()
		return fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// ViewPull asks the server for its membership view (gossip anti-entropy).
// The request carries our own epoch and address, so the responder can
// note us for a symmetric pull-back if we are the newer side. The reply
// is either the responder's full view (members non-nil: it was newer) or
// just its epoch (members nil: it was not newer than the epoch we sent).
// Requires cfg.Views; fails with ErrViewUnsupported against a peer whose
// negotiated protocol predates version 3.
func (c *Client) ViewPull() (epoch uint64, members []string, err error) {
	vs := c.cfg.Views
	if vs == nil {
		return 0, nil, errors.New("fsnet: ViewPull needs cfg.Views")
	}
	payload := appendViewMsg(nil, vs.Epoch(), vs.Self())
	typ, body, _, err := c.roundTrip(msgViewPull, "", payload, otrace.Ctx{})
	if err != nil {
		return 0, nil, err
	}
	defer putFrameBuf(body)
	switch typ {
	case msgViewPush:
		epoch, _, members, derr := decodeViewPush(body)
		if derr != nil {
			c.poisonCurrent()
			return 0, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		if members == nil {
			members = []string{} // non-nil: a pushed empty view is still a view
		}
		return epoch, members, nil
	case msgViewHint:
		epoch, _, derr := decodeViewMsg(body)
		if derr != nil {
			c.poisonCurrent()
			return 0, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		return epoch, nil, nil
	case msgError:
		e, derr := decodeErrorResponse(body)
		if derr != nil {
			c.poisonCurrent()
			return 0, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		return 0, nil, fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		c.poisonCurrent()
		return 0, nil, fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// ViewPush offers a membership view to the server, which validates and
// installs it through its own view source (a stale epoch is not an
// error — the receiver was simply newer). The returned remoteEpoch is
// the receiver's epoch after the install. The pushed view is explicit
// rather than read from cfg.Views because a draining node's goodbye
// pushes a view it deliberately does not install itself. Requires
// cfg.Views; fails with ErrViewUnsupported against a pre-v3 peer.
func (c *Client) ViewPush(epoch uint64, members []string) (remoteEpoch uint64, err error) {
	vs := c.cfg.Views
	if vs == nil {
		return 0, errors.New("fsnet: ViewPush needs cfg.Views")
	}
	if len(members) > maxViewMembers {
		return 0, fmt.Errorf("fsnet: view of %d members exceeds limit %d", len(members), maxViewMembers)
	}
	payload := appendViewPush(nil, epoch, vs.Self(), members)
	typ, body, _, err := c.roundTrip(msgViewPush, "", payload, otrace.Ctx{})
	if err != nil {
		return 0, err
	}
	defer putFrameBuf(body)
	switch typ {
	case msgViewHint:
		remoteEpoch, _, derr := decodeViewMsg(body)
		if derr != nil {
			c.poisonCurrent()
			return 0, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		return remoteEpoch, nil
	case msgError:
		e, derr := decodeErrorResponse(body)
		if derr != nil {
			c.poisonCurrent()
			return 0, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		return 0, fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		c.poisonCurrent()
		return 0, fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// Write stores a whole file on the server (write-through) and refreshes
// the local cached copy if resident. Writes are not access events: the
// grouping model tracks opens (§2.2), so a write does not perturb the
// piggybacked history. Whole-file writes are idempotent, so transport
// failures are retried like opens.
func (c *Client) Write(path string, data []byte) error {
	if path == "" || len(path) > maxPath {
		return fmt.Errorf("fsnet: invalid path %q", path)
	}
	if len(data) > maxFileSize {
		return fmt.Errorf("fsnet: file of %d bytes exceeds limit %d", len(data), maxFileSize)
	}
	payload := encodeWriteRequest(writeRequest{Path: path, Data: data})
	typ, body, _, err := c.roundTrip(msgWrite, "", payload, otrace.Ctx{})
	if err != nil {
		return err
	}
	defer putFrameBuf(body)
	switch typ {
	case msgWriteOK:
		c.mu.Lock()
		defer c.mu.Unlock()
		// Refresh the local copy so our own reads see the write.
		if id, ok := c.ids.Lookup(path); ok && c.lru.Contains(id) {
			cp := make([]byte, len(data))
			copy(cp, data)
			c.data[id] = cp
		}
		c.stats.Writes++
		return nil
	case msgError:
		e, err := decodeErrorResponse(body)
		if err != nil {
			return err
		}
		return fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		// An unexpected reply type means the stream is desynchronized.
		c.poisonCurrent()
		return fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// chunkGroup is a decoded streamed group reply: the pooled chunk buffers
// plus per-member path/data views into them. The views stay valid until
// recycle hands the buffers back to the frame pool.
type chunkGroup struct {
	bufs  [][]byte
	paths [][]byte
	datas [][]byte
}

var chunkGroupPool = sync.Pool{New: func() interface{} { return new(chunkGroup) }}

// recycle returns the chunk buffers to the frame pool and the container
// to its own; the views must not be used afterwards.
func (g *chunkGroup) recycle() {
	for i, b := range g.bufs {
		putFrameBuf(b)
		g.bufs[i] = nil
	}
	for i := range g.paths {
		g.paths[i], g.datas[i] = nil, nil
	}
	g.bufs = nil
	g.paths, g.datas = g.paths[:0], g.datas[:0]
	chunkGroupPool.Put(g)
}

// decodeChunks validates a streamed reply's chunks and wraps them in a
// chunkGroup. On error the chunk buffers are recycled before returning.
func decodeChunks(chunks [][]byte, path string) (*chunkGroup, error) {
	g := chunkGroupPool.Get().(*chunkGroup)
	g.bufs = chunks
	for _, buf := range chunks {
		p, d, err := memberChunkView(buf)
		if err != nil {
			g.recycle()
			return nil, err
		}
		g.paths = append(g.paths, p)
		g.datas = append(g.datas, d)
	}
	if len(g.paths) == 0 {
		g.recycle()
		return nil, errors.New("empty streamed group")
	}
	if string(g.paths[0]) != path {
		first := string(g.paths[0])
		g.recycle()
		return nil, fmt.Errorf("reply leads with %q, want %q", first, path)
	}
	return g, nil
}

// fetch performs one open round trip, retrying per the config. The
// piggybacked history is claimed when the request is written and
// restored if the server demonstrably never processed it (any reply frame
// consumes it): a failed round trip retains the history so the access
// transitions are re-sent — and the server still learns them — on the
// next successful request (§3 metadata quality).
//
// The reply is either a contiguous group (the returned groupResponse) or,
// on a version-3 connection, a streamed one (the returned chunkGroup,
// which the caller recycles after installing).
func (c *Client) fetch(path string, tctx otrace.Ctx) (groupResponse, *chunkGroup, error) {
	typ, body, chunks, err := c.roundTrip(msgOpen, path, nil, tctx)
	if err != nil {
		return groupResponse{}, nil, err
	}
	defer putFrameBuf(body)
	switch typ {
	case msgGroup:
		if chunks != nil {
			g, derr := decodeChunks(chunks, path)
			if derr != nil {
				c.poisonCurrent()
				return groupResponse{}, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
			}
			return groupResponse{}, g, nil
		}
		resp, derr := decodeGroupResponse(body)
		if derr != nil {
			c.poisonCurrent()
			return groupResponse{}, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		if resp.Files[0].Path != path {
			c.poisonCurrent()
			return groupResponse{}, nil, fmt.Errorf("%w: reply leads with %q, want %q", ErrConnBroken, resp.Files[0].Path, path)
		}
		return resp, nil, nil
	case msgError:
		e, derr := decodeErrorResponse(body)
		if derr != nil {
			c.poisonCurrent()
			return groupResponse{}, nil, fmt.Errorf("%w: %v", ErrConnBroken, derr)
		}
		if e.Code == CodeNotFound {
			return groupResponse{}, nil, fmt.Errorf("%w: %s", ErrNotFound, e.Message)
		}
		return groupResponse{}, nil, fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		c.poisonCurrent()
		return groupResponse{}, nil, fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// claimPending atomically takes the pending history for one open of path.
// It returns the Accessed list to send — the claimed history minus a
// trailing entry for the demanded path itself (the server appends the
// demanded open on arrival), capped at the protocol limit by dropping the
// oldest overflow — and the slice to hand to restorePending should the
// attempt fail before the server saw it.
func (c *Client) claimPending(path string) (accessed, claimed []string) {
	// Lock-free fast path: once a flush's first open has swept the
	// backlog, the rest of the batch claims nothing and skips the lock. A
	// concurrent append racing past this check simply rides the next
	// request, which is the contract anyway.
	if c.cfg.DisablePiggyback || c.pendingN.Load() == 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) == 0 {
		return nil, nil
	}
	claimed = c.pending
	c.pending = nil
	c.pendingN.Store(0)
	accessed = claimed
	if n := len(accessed); accessed[n-1] == path {
		accessed = accessed[:n-1]
	}
	if len(accessed) > maxStatPaths {
		// Restores after repeated failures can grow the backlog past the
		// frame limit; keep the newest transitions and forget the oldest
		// so the backlog cannot grow without bound.
		overflow := len(accessed) - maxStatPaths
		accessed = accessed[overflow:]
		claimed = claimed[overflow:]
	}
	return accessed, claimed
}

// appendPending adds one path to the piggyback backlog, reviving the
// recycled claim storage when the backlog is empty. Called with mu held.
func (c *Client) appendPending(path string) {
	if c.pending == nil && c.pendingFree != nil {
		c.pending = c.pendingFree
		c.pendingFree = nil
	}
	c.pending = append(c.pending, path)
	c.pendingN.Add(1)
}

// freePending recycles a claimed history the server has consumed: its
// storage backs the next backlog. String refs are dropped so the recycled
// array does not pin old paths.
func (c *Client) freePending(claimed []string) {
	if cap(claimed) == 0 {
		return
	}
	for i := range claimed {
		claimed[i] = ""
	}
	c.mu.Lock()
	if cap(claimed) > cap(c.pendingFree) {
		c.pendingFree = claimed[:0]
	}
	c.mu.Unlock()
}

// restorePending prepends a claimed history that the server never saw, so
// it rides along with the next successful request. Entries appended by
// opens that ran during the failed round trip are newer and stay behind
// the restored prefix.
func (c *Client) restorePending(claimed []string) {
	if len(claimed) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pendingN.Add(int64(len(claimed)))
	if len(c.pending) == 0 {
		c.pending = claimed
		return
	}
	merged := make([]string, 0, len(claimed)+len(c.pending))
	merged = append(merged, claimed...)
	merged = append(merged, c.pending...)
	c.pending = merged
}

// backoffDelay returns the jittered sleep before retry attempt (0-based).
func (c *Client) backoffDelay(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.cfg.Backoff.delay(attempt, c.rng)
}

// roundTrip performs one request with retries: ensure a live transport
// (handshaking and redialing as needed), send, await the matching reply.
// Transport failures poison the connection and are retried with backoff
// up to cfg.MaxRetries; a msgError carrying CodeBusy (the server's
// MaxConns rejection) is retried the same way. Application errors are
// returned to the caller undisturbed. The returned payload — or, for a
// streamed group reply, each returned chunk — aliases a pooled buffer;
// the caller recycles them with putFrameBuf after decoding.
func (c *Client) roundTrip(reqType uint8, path string, payload []byte, tctx otrace.Ctx) (uint8, []byte, [][]byte, error) {
	if c.m.inflight != nil {
		c.m.inflight.Add(1)
		start := time.Now()
		defer func() {
			c.m.callLat.ObserveDuration(time.Since(start))
			c.m.inflight.Add(-1)
		}()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoffDelay(attempt - 1))
			c.mu.Lock()
			closed := c.closed
			if !closed {
				c.stats.Retries++
			}
			c.mu.Unlock()
			if closed {
				return 0, nil, nil, errClientClosed
			}
			c.m.retries.Inc()
		}
		m, cc, err := c.transport()
		if err != nil {
			if errors.Is(err, errClientClosed) || attempt >= c.cfg.MaxRetries {
				return 0, nil, nil, err
			}
			lastErr = err
			continue
		}
		var typ uint8
		var body []byte
		var chunks [][]byte
		var claimed []string
		if m != nil {
			typ, body, chunks, claimed, err = c.callMux(m, reqType, path, payload, tctx)
		} else {
			// Lock-step (v1) peers predate trace frames; the context is
			// negotiated away exactly like view frames.
			typ, body, claimed, err = c.callV1(cc, reqType, path, payload)
		}
		if err != nil {
			// The poisoning path already restored any claimed history.
			lastErr = err
			if errors.Is(err, errClientClosed) || errors.Is(err, ErrViewUnsupported) || attempt >= c.cfg.MaxRetries {
				// ErrViewUnsupported is terminal: the peer's negotiated
				// protocol has no view frames, and a retry renegotiates
				// the same version.
				return 0, nil, nil, lastErr
			}
			continue
		}
		if typ == msgError {
			if e, derr := decodeErrorResponse(body); derr == nil && e.Code == CodeBusy {
				// Accept-limit rejection: the server closes the connection
				// after this reply and never processed the request, so the
				// claimed history goes back on the backlog before backoff.
				putFrameBuf(body)
				c.restorePending(claimed)
				busy := fmt.Errorf("%w: server busy: %s", ErrConnBroken, e.Message)
				if m != nil {
					m.poison(busy)
				} else {
					c.poison(cc)
				}
				lastErr = busy
				if attempt >= c.cfg.MaxRetries {
					return 0, nil, nil, lastErr
				}
				continue
			}
		}
		// Any non-busy reply means the server consumed the piggybacked
		// history; its storage can back the next backlog.
		c.freePending(claimed)
		return typ, body, chunks, nil
	}
}

// callMux performs one pipelined call over the multiplexed transport.
func (c *Client) callMux(m *muxConn, reqType uint8, path string, payload []byte, tctx otrace.Ctx) (uint8, []byte, [][]byte, []string, error) {
	if isViewMsg(reqType) && m.ver < protocolV3 {
		// A version-2 peer has no view frames; sending one would draw an
		// "unknown message type" error and desynchronize nothing, but the
		// contract is stronger: pre-v3 peers never see gossip traffic.
		return 0, nil, nil, nil, ErrViewUnsupported
	}
	call, err := m.enqueue(reqType, path, payload, tctx)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	var res muxResult
	if c.cfg.Timeout > 0 {
		timer := time.NewTimer(c.cfg.Timeout)
		select {
		case res = <-call.done:
			timer.Stop()
		case <-timer.C:
			// The stream position is unknown after a timeout, so the whole
			// connection is poisoned — which guarantees a result below.
			m.poison(fmt.Errorf("%w: request timed out after %v", ErrConnBroken, c.cfg.Timeout))
			res = <-call.done
		}
	} else {
		res = <-call.done
	}
	// Exactly one result is ever delivered, so the call is free for reuse
	// once its fields of interest are copied out.
	claimed := call.claimed
	putMuxCall(call)
	if res.err != nil {
		return 0, nil, nil, nil, res.err
	}
	return res.typ, res.payload, res.chunks, claimed, nil
}

// callV1 performs one lock-step round trip over the legacy transport.
// reqMu serializes these; it is never held by the pipelined path.
func (c *Client) callV1(cc *clientConn, reqType uint8, path string, payload []byte) (uint8, []byte, []string, error) {
	if isViewMsg(reqType) {
		// Lock-step peers predate view frames entirely.
		return 0, nil, nil, ErrViewUnsupported
	}
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	var claimed []string
	var start time.Time
	if reqType == msgOpen {
		start = time.Now()
		var accessed []string
		accessed, claimed = c.claimPending(path)
		enc := appendOpenRequest(getEncodeBuf(), path, accessed)
		defer putFrameBuf(enc)
		payload = enc
	}
	if c.cfg.Timeout > 0 {
		_ = cc.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	}
	err := writeFrame(cc.w, reqType, payload)
	var typ uint8
	var body []byte
	if err == nil {
		typ, body, err = readFrame(cc.r)
	}
	if err != nil {
		c.restorePending(claimed)
		c.poison(cc)
		return 0, nil, nil, fmt.Errorf("%w: %v", ErrConnBroken, err)
	}
	if c.cfg.Timeout > 0 {
		_ = cc.conn.SetDeadline(time.Time{})
	}
	if !start.IsZero() {
		// Lock-step replies arrive whole, so first byte ≈ whole reply.
		c.m.ttfb.ObserveDuration(time.Since(start))
	}
	return typ, body, claimed, nil
}

// transport returns the live transport — the mux for a version-2
// connection, or the lock-step clientConn for version 1 — establishing
// one (dial + handshake) when the slot is empty. connMu makes sure only
// one goroutine dials while the rest wait and then share the result.
func (c *Client) transport() (*muxConn, *clientConn, error) {
	if m, cc, ok, err := c.liveTransport(); ok || err != nil {
		return m, cc, err
	}
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if m, cc, ok, err := c.liveTransport(); ok || err != nil {
		return m, cc, err
	}

	// Take the not-yet-negotiated connection if there is one (the conn
	// NewClient wrapped); otherwise this is a redial. The candidate stays
	// published in c.conn throughout the handshake so a concurrent Close
	// can abort a blocked negotiation by closing the socket.
	c.mu.Lock()
	cc := c.conn
	proto := c.proto
	c.mu.Unlock()
	countRedial := cc == nil
	for {
		if cc == nil {
			if c.cfg.Dialer == nil {
				return nil, nil, fmt.Errorf("%w: no dialer configured", ErrConnBroken)
			}
			raw, err := c.cfg.Dialer()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: redial: %v", ErrConnBroken, err)
			}
			cc = &clientConn{conn: raw, r: bufio.NewReaderSize(raw, connBufSize), w: bufio.NewWriterSize(raw, connBufSize)}
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				_ = raw.Close()
				return nil, nil, errClientClosed
			}
			c.conn = cc
			c.mu.Unlock()
		}
		if proto == protocolV1 {
			v1, err := c.installV1(cc, countRedial)
			return nil, v1, err
		}
		ver, err := c.handshake(cc)
		switch {
		case err == nil && ver >= protocolV2:
			m, err := c.installMux(cc, countRedial, ver)
			return m, nil, err
		case err == nil:
			// The server negotiated version 1 explicitly; the same
			// connection continues in lock-step mode.
			c.setProto(protocolV1)
			v1, ierr := c.installV1(cc, countRedial)
			return nil, v1, ierr
		case errors.Is(err, errLegacyServer):
			// Pre-handshake peer: it answered the hello with "unknown
			// message type" and closed the connection. Remember version 1
			// and redial; the downgrade redial is connection
			// establishment, not a reconnect or a broken connection, so
			// neither stat moves.
			c.m.events.Record("downgrade", obs.F("proto", "1"))
			c.setProto(protocolV1)
			proto = protocolV1
			c.dropConn(cc)
			cc = nil
			if c.cfg.Dialer == nil {
				return nil, nil, fmt.Errorf("%w: legacy server and no dialer to redial", ErrConnBroken)
			}
			continue
		default:
			// poison counts the broken connection only if the candidate is
			// still in the slot — a concurrent Close already emptied it.
			c.poison(cc)
			return nil, nil, err
		}
	}
}

// liveTransport returns the installed transport, if any. ok reports
// whether one was found.
func (c *Client) liveTransport() (*muxConn, *clientConn, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, false, errClientClosed
	}
	if c.mux != nil {
		return c.mux, nil, true, nil
	}
	if c.proto == protocolV1 && c.conn != nil {
		return nil, c.conn, true, nil
	}
	return nil, nil, false, nil
}

func (c *Client) setProto(p int) {
	c.mu.Lock()
	c.proto = p
	c.mu.Unlock()
}

// handshake offers our maximum protocol version and decodes the server's
// answer. Called with connMu held, before the connection is installed.
func (c *Client) handshake(cc *clientConn) (int, error) {
	if c.cfg.Timeout > 0 {
		_ = cc.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		defer cc.conn.SetDeadline(time.Time{})
	}
	if err := writeHello(cc.w, msgHello, c.cfg.maxProto()); err != nil {
		return 0, fmt.Errorf("%w: handshake: %v", ErrConnBroken, err)
	}
	typ, payload, err := readFrame(cc.r)
	if err != nil {
		return 0, fmt.Errorf("%w: handshake: %v", ErrConnBroken, err)
	}
	defer putFrameBuf(payload)
	switch typ {
	case msgHelloOK:
		ver, derr := decodeHello(payload)
		if derr != nil {
			return 0, fmt.Errorf("%w: handshake: %v", ErrConnBroken, derr)
		}
		if ver > c.cfg.maxProto() {
			return 0, fmt.Errorf("%w: server negotiated unoffered version %d", ErrConnBroken, ver)
		}
		return ver, nil
	case msgError:
		e, derr := decodeErrorResponse(payload)
		if derr != nil {
			return 0, fmt.Errorf("%w: handshake: %v", ErrConnBroken, derr)
		}
		if e.Code == CodeBadRequest {
			return 0, errLegacyServer
		}
		return 0, fmt.Errorf("%w: handshake rejected: server error %d: %s", ErrConnBroken, e.Code, e.Message)
	default:
		return 0, fmt.Errorf("%w: unexpected handshake reply type %d", ErrConnBroken, typ)
	}
}

// installV1 publishes a lock-step connection. Called with connMu held.
func (c *Client) installV1(cc *clientConn, countRedial bool) (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = cc.conn.Close()
		return nil, errClientClosed
	}
	c.proto = protocolV1
	c.conn = cc
	if countRedial {
		c.stats.Reconnects++
	}
	c.mu.Unlock()
	if countRedial {
		c.noteReconnect(cc.conn)
	}
	return cc, nil
}

// noteReconnect mirrors a successful redial into the obs registry.
// Called outside mu so a slow event sink never stalls the cache.
func (c *Client) noteReconnect(conn net.Conn) {
	c.m.reconnects.Inc()
	addr := ""
	if ra := conn.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	c.m.events.Record("reconnect", obs.F("addr", addr))
}

// installMux publishes a pipelined connection (negotiated version ver,
// which is 2 or 3) and starts its goroutines. Called with connMu held.
func (c *Client) installMux(cc *clientConn, countRedial bool, ver int) (*muxConn, error) {
	m := newMuxConn(c, cc, ver)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = cc.conn.Close()
		return nil, errClientClosed
	}
	c.proto = ver
	if c.conn == cc {
		c.conn = nil // the candidate graduates from the v1 slot to the mux
	}
	c.mux = m
	if countRedial {
		c.stats.Reconnects++
	}
	c.mu.Unlock()
	if countRedial {
		c.noteReconnect(cc.conn)
	}
	m.start()
	return m, nil
}

// dropConn closes a connection and empties the slot without counting a
// broken connection — used for the legacy-server downgrade, which is
// connection establishment rather than a failure.
func (c *Client) dropConn(cc *clientConn) {
	_ = cc.conn.Close()
	c.mu.Lock()
	if c.conn == cc {
		c.conn = nil
	}
	c.mu.Unlock()
}

// poison closes a broken lock-step connection and empties the slot so
// nothing ever reuses its (possibly desynchronized) stream.
func (c *Client) poison(cc *clientConn) {
	_ = cc.conn.Close()
	c.mu.Lock()
	counted := c.conn == cc
	if counted {
		c.conn = nil
		c.stats.BrokenConns++
	}
	c.mu.Unlock()
	if counted {
		c.m.brokenConns.Inc()
		c.m.events.Record("conn_broken", obs.F("transport", "v1"))
	}
}

// dropMux empties the pipelined-connection slot after a poison. The
// deliberate teardown in Close empties the slot first, so a poison racing
// with Close does not count a broken connection.
func (c *Client) dropMux(m *muxConn) {
	c.mu.Lock()
	counted := false
	if c.mux == m {
		c.mux = nil
		if !c.closed {
			c.stats.BrokenConns++
			counted = true
		}
	}
	c.mu.Unlock()
	if counted {
		c.m.brokenConns.Inc()
		c.m.events.Record("conn_broken", obs.F("transport", "v2"))
	}
}

// poisonCurrent poisons whatever transport is currently installed; used
// when a decoded reply reveals desynchronization after roundTrip returned.
func (c *Client) poisonCurrent() {
	c.mu.Lock()
	cc, m := c.conn, c.mux
	c.mu.Unlock()
	if m != nil {
		m.poison(fmt.Errorf("%w: desynchronized reply stream", ErrConnBroken))
	}
	if cc != nil {
		c.poison(cc)
	}
}

// takeCallScrap hands out the recycled in-flight map for a new mux
// connection, or a fresh one.
func (c *Client) takeCallScrap() map[uint64]*muxCall {
	c.scrapMu.Lock()
	calls := c.scrapCalls
	c.scrapCalls = nil
	c.scrapMu.Unlock()
	if calls == nil {
		calls = make(map[uint64]*muxCall)
	}
	return calls
}

// takeOrphanScrap hands out the recycled poison orphan scratch (possibly
// nil; append grows it).
func (c *Client) takeOrphanScrap() []*muxCall {
	c.scrapMu.Lock()
	s := c.scrapOrphans
	c.scrapOrphans = nil
	c.scrapMu.Unlock()
	return s
}

// storeScrap stashes a poisoned connection's cleared call map and orphan
// scratch for the replacement connection.
func (c *Client) storeScrap(calls map[uint64]*muxCall, orphans []*muxCall) {
	clear(calls)
	c.scrapMu.Lock()
	if c.scrapCalls == nil {
		c.scrapCalls = calls
	}
	if cap(orphans) > cap(c.scrapOrphans) {
		c.scrapOrphans = orphans
	}
	c.scrapMu.Unlock()
}

// TTFB returns a snapshot of the fetch time-to-first-byte histogram:
// enqueue until the first reply frame of the request (the first member
// chunk of a streamed reply, the whole group otherwise). Recorded for
// every fetch regardless of whether an obs registry is configured.
func (c *Client) TTFB() obs.HistogramSnapshot {
	return c.m.ttfb.Snapshot()
}

// setData copies src into id's cache slot, reusing the slot's existing
// backing or a recycled one from the eviction free list before falling
// back to the allocator. Called with mu held.
func (c *Client) setData(id trace.FileID, src []byte) {
	buf := c.data[id]
	if buf == nil && len(c.freeData) > 0 {
		buf = c.freeData[len(c.freeData)-1]
		c.freeData = c.freeData[:len(c.freeData)-1]
	}
	c.data[id] = append(buf[:0], src...)
}

// installViews applies the aggregating-cache placement for a streamed
// group, interning member paths straight from the chunk views (no string
// materialization for already-known paths) and copying each member's
// contents once, into the cache's own buffer. Returns the member IDs,
// valid until mu is released. Called with mu held.
func (c *Client) installViews(id trace.FileID, g *chunkGroup) []trace.FileID {
	ids := c.gidScratch[:0]
	for i := range g.paths {
		mid := c.ids.InternBytes(g.paths[i])
		c.ensureDense(mid)
		ids = append(ids, mid)
		c.stats.FilesReceived++
		c.stats.BytesReceived += uint64(len(g.datas[i]))
	}
	c.gidScratch = ids

	for c.lru.Len() >= c.cfg.CacheCapacity {
		if _, ok := c.lru.EvictVictimExceptIDs(ids); ok {
			continue
		}
		if _, ok := c.lru.EvictVictim(); !ok {
			break
		}
	}
	c.lru.InsertHead(id)
	c.setData(id, g.datas[0])
	c.prefetched[id] = false

	for i := 1; i < len(ids); i++ {
		mid := ids[i]
		if c.lru.Contains(mid) {
			c.setData(mid, g.datas[i]) // refresh contents
			continue
		}
		if c.lru.Len() >= c.cfg.CacheCapacity {
			if _, ok := c.lru.EvictVictimExceptIDs(ids); !ok {
				break
			}
		}
		c.lru.InsertTail(mid)
		c.setData(mid, g.datas[i])
		c.prefetched[mid] = true
	}
	return ids
}

// install applies the aggregating-cache placement: demanded file at the
// head, other members appended at the tail, never evicting the incoming
// group's own files to make room. Called with mu held.
func (c *Client) install(id trace.FileID, resp groupResponse) {
	memberIDs := make([]trace.FileID, len(resp.Files))
	for i, f := range resp.Files {
		memberIDs[i] = c.ids.Intern(f.Path)
		c.ensureDense(memberIDs[i])
		c.stats.FilesReceived++
		c.stats.BytesReceived += uint64(len(f.Data))
	}

	for c.lru.Len() >= c.cfg.CacheCapacity {
		if _, ok := c.lru.EvictVictimExceptIDs(memberIDs); ok {
			continue
		}
		if _, ok := c.lru.EvictVictim(); !ok {
			break
		}
	}
	c.lru.InsertHead(id)
	c.data[id] = resp.Files[0].Data
	c.prefetched[id] = false

	for i := 1; i < len(resp.Files); i++ {
		mid := memberIDs[i]
		if c.lru.Contains(mid) {
			c.data[mid] = resp.Files[i].Data // refresh contents
			continue
		}
		if c.lru.Len() >= c.cfg.CacheCapacity {
			if _, ok := c.lru.EvictVictimExceptIDs(memberIDs); !ok {
				break
			}
		}
		c.lru.InsertTail(mid)
		c.data[mid] = resp.Files[i].Data
		c.prefetched[mid] = true
	}
}
