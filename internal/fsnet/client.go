package fsnet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"aggcache/internal/cache"
	"aggcache/internal/trace"
)

// ClientConfig parameterizes a client cache manager.
type ClientConfig struct {
	// CacheCapacity is the local whole-file cache size (default 128).
	CacheCapacity int
	// DisablePiggyback stops the client from forwarding its access
	// history (hits included) to the server with each request. By
	// default the history is piggybacked, giving the server unfiltered
	// metadata (§3); disabling it models the uncooperative client of
	// §4.3.
	DisablePiggyback bool
}

// ClientStats is a snapshot of client cache activity.
type ClientStats struct {
	// Opens counts Open calls that succeeded.
	Opens uint64
	// Hits counts opens served from the local cache; Fetches counts
	// requests sent to the server (== Opens - Hits).
	Hits    uint64
	Fetches uint64
	// FilesReceived and BytesReceived count everything delivered in
	// group replies, demanded and opportunistic.
	FilesReceived uint64
	BytesReceived uint64
	// PrefetchHits counts opens served by a file that arrived as a
	// non-demanded group member and had not been demanded since.
	PrefetchHits uint64
	// Writes counts successful Write calls.
	Writes uint64
}

// Client is the client-side cache manager of Figure 2. It is safe for
// concurrent use by multiple goroutines; requests are serialized over one
// connection.
type Client struct {
	cfg ClientConfig

	mu         sync.Mutex
	conn       net.Conn
	r          *bufio.Reader
	w          *bufio.Writer
	ids        *trace.Interner
	lru        *cache.LRU
	data       map[trace.FileID][]byte
	prefetched map[trace.FileID]bool
	pending    []string // access history awaiting piggybacking
	stats      ClientStats
	closed     bool
}

// Dial connects a new client to the server at addr.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fsnet: dial %s: %w", addr, err)
	}
	return NewClient(conn, cfg)
}

// NewClient wraps an established connection (useful for tests and custom
// transports).
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 128
	}
	lru, err := cache.NewLRU(cfg.CacheCapacity)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:        cfg,
		conn:       conn,
		r:          bufio.NewReader(conn),
		w:          bufio.NewWriter(conn),
		ids:        trace.NewInterner(),
		lru:        lru,
		data:       make(map[trace.FileID][]byte),
		prefetched: make(map[trace.FileID]bool),
	}
	lru.OnEvict(func(id trace.FileID) {
		delete(c.data, id)
		delete(c.prefetched, id)
	})
	return c, nil
}

// Close shuts the connection down. Open fails afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Stats returns a snapshot of client activity.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Contains reports whether path is in the local cache.
func (c *Client) Contains(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ids.Lookup(path)
	return ok && c.lru.Contains(id)
}

// Open returns the contents of path, from the local cache when possible,
// otherwise via a group fetch from the server.
func (c *Client) Open(path string) ([]byte, error) {
	if path == "" || len(path) > maxPath {
		return nil, fmt.Errorf("fsnet: invalid path %q", path)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("fsnet: client closed")
	}

	id := c.ids.Intern(path)
	if !c.cfg.DisablePiggyback && len(c.pending) < maxStatPaths {
		c.pending = append(c.pending, path)
	}
	if c.lru.Contains(id) {
		c.stats.Opens++
		c.stats.Hits++
		if c.prefetched[id] {
			c.stats.PrefetchHits++
			delete(c.prefetched, id)
		}
		c.lru.Touch(id)
		out := make([]byte, len(c.data[id]))
		copy(out, c.data[id])
		return out, nil
	}

	resp, err := c.fetch(path)
	if err != nil {
		return nil, err
	}
	c.stats.Opens++
	c.stats.Fetches++
	c.install(id, resp)
	out := make([]byte, len(c.data[id]))
	copy(out, c.data[id])
	return out, nil
}

// Write stores a whole file on the server (write-through) and refreshes
// the local cached copy if resident. Writes are not access events: the
// grouping model tracks opens (§2.2), so a write does not perturb the
// piggybacked history.
func (c *Client) Write(path string, data []byte) error {
	if path == "" || len(path) > maxPath {
		return fmt.Errorf("fsnet: invalid path %q", path)
	}
	if len(data) > maxFileSize {
		return fmt.Errorf("fsnet: file of %d bytes exceeds limit %d", len(data), maxFileSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("fsnet: client closed")
	}
	if err := writeFrame(c.w, msgWrite, encodeWriteRequest(writeRequest{Path: path, Data: data})); err != nil {
		return fmt.Errorf("fsnet: send: %w", err)
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return fmt.Errorf("fsnet: receive: %w", err)
	}
	switch typ {
	case msgWriteOK:
		// Refresh the local copy so our own reads see the write.
		if id, ok := c.ids.Lookup(path); ok && c.lru.Contains(id) {
			cp := make([]byte, len(data))
			copy(cp, data)
			c.data[id] = cp
		}
		c.stats.Writes++
		return nil
	case msgError:
		e, err := decodeErrorResponse(payload)
		if err != nil {
			return err
		}
		return fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		return fmt.Errorf("fsnet: unexpected reply type %d", typ)
	}
}

// fetch performs the request round trip. Called with mu held.
func (c *Client) fetch(path string) (groupResponse, error) {
	req := openRequest{Path: path}
	if !c.cfg.DisablePiggyback {
		// The history includes this open itself (appended by Open);
		// the server learns everything up to but excluding the
		// demanded path, then the demanded open, so exclude the final
		// entry here.
		if n := len(c.pending); n > 0 && c.pending[n-1] == path {
			req.Accessed = c.pending[:n-1]
		} else {
			req.Accessed = c.pending
		}
	}
	if err := writeFrame(c.w, msgOpen, encodeOpenRequest(req)); err != nil {
		return groupResponse{}, fmt.Errorf("fsnet: send: %w", err)
	}
	c.pending = c.pending[:0]

	typ, payload, err := readFrame(c.r)
	if err != nil {
		return groupResponse{}, fmt.Errorf("fsnet: receive: %w", err)
	}
	switch typ {
	case msgGroup:
		resp, err := decodeGroupResponse(payload)
		if err != nil {
			return groupResponse{}, err
		}
		if resp.Files[0].Path != path {
			return groupResponse{}, fmt.Errorf("fsnet: reply leads with %q, want %q", resp.Files[0].Path, path)
		}
		return resp, nil
	case msgError:
		e, err := decodeErrorResponse(payload)
		if err != nil {
			return groupResponse{}, err
		}
		if e.Code == CodeNotFound {
			return groupResponse{}, fmt.Errorf("%w: %s", ErrNotFound, e.Message)
		}
		return groupResponse{}, fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		return groupResponse{}, fmt.Errorf("fsnet: unexpected reply type %d", typ)
	}
}

// install applies the aggregating-cache placement: demanded file at the
// head, other members appended at the tail, never evicting the incoming
// group's own files to make room. Called with mu held.
func (c *Client) install(id trace.FileID, resp groupResponse) {
	protected := make(map[trace.FileID]bool, len(resp.Files))
	memberIDs := make([]trace.FileID, len(resp.Files))
	for i, f := range resp.Files {
		memberIDs[i] = c.ids.Intern(f.Path)
		protected[memberIDs[i]] = true
		c.stats.FilesReceived++
		c.stats.BytesReceived += uint64(len(f.Data))
	}

	for c.lru.Len() >= c.cfg.CacheCapacity {
		if _, ok := c.lru.EvictVictimExcept(protected); ok {
			continue
		}
		if _, ok := c.lru.EvictVictim(); !ok {
			break
		}
	}
	c.lru.InsertHead(id)
	c.data[id] = resp.Files[0].Data
	delete(c.prefetched, id)

	for i := 1; i < len(resp.Files); i++ {
		mid := memberIDs[i]
		if c.lru.Contains(mid) {
			c.data[mid] = resp.Files[i].Data // refresh contents
			continue
		}
		if c.lru.Len() >= c.cfg.CacheCapacity {
			if _, ok := c.lru.EvictVictimExcept(protected); !ok {
				break
			}
		}
		c.lru.InsertTail(mid)
		c.data[mid] = resp.Files[i].Data
		c.prefetched[mid] = true
	}
}
