package fsnet

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"aggcache/internal/cache"
	"aggcache/internal/trace"
)

// ErrConnBroken marks a connection poisoned by an I/O or protocol error.
// A frame-level failure may leave the stream desynchronized, so a broken
// connection is closed and never reused; the next request redials when a
// Dialer is configured, otherwise it fails with this error.
var ErrConnBroken = errors.New("fsnet: connection broken")

var errClientClosed = errors.New("fsnet: client closed")

// Backoff is an exponential backoff schedule with jitter, governing the
// delay before each retry of a failed round trip.
type Backoff struct {
	// Base is the delay before the first retry (default 10ms).
	Base time.Duration
	// Max caps the grown delay (default 1s).
	Max time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter adds a uniform random fraction of the delay in [0, Jitter)
	// to avoid synchronized retry storms. The zero-value Backoff gets
	// 0.2; an explicitly configured schedule with Jitter 0 stays
	// jitter-free (deterministic retries for tests).
	Jitter float64
}

func (b Backoff) withDefaults() Backoff {
	if b == (Backoff{}) {
		b.Jitter = 0.2
	}
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	return b
}

// delay returns the sleep before retry attempt (0-based), jittered.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d += d * b.Jitter * rng.Float64()
	}
	if d > float64(b.Max)*(1+b.Jitter) {
		d = float64(b.Max) * (1 + b.Jitter)
	}
	return time.Duration(d)
}

// ClientConfig parameterizes a client cache manager.
type ClientConfig struct {
	// CacheCapacity is the local whole-file cache size (default 128).
	CacheCapacity int
	// DisablePiggyback stops the client from forwarding its access
	// history (hits included) to the server with each request. By
	// default the history is piggybacked, giving the server unfiltered
	// metadata (§3); disabling it models the uncooperative client of
	// §4.3.
	DisablePiggyback bool
	// Timeout bounds each request round trip via SetDeadline on the
	// connection. Zero means no deadline: a stalled server can block a
	// request indefinitely.
	Timeout time.Duration
	// Dialer re-establishes the connection after a failure. Dial
	// installs a TCP dialer for its address automatically; NewClient
	// leaves it nil (no reconnection) unless the caller provides one.
	Dialer func() (net.Conn, error)
	// MaxRetries is how many additional attempts a failed round trip
	// gets over a fresh connection (0 = fail fast). Retries apply to
	// transport failures and server-busy rejections, never to
	// application errors like ErrNotFound.
	MaxRetries int
	// Backoff shapes the delay between retries; zero values take the
	// defaults documented on the Backoff type.
	Backoff Backoff
	// Seed makes retry jitter deterministic; zero selects a fixed
	// default so behaviour is reproducible unless varied explicitly.
	Seed int64
}

// ClientStats is a snapshot of client cache activity.
type ClientStats struct {
	// Opens counts Open calls that succeeded.
	Opens uint64
	// Hits counts opens served from the local cache; Fetches counts
	// requests sent to the server (== Opens - Hits).
	Hits    uint64
	Fetches uint64
	// FilesReceived and BytesReceived count everything delivered in
	// group replies, demanded and opportunistic.
	FilesReceived uint64
	BytesReceived uint64
	// PrefetchHits counts opens served by a file that arrived as a
	// non-demanded group member and had not been demanded since.
	PrefetchHits uint64
	// Writes counts successful Write calls.
	Writes uint64
	// BrokenConns counts connections poisoned after an I/O or protocol
	// error (each is closed and never reused).
	BrokenConns uint64
	// Reconnects counts successful redials after a broken connection.
	Reconnects uint64
	// Retries counts round-trip attempts beyond each request's first.
	Retries uint64
	// DegradedHits counts cache hits served while the client had no
	// live connection — the degraded mode that keeps local data
	// available through a server outage.
	DegradedHits uint64
}

// clientConn bundles one live connection with its buffered framing. The
// bundle is replaced wholesale on redial so a poisoned stream's buffers
// can never leak stale bytes into a fresh connection.
type clientConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Client is the client-side cache manager of Figure 2. It is safe for
// concurrent use by multiple goroutines; requests are serialized over one
// connection, which is redialed with exponential backoff after failures
// when a Dialer is configured.
//
// Locking: mu guards the cache state, stats, pending history, and the
// connection slot, and is never held across network I/O — Stats,
// Contains, Close, and cache hits always return promptly even while a
// request is stalled on the wire. reqMu serializes round trips and is
// never acquired while holding mu.
type Client struct {
	cfg ClientConfig

	mu         sync.Mutex
	conn       *clientConn // nil while disconnected
	ids        *trace.Interner
	lru        *cache.LRU
	data       map[trace.FileID][]byte
	prefetched map[trace.FileID]bool
	pending    []string // access history awaiting piggybacking
	stats      ClientStats
	closed     bool

	reqMu sync.Mutex
	rng   *rand.Rand // retry jitter; guarded by reqMu
}

// Dial connects a new client to the server at addr and installs a TCP
// dialer for that address so broken connections can be re-established
// (when cfg.MaxRetries > 0 or on the request after a failure).
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	if cfg.Dialer == nil {
		cfg.Dialer = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := cfg.Dialer()
	if err != nil {
		return nil, fmt.Errorf("fsnet: dial %s: %w", addr, err)
	}
	return NewClient(conn, cfg)
}

// NewClient wraps an established connection (useful for tests and custom
// transports). Without a cfg.Dialer the client cannot reconnect: the
// first broken connection leaves it permanently degraded.
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 128
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	lru, err := cache.NewLRU(cfg.CacheCapacity)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{
		cfg:        cfg,
		conn:       &clientConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)},
		ids:        trace.NewInterner(),
		lru:        lru,
		data:       make(map[trace.FileID][]byte),
		prefetched: make(map[trace.FileID]bool),
		rng:        rand.New(rand.NewSource(seed)),
	}
	lru.OnEvict(func(id trace.FileID) {
		delete(c.data, id)
		delete(c.prefetched, id)
	})
	return c, nil
}

// Close shuts the connection down. Open fails afterwards. Close never
// waits on an in-flight request: it closes the live connection, which
// aborts any blocked I/O.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.conn.Close()
	c.conn = nil
	return err
}

// Stats returns a snapshot of client activity.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Contains reports whether path is in the local cache.
func (c *Client) Contains(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ids.Lookup(path)
	return ok && c.lru.Contains(id)
}

// Connected reports whether the client currently holds a live (not
// poisoned) connection.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn != nil
}

// Open returns the contents of path, from the local cache when possible,
// otherwise via a group fetch from the server. Cache hits never touch the
// network, so they keep succeeding while the server is unreachable.
func (c *Client) Open(path string) ([]byte, error) {
	if path == "" || len(path) > maxPath {
		return nil, fmt.Errorf("fsnet: invalid path %q", path)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	id := c.ids.Intern(path)
	if !c.cfg.DisablePiggyback && len(c.pending) < maxStatPaths {
		c.pending = append(c.pending, path)
	}
	if c.lru.Contains(id) {
		c.stats.Opens++
		c.stats.Hits++
		if c.conn == nil {
			c.stats.DegradedHits++
		}
		if c.prefetched[id] {
			c.stats.PrefetchHits++
			delete(c.prefetched, id)
		}
		c.lru.Touch(id)
		out := make([]byte, len(c.data[id]))
		copy(out, c.data[id])
		c.mu.Unlock()
		return out, nil
	}
	c.mu.Unlock()

	resp, err := c.fetch(path)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Opens++
	c.stats.Fetches++
	c.install(id, resp)
	out := make([]byte, len(c.data[id]))
	copy(out, c.data[id])
	return out, nil
}

// Write stores a whole file on the server (write-through) and refreshes
// the local cached copy if resident. Writes are not access events: the
// grouping model tracks opens (§2.2), so a write does not perturb the
// piggybacked history. Whole-file writes are idempotent, so transport
// failures are retried like opens.
func (c *Client) Write(path string, data []byte) error {
	if path == "" || len(path) > maxPath {
		return fmt.Errorf("fsnet: invalid path %q", path)
	}
	if len(data) > maxFileSize {
		return fmt.Errorf("fsnet: file of %d bytes exceeds limit %d", len(data), maxFileSize)
	}
	payload := encodeWriteRequest(writeRequest{Path: path, Data: data})
	typ, body, err := c.exchange(msgWrite, func() ([]byte, int) { return payload, 0 })
	if err != nil {
		return err
	}
	switch typ {
	case msgWriteOK:
		c.mu.Lock()
		defer c.mu.Unlock()
		// Refresh the local copy so our own reads see the write.
		if id, ok := c.ids.Lookup(path); ok && c.lru.Contains(id) {
			cp := make([]byte, len(data))
			copy(cp, data)
			c.data[id] = cp
		}
		c.stats.Writes++
		return nil
	case msgError:
		e, err := decodeErrorResponse(body)
		if err != nil {
			return err
		}
		return fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		// An unexpected reply type means the stream is desynchronized.
		c.poisonCurrent()
		return fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// fetch performs one open round trip, retrying per the config. The
// piggybacked history is only consumed once the server has demonstrably
// received it (any reply frame): a failed round trip retains the history
// so the access transitions are re-sent — and the server still learns
// them — on the next successful request (§3 metadata quality).
func (c *Client) fetch(path string) (groupResponse, error) {
	var sent int
	build := func() ([]byte, int) {
		req, n := c.buildOpenRequest(path)
		sent = n
		return encodeOpenRequest(req), n
	}
	typ, body, err := c.exchange(msgOpen, build)
	if err != nil {
		return groupResponse{}, err
	}
	// The server processed the request (even an error reply records the
	// piggybacked history), so the sent prefix is consumed.
	c.consumePending(sent)
	switch typ {
	case msgGroup:
		resp, err := decodeGroupResponse(body)
		if err != nil {
			c.poisonCurrent()
			return groupResponse{}, fmt.Errorf("%w: %v", ErrConnBroken, err)
		}
		if resp.Files[0].Path != path {
			c.poisonCurrent()
			return groupResponse{}, fmt.Errorf("%w: reply leads with %q, want %q", ErrConnBroken, resp.Files[0].Path, path)
		}
		return resp, nil
	case msgError:
		e, err := decodeErrorResponse(body)
		if err != nil {
			c.poisonCurrent()
			return groupResponse{}, fmt.Errorf("%w: %v", ErrConnBroken, err)
		}
		if e.Code == CodeNotFound {
			return groupResponse{}, fmt.Errorf("%w: %s", ErrNotFound, e.Message)
		}
		return groupResponse{}, fmt.Errorf("fsnet: server error %d: %s", e.Code, e.Message)
	default:
		c.poisonCurrent()
		return groupResponse{}, fmt.Errorf("%w: unexpected reply type %d", ErrConnBroken, typ)
	}
}

// buildOpenRequest snapshots the pending history into a request. It
// returns the number of pending entries the request covers, so a later
// consumePending removes exactly what was sent (entries appended by
// concurrent opens during the round trip are preserved).
func (c *Client) buildOpenRequest(path string) (openRequest, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := openRequest{Path: path}
	n := len(c.pending)
	if !c.cfg.DisablePiggyback && n > 0 {
		// The history includes this open itself (appended by Open); the
		// server learns everything up to but excluding the demanded
		// path, then the demanded open, so exclude the final entry when
		// it is this request's own path.
		hist := c.pending[:n]
		if hist[n-1] == path {
			hist = hist[:n-1]
		}
		req.Accessed = append([]string(nil), hist...)
	}
	return req, n
}

// consumePending drops the first n pending entries (those covered by a
// round trip the server acknowledged).
func (c *Client) consumePending(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > len(c.pending) {
		n = len(c.pending)
	}
	c.pending = append(c.pending[:0], c.pending[n:]...)
}

// exchange performs one request/reply exchange: ensure a live connection
// (redialing if needed), arm the per-request deadline, send one frame,
// read one frame. Transport failures poison the connection and are
// retried with backoff up to cfg.MaxRetries; a msgError carrying CodeBusy
// (the server's MaxConns rejection) is retried the same way. build is
// invoked per attempt so the payload can track state that changes between
// attempts (the piggybacked history); its second result is threaded back
// through the caller.
func (c *Client) exchange(reqType uint8, build func() ([]byte, int)) (uint8, []byte, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()

	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			time.Sleep(c.cfg.Backoff.delay(attempt-1, c.rng))
			c.mu.Lock()
			closed := c.closed
			if !closed {
				c.stats.Retries++
			}
			c.mu.Unlock()
			if closed {
				return 0, nil, errClientClosed
			}
		}
		cc, err := c.ensureConn()
		if err != nil {
			if errors.Is(err, errClientClosed) || attempt >= c.cfg.MaxRetries {
				return 0, nil, err
			}
			lastErr = err
			continue
		}
		payload, _ := build()
		if c.cfg.Timeout > 0 {
			_ = cc.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		}
		err = writeFrame(cc.w, reqType, payload)
		var typ uint8
		var body []byte
		if err == nil {
			typ, body, err = readFrame(cc.r)
		}
		if err != nil {
			c.poison(cc)
			lastErr = fmt.Errorf("%w: %v", ErrConnBroken, err)
			if attempt >= c.cfg.MaxRetries {
				return 0, nil, lastErr
			}
			continue
		}
		if c.cfg.Timeout > 0 {
			_ = cc.conn.SetDeadline(time.Time{})
		}
		if typ == msgError {
			if e, derr := decodeErrorResponse(body); derr == nil && e.Code == CodeBusy {
				// Accept-limit rejection: the server closes this
				// connection after the reply, so treat it like a
				// transport failure and back off.
				c.poison(cc)
				lastErr = fmt.Errorf("%w: server busy: %s", ErrConnBroken, e.Message)
				if attempt >= c.cfg.MaxRetries {
					return 0, nil, lastErr
				}
				continue
			}
		}
		return typ, body, nil
	}
}

// ensureConn returns the live connection, redialing when the slot is
// empty. Called with reqMu held.
func (c *Client) ensureConn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errClientClosed
	}
	cc := c.conn
	c.mu.Unlock()
	if cc != nil {
		return cc, nil
	}
	if c.cfg.Dialer == nil {
		return nil, fmt.Errorf("%w: no dialer configured", ErrConnBroken)
	}
	raw, err := c.cfg.Dialer()
	if err != nil {
		return nil, fmt.Errorf("%w: redial: %v", ErrConnBroken, err)
	}
	cc = &clientConn{conn: raw, r: bufio.NewReader(raw), w: bufio.NewWriter(raw)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = raw.Close()
		return nil, errClientClosed
	}
	c.conn = cc
	c.stats.Reconnects++
	c.mu.Unlock()
	return cc, nil
}

// poison closes a broken connection and empties the slot so nothing ever
// reuses its (possibly desynchronized) stream.
func (c *Client) poison(cc *clientConn) {
	_ = cc.conn.Close()
	c.mu.Lock()
	if c.conn == cc {
		c.conn = nil
		c.stats.BrokenConns++
	}
	c.mu.Unlock()
}

// poisonCurrent poisons whatever connection is currently installed; used
// when a decoded reply reveals desynchronization after exchange returned.
func (c *Client) poisonCurrent() {
	c.mu.Lock()
	cc := c.conn
	c.mu.Unlock()
	if cc != nil {
		c.poison(cc)
	}
}

// install applies the aggregating-cache placement: demanded file at the
// head, other members appended at the tail, never evicting the incoming
// group's own files to make room. Called with mu held.
func (c *Client) install(id trace.FileID, resp groupResponse) {
	protected := make(map[trace.FileID]bool, len(resp.Files))
	memberIDs := make([]trace.FileID, len(resp.Files))
	for i, f := range resp.Files {
		memberIDs[i] = c.ids.Intern(f.Path)
		protected[memberIDs[i]] = true
		c.stats.FilesReceived++
		c.stats.BytesReceived += uint64(len(f.Data))
	}

	for c.lru.Len() >= c.cfg.CacheCapacity {
		if _, ok := c.lru.EvictVictimExcept(protected); ok {
			continue
		}
		if _, ok := c.lru.EvictVictim(); !ok {
			break
		}
	}
	c.lru.InsertHead(id)
	c.data[id] = resp.Files[0].Data
	delete(c.prefetched, id)

	for i := 1; i < len(resp.Files); i++ {
		mid := memberIDs[i]
		if c.lru.Contains(mid) {
			c.data[mid] = resp.Files[i].Data // refresh contents
			continue
		}
		if c.lru.Len() >= c.cfg.CacheCapacity {
			if _, ok := c.lru.EvictVictimExcept(protected); !ok {
				break
			}
		}
		c.lru.InsertTail(mid)
		c.data[mid] = resp.Files[i].Data
		c.prefetched[mid] = true
	}
}
