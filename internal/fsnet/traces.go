package fsnet

// Trace-context piggyback (msgTraceCtx). Like the view frames of
// views.go, trace contexts ride v3 connections under request ID 0 and
// never travel to a pre-v3 peer: the writer goroutine emits one
// msgTraceCtx immediately before each head-sampled request frame in
// the same batch, and the receiver's read loop decodes it inline and
// attaches it to the request frame whose ID it names. Unsampled
// requests send nothing, so the fast path's wire image is unchanged.
//
// The payload is: uvarint annotated-request-ID, one flags byte, then
// uvarint trace-ID-hi, trace-ID-lo, and the sender's span ID (the
// receiver's parent). The flags byte carries bit 0 = sampled; the
// frame's presence implies it today, but the byte keeps the format
// extensible (tail-only hints, debug bits) without a version bump.

import (
	"errors"

	"aggcache/internal/obs/otrace"
)

// traceSampled is the flags bit marking a head-sampled context.
const traceSampled = 0x1

func appendTraceCtx(dst []byte, id uint64, ctx otrace.Ctx) []byte {
	dst = appendUvarint(dst, id)
	var flags byte
	if ctx.Sampled {
		flags |= traceSampled
	}
	dst = append(dst, flags)
	dst = appendUvarint(dst, ctx.Hi)
	dst = appendUvarint(dst, ctx.Lo)
	return appendUvarint(dst, ctx.Span)
}

// decodeTraceCtx yields the annotated request ID and the wire context.
// The returned Ctx carries the SENDER's span in Span; the receiver
// derives its own span via Tracer.Child, which moves it to Parent.
func decodeTraceCtx(payload []byte) (id uint64, ctx otrace.Ctx, err error) {
	d := decoder{buf: payload}
	if id, err = d.uvarint(); err != nil {
		return 0, otrace.Ctx{}, err
	}
	if len(d.buf) < 1 {
		return 0, otrace.Ctx{}, errTruncatedTraceCtx
	}
	flags := d.buf[0]
	d.buf = d.buf[1:]
	if ctx.Hi, err = d.uvarint(); err != nil {
		return 0, otrace.Ctx{}, err
	}
	if ctx.Lo, err = d.uvarint(); err != nil {
		return 0, otrace.Ctx{}, err
	}
	if ctx.Span, err = d.uvarint(); err != nil {
		return 0, otrace.Ctx{}, err
	}
	if err = d.done(); err != nil {
		return 0, otrace.Ctx{}, err
	}
	ctx.Sampled = flags&traceSampled != 0
	return id, ctx, nil
}

var errTruncatedTraceCtx = errors.New("fsnet: truncated trace context")
