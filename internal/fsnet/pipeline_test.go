package fsnet

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aggcache/internal/faultnet"
	"aggcache/internal/singleflight"
)

// The pipeline suite covers the version-2 serving path: many goroutines
// multiplexed over one connection, version negotiation in both
// directions, staging coalescing, and the poisoning contract when a
// pipelined connection is cut with calls in flight.

func TestProtocolNegotiatesV2(t *testing.T) {
	store := seededStore(t, 4)
	_, addr := startServer(t, store, ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if got := client.ProtocolVersion(); got != 0 {
		t.Errorf("ProtocolVersion before first request = %d, want 0", got)
	}
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if got := client.ProtocolVersion(); got != protocolLatest {
		t.Errorf("ProtocolVersion = %d, want %d", got, protocolLatest)
	}
}

func TestProtocolDowngradeToLegacyServer(t *testing.T) {
	store := seededStore(t, 4)
	// MaxProtocol 1 makes the server answer the hello exactly like a
	// pre-handshake build: msgError "unknown message type", then close.
	_, addr := startServer(t, store, ServerConfig{MaxProtocol: 1})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/data/f%03d", i)
		data, err := client.Open(path)
		if err != nil {
			t.Fatalf("open %s against legacy server: %v", path, err)
		}
		if want := "contents of " + path; string(data) != want {
			t.Errorf("open %s = %q, want %q", path, data, want)
		}
	}
	if got := client.ProtocolVersion(); got != protocolV1 {
		t.Errorf("ProtocolVersion = %d, want %d (downgraded)", got, protocolV1)
	}
	st := client.Stats()
	// The downgrade redial is connection establishment, not recovery.
	if st.Reconnects != 0 || st.BrokenConns != 0 {
		t.Errorf("stats = %+v, want downgrade uncounted as reconnect/broken", st)
	}
}

func TestProtocolClientCapsAtV1(t *testing.T) {
	store := seededStore(t, 2)
	srv, addr := startServer(t, store, ServerConfig{})
	client, err := Dial(addr, ClientConfig{MaxProtocol: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if got := client.ProtocolVersion(); got != protocolV1 {
		t.Errorf("ProtocolVersion = %d, want %d (capped)", got, protocolV1)
	}
	if st := srv.Stats(); st.Requests != 1 || st.Errors != 0 {
		t.Errorf("server stats = %+v, want one clean lock-step request", st)
	}
}

// TestConcurrentPipelinedOpens shares one client — hence one connection —
// across many goroutines and checks every reply is matched to the right
// request (bytes correct) with consistent accounting on both ends.
func TestConcurrentPipelinedOpens(t *testing.T) {
	const (
		files      = 48
		goroutines = 16
		opensEach  = 60
	)
	store := seededStore(t, files)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 4, CacheCapacity: 64})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < opensEach; n++ {
				path := fmt.Sprintf("/data/f%03d", (g*7+n*13)%files)
				data, err := client.Open(path)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d open %s: %w", g, path, err)
					return
				}
				if want := "contents of " + path; string(data) != want {
					errs <- fmt.Errorf("goroutine %d open %s returned %q", g, path, data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := client.ProtocolVersion(); got != protocolLatest {
		t.Fatalf("ProtocolVersion = %d, want %d", got, protocolLatest)
	}
	cst := client.Stats()
	if cst.Opens != goroutines*opensEach {
		t.Errorf("client opens = %d, want %d", cst.Opens, goroutines*opensEach)
	}
	if cst.Opens != cst.Hits+cst.Fetches {
		t.Errorf("inconsistent client stats: %+v", cst)
	}
	sst := srv.Stats()
	if sst.Requests != cst.Fetches {
		t.Errorf("server requests = %d, want %d (client fetches)", sst.Requests, cst.Fetches)
	}
	if sst.Errors != 0 || sst.Disconnects != 0 || sst.Panics != 0 {
		t.Errorf("server stats = %+v, want clean run", sst)
	}
}

// TestChaosPipelineCutMidFlight launches a burst of pipelined opens and
// hard-resets the connection underneath them. The poisoning contract:
// every in-flight call completes promptly — success or a typed error —
// and the client recovers on a fresh connection afterwards.
func TestChaosPipelineCutMidFlight(t *testing.T) {
	const (
		files      = 32
		goroutines = 12
		opensEach  = 40
	)
	store := seededStore(t, files)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 3, CacheCapacity: 64})
	dialer, _ := faultnet.Dialer(addr, faultnet.Faults{
		Seed:      7,
		ResetProb: 0.02,
	})
	client, err := NewClient(nil, ClientConfig{
		CacheCapacity: 16,
		Dialer:        dialer,
		Timeout:       time.Second,
		MaxRetries:    10,
		Backoff:       Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2, Jitter: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	type result struct {
		g, n int
		path string
		err  error
	}
	var wg sync.WaitGroup
	results := make(chan result, goroutines*opensEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < opensEach; n++ {
				path := fmt.Sprintf("/data/f%03d", (g*5+n*11)%files)
				data, err := client.Open(path)
				if err == nil {
					if want := "contents of " + path; string(data) != want {
						err = fmt.Errorf("wrong bytes %q", data)
					}
				}
				results <- result{g: g, n: n, path: path, err: err}
			}
		}(g)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined calls did not complete after the cut: poisoning leaked a waiter")
	}
	close(results)

	completed, failed := 0, 0
	for r := range results {
		completed++
		if r.err != nil {
			failed++
			// Every failure must carry the typed transport error; random
			// wrong-bytes or unexplained errors mean reply misdelivery.
			if !errors.Is(r.err, ErrConnBroken) {
				t.Errorf("goroutine %d open %d (%s): untyped failure: %v", r.g, r.n, r.path, r.err)
			}
		}
	}
	if completed != goroutines*opensEach {
		t.Errorf("completed %d calls, want %d", completed, goroutines*opensEach)
	}
	st := client.Stats()
	if st.BrokenConns == 0 {
		t.Fatalf("stats = %+v, want at least one injected cut; chaos run was vacuous", st)
	}
	t.Logf("cut test: broken=%d reconnects=%d retries=%d failed-opens=%d",
		st.BrokenConns, st.Reconnects, st.Retries, failed)

	// Recovery: a fresh round of opens on the same client succeeds.
	if _, err := client.Open("/data/f000"); err != nil {
		// One residual cut can fail this open too; a second try must work.
		if _, err := client.Open("/data/f000"); err != nil {
			t.Errorf("client did not recover after cuts: %v", err)
		}
	}
}

// TestFlightGroupCoalesces pins the server's singleflight usage contract
// (now provided by internal/singleflight): overlapping
// calls with one key share the leader's single execution, and
// non-overlapping calls run fresh.
func TestFlightGroupCoalesces(t *testing.T) {
	var g singleflight.Group[[]fileData]
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls int
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		files, ok, coalesced := g.Do("k", func() ([]fileData, bool) {
			calls++
			close(entered)
			<-release
			return []fileData{{Path: "k", Data: []byte("v")}}, true
		})
		if !ok || coalesced || len(files) != 1 {
			t.Errorf("leader got ok=%v coalesced=%v files=%d", ok, coalesced, len(files))
		}
	}()
	<-entered

	const followers = 8
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			files, ok, coalesced := g.Do("k", func() ([]fileData, bool) {
				t.Error("follower executed fn despite leader in flight")
				return nil, false
			})
			if !ok || !coalesced {
				t.Errorf("follower got ok=%v coalesced=%v", ok, coalesced)
			}
			if len(files) != 1 || string(files[0].Data) != "v" {
				t.Errorf("follower files = %v", files)
			}
		}()
	}
	// Give the followers a moment to join the flight, then release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}

	// A later, non-overlapping call starts fresh.
	_, _, coalesced := g.Do("k", func() ([]fileData, bool) { return nil, true })
	if coalesced {
		t.Error("non-overlapping call reported coalesced")
	}
}

// TestSequentialV2MatchesV1ServerStats replays one scripted sequence
// twice — once over the pipelined protocol, once over lock-step against a
// version-capped server — and requires identical server-side outcomes:
// the transport must not perturb caching, grouping, or accounting.
func TestSequentialV2MatchesV1ServerStats(t *testing.T) {
	script := []string{
		"/data/f000", "/data/f001", "/data/f002", "/data/f000",
		"/data/f003", "/data/f001", "/data/f004", "/data/f005",
		"/data/f002", "/data/f000", "/data/f006", "/data/f003",
	}
	run := func(serverMax int) (ServerStats, []string) {
		store := seededStore(t, 8)
		srv, addr := startServer(t, store, ServerConfig{
			GroupSize: 3, CacheCapacity: 4, SuccessorCapacity: 2, MaxProtocol: serverMax,
		})
		client, err := Dial(addr, ClientConfig{CacheCapacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		var contents []string
		for _, p := range script {
			data, err := client.Open(p)
			if err != nil {
				t.Fatalf("open %s (server max %d): %v", p, serverMax, err)
			}
			contents = append(contents, string(data))
		}
		return srv.Stats(), contents
	}
	v2Stats, v2Contents := run(0)
	v1Stats, v1Contents := run(1)
	// The version-capped server rejects the client's hello probe exactly
	// like a legacy build — one counted error before the downgrade. That
	// is connection establishment, not serving; normalize it away.
	if v1Stats.Errors != 1 {
		t.Errorf("v1 server errors = %d, want exactly the downgrade probe", v1Stats.Errors)
	}
	v1Stats.Errors = 0
	// The uncapped run negotiates version 3, which streams every group
	// reply; the lock-step run streams none. Transport presentation, not
	// serving behaviour — normalize it away after checking both counts.
	if v2Stats.StreamedGroups != v2Stats.Requests {
		t.Errorf("v3 server streamed %d of %d replies, want all", v2Stats.StreamedGroups, v2Stats.Requests)
	}
	if v1Stats.StreamedGroups != 0 {
		t.Errorf("v1 server streamed %d replies, want 0", v1Stats.StreamedGroups)
	}
	v2Stats.StreamedGroups = 0
	if v2Stats != v1Stats {
		t.Errorf("server stats diverge:\n  v2: %+v\n  v1: %+v", v2Stats, v1Stats)
	}
	for i := range v2Contents {
		if v2Contents[i] != v1Contents[i] {
			t.Errorf("open %d: v2 returned %q, v1 returned %q", i, v2Contents[i], v1Contents[i])
		}
	}
	if v2Stats.CoalescedStages != 0 {
		t.Errorf("sequential run coalesced %d stagings, want 0", v2Stats.CoalescedStages)
	}
}
