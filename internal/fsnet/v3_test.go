package fsnet

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// The v3 suite pins the streamed-group protocol: the full version
// negotiation matrix, byte-level equivalence between streamed and
// assembled group replies, and the poisoning contract when a member
// stream is cut mid-flight.

// TestNegotiationMatrix drives every client/server version pairing
// through real opens and checks the negotiated version, the served
// bytes, and whether replies streamed.
func TestNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name              string
		clientMax, svrMax int
		wantVer           int
		wantStreamed      bool
		legacyDowngrade   bool // server answers the hello like a pre-handshake build
	}{
		{name: "v3-v3", clientMax: 0, svrMax: 0, wantVer: protocolV3, wantStreamed: true},
		{name: "v3-v3-explicit", clientMax: 3, svrMax: 3, wantVer: protocolV3, wantStreamed: true},
		{name: "v3client-v2server", clientMax: 0, svrMax: 2, wantVer: protocolV2},
		{name: "v2client-v3server", clientMax: 2, svrMax: 0, wantVer: protocolV2},
		{name: "v3client-v1server", clientMax: 0, svrMax: 1, wantVer: protocolV1, legacyDowngrade: true},
		{name: "v1client-v3server", clientMax: 1, svrMax: 0, wantVer: protocolV1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const files = 8
			store := seededStore(t, files)
			srv, addr := startServer(t, store, ServerConfig{
				GroupSize: 3, CacheCapacity: 32, MaxProtocol: tc.svrMax,
			})
			client, err := Dial(addr, ClientConfig{CacheCapacity: 4, MaxProtocol: tc.clientMax})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			for i := 0; i < files; i++ {
				path := fmt.Sprintf("/data/f%03d", i)
				data, err := client.Open(path)
				if err != nil {
					t.Fatalf("open %s: %v", path, err)
				}
				if want := "contents of " + path; string(data) != want {
					t.Errorf("open %s = %q, want %q", path, data, want)
				}
			}
			if got := client.ProtocolVersion(); got != tc.wantVer {
				t.Errorf("negotiated version %d, want %d", got, tc.wantVer)
			}
			st := srv.Stats()
			if tc.wantStreamed && st.StreamedGroups == 0 {
				t.Errorf("server streamed no groups on a v3 session: %+v", st)
			}
			if !tc.wantStreamed && st.StreamedGroups != 0 {
				t.Errorf("server streamed %d groups on a v%d session, want 0", st.StreamedGroups, tc.wantVer)
			}
			if tc.legacyDowngrade {
				// The hello probe costs one counted error, nothing else.
				if st.Errors != 1 {
					t.Errorf("legacy downgrade errors = %d, want 1 (the probe)", st.Errors)
				}
			} else if st.Errors != 0 {
				t.Errorf("server errors = %d, want 0: %+v", st.Errors, st)
			}
		})
	}
}

// TestStreamedGroupMatchesAssembled is the golden equivalence check: the
// same open against the same store must hand the application identical
// group contents whether the reply streamed (v3) or arrived as one
// assembled frame (v2 cap).
func TestStreamedGroupMatchesAssembled(t *testing.T) {
	const files = 12
	open := func(serverMax int) []GroupFile {
		store := seededStore(t, files)
		srv, addr := startServer(t, store, ServerConfig{
			GroupSize: 4, CacheCapacity: 32, MaxProtocol: serverMax,
		})
		client, err := Dial(addr, ClientConfig{CacheCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		// Warm the server's successor metadata so the reply is a real
		// multi-member group, then fetch it.
		for i := 0; i < files; i++ {
			if _, err := client.Open(fmt.Sprintf("/data/f%03d", i)); err != nil {
				t.Fatal(err)
			}
		}
		group, err := client.OpenGroup("/data/f000")
		if err != nil {
			t.Fatal(err)
		}
		if serverMax == 0 && srv.Stats().StreamedGroups == 0 {
			t.Fatal("uncapped run did not stream; equivalence test is vacuous")
		}
		return group
	}
	streamed := open(0)
	assembled := open(2)
	if len(streamed) != len(assembled) {
		t.Fatalf("streamed group has %d members, assembled %d", len(streamed), len(assembled))
	}
	if len(streamed) < 2 {
		t.Fatalf("group of %d members exercises no streaming; grow the warmup", len(streamed))
	}
	for i := range streamed {
		if streamed[i].Path != assembled[i].Path {
			t.Errorf("member %d path: streamed %q, assembled %q", i, streamed[i].Path, assembled[i].Path)
		}
		if !bytes.Equal(streamed[i].Data, assembled[i].Data) {
			t.Errorf("member %d data: streamed %q, assembled %q", i, streamed[i].Data, assembled[i].Data)
		}
	}
}

// TestPinV3ChunkWireFormat pins the exact v3 wire bytes: a member chunk
// frame and its closing group end, hex-encoded. A codec change that
// breaks this test breaks deployed v3 peers.
func TestPinV3ChunkWireFormat(t *testing.T) {
	// Frame: len | msgMemberChunk | id=0x0102 | pathlen=2 "/a" | datalen=3, then "xyz".
	hdr := appendMemberChunkHdr(nil, 0x0102, "/a", 3)
	frame := append(append([]byte{}, hdr...), []byte("xyz")...)
	const wantChunk = "00000010" + // length: 16 bytes after the prefix
		"0a" + // msgMemberChunk
		"0000000000000102" + // request ID
		"022f61" + // path "/a"
		"03" + // data length
		"78797a" // "xyz"
	if got := hex.EncodeToString(frame); got != wantChunk {
		t.Errorf("member chunk wire bytes:\n got %s\nwant %s", got, wantChunk)
	}
	end := appendFrameID(nil, msgGroupEnd, 0x0102, appendGroupEnd(nil, 2))
	const wantEnd = "0000000a" + "0b" + "0000000000000102" + "02"
	if got := hex.EncodeToString(end); got != wantEnd {
		t.Errorf("group end wire bytes:\n got %s\nwant %s", got, wantEnd)
	}

	// Round trip: the views decode back to exactly what was encoded.
	payload := frame[4+v2HdrLen:]
	path, data, err := memberChunkView(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(path) != "/a" || string(data) != "xyz" {
		t.Errorf("memberChunkView = %q, %q", path, data)
	}
	n, err := decodeGroupEnd(end[4+v2HdrLen:])
	if err != nil || n != 2 {
		t.Errorf("decodeGroupEnd = %d, %v; want 2, nil", n, err)
	}
}

// TestPinV3StreamDecodesToV2Group checks, purely at the codec level, that
// a group streamed as member chunks reassembles into byte-identical
// members to the same group's v2 single-frame encoding.
func TestPinV3StreamDecodesToV2Group(t *testing.T) {
	group := []fileData{
		{Path: "/g/anchor", Data: []byte("anchor contents")},
		{Path: "/g/m1", Data: []byte{}},
		{Path: "/g/m2", Data: []byte("third member, longer contents \x00\xff")},
	}

	// v2: one assembled frame.
	v2resp, err := decodeGroupResponse(appendGroupResponse(nil, group))
	if err != nil {
		t.Fatal(err)
	}

	// v3: one chunk frame per member, then the end frame, exactly as
	// writeBatchV3 lays them out.
	var reassembled []fileData
	for _, f := range group {
		hdr := appendMemberChunkHdr(nil, 7, f.Path, len(f.Data))
		frame := append(hdr, f.Data...)
		path, data, err := memberChunkView(frame[4+v2HdrLen:])
		if err != nil {
			t.Fatalf("chunk %s: %v", f.Path, err)
		}
		reassembled = append(reassembled, fileData{Path: string(path), Data: append([]byte{}, data...)})
	}
	n, err := decodeGroupEnd(appendGroupEnd(nil, len(group)))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(reassembled) {
		t.Fatalf("group end count %d, reassembled %d members", n, len(reassembled))
	}

	if len(v2resp.Files) != len(reassembled) {
		t.Fatalf("v2 decoded %d members, v3 %d", len(v2resp.Files), len(reassembled))
	}
	for i := range v2resp.Files {
		if v2resp.Files[i].Path != reassembled[i].Path {
			t.Errorf("member %d path: v2 %q, v3 %q", i, v2resp.Files[i].Path, reassembled[i].Path)
		}
		if !bytes.Equal(v2resp.Files[i].Data, reassembled[i].Data) {
			t.Errorf("member %d data: v2 %q, v3 %q", i, v2resp.Files[i].Data, reassembled[i].Data)
		}
	}
}

// fakeV3Server accepts connections, completes the v3 handshake, and
// hands each decoded open request to serve, which writes the reply
// directly — the harness for wire-level fault scripts the real server
// cannot be coaxed into.
func fakeV3Server(t *testing.T, serve func(conn net.Conn, w *bufio.Writer, id uint64, req openRequest) bool) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				w := bufio.NewWriter(conn)
				typ, payload, err := readFrame(r)
				if err != nil || typ != msgHello {
					return
				}
				putFrameBuf(payload)
				if err := writeHello(w, msgHelloOK, protocolV3); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				for {
					typ, id, payload, err := readFrameID(r)
					if err != nil {
						return
					}
					if typ != msgOpen {
						putFrameBuf(payload)
						return
					}
					req, err := decodeOpenRequest(payload)
					putFrameBuf(payload)
					if err != nil {
						return
					}
					if !serve(conn, w, id, req) {
						return
					}
					if err := w.Flush(); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// writeChunk writes one member chunk frame for id.
func writeChunk(w *bufio.Writer, id uint64, path string, data []byte) error {
	payload := appendString(nil, path)
	payload = appendBytes(payload, data)
	return putFrameID(w, msgMemberChunk, id, payload)
}

// TestMidStreamCutFailsOnlyThatCall scripts a server that serves the
// first open as a complete member stream, then cuts the connection after
// the first chunk of the second. The second call must fail with the
// typed transport error; the first call's result and a post-cut third
// call (on the redialed connection) must be untouched.
func TestMidStreamCutFailsOnlyThatCall(t *testing.T) {
	var opens atomic.Int32
	addr := fakeV3Server(t, func(conn net.Conn, w *bufio.Writer, id uint64, req openRequest) bool {
		switch opens.Add(1) {
		case 2:
			// Half a stream, then a hard cut: one chunk, no group end.
			_ = writeChunk(w, id, req.Path, []byte("truncated"))
			_ = w.Flush()
			time.Sleep(10 * time.Millisecond) // let the chunk land before the RST
			return false
		default:
			if err := writeChunk(w, id, req.Path, []byte("whole "+req.Path)); err != nil {
				return false
			}
			if err := writeChunk(w, id, req.Path+".member", []byte("rider")); err != nil {
				return false
			}
			return putFrameID(w, msgGroupEnd, id, appendGroupEnd(nil, 2)) == nil
		}
	})

	client, err := Dial(addr, ClientConfig{CacheCapacity: 8, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Call 1: a clean streamed group.
	data, err := client.Open("/s/one")
	if err != nil {
		t.Fatalf("open 1: %v", err)
	}
	if want := "whole /s/one"; string(data) != want {
		t.Errorf("open 1 = %q, want %q", data, want)
	}
	if got := client.ProtocolVersion(); got != protocolV3 {
		t.Fatalf("negotiated %d, want %d", got, protocolV3)
	}

	// Call 2: the stream is cut after its first chunk. With retries
	// disabled the typed error surfaces to this call and no other.
	if _, err := client.Open("/s/two"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("open 2 err = %v, want ErrConnBroken", err)
	}

	// Call 1's cached result is intact — the poison touched in-flight
	// calls only.
	data, err = client.Open("/s/one")
	if err != nil {
		t.Fatalf("open 1 (cached) after cut: %v", err)
	}
	if want := "whole /s/one"; string(data) != want {
		t.Errorf("open 1 (cached) = %q, want %q", data, want)
	}

	// Call 3: a fresh path redials and streams cleanly.
	data, err = client.Open("/s/three")
	if err != nil {
		t.Fatalf("open 3 (post-cut redial): %v", err)
	}
	if want := "whole /s/three"; string(data) != want {
		t.Errorf("open 3 = %q, want %q", data, want)
	}
	st := client.Stats()
	if st.BrokenConns != 1 {
		t.Errorf("BrokenConns = %d, want exactly the scripted cut", st.BrokenConns)
	}
}

// TestStreamCountMismatchPoisons scripts a group end that declares more
// members than were streamed; the client must reject the reply with the
// typed transport error rather than surface a short group.
func TestStreamCountMismatchPoisons(t *testing.T) {
	addr := fakeV3Server(t, func(conn net.Conn, w *bufio.Writer, id uint64, req openRequest) bool {
		_ = writeChunk(w, id, req.Path, []byte("lonely"))
		_ = putFrameID(w, msgGroupEnd, id, appendGroupEnd(nil, 3))
		return true // loop flushes; the client poisons and closes
	})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 8, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/s/short"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("short stream err = %v, want ErrConnBroken", err)
	}
}

// TestStreamedWrongFirstChunkPoisons scripts a stream whose first chunk
// is not the demanded path — reply misdelivery the client must refuse.
func TestStreamedWrongFirstChunkPoisons(t *testing.T) {
	addr := fakeV3Server(t, func(conn net.Conn, w *bufio.Writer, id uint64, req openRequest) bool {
		_ = writeChunk(w, id, "/not/"+req.Path, []byte("imposter"))
		_ = putFrameID(w, msgGroupEnd, id, appendGroupEnd(nil, 1))
		return true // loop flushes; the client poisons and closes
	})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 8, MaxRetries: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/s/mismatch"); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("mismatched stream err = %v, want ErrConnBroken", err)
	}
}
