package fsnet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// startServer launches a server on a loopback listener and returns its
// address plus a cleanup-registered shutdown.
func startServer(t *testing.T, store *Store, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, l.Addr().String()
}

func seededStore(t *testing.T, n int) *Store {
	t.Helper()
	store := NewStore()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/data/f%03d", i)
		if err := store.Put(path, []byte(fmt.Sprintf("contents of %s", path))); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if err := s.Put("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty path accepted")
	}
	data, ok := s.Get("/a")
	if !ok || string(data) != "x" {
		t.Errorf("Get = %q,%v", data, ok)
	}
	// Mutating the returned copy must not corrupt the store.
	data[0] = 'z'
	again, _ := s.Get("/a")
	if string(again) != "x" {
		t.Error("Get returned aliased data")
	}
	// Put must copy too.
	in := []byte("y")
	if err := s.Put("/b", in); err != nil {
		t.Fatal(err)
	}
	in[0] = 'q'
	got, _ := s.Get("/b")
	if string(got) != "y" {
		t.Error("Put aliased caller data")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if paths := s.Paths(); len(paths) != 2 || paths[0] != "/a" {
		t.Errorf("Paths = %v", paths)
	}
	if !s.Delete("/a") || s.Delete("/a") {
		t.Error("Delete semantics wrong")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, ServerConfig{}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewServer(NewStore(), ServerConfig{GroupSize: maxGroup + 1}); err == nil {
		t.Error("oversized group accepted")
	}
	if _, err := NewServer(NewStore(), ServerConfig{GroupSize: -1}); err == nil {
		t.Error("negative group accepted")
	}
}

func TestOpenRoundTrip(t *testing.T) {
	store := seededStore(t, 10)
	_, addr := startServer(t, store, ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data, err := client.Open("/data/f000")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "contents of /data/f000" {
		t.Errorf("data = %q", data)
	}
	// Second open is a local hit.
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	s := client.Stats()
	if s.Opens != 2 || s.Hits != 1 || s.Fetches != 1 {
		t.Errorf("client stats = %+v", s)
	}
}

func TestOpenNotFound(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 1), ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if _, err := client.Open("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	// The connection survives an error reply.
	if _, err := client.Open("/data/f000"); err != nil {
		t.Errorf("open after error: %v", err)
	}
	if st := client.Stats(); st.Opens != 1 {
		t.Errorf("failed open counted: %+v", st)
	}
}

func TestOpenInvalidPath(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 1), ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open(""); err == nil {
		t.Error("empty path accepted")
	}
}

// The headline behaviour: after the server learns an access pattern, a
// single fetch delivers the whole working set to the client.
func TestGroupPrefetchOverNetwork(t *testing.T) {
	store := seededStore(t, 30)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 3, CacheCapacity: 64})
	teach, err := Dial(addr, ClientConfig{CacheCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer teach.Close()

	// Teach the chain f000 -> f001 -> f002 with a tiny client cache so
	// every open reaches the server.
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if _, err := teach.Open(fmt.Sprintf("/data/f%03d", j)); err != nil {
				t.Fatal(err)
			}
		}
		// Break the 2-entry cache between rounds.
		for j := 10; j < 13; j++ {
			if _, err := teach.Open(fmt.Sprintf("/data/f%03d", j)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A fresh client opening f000 must receive f001 and f002 with it.
	fresh, err := Dial(addr, ClientConfig{CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains("/data/f001") || !fresh.Contains("/data/f002") {
		t.Fatalf("group members not prefetched; stats=%+v srv=%+v", fresh.Stats(), srv.Stats())
	}
	// Opening them is free: no extra server fetch.
	before := fresh.Stats().Fetches
	if _, err := fresh.Open("/data/f001"); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Open("/data/f002"); err != nil {
		t.Fatal(err)
	}
	after := fresh.Stats()
	if after.Fetches != before {
		t.Errorf("prefetched opens caused fetches: %+v", after)
	}
	if after.PrefetchHits != 2 {
		t.Errorf("PrefetchHits = %d, want 2", after.PrefetchHits)
	}
}

func TestPiggybackTeachesServerWithoutMisses(t *testing.T) {
	store := seededStore(t, 10)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// With a large client cache, repeats hit locally; the access
	// history still reaches the server on the next miss.
	seq := []string{"/data/f000", "/data/f001", "/data/f000", "/data/f001", "/data/f000", "/data/f001"}
	for _, p := range seq {
		if _, err := client.Open(p); err != nil {
			t.Fatal(err)
		}
	}
	// Force one more miss to flush the pending history.
	if _, err := client.Open("/data/f009"); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Requests == 0 {
		t.Fatal("no server requests")
	}
	// The server must now predict f001 after f000: a brand-new client
	// opening f000 receives f001 too.
	fresh, err := Dial(addr, ClientConfig{CacheCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains("/data/f001") {
		t.Error("server did not learn the piggybacked f000->f001 relationship")
	}
}

func TestConcurrentClients(t *testing.T) {
	store := seededStore(t, 50)
	srv, addr := startServer(t, store, ServerConfig{})
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := Dial(addr, ClientConfig{CacheCapacity: 8})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 60; i++ {
				path := fmt.Sprintf("/data/f%03d", (c*7+i)%50)
				data, err := client.Open(path)
				if err != nil {
					errs <- fmt.Errorf("client %d open %s: %w", c, path, err)
					return
				}
				if !bytes.HasSuffix(data, []byte(path)) {
					errs <- fmt.Errorf("client %d: wrong contents for %s: %q", c, path, data)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := srv.Stats(); st.Requests == 0 {
		t.Error("server saw no requests")
	}
}

func TestServerStatsAccounting(t *testing.T) {
	store := seededStore(t, 5)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Requests != 2 || st.Errors != 1 {
		t.Errorf("server stats = %+v", st)
	}
	if st.FilesSent == 0 {
		t.Error("FilesSent = 0")
	}
}

func TestClientClose(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 2), ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := client.Open("/data/f000"); err == nil {
		t.Error("open after close succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := NewServer(NewStore(), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Serve after close must refuse.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Error("Serve after Close succeeded")
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	srv, addr := startServer(t, seededStore(t, 1), ServerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection without crashing; a healthy
	// client still works.
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Errorf("healthy client failed after garbage connection: %v", err)
	}
	_ = srv
}

func TestClientCacheEvictionKeepsDataConsistent(t *testing.T) {
	store := seededStore(t, 40)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 4})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Stream far more files than the cache holds; every returned body
	// must match its path even across evictions and re-fetches.
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/data/f%03d", i%40)
		data, err := client.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := "contents of " + path; string(data) != want {
			t.Fatalf("open %s = %q, want %q", path, data, want)
		}
	}
	st := client.Stats()
	if st.Hits == 0 || st.Fetches == 0 {
		t.Errorf("stats = %+v, want both hits and fetches", st)
	}
}

func TestDisablePiggybackServerLearnsMissesOnly(t *testing.T) {
	store := seededStore(t, 10)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 2})
	client, err := Dial(addr, ClientConfig{CacheCapacity: 32, DisablePiggyback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Two misses then four local hits: the server must observe exactly
	// the two misses.
	for _, p := range []string{"/data/f000", "/data/f001", "/data/f000", "/data/f001", "/data/f000", "/data/f001"} {
		if _, err := client.Open(p); err != nil {
			t.Fatal(err)
		}
	}
	srv.aggMu.Lock()
	observed := srv.agg.Tracker().Observed()
	srv.aggMu.Unlock()
	if observed != 2 {
		t.Errorf("server observed %d accesses, want 2 (misses only)", observed)
	}
}

func TestServerIdleTimeoutDropsSilentClients(t *testing.T) {
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{IdleTimeout: 50 * time.Millisecond})
	// The pipelined transport notices the server's idle drop asynchronously
	// (its reader sees EOF and poisons the connection), so the next open
	// transparently redials rather than failing. MaxRetries absorbs the
	// window where a request is enqueued just before the drop is noticed.
	client, err := Dial(addr, ClientConfig{MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	// Stay silent past the idle timeout; the server must drop us.
	time.Sleep(150 * time.Millisecond)
	if _, err := client.Open("/data/f001"); err != nil {
		t.Errorf("open after idle disconnect did not recover: %v", err)
	}
	st := client.Stats()
	if st.BrokenConns == 0 {
		t.Errorf("stats = %+v, want the idle drop recorded as a broken connection", st)
	}
	if st.Reconnects == 0 {
		t.Errorf("stats = %+v, want a reconnect after the idle drop", st)
	}
	// A fresh connection still works too.
	fresh, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Open("/data/f001"); err != nil {
		t.Errorf("fresh client failed: %v", err)
	}
}

func TestClientSurvivesServerShutdownWithError(t *testing.T) {
	store := seededStore(t, 2)
	srv, err := NewServer(store, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	client, err := Dial(l.Addr().String(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The next open must fail cleanly, not hang or panic.
	if _, err := client.Open("/data/f001"); err == nil {
		t.Error("open succeeded against a closed server")
	}
	// Cached data remains readable... via Contains at least.
	if !client.Contains("/data/f000") {
		t.Error("cached file lost after server shutdown")
	}
}

// flakyConn fails writes after a budget, simulating a connection that
// dies mid-request.
type flakyConn struct {
	net.Conn
	budget int
}

func (f *flakyConn) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, fmt.Errorf("flaky: injected write failure")
	}
	if len(p) > f.budget {
		n, _ := f.Conn.Write(p[:f.budget])
		f.budget = 0
		return n, fmt.Errorf("flaky: injected partial write")
	}
	f.budget -= len(p)
	return f.Conn.Write(p)
}

func TestClientReportsInjectedConnectionFailure(t *testing.T) {
	store := seededStore(t, 2)
	_, addr := startServer(t, store, ServerConfig{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(&flakyConn{Conn: raw, budget: 10}, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err == nil {
		t.Error("open over dying connection succeeded")
	}
}

func TestServerMetadataPersistence(t *testing.T) {
	store := seededStore(t, 20)
	srv1, addr1 := startServer(t, store, ServerConfig{GroupSize: 3})
	teach, err := Dial(addr1, ClientConfig{CacheCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer teach.Close()
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if _, err := teach.Open(fmt.Sprintf("/data/f%03d", j)); err != nil {
				t.Fatal(err)
			}
		}
		for j := 10; j < 13; j++ {
			if _, err := teach.Open(fmt.Sprintf("/data/f%03d", j)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var snap bytes.Buffer
	if err := srv1.SaveMetadata(&snap); err != nil {
		t.Fatal(err)
	}

	// A brand-new server restored from the snapshot must know the
	// f000 -> f001 -> f002 chain immediately.
	srv2, err := NewServer(store, ServerConfig{GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.LoadMetadata(&snap); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv2.Serve(l) }()
	defer srv2.Close()

	fresh, err := Dial(l.Addr().String(), ClientConfig{CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if !fresh.Contains("/data/f001") || !fresh.Contains("/data/f002") {
		t.Error("restored server lost the learned group")
	}
}

func TestServerLoadMetadataRejectsGarbage(t *testing.T) {
	srv, err := NewServer(NewStore(), ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.LoadMetadata(bytes.NewReader([]byte("XXXXjunk"))); err != ErrBadServerMetadata {
		t.Errorf("err = %v, want ErrBadServerMetadata", err)
	}
	if err := srv.LoadMetadata(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	// Truncated snapshot.
	store := seededStore(t, 3)
	src, addr := startServer(t, store, ServerConfig{})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.SaveMetadata(&snap); err != nil {
		t.Fatal(err)
	}
	full := snap.Bytes()
	if err := srv.LoadMetadata(bytes.NewReader(full[:len(full)/2])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestWriteThrough(t *testing.T) {
	store := seededStore(t, 4)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 2})
	writer, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	// Read, then overwrite; our own next read must see the new data.
	if _, err := writer.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write("/data/f000", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	data, err := writer.Open("/data/f000")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "updated" {
		t.Errorf("own read after write = %q", data)
	}
	if st := writer.Stats(); st.Writes != 1 {
		t.Errorf("Writes = %d, want 1", st.Writes)
	}

	// A new file is creatable via Write.
	if err := writer.Write("/data/new", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	// A second client sees both from the store.
	reader, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	got, err := reader.Open("/data/new")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh" {
		t.Errorf("other client read = %q", got)
	}
	got, err = reader.Open("/data/f000")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "updated" {
		t.Errorf("other client read of updated file = %q", got)
	}
}

func TestWriteValidation(t *testing.T) {
	_, addr := startServer(t, seededStore(t, 1), ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Write("", []byte("x")); err == nil {
		t.Error("empty path accepted")
	}
	if err := client.Write("/ok", make([]byte, maxFileSize+1)); err == nil {
		t.Error("oversized write accepted")
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Write("/ok", []byte("x")); err == nil {
		t.Error("write after close accepted")
	}
}

func TestWriteDoesNotPerturbMetadata(t *testing.T) {
	store := seededStore(t, 4)
	srv, addr := startServer(t, store, ServerConfig{})
	client, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Open("/data/f000"); err != nil {
		t.Fatal(err)
	}
	before := func() uint64 {
		srv.aggMu.Lock()
		defer srv.aggMu.Unlock()
		return srv.agg.Tracker().Observed()
	}()
	if err := client.Write("/data/f001", []byte("w")); err != nil {
		t.Fatal(err)
	}
	after := func() uint64 {
		srv.aggMu.Lock()
		defer srv.aggMu.Unlock()
		return srv.agg.Tracker().Observed()
	}()
	if after != before {
		t.Errorf("write changed observed accesses: %d -> %d", before, after)
	}
}

func TestInterleavedClientsDoNotCorruptMetadata(t *testing.T) {
	store := seededStore(t, 30)
	srv, addr := startServer(t, store, ServerConfig{GroupSize: 3})
	a, err := Dial(addr, ClientConfig{CacheCapacity: 2, DisablePiggyback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr, ClientConfig{CacheCapacity: 2, DisablePiggyback: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Strictly interleaved distinct chains. With a single merged
	// learning context the server would learn f000 -> f020 etc.
	for round := 0; round < 6; round++ {
		for j := 0; j < 3; j++ {
			if _, err := a.Open(fmt.Sprintf("/data/f%03d", j)); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Open(fmt.Sprintf("/data/f%03d", 20+j)); err != nil {
				t.Fatal(err)
			}
		}
		// Evict both tiny caches between rounds.
		if _, err := a.Open("/data/f010"); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Open("/data/f011"); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Open("/data/f012"); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Open("/data/f013"); err != nil {
			t.Fatal(err)
		}
	}
	srv.aggMu.Lock()
	tk := srv.agg.Tracker()
	id0, _ := srv.ids.Lookup("/data/f000")
	id20, _ := srv.ids.Lookup("/data/f020")
	succs := tk.Successors(id0)
	srv.aggMu.Unlock()
	for _, sid := range succs {
		if sid == id20 {
			t.Errorf("server learned cross-client transition f000 -> f020; successors = %v", succs)
		}
	}
}

// TestSoakMixedWorkload drives several concurrent clients through
// randomized reads and writes and checks every read observes *some*
// legitimate version of the file (its initial contents or any version
// written by anyone — last-writer-wins with no cross-client invalidation
// means stale-but-valid reads are allowed; fabricated data is not).
func TestSoakMixedWorkload(t *testing.T) {
	const (
		files   = 64
		clients = 6
		ops     = 300
	)
	store := seededStore(t, files)
	_, addr := startServer(t, store, ServerConfig{GroupSize: 4, CacheCapacity: 48})

	// All versions any writer ever produced, per path.
	var versionsMu sync.Mutex
	versions := make(map[string]map[string]bool, files)
	record := func(path, content string) {
		versionsMu.Lock()
		defer versionsMu.Unlock()
		m, ok := versions[path]
		if !ok {
			m = make(map[string]bool, 4)
			versions[path] = m
		}
		m[content] = true
	}
	for i := 0; i < files; i++ {
		path := fmt.Sprintf("/data/f%03d", i)
		record(path, "contents of "+path)
	}
	valid := func(path, content string) bool {
		versionsMu.Lock()
		defer versionsMu.Unlock()
		return versions[path][content]
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := Dial(addr, ClientConfig{CacheCapacity: 12})
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			// Deterministic per-client pseudo-randomness.
			x := uint32(1 + c*2654435761)
			for i := 0; i < ops; i++ {
				x = x*1664525 + 1013904223
				path := fmt.Sprintf("/data/f%03d", (x>>8)%files)
				if (x>>28)%4 == 0 { // 25% writes
					content := fmt.Sprintf("v-%d-%d %s", c, i, path)
					// Record before writing so a concurrent reader
					// that observes it early still validates.
					record(path, content)
					if err := client.Write(path, []byte(content)); err != nil {
						errs <- fmt.Errorf("client %d write %s: %w", c, path, err)
						return
					}
				} else {
					data, err := client.Open(path)
					if err != nil {
						errs <- fmt.Errorf("client %d open %s: %w", c, path, err)
						return
					}
					if !valid(path, string(data)) {
						errs <- fmt.Errorf("client %d read fabricated data for %s: %q", c, path, data)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
