package fsnet

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
)

// muxConn is the version-2 client transport: one TCP connection shared by
// any number of goroutines, with pipelined requests and out-of-order
// replies matched by request ID.
//
// A writer goroutine drains a queue of encoded calls and flushes them in
// batches (many frames, one syscall); a reader goroutine decodes reply
// frames and delivers each to its call's completion channel. Any transport
// or protocol error poisons the whole connection: every in-flight call
// fails fast with ErrConnBroken, claimed piggyback history is restored to
// the client in call order, and the connection is closed and never reused
// — exactly the poisoning contract the lock-step path established.
type muxConn struct {
	c    *Client
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	mu     sync.Mutex
	nextID uint64
	calls  map[uint64]*muxCall // in flight: queued or written, awaiting reply
	queue  []*muxCall          // awaiting the writer goroutine
	broken bool
	err    error // first error, set when broken

	wake chan struct{} // capacity 1; nudges the writer
}

// muxCall is one pipelined request.
type muxCall struct {
	id      uint64
	typ     uint8
	payload []byte
	// claimed is the piggyback history this call took from the client's
	// pending list at enqueue; it is restored if the connection dies
	// before the server demonstrably processed the call.
	claimed []string
	// done receives exactly one result (buffered so the reader never
	// blocks on a caller).
	done chan muxResult
}

type muxResult struct {
	typ     uint8
	payload []byte
	err     error
}

func newMuxConn(c *Client, cc *clientConn) *muxConn {
	return &muxConn{
		c:     c,
		conn:  cc.conn,
		r:     cc.r,
		w:     cc.w,
		calls: make(map[uint64]*muxCall),
		wake:  make(chan struct{}, 1),
	}
}

// start launches the writer and reader goroutines. Called after the mux is
// installed in the client's connection slot.
func (m *muxConn) start() {
	go m.writer()
	go m.reader()
}

// enqueue registers one call and hands it to the writer. For msgOpen the
// pending piggyback history is claimed here, while holding m.mu, so claim
// order matches request-ID order — the invariant that lets poison restore
// the histories of failed calls in the order they were taken.
func (m *muxConn) enqueue(reqType uint8, path string, payload []byte) (*muxCall, error) {
	m.mu.Lock()
	if m.broken {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	m.nextID++
	call := &muxCall{id: m.nextID, typ: reqType, done: make(chan muxResult, 1)}
	if reqType == msgOpen {
		var accessed []string
		accessed, call.claimed = m.c.claimPending(path)
		call.payload = encodeOpenRequest(openRequest{Path: path, Accessed: accessed})
	} else {
		call.payload = payload
	}
	m.calls[call.id] = call
	m.queue = append(m.queue, call)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return call, nil
}

// writer drains the queue in batches: every queued frame is buffered and
// the batch shares one Flush, so k pipelined requests cost one syscall
// instead of k.
func (m *muxConn) writer() {
	for range m.wake {
		for {
			m.mu.Lock()
			if m.broken {
				m.mu.Unlock()
				return
			}
			batch := m.queue
			m.queue = nil
			m.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			var err error
			for _, call := range batch {
				if err = putFrameID(m.w, call.typ, call.id, call.payload); err != nil {
					break
				}
			}
			if err == nil {
				err = m.w.Flush()
			}
			if err != nil {
				m.poison(fmt.Errorf("%w: %v", ErrConnBroken, err))
				return
			}
		}
	}
}

// reader decodes replies and delivers each to its caller. Any read or
// framing error — including Close of the underlying connection — poisons
// the mux, which fails all in-flight calls.
func (m *muxConn) reader() {
	for {
		typ, id, payload, err := readFrameID(m.r)
		if err != nil {
			m.poison(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
		m.mu.Lock()
		call, ok := m.calls[id]
		if ok {
			delete(m.calls, id)
		}
		m.mu.Unlock()
		if !ok {
			putFrameBuf(payload)
			m.poison(fmt.Errorf("%w: reply for unknown request %d", ErrConnBroken, id))
			return
		}
		call.done <- muxResult{typ: typ, payload: payload}
	}
}

// poison marks the mux broken, closes the connection, restores every
// unanswered call's claimed history to the client (oldest call first),
// empties the client's connection slot, and fails every unanswered call
// with err. Idempotent; only the first error wins.
func (m *muxConn) poison(err error) {
	m.mu.Lock()
	if m.broken {
		m.mu.Unlock()
		return
	}
	m.broken = true
	m.err = err
	orphans := make([]*muxCall, 0, len(m.calls))
	for _, call := range m.calls {
		orphans = append(orphans, call)
	}
	m.calls = make(map[uint64]*muxCall)
	m.queue = nil
	m.mu.Unlock()

	_ = m.conn.Close()
	// Nudge the writer so it observes broken and exits.
	select {
	case m.wake <- struct{}{}:
	default:
	}

	// Request IDs were assigned in claim order, so restoring in ID order
	// reassembles the piggyback backlog oldest-first.
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	var hist []string
	for _, call := range orphans {
		hist = append(hist, call.claimed...)
	}
	m.c.restorePending(hist)
	m.c.dropMux(m)
	for _, call := range orphans {
		call.done <- muxResult{err: err}
	}
}
