package fsnet

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aggcache/internal/obs/otrace"
)

// muxConn is the pipelined client transport (protocol version >= 2): one
// TCP connection shared by any number of goroutines, with pipelined
// requests and out-of-order replies matched by request ID.
//
// A writer goroutine drains a queue of calls and flushes them in batches
// (many frames, one syscall); a reader goroutine decodes reply frames and
// delivers each to its call's completion channel. On a version-3
// connection a group reply arrives as a stream of msgMemberChunk frames
// closed by msgGroupEnd; the reader accumulates the chunks and delivers
// the completed group. Any transport or protocol error poisons the whole
// connection: every in-flight call fails fast with ErrConnBroken, claimed
// piggyback history is restored to the client in call order, and the
// connection is closed and never reused — exactly the poisoning contract
// the lock-step path established.
type muxConn struct {
	c    *Client
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	ver  int // negotiated protocol version (>= 2)

	// View-hint piggyback state, touched only by the writer goroutine:
	// the epoch last announced on this connection, so a stable view costs
	// one frame per connection rather than one per batch.
	hintSent  bool
	hintEpoch uint64

	mu     sync.Mutex
	nextID uint64
	calls  map[uint64]*muxCall // in flight: queued or written, awaiting reply
	queue  []*muxCall          // awaiting the writer goroutine
	freeQ  []*muxCall          // recycled queue storage for the next batch
	broken bool
	err    error // first error, set when broken

	wake chan struct{} // capacity 1; nudges the writer
}

// muxCall is one pipelined request.
type muxCall struct {
	id  uint64
	typ uint8
	// path is the demanded path of a msgOpen; the writer goroutine claims
	// the piggyback history and encodes the payload at write time, so one
	// flush's worth of opens shares a single claim instead of claiming
	// per call.
	path    string
	payload []byte
	// claimed is the piggyback history this call took from the client's
	// pending list when the writer encoded it; it is restored if the
	// connection dies before the server demonstrably processed the call.
	// Calls poisoned before they were written have no claim — their
	// history simply stayed on the pending list.
	claimed []string
	// start is the enqueue time of a msgOpen, for time-to-first-byte.
	start time.Time
	// tctx is the call's trace context. A sampled context makes the
	// writer emit one msgTraceCtx piggyback frame ahead of the request
	// frame (v3 only); the zero value sends nothing.
	tctx otrace.Ctx
	// chunks accumulates the member-chunk payloads of a streamed
	// (version-3) group reply until its msgGroupEnd arrives. Owned by the
	// reader while the call is in flight.
	chunks [][]byte
	// done receives exactly one result (buffered so the reader never
	// blocks on a caller).
	done chan muxResult
}

// muxCallPool recycles call objects (and their completion channels):
// exactly one result is delivered and consumed per call, so a call is
// free for reuse as soon as its caller has read the result.
var muxCallPool = sync.Pool{
	New: func() interface{} { return &muxCall{done: make(chan muxResult, 1)} },
}

func putMuxCall(call *muxCall) {
	call.id, call.typ, call.path = 0, 0, ""
	call.payload, call.claimed, call.chunks = nil, nil, nil
	call.start = time.Time{}
	call.tctx = otrace.Ctx{}
	muxCallPool.Put(call)
}

type muxResult struct {
	typ     uint8
	payload []byte
	// chunks is a streamed group reply: the member-chunk payloads in
	// group order (typ is msgGroup, payload nil). Each element is a
	// pooled frame buffer the receiver recycles after decoding.
	chunks [][]byte
	err    error
}

func newMuxConn(c *Client, cc *clientConn, ver int) *muxConn {
	return &muxConn{
		c:     c,
		conn:  cc.conn,
		r:     cc.r,
		w:     cc.w,
		ver:   ver,
		calls: c.takeCallScrap(),
		wake:  make(chan struct{}, 1),
	}
}

// start launches the writer and reader goroutines. Called after the mux is
// installed in the client's connection slot.
func (m *muxConn) start() {
	go m.writer()
	go m.reader()
}

// enqueue registers one call and hands it to the writer. msgOpen payloads
// are not encoded here: the writer claims the piggyback history and
// encodes at write time, preserving the invariant that claims happen in
// request-ID order (the writer drains the queue in ID order).
func (m *muxConn) enqueue(reqType uint8, path string, payload []byte, tctx otrace.Ctx) (*muxCall, error) {
	call := muxCallPool.Get().(*muxCall)
	call.typ = reqType
	call.path = path
	call.payload = payload
	if tctx.Sampled && m.ver >= protocolV3 {
		// Pre-v3 peers never see trace frames; dropping the context here
		// (rather than erroring like view verbs) keeps tracing advisory.
		call.tctx = tctx
	}
	if reqType == msgOpen {
		call.start = time.Now()
	}
	m.mu.Lock()
	if m.broken {
		err := m.err
		m.mu.Unlock()
		putMuxCall(call)
		return nil, err
	}
	m.nextID++
	call.id = m.nextID
	m.calls[call.id] = call
	m.queue = append(m.queue, call)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return call, nil
}

// writer drains the queue in batches: every queued frame is buffered and
// the batch shares one Flush, so k pipelined requests cost one syscall
// instead of k. Open payloads are encoded here, into one pooled scratch
// buffer per batch, after claiming the pending piggyback history — still
// under m.mu, so the claim-order/ID-order invariant holds and the claimed
// slices are safely published to the reader and poison paths.
func (m *muxConn) writer() {
	for range m.wake {
		for {
			m.mu.Lock()
			if m.broken {
				m.mu.Unlock()
				return
			}
			if len(m.queue) == 0 {
				m.mu.Unlock()
				break
			}
			batch := m.queue
			if m.freeQ != nil {
				m.queue = m.freeQ[:0]
				m.freeQ = nil
			} else {
				m.queue = nil
			}
			enc := getEncodeBuf()
			for _, call := range batch {
				if call.typ != msgOpen {
					continue
				}
				var accessed []string
				accessed, call.claimed = m.c.claimPending(call.path)
				start := len(enc)
				enc = appendOpenRequest(enc, call.path, accessed)
				call.payload = enc[start:]
			}
			m.mu.Unlock()
			var err error
			// Piggyback the membership epoch ahead of the batch on a
			// version-3 connection with a view source: one msgViewHint
			// under request ID 0 (never a real request ID — those start at
			// 1), re-sent only when the epoch changes. Appending to enc
			// after the unlock is safe: if append reallocates, the batch
			// payload slices keep aliasing the old (immutable) backing.
			if m.ver >= protocolV3 && m.c.cfg.Views != nil {
				if epoch := m.c.cfg.Views.Epoch(); !m.hintSent || epoch != m.hintEpoch {
					start := len(enc)
					enc = appendViewMsg(enc, epoch, m.c.cfg.Views.Self())
					err = putFrameID(m.w, msgViewHint, 0, enc[start:])
					m.hintSent, m.hintEpoch = true, epoch
				}
			}
			for _, call := range batch {
				if err != nil {
					break
				}
				if call.tctx.Sampled {
					// Announce the sampled call's trace context under
					// request ID 0 immediately before its request frame;
					// the server attaches it to the matching request ID.
					start := len(enc)
					enc = appendTraceCtx(enc, call.id, call.tctx)
					if err = putFrameID(m.w, msgTraceCtx, 0, enc[start:]); err != nil {
						break
					}
				}
				if err = putFrameID(m.w, call.typ, call.id, call.payload); err != nil {
					break
				}
			}
			if err == nil {
				err = m.w.Flush()
			}
			putFrameBuf(enc)
			m.recycleBatch(batch)
			if err != nil {
				m.poison(fmt.Errorf("%w: %v", ErrConnBroken, err))
				return
			}
		}
	}
}

// recycleBatch offers a drained batch's storage back as the next queue.
func (m *muxConn) recycleBatch(batch []*muxCall) {
	for i := range batch {
		batch[i] = nil
	}
	m.mu.Lock()
	if m.freeQ == nil || cap(batch) > cap(m.freeQ) {
		m.freeQ = batch[:0]
	}
	m.mu.Unlock()
}

// reader decodes replies and delivers each to its caller. Streamed
// (version-3) group replies accumulate on their call until the closing
// msgGroupEnd. Any read or framing error — including Close of the
// underlying connection — poisons the mux, which fails all in-flight
// calls.
func (m *muxConn) reader() {
	for {
		typ, id, payload, err := readFrameID(m.r)
		if err != nil {
			m.poison(fmt.Errorf("%w: %v", ErrConnBroken, err))
			return
		}
		if id == 0 && typ == msgViewHint {
			// Unsolicited epoch announcement from the server's reply
			// batches; request IDs start at 1, so ID 0 never matches a
			// call. Advisory: noted when a view source is wired, dropped
			// otherwise.
			epoch, sender, derr := decodeViewMsg(payload)
			putFrameBuf(payload)
			if derr != nil {
				m.poison(fmt.Errorf("%w: %v", ErrConnBroken, derr))
				return
			}
			if m.c.cfg.Views != nil {
				m.c.cfg.Views.NoteViewEpoch(sender, epoch)
			}
			continue
		}
		switch typ {
		case msgMemberChunk:
			m.mu.Lock()
			call, ok := m.calls[id]
			var first bool
			if ok {
				if len(call.chunks) >= maxGroup {
					m.mu.Unlock()
					putFrameBuf(payload)
					m.poison(fmt.Errorf("%w: streamed group exceeds %d members", ErrConnBroken, maxGroup))
					return
				}
				first = len(call.chunks) == 0
				if call.chunks == nil {
					// One right-sized allocation per streamed reply
					// instead of append's doubling crawl.
					call.chunks = make([][]byte, 0, 8)
				}
				call.chunks = append(call.chunks, payload)
			}
			m.mu.Unlock()
			if !ok {
				putFrameBuf(payload)
				m.poison(fmt.Errorf("%w: chunk for unknown request %d", ErrConnBroken, id))
				return
			}
			if first && !call.start.IsZero() {
				m.observeTTFB(call)
			}
		case msgGroupEnd:
			m.mu.Lock()
			call, ok := m.calls[id]
			if ok {
				delete(m.calls, id)
			}
			m.mu.Unlock()
			if !ok {
				putFrameBuf(payload)
				m.poison(fmt.Errorf("%w: group end for unknown request %d", ErrConnBroken, id))
				return
			}
			n, derr := decodeGroupEnd(payload)
			putFrameBuf(payload)
			if derr == nil && n != len(call.chunks) {
				derr = fmt.Errorf("group end declares %d members, got %d", n, len(call.chunks))
			}
			if derr != nil {
				for _, b := range call.chunks {
					putFrameBuf(b)
				}
				call.chunks = nil
				werr := fmt.Errorf("%w: %v", ErrConnBroken, derr)
				// The stream is untrustworthy beyond this point; the call
				// was already removed from the in-flight map, so fail it
				// directly after poisoning the rest.
				m.poison(werr)
				call.done <- muxResult{err: werr}
				return
			}
			chunks := call.chunks
			call.chunks = nil
			call.done <- muxResult{typ: msgGroup, chunks: chunks}
		default:
			m.mu.Lock()
			call, ok := m.calls[id]
			if ok {
				delete(m.calls, id)
			}
			m.mu.Unlock()
			if !ok {
				putFrameBuf(payload)
				m.poison(fmt.Errorf("%w: reply for unknown request %d", ErrConnBroken, id))
				return
			}
			if !call.start.IsZero() {
				m.observeTTFB(call)
			}
			call.done <- muxResult{typ: typ, payload: payload}
		}
	}
}

// observeTTFB records a call's time-to-first-byte, attaching the trace
// ID as a histogram exemplar only for sampled calls: rendering the hex
// trace ID allocates, so unsampled requests stay on the plain path.
func (m *muxConn) observeTTFB(call *muxCall) {
	d := uint64(time.Since(call.start))
	if call.tctx.Sampled {
		m.c.m.ttfb.ObserveTrace(d, call.tctx.TraceID())
		return
	}
	m.c.m.ttfb.Observe(d)
}

// poison marks the mux broken, closes the connection, restores every
// unanswered call's claimed history to the client (oldest call first),
// empties the client's connection slot, and fails every unanswered call
// with err. Idempotent; only the first error wins. The in-flight map and
// orphan scratch are handed back to the client for the replacement
// connection, so a flaky link does not reallocate them on every cut.
func (m *muxConn) poison(err error) {
	m.mu.Lock()
	if m.broken {
		m.mu.Unlock()
		return
	}
	m.broken = true
	m.err = err
	calls := m.calls
	orphans := m.c.takeOrphanScrap()
	for _, call := range calls {
		orphans = append(orphans, call)
	}
	m.calls = nil
	m.queue, m.freeQ = nil, nil
	m.mu.Unlock()

	_ = m.conn.Close()
	// Nudge the writer so it observes broken and exits.
	select {
	case m.wake <- struct{}{}:
	default:
	}

	// Request IDs were assigned — and their histories claimed — in ID
	// order, so restoring in ID order reassembles the piggyback backlog
	// oldest-first.
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	var hist []string
	for _, call := range orphans {
		hist = append(hist, call.claimed...)
	}
	m.c.restorePending(hist)
	m.c.dropMux(m)
	for _, call := range orphans {
		for _, b := range call.chunks {
			putFrameBuf(b)
		}
		call.chunks = nil
		call.done <- muxResult{err: err}
	}
	for i := range orphans {
		orphans[i] = nil
	}
	m.c.storeScrap(calls, orphans[:0])
}
