package fsnet

import (
	"time"

	"aggcache/internal/obs"
)

// serverMetrics is the server's instrumentation bundle. The nine
// counters exist unconditionally — standalone atomics when no registry
// is configured, registry-owned series otherwise — so ServerStats reads
// the same storage /metrics is scraped from and the two can never
// disagree. Latency histograms and the event log exist only with a
// registry: that nil keeps time.Now off the uninstrumented hot path.
type serverMetrics struct {
	requests    *obs.Counter
	errors      *obs.Counter
	sent        *obs.Counter
	rejected    *obs.Counter
	panics      *obs.Counter
	disconnects *obs.Counter
	coalesced   *obs.Counter
	remote      *obs.Counter
	handoffs    *obs.Counter
	streamed    *obs.Counter

	// Per-phase open latency: a request is a cache hit, a store stage,
	// or a router forward — the three serving paths of DESIGN.md §10/§11.
	latHit     *obs.Histogram
	latStage   *obs.Histogram
	latForward *obs.Histogram

	events *obs.EventLog
	slow   time.Duration
}

// newServerMetrics wires the bundle, registering with reg when non-nil.
func newServerMetrics(reg *obs.Registry, slow time.Duration) serverMetrics {
	m := serverMetrics{slow: slow}
	if reg == nil {
		m.requests = obs.NewCounter()
		m.errors = obs.NewCounter()
		m.sent = obs.NewCounter()
		m.rejected = obs.NewCounter()
		m.panics = obs.NewCounter()
		m.disconnects = obs.NewCounter()
		m.coalesced = obs.NewCounter()
		m.remote = obs.NewCounter()
		m.handoffs = obs.NewCounter()
		m.streamed = obs.NewCounter()
		return m
	}
	m.requests = reg.Counter("fsnet_server_requests_total", "open and write requests served, including errors")
	m.errors = reg.Counter("fsnet_server_errors_total", "error replies plus protocol violations")
	m.sent = reg.Counter("fsnet_server_files_sent_total", "files transferred in group replies")
	m.rejected = reg.Counter("fsnet_server_rejected_total", "connections turned away at the MaxConns limit")
	m.panics = reg.Counter("fsnet_server_panics_total", "handler panics recovered and converted to error replies")
	m.disconnects = reg.Counter("fsnet_server_disconnects_total", "connections terminated abnormally by I/O failures")
	m.coalesced = reg.Counter("fsnet_server_coalesced_stages_total", "open requests that shared another request's in-flight store staging")
	m.remote = reg.Counter("fsnet_server_remote_opens_total", "open requests answered by the configured router")
	m.handoffs = reg.Counter("fsnet_server_handoff_groups_total", "drain handoff groups installed from departing peers")
	m.streamed = reg.Counter("fsnet_server_streamed_groups_total", "group replies delivered as version-3 member streams")
	const latName = "fsnet_server_request_latency_ns"
	const latHelp = "open latency in nanoseconds by serving phase"
	m.latHit = reg.Histogram(latName, latHelp, obs.L("phase", "hit"))
	m.latStage = reg.Histogram(latName, latHelp, obs.L("phase", "stage"))
	m.latForward = reg.Histogram(latName, latHelp, obs.L("phase", "forward"))
	m.events = reg.Events()
	return m
}

// timed reports whether the open path should read the clock at all.
func (m *serverMetrics) timed() bool { return m.latHit != nil || m.slow > 0 }

// observeOpen records one open's latency under its serving phase and
// emits a slow_request event when the configured threshold is crossed.
// A non-empty traceID pins the request as the phase bucket's exemplar,
// so a latency outlier in /metrics resolves to a concrete trace.
func (m *serverMetrics) observeOpen(phase string, path string, d time.Duration, traceID string) {
	switch phase {
	case "hit":
		m.latHit.ObserveTrace(uint64(d), traceID)
	case "stage":
		m.latStage.ObserveTrace(uint64(d), traceID)
	case "forward":
		m.latForward.ObserveTrace(uint64(d), traceID)
	}
	if m.slow > 0 && d >= m.slow {
		m.events.Record("slow_request",
			obs.F("path", path),
			obs.F("phase", phase),
			obs.F("elapsed", d.String()))
	}
}

// clientMetrics is the client's instrumentation bundle. ClientStats (the
// mutex-guarded snapshot struct) stays authoritative; these series are
// bumped alongside at the same sites and are all nil without a registry,
// so the uninstrumented client pays only nil-check branches.
type clientMetrics struct {
	reconnects   *obs.Counter
	brokenConns  *obs.Counter
	retries      *obs.Counter
	degradedHits *obs.Counter
	inflight     *obs.Gauge
	callLat      *obs.Histogram
	events       *obs.EventLog

	// ttfb records fetch time-to-first-byte: enqueue until the first
	// reply frame of the request arrives (the first member chunk on a
	// streamed reply, the whole group otherwise). Unlike the rest of the
	// bundle it always exists — one atomic add per fetch — so load
	// generators can report streaming latency without wiring a registry.
	ttfb *obs.Histogram
}

// newClientMetrics wires the bundle; all but ttfb stay nil when reg is.
func newClientMetrics(reg *obs.Registry) clientMetrics {
	if reg == nil {
		return clientMetrics{ttfb: obs.NewHistogram()}
	}
	return clientMetrics{
		reconnects:   reg.Counter("fsnet_client_reconnects_total", "successful redials after a broken connection"),
		brokenConns:  reg.Counter("fsnet_client_broken_conns_total", "connections poisoned after an I/O or protocol error"),
		retries:      reg.Counter("fsnet_client_retries_total", "round-trip attempts beyond each request's first"),
		degradedHits: reg.Counter("fsnet_client_degraded_hits_total", "cache hits served with no live connection"),
		inflight:     reg.Gauge("fsnet_client_inflight", "round trips currently on the wire"),
		callLat:      reg.Histogram("fsnet_client_call_latency_ns", "round-trip latency in nanoseconds, retries included"),
		ttfb:         reg.Histogram("fsnet_client_ttfb_ns", "fetch time to first reply byte in nanoseconds"),
		events:       reg.Events(),
	}
}
